//! Watch the PABST governor converge: prints M, SAT and per-class
//! bandwidth for every epoch of a 7:3 streamer run.
//!
//! ```text
//! cargo run -p pabst-examples --bin governor_trace --release
//! ```

use pabst_examples::read_streamers;
use pabst_simkit::bytes_per_cycle_to_gbps;
use pabst_soc::config::{RegulationMode, SystemConfig};
use pabst_soc::system::SystemBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sys = SystemBuilder::new(SystemConfig::baseline_32core(), RegulationMode::Pabst)
        .class(7, read_streamers(0, 16))
        .class(3, read_streamers(1, 16))
        .build()?;
    sys.run_epochs(40);

    println!("epoch    M  SAT  class0 GB/s  class1 GB/s  share0");
    let m = sys.metrics();
    for e in 0..m.bw_series.epochs() {
        let p = m.bw_series.epoch(e);
        let ec = m.bw_series.epoch_cycles() as f64;
        let total = p[0] + p[1];
        println!(
            "{:>5} {:>5}  {}  {:>11.1}  {:>11.1}  {:>6}",
            e,
            m.m_series[e],
            if m.sat_series[e] { "1" } else { "0" },
            bytes_per_cycle_to_gbps(p[0] / ec),
            bytes_per_cycle_to_gbps(p[1] / ec),
            if total > 0.0 { format!("{:.3}", p[0] / total) } else { "-".into() },
        );
    }
    println!("\nM rises while the controllers are saturated (SAT=1) and falls");
    println!("otherwise; near the operating point SAT alternates and the");
    println!("adjustments shrink (Tables I-II).");
    Ok(())
}
