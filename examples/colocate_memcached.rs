//! Co-locating a latency-critical memcached server with batch streamers
//! (the paper's Use Case 1, evaluated in Fig. 9).
//!
//! Runs the same co-location twice — without QoS and with PABST at a 20:1
//! share — and prints the transaction service-time distribution of each.
//!
//! ```text
//! cargo run -p pabst-examples --bin colocate_memcached --release
//! ```

use pabst_cpu::Workload;
use pabst_examples::region_for;
use pabst_soc::config::{RegulationMode, SystemConfig};
use pabst_soc::system::SystemBuilder;
use pabst_workloads::{MemcachedGen, StreamGen};

fn run(mode: RegulationMode) -> Result<(f64, u64, u64), Box<dyn std::error::Error>> {
    let server: Vec<Box<dyn Workload>> =
        vec![Box::new(MemcachedGen::new(region_for(0, 0, 1 << 18), 7))];
    let aggressors: Vec<Box<dyn Workload>> = (0..7)
        .map(|i| {
            Box::new(StreamGen::reads(region_for(1, i, 1 << 20), 50 + i as u64))
                as Box<dyn Workload>
        })
        .collect();
    let mut sys = SystemBuilder::new(SystemConfig::scaled_8core(), mode)
        .class(20, server)
        .l3_ways(0, 8)
        .class(1, aggressors)
        .l3_ways(8, 8)
        .build()?;
    sys.run_epochs(10); // warmup
    sys.mark_measurement();
    sys.run_epochs(40);
    let h = &mut sys.metrics_mut().service[0];
    Ok((h.mean().unwrap_or(0.0), h.percentile(95.0).unwrap_or(0), h.percentile(99.0).unwrap_or(0)))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("memcached + 7 streaming cores on the scaled 8-core machine\n");
    for (label, mode) in
        [("no QoS       ", RegulationMode::None), ("PABST, 20:1  ", RegulationMode::Pabst)]
    {
        let (mean, p95, p99) = run(mode)?;
        println!("{label}: mean {mean:6.0} cyc   p95 {p95:6} cyc   p99 {p99:6} cyc");
    }
    println!("\nPABST restores both the average and the tail (compare Fig. 9).");
    Ok(())
}
