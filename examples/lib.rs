//! Shared helpers for the runnable PABST examples.
//!
//! The examples exercise the public API end to end:
//!
//! * `quickstart` — build a two-class system, split bandwidth 3:1.
//! * `colocate_memcached` — protect a latency-critical server from a
//!   bandwidth aggressor (the paper's Fig. 9 use case).
//! * `iaas_fairshare` — four equal-share tenants with work conservation
//!   (the Fig. 11 use case).
//! * `governor_trace` — watch the governor's M/δM/SAT dynamics converge.

use pabst_cpu::Workload;
use pabst_workloads::{Region, StreamGen};

/// A disjoint address region for (class, core).
pub fn region_for(class: usize, core: usize, lines: u64) -> Region {
    Region::new(((class as u64) << 40) + ((core as u64) << 32), lines)
}

/// `n` read streamers for a class.
pub fn read_streamers(class: usize, n: usize) -> Vec<Box<dyn Workload>> {
    (0..n)
        .map(|i| {
            Box::new(StreamGen::reads(region_for(class, i, 1 << 20), (class * 64 + i) as u64))
                as Box<dyn Workload>
        })
        .collect()
}
