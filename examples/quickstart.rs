//! Quickstart: partition memory bandwidth 3:1 between two classes of
//! streaming cores on the paper's 32-core machine.
//!
//! ```text
//! cargo run -p pabst-examples --bin quickstart --release
//! ```

use pabst_examples::read_streamers;
use pabst_simkit::bytes_per_cycle_to_gbps;
use pabst_soc::config::{RegulationMode, SystemConfig};
use pabst_soc::system::SystemBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two QoS classes: weight 3 (75%) and weight 1 (25%), each running 16
    // bandwidth-hungry streaming cores.
    let mut sys = SystemBuilder::new(SystemConfig::baseline_32core(), RegulationMode::Pabst)
        .class(3, read_streamers(0, 16))
        .class(1, read_streamers(1, 16))
        .build()?;

    // 40 epochs of 10 µs each: the governor needs a handful of epochs to
    // find the saturation point, then holds the split.
    sys.run_epochs(40);

    let m = sys.metrics();
    println!("PABST quickstart — 3:1 bandwidth partition between streamers");
    println!("epochs run: {}", sys.epochs_run());
    for class in 0..2 {
        println!(
            "class {class}: {:5.1} GB/s ({:4.1}% of traffic)",
            bytes_per_cycle_to_gbps(m.mean_bytes_per_cycle(class, 20)),
            m.mean_share(class, 20) * 100.0,
        );
    }
    println!("target shares: 75.0% / 25.0%");
    Ok(())
}
