//! Four IaaS tenants with equal 25% bandwidth shares (the paper's Use
//! Case 2, evaluated in Fig. 11).
//!
//! One tenant is idle-ish (its working set fits in cache); PABST's work
//! conservation hands its unused share to the other three — yet each
//! tenant is still guaranteed its quarter when everyone is busy.
//!
//! ```text
//! cargo run -p pabst-examples --bin iaas_fairshare --release
//! ```

use pabst_cpu::Workload;
use pabst_examples::{read_streamers, region_for};
use pabst_simkit::bytes_per_cycle_to_gbps;
use pabst_soc::config::{RegulationMode, SystemConfig};
use pabst_soc::system::SystemBuilder;
use pabst_workloads::StreamGen;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Tenants 0-2: memory-hungry streamers, 8 cores each.
    // Tenant 3: cache-resident (generates almost no DRAM traffic).
    let resident: Vec<Box<dyn Workload>> = (0..8)
        .map(|i| {
            Box::new(StreamGen::reads(region_for(3, i, 2048), 300 + i as u64)) as Box<dyn Workload>
        })
        .collect();
    let mut b = SystemBuilder::new(SystemConfig::baseline_32core(), RegulationMode::Pabst);
    for t in 0..3 {
        b = b.class(1, read_streamers(t, 8)).l3_ways(t * 4, 4);
    }
    let mut sys = b.class(1, resident).l3_ways(12, 4).build()?;

    sys.run_epochs(40);

    println!("four equal-share tenants (25% each), tenant 3 cache-resident\n");
    let m = sys.metrics();
    for t in 0..4 {
        println!(
            "tenant {t}: {:5.1} GB/s ({:4.1}% of traffic)",
            bytes_per_cycle_to_gbps(m.mean_bytes_per_cycle(t, 20)),
            m.mean_share(t, 20) * 100.0,
        );
    }
    println!("\nTenant 3's unused quarter is redistributed equally among the");
    println!("busy tenants (~33% each) — work conservation with a floor.");
    Ok(())
}
