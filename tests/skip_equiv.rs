//! The cycle-skipping correctness contract, end to end: for every cell of
//! a (configuration × workload × fault plan) matrix, a run with
//! event-horizon fast-forward enabled and one stepped naively must emit
//! byte-identical report JSON and trace JSONL, finish on the same cycle,
//! and retire the same instructions — the skip is an execution strategy,
//! never a model change.
//!
//! The matrix deliberately covers the paths where a wrong horizon would
//! diverge: every regulation mode (pacer reprogramming on and off),
//! pointer-chasing memory stalls (the deepest quiescent windows), write
//! drains, skewed-controller traffic, per-MC regulation, L3-way
//! overrides, an armed watchdog, the distance-modelled mesh network at
//! 64 and 256 tiles (staged link arbitration), idle-heavy mesh mixes
//! where tile-local parking (not the global jump) does the work, partial
//! skip under the DPQ arbiter (some tiles parked while others keep the
//! controllers live), and each fault kind — including the
//! required mc-stall window (a frozen controller must contribute no
//! horizon events and take no occupancy samples, and must never be
//! parked) and epoch-skew cell (stale pacer periods must throttle
//! identically across a skip).

use std::cell::RefCell;
use std::rc::Rc;

use pabst_cpu::Workload;
use pabst_simkit::fault::{FaultKind, FaultPlan, FaultSpec, PPM_SCALE};
use pabst_simkit::trace::{EpochRecord, TraceSink};
use pabst_soc::config::{RegulationMode, SystemConfig};
use pabst_soc::report::SystemReport;
use pabst_soc::system::SystemBuilder;
use pabst_workloads::{ChaserGen, Region, SkewedStreamGen, StreamGen};

/// Captures the trace exactly as a JSONL file would store it.
#[derive(Debug, Clone, Default)]
struct Jsonl(Rc<RefCell<String>>);

impl TraceSink for Jsonl {
    fn record(&mut self, rec: &EpochRecord) {
        let mut s = self.0.borrow_mut();
        s.push_str(&rec.to_json());
        s.push('\n');
    }
}

fn region() -> Region {
    Region::new(0, 1 << 16)
}

fn streams(n: usize, salt: u64) -> Vec<Box<dyn Workload>> {
    (0..n).map(|i| Box::new(StreamGen::reads(region(), salt + i as u64)) as _).collect()
}

fn write_streams(n: usize, salt: u64) -> Vec<Box<dyn Workload>> {
    (0..n).map(|i| Box::new(StreamGen::writes(region(), salt + i as u64)) as _).collect()
}

fn compute_streams(n: usize, salt: u64) -> Vec<Box<dyn Workload>> {
    (0..n)
        .map(|i| Box::new(StreamGen::reads(region(), salt + i as u64).with_compute(8)) as _)
        .collect()
}

fn chasers(n: usize, salt: u64) -> Vec<Box<dyn Workload>> {
    (0..n).map(|i| Box::new(ChaserGen::new(region(), 4, salt + i as u64)) as _).collect()
}

fn skewed(n: usize, mcs: usize, salt: u64) -> Vec<Box<dyn Workload>> {
    (0..n).map(|i| Box::new(SkewedStreamGen::new(region(), 0, mcs, salt + i as u64)) as _).collect()
}

fn window(kind: FaultKind, target: u64, from: u64, until: u64, magnitude: u64) -> FaultSpec {
    FaultSpec {
        kind,
        target,
        from_epoch: from,
        until_epoch: until,
        prob_ppm: PPM_SCALE,
        magnitude,
        seed: 11,
    }
}

fn always(kind: FaultKind, target: u64, magnitude: u64) -> FaultSpec {
    window(kind, target, 0, u64::MAX, magnitude)
}

fn plan(specs: impl IntoIterator<Item = FaultSpec>) -> FaultPlan {
    let mut p = FaultPlan::new();
    for s in specs {
        p.push(s);
    }
    p
}

/// One matrix cell: a name and a builder factory (called once per A/B arm
/// because workload boxes are single-use).
type Cell = (&'static str, Box<dyn Fn() -> SystemBuilder>);

fn cells() -> Vec<Cell> {
    let small = SystemConfig::small_test;
    let two_mc = || {
        let mut c = SystemConfig::small_test();
        c.mcs = 2;
        c
    };
    let cell = |name: &'static str, mk: Box<dyn Fn() -> SystemBuilder>| (name, mk);
    vec![
        cell(
            "pabst/streams",
            Box::new(move || {
                SystemBuilder::new(small(), RegulationMode::Pabst)
                    .class(3, streams(2, 0))
                    .class(1, streams(2, 100))
            }),
        ),
        cell(
            "none/streams",
            Box::new(move || {
                SystemBuilder::new(small(), RegulationMode::None)
                    .class(3, streams(2, 1))
                    .class(1, streams(2, 101))
            }),
        ),
        cell(
            "source-only/streams",
            Box::new(move || {
                SystemBuilder::new(small(), RegulationMode::SourceOnly)
                    .class(3, streams(2, 2))
                    .class(1, streams(2, 102))
            }),
        ),
        cell(
            "target-only/streams",
            Box::new(move || {
                SystemBuilder::new(small(), RegulationMode::TargetOnly)
                    .class(3, streams(2, 3))
                    .class(1, streams(2, 103))
            }),
        ),
        cell(
            "pabst/chasers",
            Box::new(move || {
                SystemBuilder::new(small(), RegulationMode::Pabst).class(1, chasers(2, 4))
            }),
        ),
        cell(
            "pabst/chasers-vs-streams",
            Box::new(move || {
                SystemBuilder::new(small(), RegulationMode::Pabst)
                    .class(3, chasers(2, 5))
                    .class(1, streams(2, 105))
            }),
        ),
        cell(
            "pabst/write-streams",
            Box::new(move || {
                SystemBuilder::new(small(), RegulationMode::Pabst)
                    .class(3, write_streams(2, 6))
                    .class(1, streams(2, 106))
            }),
        ),
        cell(
            "pabst/compute-streams",
            Box::new(move || {
                SystemBuilder::new(small(), RegulationMode::Pabst)
                    .class(3, compute_streams(2, 7))
                    .class(1, chasers(1, 107))
            }),
        ),
        cell(
            "pabst/skewed-two-mc",
            Box::new(move || {
                SystemBuilder::new(two_mc(), RegulationMode::Pabst)
                    .class(3, skewed(2, 2, 8))
                    .class(1, streams(2, 108))
            }),
        ),
        cell(
            "per-mc-regulation/streams",
            Box::new(move || {
                let mut c = two_mc();
                c.per_mc_regulation = true;
                SystemBuilder::new(c, RegulationMode::Pabst)
                    .class(3, skewed(2, 2, 9))
                    .class(1, streams(2, 109))
            }),
        ),
        cell(
            "scaled-8core/streams",
            Box::new(move || {
                let mut c = SystemConfig::scaled_8core();
                c.epoch_cycles = 4_000;
                SystemBuilder::new(c, RegulationMode::Pabst)
                    .class(3, streams(2, 10))
                    .class(1, chasers(2, 110))
            }),
        ),
        cell(
            "l3-ways-override/streams",
            Box::new(move || {
                SystemBuilder::new(small(), RegulationMode::Pabst)
                    .class(3, streams(2, 12))
                    .l3_ways(0, 4)
                    .class(1, streams(2, 112))
                    .l3_ways(4, 12)
            }),
        ),
        cell(
            "watchdog-armed/streams",
            Box::new(move || {
                let mut c = small();
                c.watchdog_epochs = 5;
                SystemBuilder::new(c, RegulationMode::Pabst)
                    .class(3, streams(2, 13))
                    .class(1, streams(2, 113))
            }),
        ),
        cell(
            "mesh-64/streams",
            Box::new(move || {
                // The distance-modelled mesh: staged requests behind a
                // bounded controller link must still report exact horizons.
                let mut c = SystemConfig::mesh_64();
                c.epoch_cycles = 2_000;
                SystemBuilder::new(c, RegulationMode::Pabst)
                    .class(3, streams(2, 23))
                    .class(1, chasers(2, 123))
            }),
        ),
        cell(
            "mesh-256x16/streams",
            Box::new(move || {
                let mut c = SystemConfig::mesh_256x16();
                c.epoch_cycles = 1_000;
                SystemBuilder::new(c, RegulationMode::Pabst)
                    .class(3, streams(2, 24))
                    .class(1, streams(2, 124))
            }),
        ),
        cell(
            "mesh-64/idle-heavy",
            Box::new(move || {
                // Mostly-wedged mesh: every declared tile walks a
                // dependence chain, so tile-local parking (not the global
                // jump) carries almost all of the elided work while the
                // network and controllers step naively underneath.
                let mut c = SystemConfig::mesh_64();
                c.epoch_cycles = 2_000;
                SystemBuilder::new(c, RegulationMode::Pabst)
                    .class(3, chasers(2, 30))
                    .class(1, chasers(2, 130))
            }),
        ),
        cell(
            "mesh-256x16/idle-heavy",
            Box::new(move || {
                let mut c = SystemConfig::mesh_256x16();
                c.epoch_cycles = 1_000;
                SystemBuilder::new(c, RegulationMode::Pabst)
                    .class(3, chasers(2, 31))
                    .class(1, chasers(2, 131))
            }),
        ),
        cell(
            "fault/mc-stall-tile-local",
            Box::new(move || {
                // A frozen mesh controller while tiles park locally: the
                // stalled MC must never be parked (its queues are live but
                // inert) and waking tiles must see identical fill timing.
                let mut c = SystemConfig::mesh_64();
                c.epoch_cycles = 2_000;
                SystemBuilder::new(c, RegulationMode::Pabst)
                    .class(3, chasers(2, 32))
                    .class(1, streams(2, 132))
                    .fault_plan(plan([window(FaultKind::McStall, 2, 1, 3, 0)]))
            }),
        ),
        cell(
            "mechanism/dpq-partial-skip",
            Box::new(move || {
                // Partial skip under the DPQ arbiter: chasing tiles park
                // while streaming tiles keep the controllers busy, so the
                // machine never fully quiesces and only tile-local
                // fast-forward is in play.
                let mut c = small();
                c.arbiter = pabst_dram::ArbiterMode::Dpq;
                SystemBuilder::new(c, RegulationMode::Pabst)
                    .class(3, chasers(2, 33))
                    .class(1, streams(2, 133))
            }),
        ),
        cell(
            "per-mc-regulation/mc-stall-fault",
            Box::new(move || {
                // Per-controller SAT loops while one controller freezes: the
                // stalled MC must vanish from the horizon without desyncing
                // its sibling's regulation window.
                let mut c = two_mc();
                c.per_mc_regulation = true;
                SystemBuilder::new(c, RegulationMode::Pabst)
                    .class(3, skewed(2, 2, 25))
                    .class(1, streams(2, 125))
                    .fault_plan(plan([window(FaultKind::McStall, 1, 1, 3, 0)]))
            }),
        ),
        // Mechanism-zoo cells: every competing governor/arbiter behind the
        // trait seams must uphold the same byte-identity contract as the
        // paper's default pair — a mechanism whose horizon lies would
        // diverge here.
        cell(
            "mechanism/lms-ar-governor",
            Box::new(move || {
                let mut c = small();
                c.governor = pabst_core::governor::GovernorKind::LmsAr;
                SystemBuilder::new(c, RegulationMode::Pabst)
                    .class(3, streams(2, 26))
                    .class(1, streams(2, 126))
            }),
        ),
        cell(
            "mechanism/per-bank-arbiter",
            Box::new(move || {
                let mut c = small();
                c.arbiter = pabst_dram::ArbiterMode::PerBank;
                SystemBuilder::new(c, RegulationMode::Pabst)
                    .class(3, streams(2, 27))
                    .class(1, chasers(2, 127))
            }),
        ),
        cell(
            "mechanism/dpq-arbiter",
            Box::new(move || {
                let mut c = small();
                c.arbiter = pabst_dram::ArbiterMode::Dpq;
                SystemBuilder::new(c, RegulationMode::Pabst)
                    .class(3, streams(2, 28))
                    .class(1, streams(2, 128))
            }),
        ),
        cell(
            "mechanism/lms-ar-dpq-combined",
            Box::new(move || {
                let mut c = small();
                c.governor = pabst_core::governor::GovernorKind::LmsAr;
                c.arbiter = pabst_dram::ArbiterMode::Dpq;
                SystemBuilder::new(c, RegulationMode::Pabst)
                    .class(3, write_streams(2, 29))
                    .class(1, streams(2, 129))
            }),
        ),
        // Fault cells: the plan must observe the identical epoch/boundary
        // sequence in both arms for these to match.
        cell(
            "fault/mc-stall-window",
            Box::new(move || {
                SystemBuilder::new(small(), RegulationMode::Pabst)
                    .class(3, streams(2, 14))
                    .class(1, streams(2, 114))
                    .fault_plan(plan([window(FaultKind::McStall, 0, 1, 2, 0)]))
            }),
        ),
        cell(
            "fault/mc-stall-chasers",
            Box::new(move || {
                SystemBuilder::new(small(), RegulationMode::Pabst)
                    .class(1, chasers(2, 15))
                    .fault_plan(plan([window(FaultKind::McStall, 0, 2, 3, 0)]))
            }),
        ),
        cell(
            "fault/epoch-skew",
            Box::new(move || {
                SystemBuilder::new(small(), RegulationMode::Pabst)
                    .class(3, streams(2, 16))
                    .class(1, streams(2, 116))
                    .fault_plan(plan([always(FaultKind::EpochSkew, 0, 0)]))
            }),
        ),
        cell(
            "fault/credit-leak",
            Box::new(move || {
                SystemBuilder::new(small(), RegulationMode::Pabst)
                    .class(3, streams(2, 17))
                    .class(1, streams(2, 117))
                    .fault_plan(plan([always(FaultKind::CreditLeak, 1, 10_000)]))
            }),
        ),
        cell(
            "fault/sat-drop",
            Box::new(move || {
                SystemBuilder::new(small(), RegulationMode::Pabst)
                    .class(3, streams(2, 18))
                    .class(1, streams(2, 118))
                    .fault_plan(plan([always(FaultKind::SatDrop, 0, 0)]))
            }),
        ),
        cell(
            "fault/sat-delay",
            Box::new(move || {
                SystemBuilder::new(small(), RegulationMode::Pabst)
                    .class(3, streams(2, 19))
                    .class(1, streams(2, 119))
                    .fault_plan(plan([always(FaultKind::SatDelay, 0, 2)]))
            }),
        ),
        cell(
            "fault/combined",
            Box::new(move || {
                SystemBuilder::new(small(), RegulationMode::Pabst)
                    .class(3, streams(2, 20))
                    .class(1, chasers(2, 120))
                    .fault_plan(plan([
                        always(FaultKind::EpochSkew, 0, 0),
                        always(FaultKind::CreditLeak, 1, 5_000),
                        window(FaultKind::McStall, 0, 3, 4, 0),
                        always(FaultKind::SatCorrupt, 0, 0),
                    ]))
            }),
        ),
    ]
}

/// Runs one arm of a cell: warmup, measurement window, then every
/// observable artifact plus the skip counter.
fn run_arm(mk: &dyn Fn() -> SystemBuilder, skip: bool) -> (String, String, u64, u64) {
    let mut sys = mk().skip(skip).build().expect("matrix cell must build");
    let trace = Jsonl::default();
    sys.add_trace_sink(Box::new(trace.clone()));
    sys.run_epochs(2);
    sys.mark_measurement();
    sys.run_epochs(4);
    let report = SystemReport::collect(&sys).to_json();
    let jsonl = trace.0.borrow().clone();
    (report, jsonl, sys.now(), sys.cycles_skipped())
}

#[test]
fn every_matrix_cell_is_byte_identical_across_skip_modes() {
    let mut total_skipped = 0u64;
    let mut total_cycles = 0u64;
    for (name, mk) in cells() {
        let (rep_s, trc_s, now_s, skipped) = run_arm(mk.as_ref(), true);
        let (rep_n, trc_n, now_n, skipped_naive) = run_arm(mk.as_ref(), false);
        assert_eq!(rep_s, rep_n, "{name}: report JSON diverged");
        assert_eq!(trc_s, trc_n, "{name}: trace JSONL diverged");
        assert_eq!(now_s, now_n, "{name}: final cycle diverged");
        assert_eq!(skipped_naive, 0, "{name}: naive arm must not skip");
        assert!(!trc_s.is_empty(), "{name}: trace must not be empty");
        total_skipped += skipped;
        total_cycles += now_s;
    }
    assert!(
        total_skipped > total_cycles / 20,
        "the matrix must exercise real skipping: {total_skipped} of {total_cycles} cycles"
    );
}

#[test]
fn pointer_chasing_skips_most_of_its_cycles() {
    // The perf motivation in miniature: dependent-load chains leave the
    // whole machine quiescent for most of each miss latency.
    let mk = || {
        SystemBuilder::new(SystemConfig::small_test(), RegulationMode::Pabst)
            .class(1, chasers(2, 21))
    };
    let (_, _, now, skipped) = run_arm(&mk, true);
    assert!(
        skipped > now / 4,
        "chaser workloads must fast-forward a large fraction: {skipped} of {now}"
    );
}

#[test]
fn trace_lines_from_a_skipping_run_parse_cleanly() {
    let mk = || {
        SystemBuilder::new(SystemConfig::small_test(), RegulationMode::Pabst)
            .class(3, streams(2, 22))
            .class(1, chasers(1, 122))
    };
    let (report, trace, _, _) = run_arm(&mk, true);
    for line in trace.lines() {
        let _ = pabst_simkit::trace::parse_line(line).expect("valid epoch record");
    }
    assert!(
        !report.contains("cycles_skipped") && !trace.contains("cycles_skipped"),
        "the skip counter is diagnostic-only and must never leak into artifacts"
    );
}
