//! Shared helpers for the cross-crate integration tests.
//!
//! The test binaries in this package exercise the full modelled machine:
//! cores → caches → pacers → network → L3 → priority arbiter → DRAM, with
//! the governor feedback loop closed over the saturation signal.

use pabst_cpu::Workload;
use pabst_soc::config::{RegulationMode, SystemConfig};
use pabst_soc::system::{System, SystemBuilder};
use pabst_workloads::{ChaserGen, Region, StreamGen};

/// Address-space base for class `c`, core `i` (disjoint per core).
pub fn region_for(class: usize, core: usize, lines: u64) -> Region {
    Region::new(((class as u64) << 40) + ((core as u64) << 32), lines)
}

/// `n` read streamers for class `class`, each over its own large region.
pub fn read_streamers(class: usize, n: usize) -> Vec<Box<dyn Workload>> {
    (0..n)
        .map(|i| {
            Box::new(StreamGen::reads(region_for(class, i, 1 << 20), (class * 64 + i) as u64))
                as Box<dyn Workload>
        })
        .collect()
}

/// `n` write streamers for class `class`.
pub fn write_streamers(class: usize, n: usize) -> Vec<Box<dyn Workload>> {
    (0..n)
        .map(|i| {
            Box::new(StreamGen::writes(region_for(class, i, 1 << 20), (class * 64 + i) as u64))
                as Box<dyn Workload>
        })
        .collect()
}

/// `n` chaser instances (4 chains each) for class `class`.
pub fn chasers(class: usize, n: usize) -> Vec<Box<dyn Workload>> {
    (0..n)
        .map(|i| {
            Box::new(ChaserGen::new(region_for(class, i, 1 << 18), 4, (class * 64 + i) as u64))
                as Box<dyn Workload>
        })
        .collect()
}

/// Builds a two-class 16+16-core system on the paper's baseline machine.
pub fn two_class_32core(
    mode: RegulationMode,
    w0: u32,
    w1: u32,
    c0: Vec<Box<dyn Workload>>,
    c1: Vec<Box<dyn Workload>>,
) -> System {
    SystemBuilder::new(SystemConfig::baseline_32core(), mode)
        .class(w0, c0)
        .class(w1, c1)
        .build()
        .expect("valid experiment configuration")
}
