//! The fault-injection contract, end to end: fault decisions are a pure
//! function of the plan (so a faulted sweep is byte-identical at any
//! `--jobs` count), plans round-trip through their JSONL schema, and a
//! panicking grid cell degrades to a failure record — never a dead sweep
//! or a truncated report.

use pabst_bench::harness::{run_sweep, Experiment, ExperimentResult, Params, RunCtx, SweepOutput};
use pabst_bench::registry;
use pabst_cpu::Workload;
use pabst_simkit::fault::{FaultKind, FaultPlan, FaultSpec, PPM_SCALE};
use pabst_soc::config::{RegulationMode, SystemConfig};
use pabst_soc::system::SystemBuilder;
use pabst_workloads::{Region, StreamGen};

fn sweep(name: &str, jobs: usize) -> SweepOutput {
    let exp = registry::find(name).expect("registered experiment");
    run_sweep(exp, true, jobs, true)
}

#[test]
fn faulted_sweep_is_byte_identical_across_jobs() {
    // The resilience grid injects every fault kind (SAT drop/corrupt,
    // epoch skew, credit leak, MC stall windows). Each injection decision
    // is a stateless draw keyed by (seed, kind, target, epoch), so the
    // worker schedule must not be able to change any outcome.
    let serial = sweep("resilience", 1);
    let parallel = sweep("resilience", 4);
    assert_eq!(serial.rendered, parallel.rendered, "rendered table depends on --jobs");
    assert_eq!(serial.trace, parallel.trace, "merged trace JSONL depends on --jobs");
    assert_eq!(serial.reports, parallel.reports, "merged report JSON depends on --jobs");
    assert!(serial.failures.is_empty(), "the resilience grid must survive its own faults");
    assert!(serial.rendered.contains("sat-drop/0ppm"), "healthy reference row present");
}

#[test]
fn fault_plans_round_trip_through_jsonl() {
    let mut plan = FaultPlan::new();
    for (i, kind) in FaultKind::ALL.iter().enumerate() {
        plan.push(FaultSpec {
            kind: *kind,
            target: i as u64,
            from_epoch: i as u64,
            until_epoch: 40 + i as u64,
            prob_ppm: (i as u64 + 1) * 1_000,
            magnitude: i as u64 * 7,
            seed: 0xFEED ^ i as u64,
        });
    }
    let text = plan.to_jsonl();
    let back = FaultPlan::parse(&text).expect("schema round-trips");
    assert_eq!(back.specs(), plan.specs());
    assert_eq!(back.to_jsonl(), text, "serialization is canonical");
}

// A deliberately flaky experiment: four cells, the third panics. Must be
// a plain fn table (no closures) because `Experiment` holds fn pointers.
fn flaky_grid(_quick: bool) -> Vec<Params> {
    (0..4).map(|i| Params::new("flaky_it", format!("cell{i}"), i, 1)).collect()
}

fn flaky_run(p: &Params, ctx: RunCtx) -> ExperimentResult {
    assert!(p.index != 2, "injected panic in cell {}", p.index);
    ctx.finish(p, vec![("v", p.index as f64)], Vec::new())
}

fn flaky_render(results: &[ExperimentResult]) -> String {
    let vs: Vec<String> = results.iter().map(|r| format!("{}", r.metric("v"))).collect();
    format!("flaky_it: {}\n", vs.join(" "))
}

const FLAKY: Experiment = Experiment {
    name: "flaky_it",
    title: "integration fixture: one cell panics",
    grid: flaky_grid,
    run: flaky_run,
    render: flaky_render,
};

#[test]
fn panicking_cell_yields_failure_record_and_complete_report() {
    for jobs in [1, 3] {
        let out = run_sweep(&FLAKY, true, jobs, false);
        assert_eq!(out.failures.len(), 1, "exactly the injected failure (jobs={jobs})");
        let f = &out.failures[0];
        assert_eq!(f.params.config, "cell2");
        assert!(f.panic.contains("injected panic in cell 2"), "{}", f.panic);
        assert!(f.repro("resilience").contains("--jobs 1"), "repro pins one worker");
        // The surviving cells still render, and the failure is visible.
        assert!(out.rendered.starts_with("flaky_it: 0 1 3\n"), "{}", out.rendered);
        assert!(out.rendered.contains("FAILED flaky_it/cell2 (seed 0):"), "{}", out.rendered);
        // The merged report carries a machine-readable failure line in the
        // failed cell's submission-order slot.
        let failed: Vec<&str> =
            out.reports.lines().filter(|l| l.contains("\"failed\":true")).collect();
        assert_eq!(failed.len(), 1, "{}", out.reports);
        assert!(
            failed[0].starts_with("{\"experiment\":\"flaky_it\",\"config\":\"cell2\",\"seed\":0,"),
            "{}",
            failed[0]
        );
    }
}

/// One measured run of the small machine under streaming load, with an
/// optional certain two-epoch MC-stall window inside the measurement.
fn util_probe(stall: bool) -> (f64, u64) {
    let cfg = SystemConfig::small_test();
    let streams = |salt: u64| -> Vec<Box<dyn Workload>> {
        (0..2).map(|i| Box::new(StreamGen::reads(Region::new(0, 1 << 16), salt + i)) as _).collect()
    };
    let mut b =
        SystemBuilder::new(cfg, RegulationMode::Pabst).class(3, streams(30)).class(1, streams(130));
    if stall {
        let mut plan = FaultPlan::new();
        plan.push(FaultSpec {
            kind: FaultKind::McStall,
            target: 0,
            from_epoch: 2,
            until_epoch: 3,
            prob_ppm: PPM_SCALE,
            magnitude: 0,
            seed: 0,
        });
        b = b.fault_plan(plan);
    }
    let mut sys = b.build().expect("probe config");
    sys.run_epochs(1);
    sys.mark_measurement();
    sys.run_epochs(4);
    (sys.bus_utilization_since_mark(), sys.stalled_mc_cycles_since_mark())
}

#[test]
fn bus_utilization_denominator_excludes_stalled_controller_cycles() {
    // Regression pin: a controller frozen by an mc-stall fault cannot
    // transfer, so counting its frozen cycles in the utilization window
    // halves the reported figure for a half-stalled window. The metric
    // must divide by live controller-cycles only.
    let (util_clean, stalled_clean) = util_probe(false);
    let (util_faulted, stalled_faulted) = util_probe(true);
    let epoch_cycles = SystemConfig::small_test().epoch_cycles;
    assert_eq!(stalled_clean, 0, "no fault plan, no stalled cycles");
    assert_eq!(stalled_faulted, 2 * epoch_cycles, "certain two-epoch window, one MC");
    assert!(util_clean > 0.2, "streamers must keep the bus visibly busy: {util_clean}");
    // Over live cycles the faulted run streams like the clean one. With
    // the stalled half of the window wrongly left in the denominator the
    // figure would collapse to ~util_clean/2 and this bound would trip.
    assert!(
        util_faulted > util_clean * 0.7,
        "stalled cycles leaked into the denominator: {util_faulted} vs clean {util_clean}"
    );
}

#[test]
fn all_zero_probability_plan_never_fires() {
    // The byte-identity acceptance criterion in miniature: a plan whose
    // specs all carry probability zero makes no draws and fires nowhere.
    let mut plan = FaultPlan::new();
    for kind in FaultKind::ALL {
        plan.push(FaultSpec {
            kind,
            target: 0,
            from_epoch: 0,
            until_epoch: u64::MAX,
            prob_ppm: 0,
            magnitude: 3,
            seed: 9,
        });
    }
    assert!(plan.is_inert());
    for kind in FaultKind::ALL {
        for epoch in 0..64 {
            assert!(!plan.fires(kind, 0, epoch));
            assert_eq!(plan.magnitude(kind, 0, epoch), None);
        }
    }
    // And a certain spec (prob == PPM_SCALE) fires on every in-window epoch.
    let certain = FaultSpec {
        kind: FaultKind::McStall,
        target: 1,
        from_epoch: 2,
        until_epoch: 5,
        prob_ppm: PPM_SCALE,
        magnitude: 0,
        seed: 0,
    };
    for epoch in 0..8 {
        assert_eq!(certain.fires(epoch), (2..=5).contains(&epoch));
    }
}
