//! Regulation-granularity variants: the per-MC SAT/governor option of
//! §III-C1 against the paper's default global wired-OR.

use pabst_cpu::Workload;
use pabst_soc::config::{RegulationMode, SystemConfig};
use pabst_soc::system::SystemBuilder;
use pabst_tests::{read_streamers, region_for};
use pabst_workloads::SkewedStreamGen;

fn skewed_total_bpc(per_mc: bool) -> f64 {
    let mut cfg = SystemConfig::baseline_32core();
    cfg.per_mc_regulation = per_mc;
    let skewed: Vec<Box<dyn Workload>> = (0..16)
        .map(|i| {
            Box::new(SkewedStreamGen::new(region_for(0, i, 1 << 20), 0, cfg.mcs, i as u64))
                as Box<dyn Workload>
        })
        .collect();
    let mut sys = SystemBuilder::new(cfg, RegulationMode::Pabst)
        .class(1, skewed)
        .class(1, read_streamers(1, 16))
        .build()
        .unwrap();
    sys.run_epochs(40);
    sys.metrics().total_bytes_per_cycle(20)
}

/// With all of class 0's traffic hammering controller 0, the global
/// wired-OR SAT throttles traffic to the other three controllers as well;
/// per-MC governors recover a large part of that lost bandwidth.
#[test]
fn per_mc_governors_recover_skewed_traffic_utilization() {
    let global = skewed_total_bpc(false);
    let per_mc = skewed_total_bpc(true);
    eprintln!("skewed-traffic total B/cyc: global {global:.2}, per-MC {per_mc:.2}");
    assert!(
        per_mc > 1.1 * global,
        "per-MC regulation must beat the global wired-OR under skew: \
         {per_mc:.2} vs {global:.2}"
    );
}

/// Per-MC regulation must not break proportional allocation for uniform
/// traffic (it should behave like the global design).
#[test]
fn per_mc_governors_preserve_proportions_for_uniform_traffic() {
    let mut cfg = SystemConfig::baseline_32core();
    cfg.per_mc_regulation = true;
    let mut sys = SystemBuilder::new(cfg, RegulationMode::Pabst)
        .class(7, read_streamers(0, 16))
        .class(3, read_streamers(1, 16))
        .build()
        .unwrap();
    sys.run_epochs(50);
    let s0 = sys.metrics().mean_share(0, 25);
    eprintln!("uniform traffic class0 share under per-MC governors: {s0:.3}");
    assert!((s0 - 0.7).abs() < 0.06, "share {s0:.3}, want ~0.70");
}
