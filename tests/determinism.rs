//! The parallel-sweep determinism contract, end to end: running a
//! two-figure sweep on one worker and on four oversubscribed workers
//! (this may be a single-core CI box — `--jobs` is honored exactly so
//! the schedules really differ) must produce byte-identical rendered
//! output, trace JSONL, and report JSON.
//!
//! This is the acceptance test for `bench::harness`: if a cell leaks
//! state across threads, or results merge in completion order instead of
//! submission order, these comparisons fail.

use pabst_bench::harness::{run_sweep, SweepOutput};
use pabst_bench::obs::CliArgs;
use pabst_bench::registry;

fn sweep(name: &str, jobs: usize) -> SweepOutput {
    let exp = registry::find(name).expect("registered experiment");
    run_sweep(exp, true, jobs, true)
}

#[test]
fn two_figure_sweep_is_byte_identical_across_jobs() {
    // fig01 has a 4-cell grid (real parallelism), fig08 a 1-cell grid
    // (serial fast path) — together they cover both executor paths.
    for name in ["fig01", "fig08"] {
        let serial = sweep(name, 1);
        let parallel = sweep(name, 4);
        assert_eq!(
            serial.rendered, parallel.rendered,
            "{name}: rendered output must not depend on --jobs"
        );
        assert_eq!(
            serial.trace, parallel.trace,
            "{name}: merged trace JSONL must not depend on --jobs"
        );
        assert_eq!(
            serial.reports, parallel.reports,
            "{name}: merged report JSON must not depend on --jobs"
        );
        assert!(!serial.rendered.is_empty(), "{name}: sweep rendered something");
        assert!(!serial.trace.is_empty(), "{name}: tracing was on, records were buffered");
        assert!(!serial.reports.is_empty(), "{name}: every run reported");
    }
}

#[test]
fn repeated_parallel_runs_agree_with_themselves() {
    let a = sweep("fig01", 3);
    let b = sweep("fig01", 3);
    assert_eq!(a.rendered, b.rendered);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.reports, b.reports);
}

#[test]
fn reports_are_tagged_with_experiment_config_and_seed() {
    let out = sweep("fig01", 2);
    for line in out.reports.lines() {
        assert!(line.starts_with("{\"experiment\":\"fig01\",\"config\":\""), "{line}");
        assert!(line.contains("\"seed\":0,"), "{line}");
    }
    // Cells appear in grid (submission) order regardless of scheduling.
    let exp = registry::find("fig01").unwrap();
    let grid = (exp.grid)(true);
    let mut lines = out.reports.lines();
    for cell in &grid {
        let line = lines.next().expect("one report per cell");
        let key = format!("\"config\":\"{}\"", cell.config);
        assert!(line.contains(&key), "expected {key} in {line}");
    }
}

#[test]
fn trace_records_parse_and_are_grouped_by_cell() {
    let out = sweep("fig08", 2);
    let mut epochs_seen = 0usize;
    for line in out.trace.lines() {
        let rec = pabst_simkit::trace::parse_line(line).expect("valid epoch record");
        assert_eq!(rec.epoch as usize, epochs_seen, "records stay in emission order");
        epochs_seen += 1;
    }
    assert!(epochs_seen > 0, "fig08 traced at least one epoch");
}

#[test]
fn cli_filter_selects_and_jobs_parse() {
    let argv: Vec<String> =
        ["--quick", "--jobs", "4", "--filter", "fig01"].iter().map(|s| s.to_string()).collect();
    let args = CliArgs::parse_from(&argv).expect("valid args");
    assert!(args.quick);
    assert_eq!(args.jobs, Some(4));
    assert_eq!(args.filter.as_deref(), Some("fig01"));
}
