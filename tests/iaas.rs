//! Fig. 11: work-conserving fairness in an IaaS consolidation — four
//! equal-share tenants beat a static quarter-bandwidth allocation.

use pabst_cpu::Workload;
use pabst_soc::config::{RegulationMode, SystemConfig};
use pabst_soc::system::SystemBuilder;
use pabst_tests::region_for;
use pabst_workloads::{SpecProxyGen, SpecWorkload};

fn spec(class: usize, n: usize, w: SpecWorkload) -> Vec<Box<dyn Workload>> {
    (0..n)
        .map(|i| {
            Box::new(SpecProxyGen::new(w, region_for(class, i, 1 << 20), i as u64))
                as Box<dyn Workload>
        })
        .collect()
}

#[test]
fn consolidation_beats_static_quarter_allocation() {
    let w = SpecWorkload::Milc;

    // PABST: four 8-core classes at equal 25% shares.
    let mut b = SystemBuilder::new(SystemConfig::baseline_32core(), RegulationMode::Pabst);
    for c in 0..4 {
        b = b.class(1, spec(c, 8, w)).l3_ways(c * 4, 4);
    }
    let mut sys = b.build().unwrap();
    sys.run_epochs(8);
    sys.mark_measurement();
    sys.run_epochs(15);
    let pabst_ipc = (0..32).map(|i| sys.ipc_since_mark(i)).sum::<f64>() / 32.0;

    // Static baseline: 8 cores alone with DDR frequency divided by 4.
    let mut cfg = SystemConfig::baseline_32core();
    cfg.cores = 8;
    cfg.dram = cfg.dram.down_clocked(4);
    let mut base = SystemBuilder::new(cfg, RegulationMode::None)
        .class(1, spec(0, 8, w))
        .l3_ways(0, 4)
        .build()
        .unwrap();
    base.run_epochs(8);
    base.mark_measurement();
    base.run_epochs(15);
    let static_ipc = (0..8).map(|i| base.ipc_since_mark(i)).sum::<f64>() / 8.0;

    let gain = (pabst_ipc / static_ipc - 1.0) * 100.0;
    eprintln!("milc: static {static_ipc:.3}, pabst {pabst_ipc:.3} IPC ({gain:+.0}%)");
    // Paper: 15-90% improvement from work conservation.
    assert!(gain > 10.0, "consolidation must beat the static allocation, got {gain:+.0}%");
}
