//! Principles 2 and 3 (Figs. 6, 8): work conservation and proportional
//! redistribution of excess bandwidth.

use pabst_cpu::Workload;
use pabst_soc::config::{RegulationMode, SystemConfig};
use pabst_soc::system::SystemBuilder;
use pabst_tests::{read_streamers, region_for};
use pabst_workloads::{PeriodicStreamGen, StreamGen};

/// Fig. 6: a constant streamer with only a 30% share consumes nearly the
/// whole system when the 70%-share periodic streamer is in its
/// cache-resident phase, and is re-throttled when it resumes.
#[test]
fn excess_bandwidth_not_wasted_when_partner_idles() {
    // Class 0 (weight 7): periodic streamers; class 1 (weight 3): constant.
    // Long phases (many epochs) so both phases are observable.
    let periodic: Vec<Box<dyn Workload>> = (0..16)
        .map(|i| {
            Box::new(PeriodicStreamGen::new(
                region_for(0, i, 1 << 20),
                256,     // cache-resident prefix (fits L2)
                8_000,   // memory-phase accesses (~20 epochs at paced rates)
                900_000, // cache-resident accesses (~35 epochs at hit rates:
                // long enough for the governor to fully reallocate)
                i as u64,
            )) as Box<dyn Workload>
        })
        .collect();
    let mut sys = SystemBuilder::new(SystemConfig::baseline_32core(), RegulationMode::Pabst)
        .class(7, periodic)
        .class(3, read_streamers(1, 16))
        .build()
        .unwrap();

    sys.run_epochs(170);

    // Classify epochs by the periodic class's traffic: idle phases are
    // where it uses < 10% of the total.
    let m = sys.metrics();
    let mut boosted = Vec::new(); // class 1 B/cyc when class 0 idle
    let mut throttled = Vec::new(); // class 1 B/cyc when class 0 active
    for e in 20..m.bw_series.epochs() {
        let v = m.bw_series.epoch(e);
        let total = v[0] + v[1];
        if total < 1.0 {
            continue;
        }
        if v[0] / total < 0.10 {
            boosted.push(v[1] / m.bw_series.epoch_cycles() as f64);
        } else if v[0] / total > 0.5 {
            throttled.push(v[1] / m.bw_series.epoch_cycles() as f64);
        }
    }
    assert!(
        boosted.len() > 5 && throttled.len() > 5,
        "need both phases: boosted={} throttled={}",
        boosted.len(),
        throttled.len()
    );
    let boosted_mean: f64 = boosted.iter().sum::<f64>() / boosted.len() as f64;
    let throttled_mean: f64 = throttled.iter().sum::<f64>() / throttled.len() as f64;
    eprintln!("class1 B/cyc: boosted {boosted_mean:.2}, throttled {throttled_mean:.2}");
    // Work conservation: the 30% class must at least double its bandwidth
    // when the partner idles, approaching the system's full capacity.
    assert!(
        boosted_mean > 2.0 * throttled_mean,
        "constant streamer must absorb idle bandwidth: {boosted_mean:.2} vs {throttled_mean:.2}"
    );
    assert!(
        boosted_mean > 15.0,
        "constant streamer should approach full system bandwidth, got {boosted_mean:.2}"
    );
}

/// Fig. 8: an L3-resident class's unused 25% share is redistributed 2:1
/// between a 50%-share and a 25%-share DDR streamer (≈66% / 33%).
#[test]
fn excess_redistributed_proportionally() {
    // Class 0: L3-resident streamer (8 cores), 25% share. Its region fits
    // its L3 partition so it stops generating traffic after warmup.
    let resident: Vec<Box<dyn Workload>> = (0..8)
        .map(|i| {
            // 4 ways of 16 over 16 MiB = 4 MiB for the class; per-core
            // slice comfortably within it.
            Box::new(StreamGen::reads(region_for(0, i, 4096), i as u64)) as Box<dyn Workload>
        })
        .collect();
    let ddr_hi: Vec<Box<dyn Workload>> = (0..12)
        .map(|i| {
            Box::new(StreamGen::reads(region_for(1, i, 1 << 20), 100 + i as u64))
                as Box<dyn Workload>
        })
        .collect();
    let ddr_lo: Vec<Box<dyn Workload>> = (0..12)
        .map(|i| {
            Box::new(StreamGen::reads(region_for(2, i, 1 << 20), 200 + i as u64))
                as Box<dyn Workload>
        })
        .collect();

    let mut sys = SystemBuilder::new(SystemConfig::baseline_32core(), RegulationMode::Pabst)
        .class(1, resident) // 25%
        .l3_ways(0, 4)
        .class(2, ddr_hi) // 50%
        .l3_ways(4, 6)
        .class(1, ddr_lo) // 25%
        .l3_ways(10, 6)
        .build()
        .unwrap();

    sys.run_epochs(60);
    let m = sys.metrics();
    let s0 = m.mean_share(0, 30);
    let s1 = m.mean_share(1, 30);
    let s2 = m.mean_share(2, 30);
    eprintln!("shares: resident {s0:.3}, hi {s1:.3}, lo {s2:.3}");
    // The resident class consumes almost nothing...
    assert!(s0 < 0.10, "L3-resident class should fade after warmup, got {s0:.3}");
    // ...and its excess splits ~2:1: hi ≈ 66%, lo ≈ 33% (paper's numbers).
    assert!((s1 - 0.66).abs() < 0.07, "hi class share {s1:.3}, want ~0.66");
    assert!((s2 - 0.33).abs() < 0.07, "lo class share {s2:.3}, want ~0.33");
}
