//! §III-B3 "Accounting for Cache Filtering": requests that hit in the
//! shared L3 are refunded by the pacer, so a class working out of the L3
//! is not throttled by bandwidth regulation it isn't using.

use pabst_cpu::Workload;
use pabst_soc::config::{RegulationMode, SystemConfig};
use pabst_soc::system::SystemBuilder;
use pabst_tests::{read_streamers, region_for};
use pabst_workloads::StreamGen;

/// Builds: class 0 = one core streaming a 512 KiB region (fits its 4 MiB L3
/// partition, exceeds its 256 KiB private L2 → all L2 misses, all L3 hits after
/// warmup); class 1 = 16 DDR streamers keeping the governor throttling.
fn l3_resident_ipc(mode: RegulationMode) -> f64 {
    let resident: Vec<Box<dyn Workload>> =
        vec![Box::new(StreamGen::reads(region_for(0, 0, 8 * 1024), 1))];
    let mut sys = SystemBuilder::new(SystemConfig::baseline_32core(), mode)
        .class(1, resident)
        .l3_ways(0, 4)
        .class(1, read_streamers(1, 16))
        .l3_ways(4, 12)
        .build()
        .unwrap();
    sys.run_epochs(14); // warm the L3 (first full pass over the region)
    sys.mark_measurement();
    sys.run_epochs(12);
    sys.ipc_since_mark(0)
}

#[test]
fn l3_hits_are_not_throttled() {
    let unregulated = l3_resident_ipc(RegulationMode::None);
    let pabst = l3_resident_ipc(RegulationMode::Pabst);
    eprintln!("L3-resident IPC: none {unregulated:.3}, pabst {pabst:.3}");
    // Despite aggressive pacing of real memory traffic, the L3-resident
    // class's shared-cache hits must flow at (nearly) full speed because
    // every charge is refunded on the L3-hit response.
    assert!(pabst > 0.7 * unregulated, "pacer must refund L3 hits: {pabst:.3} vs {unregulated:.3}");
}

#[test]
fn l3_resident_class_consumes_no_memory_bandwidth() {
    let resident: Vec<Box<dyn Workload>> =
        vec![Box::new(StreamGen::reads(region_for(0, 0, 8 * 1024), 1))];
    let mut sys = SystemBuilder::new(SystemConfig::baseline_32core(), RegulationMode::Pabst)
        .class(1, resident)
        .l3_ways(0, 4)
        .class(1, read_streamers(1, 16))
        .l3_ways(4, 12)
        .build()
        .unwrap();
    sys.run_epochs(14);
    sys.mark_measurement();
    sys.run_epochs(12);
    let resident_bytes = sys.bytes_since_mark(0);
    let streamer_bytes = sys.bytes_since_mark(1);
    eprintln!("bytes: resident {resident_bytes}, streamers {streamer_bytes}");
    assert!(
        (resident_bytes as f64) < 0.02 * streamer_bytes as f64,
        "an L3-resident class must not consume DRAM bandwidth after warmup"
    );
}
