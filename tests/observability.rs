//! End-to-end checks of the epoch trace pipeline: a full system run
//! streamed through [`JsonlSink`] must produce one well-formed record per
//! epoch, parse back losslessly, agree with the in-memory [`RingSink`],
//! and be byte-identical across runs.

use std::cell::RefCell;
use std::io;
use std::rc::Rc;

use pabst_simkit::trace::{parse_line, EpochRecord, JsonlSink, RingSink};
use pabst_soc::config::{RegulationMode, SystemConfig};
use pabst_soc::system::{System, SystemBuilder};
use pabst_tests::read_streamers;

/// An `io::Write` whose buffer outlives the sink, so the test can read
/// what the system wrote without going through the filesystem.
#[derive(Debug, Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn traced_system(buf: SharedBuf) -> System {
    let mut sys = SystemBuilder::new(SystemConfig::small_test(), RegulationMode::Pabst)
        .class(3, read_streamers(0, 2))
        .class(1, read_streamers(1, 2))
        .build()
        .expect("valid trace test configuration");
    sys.add_trace_sink(Box::new(JsonlSink::new(buf)));
    sys.add_trace_sink(Box::new(RingSink::new(16)));
    sys
}

fn run_traced(epochs: usize) -> String {
    let buf = SharedBuf::default();
    let mut sys = traced_system(buf.clone());
    sys.run_epochs(epochs);
    let bytes = buf.0.borrow().clone();
    String::from_utf8(bytes).expect("trace output is UTF-8")
}

#[test]
fn jsonl_trace_round_trips_through_a_real_run() {
    let epochs = 5;
    let text = run_traced(epochs);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), epochs, "one record per epoch");

    let cfg = SystemConfig::small_test();
    let mut records: Vec<EpochRecord> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let rec = parse_line(line).unwrap_or_else(|e| panic!("line {i}: {e}\n{line}"));
        // Lossless: re-serializing the parsed record reproduces the line.
        assert_eq!(rec.to_json(), *line, "line {i} round-trips byte-exactly");
        records.push(rec);
    }

    for (i, rec) in records.iter().enumerate() {
        assert_eq!(rec.epoch, i as u64, "epochs are consecutive from zero");
        assert_eq!(rec.cycle, (i as u64 + 1) * cfg.epoch_cycles, "boundary cycle");
        assert_eq!(rec.class_bytes.len(), 2, "one byte count per class");
        assert_eq!(rec.tile_throttles.len(), cfg.cores, "one throttle count per tile");
        assert_eq!(rec.mc_read_depth.len(), cfg.mcs);
        assert_eq!(rec.mc_write_depth.len(), cfg.mcs);
        assert_eq!(rec.mc_pending.len(), cfg.mcs);
        assert!(rec.m > 0, "governor multiplier is live");
    }
    // The streamers are backlogged: traffic must actually flow.
    assert!(records.iter().any(|r| r.class_bytes.iter().sum::<u64>() > 0));
}

#[test]
fn jsonl_trace_is_deterministic_across_runs() {
    let a = run_traced(4);
    let b = run_traced(4);
    assert_eq!(a, b, "identical runs serialize byte-identically");
    assert!(!a.is_empty());
}
