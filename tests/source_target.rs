//! Fig. 1 / §IV-C (Fig. 7): neither source-only nor target-only regulation
//! suffices; PABST combines the strengths of both.
//!
//! Two mixes, both with a 3:1 allocation:
//! * stream + stream — floods the target queues, so target-only fails
//!   while source-only is accurate;
//! * chaser + stream — the latency-bound high-share class starves under
//!   any single-point regulator; only the combination recovers it.
//!
//! Known deviation: in the paper target-only does markedly better than
//! source-only on the chaser mix (~20% vs ~128% error); our chaser's
//! achievable bandwidth is closer to its latency ceiling, so both
//! single-point regulators land in the same (large) error range and only
//! the ordering "PABST ≪ either alone" is asserted.

use pabst_simkit::stats::allocation_error_pct;
use pabst_soc::config::RegulationMode;
use pabst_soc::system::System;
use pabst_tests::{chasers, read_streamers, two_class_32core};

fn alloc_error(mut sys: System) -> f64 {
    sys.run_epochs(60);
    let m = sys.metrics();
    let o0 = m.bw_series.mean_over(0, 30);
    let o1 = m.bw_series.mean_over(1, 30);
    allocation_error_pct(&[3.0, 1.0], &[o0, o1])
}

fn stream_stream(mode: RegulationMode) -> f64 {
    alloc_error(two_class_32core(mode, 3, 1, read_streamers(0, 16), read_streamers(1, 16)))
}

fn chaser_stream(mode: RegulationMode) -> f64 {
    alloc_error(two_class_32core(mode, 3, 1, chasers(0, 16), read_streamers(1, 16)))
}

#[test]
fn target_only_fails_under_flood_but_source_works() {
    let source = stream_stream(RegulationMode::SourceOnly);
    let target = stream_stream(RegulationMode::TargetOnly);
    eprintln!("stream+stream alloc error: source-only {source:.0}%, target-only {target:.0}%");
    // Fig. 1(a): source regulation partitions two streamers accurately.
    assert!(source < 15.0, "source-only should work on streams, err {source:.0}%");
    // Fig. 1(b): target-only degrades toward 1:1 because the flood queues
    // upstream of the arbiter (paper reports 76% error; the fair network
    // pins each class to half the admissions).
    assert!(target > 60.0, "target-only must fail under flood, err {target:.0}%");
}

#[test]
fn single_point_regulators_fail_for_latency_bound_class() {
    let source = chaser_stream(RegulationMode::SourceOnly);
    let target = chaser_stream(RegulationMode::TargetOnly);
    eprintln!("chaser+stream alloc error: source-only {source:.0}%, target-only {target:.0}%");
    // Fig. 1(c): source-only cannot give the chaser its 75% because it
    // cannot lower the chaser's latency (paper reports 128% error).
    assert!(source > 80.0, "source-only must fail with a chaser, err {source:.0}%");
    // Fig. 1(d): target-only alone also leaves a large error here (see the
    // module docs for how this differs from the paper's magnitudes).
    assert!(target > 80.0, "target-only alone leaves large error, got {target:.0}%");
}

#[test]
fn pabst_tracks_the_best_of_both() {
    // §IV-C: PABST matches or beats the better single-point regulator in
    // each mix, with a residual chaser error the paper also observes (the
    // arbiter cannot fully restore isolation latency without sacrificing
    // memory efficiency).
    let ss = stream_stream(RegulationMode::Pabst);
    let cs = chaser_stream(RegulationMode::Pabst);
    let cs_source = chaser_stream(RegulationMode::SourceOnly);
    let cs_target = chaser_stream(RegulationMode::TargetOnly);
    eprintln!(
        "PABST alloc error: stream+stream {ss:.0}%, chaser+stream {cs:.0}% \
         (source {cs_source:.0}%, target {cs_target:.0}%)"
    );
    assert!(ss < 15.0, "PABST on streams should be accurate, err {ss:.0}%");
    assert!(
        cs < 0.7 * cs_source.min(cs_target),
        "PABST must clearly beat both single-point regulators: \
         {cs:.0}% vs source {cs_source:.0}% / target {cs_target:.0}%"
    );
}
