//! Principle 1 (Fig. 5): proportional allocation.
//!
//! Two classes of 16 read streamers with a 7:3 weight split must converge
//! to a 70%/30% bandwidth division and hold it steadily.

use pabst_soc::config::RegulationMode;
use pabst_tests::{read_streamers, two_class_32core};

#[test]
fn stream_pair_converges_to_7_3_split() {
    let mut sys =
        two_class_32core(RegulationMode::Pabst, 7, 3, read_streamers(0, 16), read_streamers(1, 16));
    // Warmup: let the governor find the saturation point.
    sys.run_epochs(30);
    sys.mark_measurement();
    sys.run_epochs(40);

    let s0 = sys.metrics().mean_share(0, 30);
    let s1 = sys.metrics().mean_share(1, 30);
    eprintln!(
        "shares: {s0:.3} / {s1:.3}; M tail: {:?}",
        &sys.metrics().m_series[60..70.min(sys.metrics().m_series.len())]
    );
    eprintln!(
        "sat tail: {:?}",
        &sys.metrics().sat_series[60..70.min(sys.metrics().sat_series.len())]
    );
    eprintln!("total B/cyc: {:.2}", sys.metrics().total_bytes_per_cycle(30));
    assert!((s0 - 0.7).abs() < 0.05, "class0 share {s0}, want ~0.70");
    assert!((s1 - 0.3).abs() < 0.05, "class1 share {s1}, want ~0.30");
}

#[test]
fn utilization_stays_high_under_pabst() {
    // Work conservation's flip side: throttling to the saturation point
    // must not leave the memory system idle. Total delivered bandwidth
    // should stay close to what an unregulated run achieves.
    let mut unreg =
        two_class_32core(RegulationMode::None, 1, 1, read_streamers(0, 16), read_streamers(1, 16));
    unreg.run_epochs(20);
    let baseline = unreg.metrics().total_bytes_per_cycle(10);

    let mut pabst =
        two_class_32core(RegulationMode::Pabst, 7, 3, read_streamers(0, 16), read_streamers(1, 16));
    pabst.run_epochs(40);
    let regulated = pabst.metrics().total_bytes_per_cycle(25);

    eprintln!("baseline {baseline:.2} B/cyc, pabst {regulated:.2} B/cyc");
    // The gap to the unregulated baseline is the paper's Fig. 12 memory-
    // efficiency cost of QoS (priority scheduling constrains the most
    // efficient DRAM schedule); it must stay modest for streams.
    assert!(
        regulated > 0.75 * baseline,
        "PABST must stay near peak utilization: {regulated:.2} vs {baseline:.2}"
    );
}
