//! Figs. 9–10: performance isolation of latency-critical and batch
//! workloads co-located with a bandwidth aggressor.

use pabst_cpu::Workload;
use pabst_soc::config::{RegulationMode, SystemConfig};
use pabst_soc::system::SystemBuilder;
use pabst_tests::{read_streamers, region_for};
use pabst_workloads::{MemcachedGen, SpecProxyGen, SpecWorkload, StreamGen};

/// Fig. 10 (one representative point): a latency-sensitive SPEC proxy
/// (mcf) on 16 cores with a 32:1 share against 16 streaming cores. The
/// unregulated aggressor crushes it (the paper reports up to 2.3x);
/// PABST must recover most of the slowdown.
#[test]
fn pabst_recovers_spec_slowdown() {
    let spec = |class: usize| -> Vec<Box<dyn Workload>> {
        (0..16)
            .map(|i| {
                Box::new(SpecProxyGen::new(
                    SpecWorkload::Mcf,
                    region_for(class, i, 1 << 20),
                    i as u64,
                )) as Box<dyn Workload>
            })
            .collect()
    };

    // Isolated baseline: SPEC alone with the same 8-way cache slice.
    let mut isolated = SystemBuilder::new(SystemConfig::baseline_32core(), RegulationMode::None)
        .class(32, spec(0))
        .l3_ways(0, 8)
        .build()
        .unwrap();
    isolated.run_epochs(10);
    isolated.mark_measurement();
    isolated.run_epochs(25);
    let ipc_iso: f64 = (0..16).map(|i| isolated.ipc_since_mark(i)).sum::<f64>() / 16.0;

    let co_located = |mode: RegulationMode| -> f64 {
        let mut sys = SystemBuilder::new(SystemConfig::baseline_32core(), mode)
            .class(32, spec(0))
            .l3_ways(0, 8)
            .class(1, read_streamers(1, 16))
            .l3_ways(8, 8)
            .build()
            .unwrap();
        sys.run_epochs(10);
        sys.mark_measurement();
        sys.run_epochs(25);
        (0..16).map(|i| sys.ipc_since_mark(i)).sum::<f64>() / 16.0
    };

    let ipc_none = co_located(RegulationMode::None);
    let ipc_pabst = co_located(RegulationMode::Pabst);
    let slowdown_none = ipc_iso / ipc_none;
    let slowdown_pabst = ipc_iso / ipc_pabst;
    eprintln!("mcf slowdown: baseline {slowdown_none:.2}x, PABST {slowdown_pabst:.2}x");
    // Paper Fig. 10: ~2.0x average baseline slowdown, ~1.2x with PABST.
    assert!(
        slowdown_none > 1.7,
        "aggressor must crush an unprotected latency-sensitive workload, got {slowdown_none:.2}x"
    );
    assert!(
        slowdown_pabst < 1.4,
        "PABST must hold the slowdown near the paper's ~1.2x, got {slowdown_pabst:.2}x"
    );
    assert!(
        slowdown_pabst < 0.75 * slowdown_none,
        "PABST must recover most of the slowdown: {slowdown_pabst:.2}x vs {slowdown_none:.2}x"
    );
}

/// Fig. 9: memcached service-time tail under a streaming aggressor, 20:1
/// shares, on the scaled 8-core machine.
#[test]
fn pabst_restores_memcached_tail() {
    let run = |mode: RegulationMode, with_aggressor: bool| -> (f64, u64) {
        let server: Vec<Box<dyn Workload>> = vec![Box::new(MemcachedGen::new(
            region_for(0, 0, 1 << 18), // 16 MiB item heap
            7,
        ))];
        let mut b =
            SystemBuilder::new(SystemConfig::scaled_8core(), mode).class(20, server).l3_ways(0, 8);
        if with_aggressor {
            let streamers: Vec<Box<dyn Workload>> = (0..7)
                .map(|i| {
                    Box::new(StreamGen::reads(region_for(1, i, 1 << 20), 50 + i as u64))
                        as Box<dyn Workload>
                })
                .collect();
            b = b.class(1, streamers).l3_ways(8, 8);
        }
        let mut sys = b.build().unwrap();
        sys.run_epochs(10);
        sys.mark_measurement();
        sys.run_epochs(40);
        let h = &mut sys.metrics_mut().service[0];
        assert!(h.count() > 50, "need transactions, got {}", h.count());
        (h.mean().unwrap(), h.percentile(99.0).unwrap())
    };

    let (iso_mean, iso_p99) = run(RegulationMode::None, false);
    let (none_mean, none_p99) = run(RegulationMode::None, true);
    let (pabst_mean, pabst_p99) = run(RegulationMode::Pabst, true);
    eprintln!(
        "memcached mean/p99 cycles: isolated {iso_mean:.0}/{iso_p99}, \
         contended {none_mean:.0}/{none_p99}, pabst {pabst_mean:.0}/{pabst_p99}"
    );
    assert!(
        none_mean > 1.3 * iso_mean,
        "aggressor must degrade service times: {none_mean:.0} vs {iso_mean:.0}"
    );
    // PABST must claw back most of the degradation, mean and tail.
    assert!(
        pabst_mean < iso_mean + 0.4 * (none_mean - iso_mean),
        "mean not restored: {pabst_mean:.0} (iso {iso_mean:.0}, contended {none_mean:.0})"
    );
    assert!(
        (pabst_p99 as f64) < (iso_p99 as f64) + 0.65 * (none_p99 - iso_p99) as f64,
        "tail not restored: {pabst_p99} (iso {iso_p99}, contended {none_p99})"
    );
}
