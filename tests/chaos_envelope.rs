//! The chaos contract, end to end: every mechanism in the zoo survives
//! the full resilience fault curve without violating a single runtime
//! invariant, the governor's fail-safe decays to its degraded-M floor
//! and no further, and the seeded chaos campaign is deterministic,
//! catches its committed failure fixture, and shrinks it to a minimal
//! repro.

use pabst_bench::chaos::{self, Outcome, FIXTURE_INDEX};
use pabst_bench::harness::run_sweep;
use pabst_bench::registry::{self, resilience_curve, MECHANISM_COMBOS};
use pabst_bench::scenarios::read_streamers;
use pabst_simkit::fault::FaultPlan;
use pabst_soc::config::{RegulationMode, SystemConfig};
use pabst_soc::system::{System, SystemBuilder};

// Long enough for the degraded decay (M += M/4 + 1 per stale epoch past
// the staleness window) to climb from m_init to the degraded-M floor.
const EPOCHS: usize = 24;

/// One envelope probe: a 3:1 read-stream contest on the scaled 8-core
/// machine under `plan`, with release-mode invariant checking fully
/// armed and the panicking watchdog off (an invariant report is the
/// assertion surface here, not a panic).
fn probe(
    governor: pabst_core::governor::GovernorKind,
    arbiter: pabst_dram::ArbiterMode,
    plan: FaultPlan,
) -> System {
    let mut cfg = SystemConfig::scaled_8core();
    cfg.governor = governor;
    cfg.arbiter = arbiter;
    cfg.watchdog_epochs = 0;
    cfg.invariants.enabled = true;
    cfg.invariants.bound_checks = true;
    cfg.invariants.liveness_epochs = chaos::LIVENESS_EPOCHS;
    let mut sys = SystemBuilder::new(cfg, RegulationMode::Pabst)
        .class(3, read_streamers(0, 2, 0))
        .class(1, read_streamers(1, 2, 0))
        .fault_plan(plan)
        .build()
        .expect("valid envelope probe configuration");
    sys.run_epochs(EPOCHS);
    sys
}

#[test]
fn every_zoo_mechanism_survives_the_resilience_curve_without_violations() {
    let monitor = SystemConfig::scaled_8core().monitor;
    for (governor, arbiter) in MECHANISM_COMBOS {
        for (label, plan) in resilience_curve(0) {
            let sys = probe(governor, arbiter, plan);
            let ctx = format!("{}-{} under {label}", governor.label(), arbiter.label());
            // The checker was live and found nothing.
            let inv = sys.invariant_report();
            assert!(inv.checks_run() > 0, "{ctx}: checker never ran");
            assert!(
                inv.is_clean(),
                "{ctx}: {} invariant violations, first: {:?}",
                inv.total_violations(),
                inv.violations().first()
            );
            // Forward progress: every fault on the curve degrades at
            // worst — none may starve the machine outright.
            let m = sys.metrics();
            let total: f64 = (0..m.bw_series.epochs()).map(|e| m.bw_series.epoch_total(e)).sum();
            assert!(total > 0.0, "{ctx}: no bytes delivered over {EPOCHS} epochs");
            // The multiplier never escapes its configured range: the
            // fail-safe decays toward degraded_m, not past the clamps.
            for &mv in &m.m_series {
                assert!(
                    (monitor.m_min..=monitor.m_max).contains(&mv),
                    "{ctx}: M={mv} escaped [{}, {}]",
                    monitor.m_min,
                    monitor.m_max
                );
            }
            // Total SAT starvation drives the fail-safe all the way to
            // its floor and parks it there — the degraded-M contract.
            if label == "sat-drop/1000000ppm" {
                assert!(sys.degraded_epochs() > 0, "{ctx}: fail-safe never engaged");
                let last = *m.m_series.last().expect("epochs ran");
                assert_eq!(
                    last, monitor.degraded_m,
                    "{ctx}: starved governor must park at the degraded-M floor"
                );
            }
        }
    }
}

#[test]
fn chaos_campaign_is_deterministic_catches_and_shrinks_the_fixture() {
    let exp = registry::find("chaos").expect("chaos is registered");
    let grid = (exp.grid)(true);
    assert!(grid.len() >= 64, "quick campaign must span at least 64 cells: {}", grid.len());
    assert!(
        grid.iter().all(|p| p.provenance.is_some()),
        "every chaos cell carries (mechanism_hash, fault_digest) provenance"
    );

    let serial = run_sweep(exp, true, 1, false);
    let parallel = run_sweep(exp, true, 3, false);
    assert_eq!(serial.rendered, parallel.rendered, "campaign report depends on --jobs");
    assert_eq!(serial.reports, parallel.reports, "merged cell reports depend on --jobs");
    assert!(serial.failures.is_empty(), "chaos classifies panics; cells must never fail the sweep");

    // The committed fixture is caught, classified, and is the only
    // tolerated failure in the campaign.
    assert!(
        serial.rendered.contains("fixture outcome: invariant-violation"),
        "{}",
        serial.rendered
    );
    assert!(serial.rendered.contains("unexpected invariant violations: 0"), "{}", serial.rendered);
    assert!(serial.rendered.contains("unexpected panics: 0"), "{}", serial.rendered);
    assert!(serial.rendered.contains("unexpected timeouts: 0"), "{}", serial.rendered);

    // ...and shrunk: three specs in, at most two out (the stall alone
    // reproduces), with a one-command repro.
    assert!(
        serial.rendered.contains("c000 [invariant-violation] 3 spec(s) -> 1 spec(s)"),
        "{}",
        serial.rendered
    );
    assert!(serial.rendered.contains("\"kind\":\"mc-stall\""), "{}", serial.rendered);
    assert!(
        serial.rendered.contains("repro: cargo run --release -p pabst-bench --bin chaos"),
        "{}",
        serial.rendered
    );
}

#[test]
fn fixture_outcome_reproduces_from_campaign_coordinates_alone() {
    // The reproducibility contract in one cell: re-deriving the fixture
    // from (CAMPAIGN_SEED, index) and re-running it yields the same
    // classification — no sweep state involved.
    let cell = chaos::cell_descriptor(FIXTURE_INDEX);
    let (a, _) = chaos::run_cell(&cell, 8, 0);
    let (b, _) = chaos::run_cell(&chaos::cell_descriptor(FIXTURE_INDEX), 8, 0);
    assert_eq!(a.outcome, Outcome::InvariantViolation);
    assert_eq!(b.outcome, a.outcome);
    assert_eq!(b.violations, a.violations);
    assert_eq!(b.faults, a.faults);
}
