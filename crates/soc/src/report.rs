//! Formatted end-of-run reports: the per-class numbers an operator would
//! want from a QoS experiment (bandwidth, shares, IPC, cache behaviour).

use crate::system::System;

/// Per-class summary over the measurement window.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    /// Class index.
    pub class: usize,
    /// Programmed weight.
    pub weight: u32,
    /// Target share per Eq. 1.
    pub target_share: f64,
    /// Observed share of delivered bandwidth.
    pub observed_share: f64,
    /// Delivered bandwidth, bytes per cycle.
    pub bytes_per_cycle: f64,
    /// Mean per-core IPC of the class's tiles.
    pub mean_ipc: f64,
    /// Number of cores in the class.
    pub cores: usize,
}

/// Whole-system summary over the measurement window.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemReport {
    /// One entry per class.
    pub classes: Vec<ClassReport>,
    /// Aggregate data-bus utilization.
    pub bus_utilization: f64,
    /// Measurement window length in cycles.
    pub window_cycles: u64,
    /// Experiment name the run belonged to, when driven by a sweep.
    pub experiment: Option<String>,
    /// Grid-cell (configuration) name within the experiment.
    pub config: Option<String>,
    /// Base RNG seed the run's workload generators derived from.
    pub seed: Option<u64>,
    /// Label of the governor mechanism the run executed under.
    pub governor: String,
    /// Label of the target-arbiter mechanism in force (the effective one:
    /// regulation modes without an active target report "fcfs").
    pub arbiter: String,
    /// Provenance hash over the configured mechanism selection and
    /// regulation knobs ([`crate::config::SystemConfig::mechanism_hash`]).
    pub mechanism_hash: u64,
}

impl SystemReport {
    /// Builds the report from a system that has run past
    /// [`System::mark_measurement`].
    // simlint: allow(taint-float): end-of-epoch reporting; the shares/IPC fractions here feed figures only, never the integer regulation datapath
    pub fn collect(sys: &System) -> Self {
        let window = sys.now() - sys.metrics().measure_from;
        let n_classes = sys.shares().classes();
        let total_bytes: u64 = (0..n_classes).map(|c| sys.bytes_since_mark(c)).sum();
        let total_weight: u64 = (0..n_classes)
            .map(|c| u64::from(sys.shares().weight(pabst_core::qos::QosId::new(c as u8)).get()))
            .sum();
        let mut classes = Vec::with_capacity(n_classes);
        for c in 0..n_classes {
            let id = pabst_core::qos::QosId::new(c as u8);
            let tiles: Vec<usize> =
                (0..sys.tiles().len()).filter(|&i| sys.tile_class(i) == id).collect();
            let bytes = sys.bytes_since_mark(c);
            let mean_ipc = if tiles.is_empty() || window == 0 {
                0.0
            } else {
                tiles.iter().map(|&i| sys.ipc_since_mark(i)).sum::<f64>() / tiles.len() as f64
            };
            classes.push(ClassReport {
                class: c,
                weight: sys.shares().weight(id).get(),
                // Eq. 1 on demand: weight_i / Σ weight_j.
                target_share: f64::from(sys.shares().weight(id).get()) / total_weight as f64,
                observed_share: if total_bytes == 0 {
                    0.0
                } else {
                    bytes as f64 / total_bytes as f64
                },
                bytes_per_cycle: if window == 0 { 0.0 } else { bytes as f64 / window as f64 },
                mean_ipc,
                cores: tiles.len(),
            });
        }
        Self {
            classes,
            bus_utilization: sys.bus_utilization_since_mark(),
            window_cycles: window,
            experiment: None,
            config: None,
            seed: None,
            governor: sys.governor_label().to_string(),
            arbiter: sys.arbiter_label().to_string(),
            mechanism_hash: sys.mechanism_hash(),
        }
    }

    /// Tags the report with the sweep context that produced it, so a
    /// merged multi-run report identifies which experiment, grid cell,
    /// and generator seed each line came from.
    #[must_use]
    pub fn with_context(mut self, experiment: &str, config: &str, seed: u64) -> Self {
        self.experiment = Some(experiment.to_string());
        self.config = Some(config.to_string());
        self.seed = Some(seed);
        self
    }

    /// Serializes the report as one JSON object (hand-rolled; the
    /// workspace has a zero-dependency rule). Non-finite floats become
    /// `null` so the output is always valid JSON. Context fields set via
    /// [`SystemReport::with_context`] lead the object, followed by the
    /// mechanism provenance fields (always present), then the figures.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(256);
        s.push('{');
        if let Some(e) = &self.experiment {
            let _ = write!(s, "\"experiment\":\"{}\",", json_escape(e));
        }
        if let Some(c) = &self.config {
            let _ = write!(s, "\"config\":\"{}\",", json_escape(c));
        }
        if let Some(seed) = self.seed {
            let _ = write!(s, "\"seed\":{seed},");
        }
        let _ = write!(
            s,
            "\"governor\":\"{}\",\"arbiter\":\"{}\",\"mechanism_hash\":{},",
            json_escape(&self.governor),
            json_escape(&self.arbiter),
            self.mechanism_hash
        );
        let _ = write!(
            s,
            "\"window_cycles\":{},\"bus_utilization\":{},\"classes\":[",
            self.window_cycles,
            json_f64(self.bus_utilization)
        );
        for (i, c) in self.classes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"class\":{},\"weight\":{},\"cores\":{},\"target_share\":{},\
                 \"observed_share\":{},\"bytes_per_cycle\":{},\"mean_ipc\":{}}}",
                c.class,
                c.weight,
                c.cores,
                json_f64(c.target_share),
                json_f64(c.observed_share),
                json_f64(c.bytes_per_cycle),
                json_f64(c.mean_ipc)
            );
        }
        s.push_str("]}");
        s
    }

    /// Renders a plain-text table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "measurement window: {} cycles; bus utilization {:.1}%\n",
            self.window_cycles,
            self.bus_utilization * 100.0
        );
        out.push_str("class  weight  cores  target%  observed%  GB/s    IPC/core\n");
        out.push_str("------------------------------------------------------------\n");
        for c in &self.classes {
            out.push_str(&format!(
                "{:<5}  {:<6}  {:<5}  {:<7.1}  {:<9.1}  {:<6.1}  {:.3}\n",
                c.class,
                c.weight,
                c.cores,
                c.target_share * 100.0,
                c.observed_share * 100.0,
                pabst_simkit::bytes_per_cycle_to_gbps(c.bytes_per_cycle),
                c.mean_ipc,
            ));
        }
        out
    }
}

/// Escapes the two characters JSON strings cannot carry raw. Experiment
/// and config names are plain ASCII labels, so this minimal escape keeps
/// the output valid without a full serializer.
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A float as a JSON number, or `null` when not finite (JSON has no
/// NaN/Infinity literals).
// simlint: allow(taint-float): serializes already-computed report figures; output formatting cannot perturb simulated state
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RegulationMode, SystemConfig};
    use crate::system::SystemBuilder;
    use pabst_cpu::{Op, Workload};

    struct Idle;
    impl Workload for Idle {
        fn next_op(&mut self) -> Op {
            Op::Compute(4)
        }
        fn name(&self) -> &str {
            "idle"
        }
    }

    #[test]
    fn report_covers_all_classes() {
        let mut sys = SystemBuilder::new(SystemConfig::small_test(), RegulationMode::Pabst)
            .class(3, vec![Box::new(Idle) as Box<dyn Workload>])
            .class(1, vec![Box::new(Idle) as Box<dyn Workload>])
            .build()
            .unwrap();
        sys.run_epochs(1);
        sys.mark_measurement();
        sys.run_epochs(2);
        let r = SystemReport::collect(&sys);
        assert_eq!(r.classes.len(), 2);
        assert_eq!(r.classes[0].weight, 3);
        assert!((r.classes[0].target_share - 0.75).abs() < 1e-9);
        assert_eq!(r.classes[0].cores, 1);
        assert!(r.classes[0].mean_ipc > 0.0, "idle compute still retires");
        assert!(r.window_cycles > 0);
        let text = r.render();
        assert!(text.contains("class"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn idle_system_reports_zero_shares_without_nan() {
        let mut sys = SystemBuilder::new(SystemConfig::small_test(), RegulationMode::None)
            .class(1, vec![Box::new(Idle) as Box<dyn Workload>])
            .build()
            .unwrap();
        sys.run_epochs(1);
        sys.mark_measurement();
        sys.run_epochs(1);
        let r = SystemReport::collect(&sys);
        assert_eq!(r.classes[0].observed_share, 0.0);
        assert_eq!(r.classes[0].bytes_per_cycle, 0.0);
        assert!(r.render().contains("0.0"));
    }

    #[test]
    fn json_export_is_valid_and_complete() {
        let mut sys = SystemBuilder::new(SystemConfig::small_test(), RegulationMode::Pabst)
            .class(3, vec![Box::new(Idle) as Box<dyn Workload>])
            .class(1, vec![Box::new(Idle) as Box<dyn Workload>])
            .build()
            .unwrap();
        sys.run_epochs(1);
        sys.mark_measurement();
        sys.run_epochs(2);
        let r = SystemReport::collect(&sys);
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "\"governor\":\"sat\"",
            "\"arbiter\":\"edf\"",
            "\"mechanism_hash\":",
            "\"window_cycles\":",
            "\"bus_utilization\":",
            "\"classes\":[",
            "\"weight\":3",
            "\"target_share\":",
            "\"mean_ipc\":",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        assert_eq!(j.matches("\"class\":").count(), 2, "one object per class");
        assert!(!j.contains("NaN") && !j.contains("inf"), "non-finite floats must be null");
    }

    #[test]
    fn context_fields_lead_the_json_object() {
        let mut sys = SystemBuilder::new(SystemConfig::small_test(), RegulationMode::Pabst)
            .class(1, vec![Box::new(Idle) as Box<dyn Workload>])
            .build()
            .unwrap();
        sys.run_epochs(1);
        sys.mark_measurement();
        sys.run_epochs(1);
        let bare = SystemReport::collect(&sys);
        assert!(!bare.to_json().contains("\"experiment\""), "untagged reports stay unchanged");
        let tagged = bare.with_context("fig05", "7:3 read streams", 42);
        let j = tagged.to_json();
        assert!(
            j.starts_with("{\"experiment\":\"fig05\",\"config\":\"7:3 read streams\",\"seed\":42,"),
            "{j}"
        );
        assert!(j.contains("\"window_cycles\":"), "{j}");
    }

    #[test]
    fn json_escape_handles_quotes_and_backslashes() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn json_f64_maps_non_finite_to_null() {
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
