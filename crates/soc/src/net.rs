//! The on-chip interconnect as a modelled component.
//!
//! Before the topology refactor the network was two fixed-latency
//! [`pabst_simkit::queue::DelayQueue`]s (`l3_lat`, `resp_lat`) plus an
//! inline per-MC staging stage in `System::step`. This module folds all
//! three into one component driven by [`Topology`]:
//!
//! * **request network** — tile → L3, per-tile delay derived from mesh
//!   distance (or the uniform `l3_lat` under [`NetModel::Uniform`]);
//! * **response network** — L3/MC → tile, per-(source, tile) delay;
//! * **staging** — per-(MC, class) queues between the L3 miss path and
//!   each controller's ingress port, drained round-robin across classes
//!   (per-source-fair arbitration) with an optional per-cycle admission
//!   bound (`mc_link_bw`).
//!
//! Under the uniform defaults every delay table collapses to the legacy
//! constants and the staging delay to zero, so the committed goldens stay
//! byte-identical. [`Interconnect::next_event`] feeds the system's
//! horizon min-combine, keeping cycle skipping sound across the refactor.

use std::collections::VecDeque;

use pabst_cache::LineAddr;
use pabst_core::qos::QosId;
use pabst_dram::{MemController, MemReq};
use pabst_simkit::queue::VarDelayQueue;
use pabst_simkit::Cycle;

use crate::config::{NetModel, SystemConfig, Topology};

/// A message travelling from a tile to the shared L3.
#[derive(Debug, Clone, Copy)]
pub(crate) struct L3Req {
    pub(crate) line: LineAddr,
    pub(crate) class: QosId,
    pub(crate) tile: usize,
    pub(crate) store: bool,
    /// Pure L2 writeback into the L3 (no response needed).
    pub(crate) l2_wb: bool,
}

/// A response returning to a tile.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TileResp {
    pub(crate) line: LineAddr,
    pub(crate) tile: usize,
    /// Serviced by the shared cache (pacer refunds one period).
    pub(crate) l3_hit: bool,
    /// The demand fill evicted a dirty L3 line (pacer charges one period).
    pub(crate) wb_flag: bool,
}

/// The modelled network: request/response paths with distance-derived
/// delays and the per-MC staging/arbitration stage.
///
/// Delay tables are precomputed from the [`Topology`] at build time, so
/// the per-message cost is one table lookup regardless of the model.
#[derive(Debug)]
pub struct Interconnect {
    /// Request network: tile → L3 (delivery cycle from `req_lat`).
    pub(crate) req_net: VarDelayQueue<L3Req>,
    /// Response network: L3/MC → tile.
    pub(crate) resp_net: VarDelayQueue<TileResp>,
    /// Per-(MC, class) staging queues: (ready-at-ingress cycle, request).
    /// Within one queue ready times are non-decreasing (same per-MC hop
    /// delay, pushes in time order), so the front is each queue's horizon.
    pub(crate) staged: Vec<Vec<VecDeque<(Cycle, MemReq)>>>,
    /// Round-robin cursor per MC over the class queues.
    staged_rr: Vec<usize>,
    /// Total requests staged per MC across class queues; lets the drain
    /// and the horizon skip controllers with nothing staged.
    staged_pending: Vec<usize>,
    /// Staged→ingress admissions per MC per cycle (0 = unbounded).
    link_bw: u64,
    /// Tile → L3 request latency, per tile.
    req_lat: Vec<Cycle>,
    /// L3 → tile response latency (shared-cache hits), per tile.
    l3_resp_lat: Vec<Cycle>,
    /// MC → tile response latency (memory fills), `[mc][tile]`.
    mc_resp_lat: Vec<Vec<Cycle>>,
    /// L3 → MC staging hop latency, per MC.
    mc_req_lat: Vec<Cycle>,
    topo: Topology,
    mcs: usize,
    /// Memoized [`Interconnect::next_event`] answer; `None` means dirty
    /// (some queue mutated since the last probe). Every mutating method
    /// that can move the horizon clears it; probes hit the cache instead
    /// of re-walking the staging queues. A cached *due* answer
    /// (`t <= now`) stays due until a mutation lands, so it is
    /// normalized to `Some(now)` on read rather than recomputed.
    cached_next: Option<Option<Cycle>>,
}

impl Interconnect {
    /// Builds the interconnect for `cfg` with `classes` QoS classes,
    /// precomputing every delay table from the topology.
    pub fn new(cfg: &SystemConfig, classes: usize) -> Self {
        let t = cfg.topology;
        let (req_lat, l3_resp_lat, mc_resp_lat, mc_req_lat, link_bw) = match t.net {
            NetModel::Uniform => (
                vec![cfg.l3_lat; cfg.cores],
                vec![cfg.resp_lat; cfg.cores],
                vec![vec![cfg.resp_lat; cfg.cores]; cfg.mcs],
                vec![0; cfg.mcs],
                0,
            ),
            NetModel::Mesh => {
                let l3 = t.l3_pos();
                let req = (0..cfg.cores)
                    .map(|i| t.req_base_lat + t.hop_lat * Topology::hops(t.tile_pos(i), l3))
                    .collect();
                let l3_resp = (0..cfg.cores)
                    .map(|i| t.resp_base_lat + t.hop_lat * Topology::hops(l3, t.tile_pos(i)))
                    .collect();
                let mc_resp = (0..cfg.mcs)
                    .map(|k| {
                        let mc = t.mc_pos(k, cfg.mcs);
                        (0..cfg.cores)
                            .map(|i| {
                                t.resp_base_lat + t.hop_lat * Topology::hops(mc, t.tile_pos(i))
                            })
                            .collect()
                    })
                    .collect();
                let mc_req = (0..cfg.mcs)
                    .map(|k| t.hop_lat * Topology::hops(l3, t.mc_pos(k, cfg.mcs)))
                    .collect();
                (req, l3_resp, mc_resp, mc_req, t.mc_link_bw)
            }
        };
        Self {
            req_net: VarDelayQueue::new(),
            resp_net: VarDelayQueue::new(),
            staged: (0..cfg.mcs).map(|_| (0..classes).map(|_| VecDeque::new()).collect()).collect(),
            staged_rr: vec![0; cfg.mcs],
            staged_pending: vec![0; cfg.mcs],
            link_bw,
            req_lat,
            l3_resp_lat,
            mc_resp_lat,
            mc_req_lat,
            topo: t,
            mcs: cfg.mcs,
            cached_next: None,
        }
    }

    /// The home memory controller of `line` under the configured channel
    /// map.
    pub fn channel_of(&self, line: LineAddr) -> usize {
        self.topo.channel_map.channel_of(line, self.mcs)
    }

    /// Injects a tile request toward the L3; it arrives after the tile's
    /// distance delay.
    pub(crate) fn send_request(&mut self, now: Cycle, req: L3Req) {
        self.req_net.push(now + self.req_lat[req.tile], req);
        self.cached_next = None;
    }

    /// Pops the next request that has reached the L3 by `now`.
    pub(crate) fn pop_request(&mut self, now: Cycle) -> Option<L3Req> {
        let popped = self.req_net.pop_ready(now);
        if popped.is_some() {
            self.cached_next = None;
        }
        popped
    }

    /// True when requests are in flight toward the L3.
    pub fn has_requests(&self) -> bool {
        !self.req_net.is_empty()
    }

    /// Sends a shared-cache (L3) response back to its tile.
    pub(crate) fn send_l3_response(&mut self, now: Cycle, resp: TileResp) {
        self.resp_net.push(now + self.l3_resp_lat[resp.tile], resp);
        self.cached_next = None;
    }

    /// Sends a memory-fill response from controller `mc` back to its tile.
    pub(crate) fn send_mc_response(&mut self, now: Cycle, mc: usize, resp: TileResp) {
        self.resp_net.push(now + self.mc_resp_lat[mc][resp.tile], resp);
        self.cached_next = None;
    }

    /// True when responses are in flight toward the tiles.
    pub fn has_responses(&self) -> bool {
        !self.resp_net.is_empty()
    }

    /// Pops the next response that has reached its tile by `now`.
    pub(crate) fn pop_response(&mut self, now: Cycle) -> Option<TileResp> {
        let popped = self.resp_net.pop_ready(now);
        if popped.is_some() {
            self.cached_next = None;
        }
        popped
    }

    /// Stages a memory request toward controller `mc`'s ingress; it
    /// becomes admissible after the L3→MC hop delay.
    pub(crate) fn stage(&mut self, now: Cycle, mc: usize, req: MemReq) {
        self.staged[mc][req.class.index()].push_back((now + self.mc_req_lat[mc], req));
        self.staged_pending[mc] += 1;
        self.cached_next = None;
    }

    /// Drains staged requests into MC ingress ports, round-robin across
    /// class queues (per-source-fair network arbitration), admitting at
    /// most `mc_link_bw` per controller this cycle (unbounded when 0).
    /// This is where requests "queue elsewhere in the system" when a
    /// controller is oversubscribed — FAIR, but not *prioritized* (the
    /// Fig. 1b effect): a flooding class is pinned to its fair share of
    /// admissions, no more, no less, regardless of the arbiter inside the
    /// controller. Bounded in practice by the L2/L3 MSHR budgets.
    pub(crate) fn drain_into(&mut self, now: Cycle, mcs: &mut [MemController]) {
        let mut admitted = false;
        for (k, queues) in self.staged.iter_mut().enumerate() {
            if self.staged_pending[k] == 0 {
                continue;
            }
            let n = queues.len();
            let mut budget = if self.link_bw == 0 { u64::MAX } else { self.link_bw };
            'mc: while budget > 0 {
                let mut progressed = false;
                for off in 0..n {
                    let c = (self.staged_rr[k] + off) % n;
                    if let Some(&(ready, req)) = queues[c].front() {
                        if ready > now {
                            continue; // still on the L3→MC hop
                        }
                        if mcs[k].push(req).is_err() {
                            break 'mc; // ingress full (reject counted)
                        }
                        queues[c].pop_front();
                        self.staged_pending[k] -= 1;
                        self.staged_rr[k] = (c + 1) % n;
                        budget -= 1;
                        progressed = true;
                        admitted = true;
                        break;
                    }
                }
                if !progressed {
                    break;
                }
            }
        }
        if admitted {
            self.cached_next = None;
        }
    }

    /// Requests staged toward controller `k` (all classes).
    pub fn staged_pending(&self, k: usize) -> usize {
        self.staged_pending[k]
    }

    /// True when any controller has staged requests.
    pub fn any_staged(&self) -> bool {
        self.staged_pending.iter().any(|&p| p > 0)
    }

    /// Iterates `(mc, counted, actual)` staging conservation pairs for the
    /// epoch sanitizer: the pending counter that gates the drain must
    /// agree with the class-queue contents.
    pub fn staged_conservation(&self) -> impl Iterator<Item = (usize, u64, u64)> + '_ {
        self.staged.iter().enumerate().map(|(k, queues)| {
            let actual: usize = queues.iter().map(VecDeque::len).sum();
            (k, self.staged_pending[k] as u64, actual as u64)
        })
    }

    /// The interconnect's event horizon: the earliest cycle a message can
    /// be delivered or a staged request admitted. A staged head already
    /// past its hop delay acts *every* cycle (each drain attempt can
    /// mutate an ingress reject counter), so it contributes `now`.
    ///
    /// No `accrue_skip` counterpart exists: every counter here mutates
    /// on queue activity, never once-per-cycle, so a dead window leaves
    /// the interconnect bit-identical (batch-sampling rule satisfied
    /// vacuously — see docs/PERFORMANCE.md).
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        use pabst_simkit::horizon::Horizon;
        let mut h = Horizon::new();
        h.merge(self.req_net.next_ready());
        h.merge(self.resp_net.next_ready());
        for (k, queues) in self.staged.iter().enumerate() {
            if self.staged_pending[k] == 0 {
                continue;
            }
            for q in queues {
                if let Some(&(ready, _)) = q.front() {
                    h.add(ready.max(now));
                }
            }
        }
        h.get()
    }

    /// Memoized [`Interconnect::next_event`]: recomputes only when a
    /// queue mutation has dirtied the cache since the last probe.
    ///
    /// With no mutations the underlying ready times are constants, so a
    /// cached *future* answer stays exact as `now` advances and a cached
    /// *due* answer stays due — it is clamped to `Some(now)` rather than
    /// recomputed (the fresh answer would also be due, and "due" is all
    /// the probe loop acts on).
    pub(crate) fn next_event_memo(&mut self, now: Cycle) -> Option<Cycle> {
        if let Some(cached) = self.cached_next {
            return match cached {
                Some(t) if t <= now => Some(now),
                other => other,
            };
        }
        let fresh = self.next_event(now);
        self.cached_next = Some(fresh);
        fresh
    }

    /// True when a staged request toward controller `k` is past its hop
    /// delay, i.e. this cycle's drain may push into `k`'s ingress. The
    /// domain scheduler uses this as the push-wake edge for a parked
    /// idle controller.
    pub(crate) fn mc_admissible(&self, k: usize, now: Cycle) -> bool {
        self.staged_pending[k] > 0
            && self.staged[k].iter().any(|q| matches!(q.front(), Some(&(ready, _)) if ready <= now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChannelMap;
    use pabst_core::qos::ShareTable;
    use pabst_dram::ArbiterMode;

    fn req(line: u64, class: usize) -> MemReq {
        MemReq {
            line: LineAddr::new(line),
            class: QosId::new(class as u8),
            is_write: false,
            token: 0,
        }
    }

    fn l3req(tile: usize) -> L3Req {
        L3Req { line: LineAddr::new(1), class: QosId::new(0), tile, store: false, l2_wb: false }
    }

    #[test]
    fn uniform_model_reproduces_the_fixed_latency_pipes() {
        let cfg = SystemConfig::baseline_32core();
        let mut net = Interconnect::new(&cfg, 2);
        net.send_request(100, l3req(0));
        net.send_request(100, l3req(31));
        assert!(net.pop_request(100 + cfg.l3_lat - 1).is_none());
        assert_eq!(net.pop_request(100 + cfg.l3_lat).map(|r| r.tile), Some(0));
        assert_eq!(net.pop_request(100 + cfg.l3_lat).map(|r| r.tile), Some(31));
        let resp = TileResp { line: LineAddr::new(1), tile: 5, l3_hit: true, wb_flag: false };
        net.send_l3_response(200, resp);
        net.send_mc_response(200, 3, TileResp { tile: 9, ..resp });
        assert!(net.pop_response(200 + cfg.resp_lat - 1).is_none());
        assert_eq!(net.pop_response(200 + cfg.resp_lat).map(|r| r.tile), Some(5));
        assert_eq!(net.pop_response(200 + cfg.resp_lat).map(|r| r.tile), Some(9));
        // Staging is free and same-cycle admissible.
        net.stage(7, 0, req(1, 0));
        assert_eq!(net.next_event(7), Some(7));
    }

    #[test]
    fn mesh_model_delays_scale_with_distance() {
        let cfg = SystemConfig::mesh_64();
        let t = cfg.topology;
        let mut net = Interconnect::new(&cfg, 1);
        // Tile 0 (corner) is farther from the center L3 than tile 27
        // (adjacent to it), so its request arrives later.
        let far = Topology::hops(t.tile_pos(0), t.l3_pos());
        let near = Topology::hops(t.tile_pos(27), t.l3_pos());
        assert!(far > near, "corner must be farther than center-adjacent");
        net.send_request(0, l3req(27));
        net.send_request(0, l3req(0));
        let first = net.req_net.next_ready().expect("two in flight");
        assert_eq!(first, t.req_base_lat + t.hop_lat * near);
        assert_eq!(net.pop_request(first).map(|r| r.tile), Some(27), "nearer tile lands first");
        let second = net.req_net.next_ready().unwrap();
        assert_eq!(second, t.req_base_lat + t.hop_lat * far);
        assert_eq!(net.pop_request(second).map(|r| r.tile), Some(0));
        // Staging pays the L3→MC hop before it becomes admissible.
        net.stage(0, 0, req(1, 0));
        let hop = t.hop_lat * Topology::hops(t.l3_pos(), t.mc_pos(0, cfg.mcs));
        assert!(hop > 0);
        assert_eq!(net.next_event(0), Some(hop), "staged head waits out its hop");
        assert_eq!(net.next_event(hop), Some(hop), "then acts every cycle");
    }

    #[test]
    fn memoized_next_event_tracks_mutations() {
        let cfg = SystemConfig::mesh_64();
        let t = cfg.topology;
        let mut net = Interconnect::new(&cfg, 1);
        // Empty network: memo and fresh agree, and the cache holds.
        assert_eq!(net.next_event_memo(0), net.next_event(0));
        assert_eq!(net.next_event_memo(5), None);
        // A mutation dirties the cache; the memo picks up the new event.
        net.send_request(0, l3req(0));
        let fresh = net.next_event(0);
        assert_eq!(net.next_event_memo(0), fresh);
        // A cached future answer stays exact as long as nothing mutates...
        assert_eq!(net.next_event_memo(1), fresh);
        let ready = fresh.expect("one request in flight");
        // ...and once due, the cached answer clamps to `now` — due stays
        // due until someone pops it, even cycles later. The fresh probe
        // reports the raw (past) ready time; both read as due, which is
        // all the probe loop acts on.
        assert_eq!(net.next_event_memo(ready), Some(ready));
        assert_eq!(net.next_event_memo(ready + 3), Some(ready + 3));
        assert!(net.next_event(ready + 3).is_some_and(|t| t <= ready + 3));
        // Popping the due head invalidates; the memo goes quiet again.
        assert!(net.pop_request(ready + 3).is_some());
        assert_eq!(net.next_event_memo(ready + 3), net.next_event(ready + 3));
        // Staged heads flow through the same cache: stage dirties, and
        // after the L3->MC hop the staged head reads as due.
        net.stage(0, 0, req(1, 0));
        let hop = t.hop_lat * Topology::hops(t.l3_pos(), t.mc_pos(0, cfg.mcs));
        assert_eq!(net.next_event_memo(0), Some(hop));
        assert_eq!(net.next_event_memo(hop + 2), Some(hop + 2));
        assert!(net.mc_admissible(0, hop), "ready staged head is admissible");
        assert!(!net.mc_admissible(0, hop - 1), "not before its hop elapses");
    }

    #[test]
    fn drain_is_round_robin_fair_and_bandwidth_bounded() {
        let mut cfg = SystemConfig::baseline_32core();
        cfg.mcs = 1;
        cfg.topology.mc_link_bw = 2;
        cfg.topology.net = NetModel::Mesh;
        cfg.topology.req_base_lat = 0;
        cfg.topology.resp_base_lat = 0;
        cfg.topology.hop_lat = 0; // isolate the bandwidth bound
        let mut net = Interconnect::new(&cfg, 2);
        let shares = ShareTable::from_weights(&[1, 1]).unwrap();
        let mut mcs =
            vec![MemController::new(cfg.dram, ArbiterMode::Fcfs, &shares, cfg.arbiter_slack)];
        // Class 0 floods; class 1 stages two requests.
        for i in 0..6 {
            net.stage(0, 0, req(i, 0));
        }
        for i in 0..2 {
            net.stage(0, 0, req(100 + i, 1));
        }
        net.drain_into(0, &mut mcs);
        // Two admissions (the link bound), alternating classes.
        assert_eq!(net.staged_pending(0), 6, "link admits 2/cycle");
        assert_eq!(mcs[0].pending(), 2);
        net.drain_into(1, &mut mcs);
        assert_eq!(net.staged_pending(0), 4);
        // After two rounds each class got two admissions (fairness), even
        // though class 0 staged three times as many.
        assert_eq!(mcs[0].pending(), 4);
    }

    #[test]
    fn channel_map_routes_through_the_topology() {
        let mut cfg = SystemConfig::baseline_32core();
        cfg.mcs = 16;
        let legacy = Interconnect::new(&cfg, 1);
        cfg.topology.channel_map = ChannelMap::DoubleFold;
        let spread = Interconnect::new(&cfg, 1);
        let line = LineAddr::new((1 << 21) * 3);
        assert_eq!(legacy.channel_of(line), line.interleave(16));
        assert_eq!(spread.channel_of(line), line.interleave_spread(16));
    }
}
