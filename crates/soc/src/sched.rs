//! The skip-domain scheduler: partitioned quiescence tracking for
//! tiles and memory controllers.
//!
//! The original fast-forward design min-combined ONE global horizon, so
//! a single busy component pinned the whole machine to naive stepping.
//! This module partitions the machine into *skip domains* — one per
//! tile (core + pacer + private-cache injection path) and one per
//! memory controller — each of which can be **parked** independently:
//! the step loop stops visiting a parked domain, and its per-cycle
//! bookkeeping (ROB-full stalls, pacer throttle NACKs, SAT-monitor
//! occupancy samples) is batch-accrued when the domain is unparked,
//! through the same `accrue_skip` paths the global jump uses.
//!
//! The shared spine — interconnect, L3, and the staging/drain stage —
//! keeps stepping naively; it is the source of every cross-domain
//! message, so its live stepping is what makes the wake edges exact.
//!
//! # Wake edges
//!
//! A parked domain's local clock is clamped back to `now` (it is woken,
//! and its owed bookkeeping accrued) on exactly these edges:
//!
//! * **due wake** — its cached `next_event` (`wake_at`) arrives;
//! * **response delivery** — a network response reaches a parked tile
//!   (woken *before* the fill is applied, so the accrual window closes
//!   on pre-fill state);
//! * **ingress push** — the drain stage is about to admit a staged
//!   request into a parked controller;
//! * **epoch boundary** — the heartbeat reads every component
//!   (SAT aggregation, pacer reprogramming, sanitizer), so everything
//!   is woken first;
//! * **advance settle** — `System::advance` returns; external readers
//!   (measurement marks, reports) must see fully-accrued state.
//!
//! Parking is driven by the same one-sided `next_event` contract as the
//! global horizon (see `docs/PERFORMANCE.md`): a domain is parked only
//! when its own horizon proves it inert, and a wake can only be early
//! (costing a few live steps), never late.

use pabst_dram::MemController;
use pabst_simkit::horizon::{DomainHorizon, NO_WAKE};
use pabst_simkit::Cycle;

use crate::tile::Tile;

/// Park/unpark scheduler over the system's skip domains (tiles and
/// memory controllers), with per-kind elision counters.
///
/// Owns no simulator state beyond the park bookkeeping; the owed-cycle
/// accrual it performs at wake time routes through each component's
/// existing `accrue_skip` path, so a parked window is bit-identical to
/// the same window stepped naively.
#[derive(Debug)]
pub struct DomainSched {
    tiles: DomainHorizon,
    mcs: DomainHorizon,
    /// Tile-cycles elided by parking (diagnostic only; absent from all
    /// artifacts, like `cycles_skipped`).
    tile_cycles: u64,
    /// Controller-cycles elided by parking (diagnostic only).
    mc_cycles: u64,
}

impl DomainSched {
    /// A scheduler for `tiles` tile domains and `mcs` controller
    /// domains, all initially resident.
    pub fn new(tiles: usize, mcs: usize) -> Self {
        Self {
            tiles: DomainHorizon::new(tiles),
            mcs: DomainHorizon::new(mcs),
            tile_cycles: 0,
            mc_cycles: 0,
        }
    }

    /// True when tile `i` is parked (the step loop must not visit it).
    pub fn tile_parked(&self, i: usize) -> bool {
        self.tiles.is_parked(i)
    }

    /// True when controller `k` is parked.
    pub fn mc_parked(&self, k: usize) -> bool {
        self.mcs.is_parked(k)
    }

    /// Parked tile `i`'s cached `next_event` answer (`None` when it has
    /// no self-scheduled wake). This *is* the memoized horizon: probes
    /// fold it instead of re-walking the tile.
    pub fn tile_wake(&self, i: usize) -> Option<Cycle> {
        match self.tiles.wake_at(i) {
            NO_WAKE => None,
            at => Some(at),
        }
    }

    /// Parked controller `k`'s cached `next_event` answer.
    pub fn mc_wake(&self, k: usize) -> Option<Cycle> {
        match self.mcs.wake_at(k) {
            NO_WAKE => None,
            at => Some(at),
        }
    }

    /// Parks tile `i`: bookkeeping owed from `owed_from`, cached
    /// horizon `wake_at` (the tile's `next_event` at park time).
    pub fn park_tile(&mut self, i: usize, owed_from: Cycle, wake_at: Option<Cycle>) {
        self.tiles.park(i, owed_from, wake_at);
    }

    /// Parks controller `k`.
    pub fn park_mc(&mut self, k: usize, owed_from: Cycle, wake_at: Option<Cycle>) {
        self.mcs.park(k, owed_from, wake_at);
    }

    /// Wakes tile `i` with bookkeeping accrued through (excluding)
    /// `through`: owed ROB-full stalls to the core, owed throttle NACKs
    /// to the pacer of the frozen injection head. A no-op when `i` is
    /// not parked.
    pub fn wake_tile(&mut self, i: usize, through: Cycle, tile: &mut Tile) {
        let owed = self.tiles.unpark(i, through);
        if owed > 0 {
            tile.core.accrue_skip(owed);
            tile.mem.accrue_throttle_skip(owed);
            self.tile_cycles += owed;
        }
    }

    /// Wakes controller `k`, accruing its owed SAT-monitor occupancy
    /// samples through (excluding) `through`. A no-op when not parked.
    pub fn wake_mc(&mut self, k: usize, through: Cycle, mc: &mut MemController) {
        let owed = self.mcs.unpark(k, through);
        if owed > 0 {
            mc.accrue_skip(owed);
            self.mc_cycles += owed;
        }
    }

    /// Wakes every parked tile whose cached horizon has arrived
    /// (`wake_at <= now`). Runs off the memoized minimum, so the common
    /// nothing-due case is one comparison.
    pub fn wake_due_tiles(&mut self, now: Cycle, tiles: &mut [Tile]) {
        if !self.tiles.maybe_due(now) {
            return;
        }
        for (i, tile) in tiles.iter_mut().enumerate() {
            // Resident tiles read NO_WAKE, which is never due.
            if self.tiles.wake_at(i) <= now {
                self.wake_tile(i, now, tile);
            }
        }
        self.tiles.recompute_min();
    }

    /// Wakes every parked controller whose cached horizon has arrived.
    pub fn wake_due_mcs(&mut self, now: Cycle, mcs: &mut [MemController]) {
        if !self.mcs.maybe_due(now) {
            return;
        }
        for (k, mc) in mcs.iter_mut().enumerate() {
            if self.mcs.wake_at(k) <= now {
                self.wake_mc(k, now, mc);
            }
        }
        self.mcs.recompute_min();
    }

    /// Wakes everything (epoch boundary / advance settle): the
    /// heartbeat and external readers observe fully-accrued state.
    pub fn wake_all(&mut self, through: Cycle, tiles: &mut [Tile], mcs: &mut [MemController]) {
        if self.tiles.parked_count() > 0 {
            for (i, tile) in tiles.iter_mut().enumerate() {
                self.wake_tile(i, through, tile);
            }
            self.tiles.recompute_min();
        }
        if self.mcs.parked_count() > 0 {
            for (k, mc) in mcs.iter_mut().enumerate() {
                self.wake_mc(k, through, mc);
            }
            self.mcs.recompute_min();
        }
    }

    /// True when any domain is parked.
    pub fn any_parked(&self) -> bool {
        self.tiles.parked_count() > 0 || self.mcs.parked_count() > 0
    }

    /// True when *every* domain a global jump would fast-forward is
    /// parked: all tiles, and every controller that is not frozen by an
    /// mc-stall fault window. The precondition that lets the jump be a
    /// pure clock bump (each parked domain's owed window simply grows).
    pub fn fully_parked(&self, mc_stalled: &[bool]) -> bool {
        self.tiles.parked_count() == self.tiles.len()
            && (0..self.mcs.len()).all(|k| mc_stalled[k] || self.mcs.is_parked(k))
    }

    /// Tile-cycles elided by tile-local parking so far (diagnostic).
    pub fn tile_cycles(&self) -> u64 {
        self.tile_cycles
    }

    /// Controller-cycles elided by controller parking so far
    /// (diagnostic).
    pub fn mc_cycles(&self) -> u64 {
        self.mc_cycles
    }
}
