//! System configuration (the paper's Table III class of machine).

use std::fmt;

use pabst_cache::CacheConfig;
use pabst_core::governor::MonitorConfig;
use pabst_dram::DramConfig;
use pabst_simkit::Cycle;

/// Which PABST components are active — the four configurations the paper
/// compares (Figs. 1, 7, 10, 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegulationMode {
    /// No bandwidth QoS at all (the contention baseline).
    None,
    /// Governor + pacer only (source-based regulation).
    SourceOnly,
    /// Priority arbiter only (target-based regulation).
    TargetOnly,
    /// Both — full PABST.
    Pabst,
}

impl RegulationMode {
    /// True when the source governor/pacer is active.
    pub fn source_active(self) -> bool {
        matches!(self, RegulationMode::SourceOnly | RegulationMode::Pabst)
    }

    /// True when the memory-controller priority arbiter is active.
    pub fn target_active(self) -> bool {
        matches!(self, RegulationMode::TargetOnly | RegulationMode::Pabst)
    }

    /// Display label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            RegulationMode::None => "none",
            RegulationMode::SourceOnly => "source-only",
            RegulationMode::TargetOnly => "target-only",
            RegulationMode::Pabst => "pabst",
        }
    }
}

/// Who gets charged for memory writes caused by dirty L3 evictions (§V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WbAccounting {
    /// Charge the class whose demand fill caused the eviction (the paper's
    /// default, §III-B3): the response carries a writeback flag and the
    /// pacer adds one period.
    #[default]
    ChargeDemand,
    /// Charge the class that owned the evicted line.
    ChargeOwner,
    /// Charge nobody (writeback bandwidth rides free).
    ChargeNone,
}

/// Full system configuration.
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// Number of tiles (cores).
    pub cores: usize,
    /// Number of memory controllers.
    pub mcs: usize,
    /// Epoch length in cycles (10 µs at 2 GHz = 20 000).
    pub epoch_cycles: Cycle,
    /// Core structural parameters.
    pub core: pabst_cpu::CoreConfig,
    /// L1D geometry.
    pub l1: CacheConfig,
    /// Private L2 geometry.
    pub l2: CacheConfig,
    /// Shared L3 geometry (way-partitioned between classes).
    pub l3: CacheConfig,
    /// L2 MSHR entries per tile.
    pub l2_mshrs: usize,
    /// L3 MSHR entries (global).
    pub l3_mshrs: usize,
    /// L1 hit latency, cycles.
    pub l1_lat: u64,
    /// L2 hit latency, cycles.
    pub l2_lat: u64,
    /// Tile → L3 network + L3 array latency, cycles.
    pub l3_lat: Cycle,
    /// L3/MC → tile response latency, cycles.
    pub resp_lat: Cycle,
    /// DRAM timing/geometry per controller.
    pub dram: DramConfig,
    /// Governor feedback-loop parameters.
    pub monitor: MonitorConfig,
    /// Pacer burst window, requests.
    pub pacer_burst: u64,
    /// Arbiter slack, virtual ticks.
    pub arbiter_slack: u64,
    /// Writeback charging policy.
    pub wb_accounting: WbAccounting,
    /// Per-MC regulation (SIII-C1's alternative): one SAT signal and one
    /// governor per memory controller, and one pacer per (tile, MC). The
    /// paper's default is a single global wired-OR SAT and one governor;
    /// the per-MC variant avoids under-utilizing lightly loaded channels
    /// when traffic is skewed across controllers.
    pub per_mc_regulation: bool,
}

impl SystemConfig {
    /// The paper's 32-core baseline (Table III): 8×4 tiled SoC, 32 KiB
    /// L1D, 256 KiB L2, 16 MiB shared L3 (16-way), 4 DDR channels.
    pub fn baseline_32core() -> Self {
        Self {
            cores: 32,
            mcs: 4,
            epoch_cycles: 20_000,
            core: pabst_cpu::CoreConfig::default(),
            l1: CacheConfig::with_capacity(32 * 1024, 8),
            l2: CacheConfig::with_capacity(256 * 1024, 8),
            l3: CacheConfig::with_capacity(16 * 1024 * 1024, 16),
            // 16 per-core L2 MSHRs: one 16-core streaming class's
            // outstanding requests (256) fit within the four controllers'
            // aggregate queueing (~320), while two classes' (512) do not —
            // the boundary Fig. 1 exercises.
            l2_mshrs: 16,
            l3_mshrs: 512,
            l1_lat: 4,
            l2_lat: 14,
            // Mesh hop + L3 array: low enough that the chaser (4 chains x
            // 16 cores = 64 outstanding) can saturate memory in isolation,
            // as the paper's methodology requires (SIV-A).
            l3_lat: 24,
            resp_lat: 8,
            dram: DramConfig::default(),
            monitor: MonitorConfig::default(),
            pacer_burst: 16,
            arbiter_slack: 128,
            wb_accounting: WbAccounting::ChargeDemand,
            per_mc_regulation: false,
        }
    }

    /// The paper's memcached machine: everything scaled down 4× from the
    /// 32-core system (8 cores, 1 memory controller, 4 MiB L3).
    pub fn scaled_8core() -> Self {
        let mut c = Self::baseline_32core();
        c.cores = 8;
        c.mcs = 1;
        c.l3 = CacheConfig::with_capacity(4 * 1024 * 1024, 16);
        c.l3_mshrs = 128;
        c
    }

    /// A tiny configuration for fast unit tests (4 cores, 1 MC, small
    /// caches). Not used by any experiment.
    pub fn small_test() -> Self {
        let mut c = Self::baseline_32core();
        c.cores = 4;
        c.mcs = 1;
        c.l3 = CacheConfig::with_capacity(256 * 1024, 16);
        c.l3_mshrs = 64;
        c.epoch_cycles = 2_000;
        c
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError("cores must be non-zero".into()));
        }
        if self.mcs == 0 {
            return Err(ConfigError("mcs must be non-zero".into()));
        }
        if self.epoch_cycles == 0 {
            return Err(ConfigError("epoch_cycles must be non-zero".into()));
        }
        if self.l2_mshrs == 0 || self.l3_mshrs == 0 {
            return Err(ConfigError("MSHR capacities must be non-zero".into()));
        }
        self.dram.validate().map_err(ConfigError)?;
        self.monitor.validate().map_err(ConfigError)?;
        Ok(())
    }
}

/// An invalid [`SystemConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid system config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_valid() {
        assert!(SystemConfig::baseline_32core().validate().is_ok());
        assert!(SystemConfig::scaled_8core().validate().is_ok());
        assert!(SystemConfig::small_test().validate().is_ok());
    }

    #[test]
    fn scaled_system_is_quarter_size() {
        let big = SystemConfig::baseline_32core();
        let small = SystemConfig::scaled_8core();
        assert_eq!(small.cores * 4, big.cores);
        assert_eq!(small.mcs * 4, big.mcs);
        assert_eq!(small.l3.bytes() * 4, big.l3.bytes());
    }

    #[test]
    fn mode_component_activation() {
        assert!(RegulationMode::Pabst.source_active());
        assert!(RegulationMode::Pabst.target_active());
        assert!(RegulationMode::SourceOnly.source_active());
        assert!(!RegulationMode::SourceOnly.target_active());
        assert!(!RegulationMode::TargetOnly.source_active());
        assert!(RegulationMode::TargetOnly.target_active());
        assert!(!RegulationMode::None.source_active());
        assert!(!RegulationMode::None.target_active());
    }

    #[test]
    fn validation_rejects_zero_cores() {
        let mut c = SystemConfig::baseline_32core();
        c.cores = 0;
        assert!(c.validate().is_err());
        let mut c = SystemConfig::baseline_32core();
        c.epoch_cycles = 0;
        assert!(c.validate().is_err());
    }
}
