//! System configuration (the paper's Table III class of machine).

use std::fmt;

use pabst_cache::{CacheConfig, LineAddr};
use pabst_core::governor::{GovernorKind, MonitorConfig, MonitorConfigError};
use pabst_core::qos::ShareError;
use pabst_dram::{ArbiterMode, DramConfig};
use pabst_simkit::invariant::InvariantConfig;
use pabst_simkit::Cycle;

/// How line addresses map to memory-controller channels — the explicit
/// channel map the interconnect and the per-MC pacers share, replacing
/// scattered `line.interleave(mcs)` calls so every component agrees on a
/// request's home controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChannelMap {
    /// The single xor-fold hash ([`LineAddr::interleave`]). The paper's
    /// 2-/4-controller runs use it and the committed goldens pin its exact
    /// line→channel mapping.
    #[default]
    XorFold,
    /// The double-fold hash ([`LineAddr::interleave_spread`]). Required at
    /// wide channel counts: the single fold stops mixing above bit 17 and
    /// collapses giant power-of-two strides onto one controller at 16
    /// channels (see the skew regression tests in `pabst_cache::addr`).
    DoubleFold,
}

impl ChannelMap {
    /// The home memory controller of `line` among `n` controllers.
    pub fn channel_of(self, line: LineAddr, n: usize) -> usize {
        match self {
            ChannelMap::XorFold => line.interleave(n),
            ChannelMap::DoubleFold => line.interleave_spread(n),
        }
    }
}

/// How request/response latencies are derived from placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetModel {
    /// Placement-blind: every tile↔L3 path costs `l3_lat`, every response
    /// costs `resp_lat`, L3→MC staging is free and MC links are unbounded
    /// — exactly the fixed-latency pipes the pre-topology model used, so
    /// uniform configs reproduce the committed goldens byte for byte.
    #[default]
    Uniform,
    /// Distance-derived: per-hop delay times the Manhattan distance on the
    /// tile mesh (plus a base pipeline latency per path), with a bounded
    /// number of staged→ingress admissions per MC per cycle.
    Mesh,
}

/// The machine's physical shape: where tiles, the shared L3, and the
/// memory controllers sit on the on-chip mesh, how lines map to
/// controllers, and how the network derives delay from distance.
///
/// `Copy` on purpose: the topology is a handful of scalars; the derived
/// per-(tile, MC) delay tables are precomputed once at build time by the
/// interconnect, not stored here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Mesh columns (tiles are placed row-major; `cols × rows` must cover
    /// `cores`).
    pub mesh_cols: usize,
    /// Mesh rows.
    pub mesh_rows: usize,
    /// Line→controller channel map.
    pub channel_map: ChannelMap,
    /// Latency model.
    pub net: NetModel,
    /// Per-hop router delay, cycles (`Mesh` model only).
    pub hop_lat: Cycle,
    /// Base tile→L3 pipeline latency added to request hops (`Mesh`).
    pub req_base_lat: Cycle,
    /// Base response serialization latency added to response hops (`Mesh`).
    pub resp_base_lat: Cycle,
    /// Staged→ingress admissions per MC per cycle; 0 means unbounded (the
    /// legacy drain-until-full behavior the goldens pin).
    pub mc_link_bw: u64,
}

impl Topology {
    /// The placement-blind topology the paper's configs use: an 8×4 grid
    /// (the Table III floorplan) with uniform latencies and the legacy
    /// channel map. Byte-compatible with the pre-topology model.
    pub fn uniform_8x4() -> Self {
        Self {
            mesh_cols: 8,
            mesh_rows: 4,
            channel_map: ChannelMap::XorFold,
            net: NetModel::Uniform,
            hop_lat: 1,
            req_base_lat: 0,
            resp_base_lat: 0,
            mc_link_bw: 0,
        }
    }

    /// A distance-modelled mesh: one-cycle hops, a base latency sized so
    /// the *average* tile sees roughly the baseline's fixed `l3_lat`, the
    /// double-fold channel map (safe at wide channel counts), and two
    /// staged admissions per MC per cycle.
    pub fn mesh(cols: usize, rows: usize) -> Self {
        Self {
            mesh_cols: cols,
            mesh_rows: rows,
            channel_map: ChannelMap::DoubleFold,
            net: NetModel::Mesh,
            hop_lat: 1,
            req_base_lat: 18,
            resp_base_lat: 4,
            mc_link_bw: 2,
        }
    }

    /// Grid position of tile `i` (row-major placement).
    pub fn tile_pos(&self, i: usize) -> (usize, usize) {
        (i / self.mesh_cols, i % self.mesh_cols)
    }

    /// Grid position of the shared L3 slice (mesh center).
    pub fn l3_pos(&self) -> (usize, usize) {
        (self.mesh_rows / 2, self.mesh_cols / 2)
    }

    /// Grid position of memory controller `k` of `mcs`: controllers sit on
    /// the top and bottom mesh edges, spread evenly across the columns —
    /// the usual edge-of-die DDR PHY placement.
    pub fn mc_pos(&self, k: usize, mcs: usize) -> (usize, usize) {
        let top = mcs.div_ceil(2);
        let (row, j, n) = if k < top {
            (0, k, top)
        } else {
            (self.mesh_rows.saturating_sub(1), k - top, mcs - top)
        };
        // Center of the j-th of n equal column spans.
        let col = ((2 * j + 1) * self.mesh_cols / (2 * n)).min(self.mesh_cols - 1);
        (row, col)
    }

    /// Manhattan hop count between two grid positions.
    pub fn hops(a: (usize, usize), b: (usize, usize)) -> u64 {
        (a.0.abs_diff(b.0) + a.1.abs_diff(b.1)) as u64
    }
}

/// Which PABST components are active — the four configurations the paper
/// compares (Figs. 1, 7, 10, 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegulationMode {
    /// No bandwidth QoS at all (the contention baseline).
    None,
    /// Governor + pacer only (source-based regulation).
    SourceOnly,
    /// Priority arbiter only (target-based regulation).
    TargetOnly,
    /// Both — full PABST.
    Pabst,
}

impl RegulationMode {
    /// True when the source governor/pacer is active.
    pub fn source_active(self) -> bool {
        matches!(self, RegulationMode::SourceOnly | RegulationMode::Pabst)
    }

    /// True when the memory-controller priority arbiter is active.
    pub fn target_active(self) -> bool {
        matches!(self, RegulationMode::TargetOnly | RegulationMode::Pabst)
    }

    /// Display label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            RegulationMode::None => "none",
            RegulationMode::SourceOnly => "source-only",
            RegulationMode::TargetOnly => "target-only",
            RegulationMode::Pabst => "pabst",
        }
    }
}

/// Who gets charged for memory writes caused by dirty L3 evictions (§V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WbAccounting {
    /// Charge the class whose demand fill caused the eviction (the paper's
    /// default, §III-B3): the response carries a writeback flag and the
    /// pacer adds one period.
    #[default]
    ChargeDemand,
    /// Charge the class that owned the evicted line.
    ChargeOwner,
    /// Charge nobody (writeback bandwidth rides free).
    ChargeNone,
}

/// Full system configuration.
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// Number of tiles (cores).
    pub cores: usize,
    /// Number of memory controllers.
    pub mcs: usize,
    /// Physical shape: mesh placement, channel map, latency model.
    pub topology: Topology,
    /// Epoch length in cycles (10 µs at 2 GHz = 20 000).
    pub epoch_cycles: Cycle,
    /// Core structural parameters.
    pub core: pabst_cpu::CoreConfig,
    /// L1D geometry.
    pub l1: CacheConfig,
    /// Private L2 geometry.
    pub l2: CacheConfig,
    /// Shared L3 geometry (way-partitioned between classes).
    pub l3: CacheConfig,
    /// L2 MSHR entries per tile.
    pub l2_mshrs: usize,
    /// L3 MSHR entries (global).
    pub l3_mshrs: usize,
    /// L1 hit latency, cycles.
    pub l1_lat: u64,
    /// L2 hit latency, cycles.
    pub l2_lat: u64,
    /// Tile → L3 network + L3 array latency, cycles.
    pub l3_lat: Cycle,
    /// L3/MC → tile response latency, cycles.
    pub resp_lat: Cycle,
    /// DRAM timing/geometry per controller.
    pub dram: DramConfig,
    /// Governor feedback-loop parameters.
    pub monitor: MonitorConfig,
    /// Source-side governor mechanism (the [`GovernorKind`] zoo); only
    /// consulted when the regulation mode activates the source side.
    pub governor: GovernorKind,
    /// Target-side arbiter mechanism (the [`ArbiterMode`] zoo); only
    /// consulted when the regulation mode activates the target side
    /// (otherwise the controller runs priority-blind FR-FCFS).
    pub arbiter: ArbiterMode,
    /// Pacer burst window, requests.
    pub pacer_burst: u64,
    /// Arbiter slack, virtual ticks.
    pub arbiter_slack: u64,
    /// Writeback charging policy.
    pub wb_accounting: WbAccounting,
    /// Per-MC regulation (SIII-C1's alternative): one SAT signal and one
    /// governor per memory controller, and one pacer per (tile, MC). The
    /// paper's default is a single global wired-OR SAT and one governor;
    /// the per-MC variant avoids under-utilizing lightly loaded channels
    /// when traffic is skewed across controllers.
    pub per_mc_regulation: bool,
    /// Forward-progress watchdog: abort with a full diagnostic snapshot
    /// after this many consecutive epochs in which requests were pending
    /// but nothing completed. Zero disables the watchdog (the default —
    /// healthy experiments never need it; resilience runs enable it).
    pub watchdog_epochs: u64,
    /// Runtime invariant checking (conservation/bound/liveness laws
    /// evaluated at epoch boundaries). Observation only: the checker
    /// reads state and never mutates it, so it is excluded from
    /// [`SystemConfig::mechanism_hash`] and enabling it leaves every
    /// golden byte-identical. Chaos campaigns additionally switch on
    /// `bound_checks` and a liveness window.
    pub invariants: InvariantConfig,
}

impl SystemConfig {
    /// The paper's 32-core baseline (Table III): 8×4 tiled SoC, 32 KiB
    /// L1D, 256 KiB L2, 16 MiB shared L3 (16-way), 4 DDR channels.
    pub fn baseline_32core() -> Self {
        Self {
            cores: 32,
            mcs: 4,
            topology: Topology::uniform_8x4(),
            epoch_cycles: 20_000,
            core: pabst_cpu::CoreConfig::default(),
            l1: CacheConfig::with_capacity(32 * 1024, 8),
            l2: CacheConfig::with_capacity(256 * 1024, 8),
            l3: CacheConfig::with_capacity(16 * 1024 * 1024, 16),
            // 16 per-core L2 MSHRs: one 16-core streaming class's
            // outstanding requests (256) fit within the four controllers'
            // aggregate queueing (~320), while two classes' (512) do not —
            // the boundary Fig. 1 exercises.
            l2_mshrs: 16,
            l3_mshrs: 512,
            l1_lat: 4,
            l2_lat: 14,
            // Mesh hop + L3 array: low enough that the chaser (4 chains x
            // 16 cores = 64 outstanding) can saturate memory in isolation,
            // as the paper's methodology requires (SIV-A).
            l3_lat: 24,
            resp_lat: 8,
            dram: DramConfig::default(),
            monitor: MonitorConfig::default(),
            governor: GovernorKind::Sat,
            arbiter: ArbiterMode::Edf,
            pacer_burst: 16,
            arbiter_slack: 128,
            wb_accounting: WbAccounting::ChargeDemand,
            per_mc_regulation: false,
            watchdog_epochs: 0,
            invariants: InvariantConfig::default(),
        }
    }

    /// The paper's memcached machine: everything scaled down 4× from the
    /// 32-core system (8 cores, 1 memory controller, 4 MiB L3). The pacer
    /// burst and arbiter slack rescale with it — they are shape-derived
    /// constants, not universal ones (see [`SystemConfig::derived_pacer_burst`]).
    pub fn scaled_8core() -> Self {
        let mut c = Self::baseline_32core();
        c.cores = 8;
        c.mcs = 1;
        c.topology.mesh_cols = 4;
        c.topology.mesh_rows = 2;
        c.l3 = CacheConfig::with_capacity(4 * 1024 * 1024, 16);
        c.l3_mshrs = 128;
        c.pacer_burst = c.derived_pacer_burst();
        c.arbiter_slack = c.derived_arbiter_slack();
        c
    }

    /// A 64-tile mesh (8×8, 8 controllers): the first scale point past the
    /// paper's machine. Distance-modelled network, double-fold channel
    /// map, shape-derived pacing constants.
    pub fn mesh_64() -> Self {
        let mut c = Self::baseline_32core();
        c.cores = 64;
        c.mcs = 8;
        c.topology = Topology::mesh(8, 8);
        c.l3 = CacheConfig::with_capacity(32 * 1024 * 1024, 16);
        c.l3_mshrs = 1024;
        c.pacer_burst = c.derived_pacer_burst();
        c.arbiter_slack = c.derived_arbiter_slack();
        c
    }

    /// The 256-tile/16-controller scale point (16×16 mesh) the scale
    /// experiment probes for SAT-broadcast wobble.
    pub fn mesh_256x16() -> Self {
        let mut c = Self::baseline_32core();
        c.cores = 256;
        c.mcs = 16;
        c.topology = Topology::mesh(16, 16);
        c.l3 = CacheConfig::with_capacity(64 * 1024 * 1024, 16);
        c.l3_mshrs = 2048;
        c.pacer_burst = c.derived_pacer_burst();
        c.arbiter_slack = c.derived_arbiter_slack();
        c
    }

    /// The pacer burst window the machine shape implies: the aggregate MC
    /// ingress depth (per-controller ingress FIFO × controllers). A burst
    /// larger than that cannot land anyway — it just queues in the network
    /// — and a smaller one under-uses idle channels. Reproduces the
    /// baseline's hand-tuned 16 (4 × 4) exactly.
    pub fn derived_pacer_burst(&self) -> u64 {
        (self.dram.ingress_cap * self.mcs) as u64
    }

    /// The arbiter slack the machine shape implies: four virtual ticks per
    /// tile, so a full complement of cores can be in flight before the
    /// EDF arbiter's slack window saturates. Reproduces the baseline's
    /// hand-tuned 128 (4 × 32) exactly.
    pub fn derived_arbiter_slack(&self) -> u64 {
        4 * self.cores as u64
    }

    /// A tiny configuration for fast unit tests (4 cores, 1 MC, small
    /// caches). Not used by any experiment.
    pub fn small_test() -> Self {
        let mut c = Self::baseline_32core();
        c.cores = 4;
        c.mcs = 1;
        c.l3 = CacheConfig::with_capacity(256 * 1024, 16);
        c.l3_mshrs = 64;
        c.epoch_cycles = 2_000;
        c
    }

    /// The mechanism pair this config selects, as stable labels
    /// (`governor/arbiter`, e.g. `"sat/edf"`). Report tables and trace
    /// provenance use this form.
    pub fn mechanism_label(&self) -> String {
        format!("{}/{}", self.governor.label(), self.arbiter.label())
    }

    /// A stable FNV-1a hash over the mechanism selection and the
    /// regulation-relevant scalar knobs — the provenance fingerprint
    /// reports and traces carry so a rendered number can always be
    /// traced back to the exact mechanism configuration that produced
    /// it. Deliberately *not* a hash of the whole struct: cache/core
    /// geometry changes show up in the config name, while a silent
    /// mechanism or knob swap is what provenance must catch.
    pub fn mechanism_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
        };
        eat(self.governor.label().as_bytes());
        eat(b"/");
        eat(self.arbiter.label().as_bytes());
        for knob in [
            u64::from(self.monitor.m_init),
            u64::from(self.monitor.m_min),
            u64::from(self.monitor.m_max),
            u64::from(self.monitor.dm_min),
            u64::from(self.monitor.dm_max),
            u64::from(self.monitor.staleness_k),
            u64::from(self.monitor.degraded_m),
            self.pacer_burst,
            self.arbiter_slack,
        ] {
            eat(&knob.to_le_bytes());
        }
        h
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError::ZeroCores);
        }
        if self.mcs == 0 {
            return Err(ConfigError::ZeroMcs);
        }
        if self.epoch_cycles == 0 {
            return Err(ConfigError::ZeroEpochCycles);
        }
        if self.l2_mshrs == 0 || self.l3_mshrs == 0 {
            return Err(ConfigError::ZeroMshrs);
        }
        if self.monitor.staleness_k == 0 {
            // Typed here (not just as a string from the monitor): a zero
            // staleness window is the fail-safe misconfiguration callers
            // most plausibly hit programmatically.
            return Err(ConfigError::ZeroStalenessWindow);
        }
        let cells = self.topology.mesh_cols * self.topology.mesh_rows;
        if cells < self.cores {
            return Err(ConfigError::MeshTooSmall { cells, cores: self.cores });
        }
        self.dram.validate().map_err(ConfigError::Dram)?;
        self.monitor.validate().map_err(ConfigError::Monitor)?;
        Ok(())
    }
}

/// An invalid [`SystemConfig`] or [`crate::system::SystemBuilder`] input,
/// as a typed error — callers can match on the failure instead of
/// string-scraping, and nothing panics deep in `qos::stride`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `cores` was zero.
    ZeroCores,
    /// `mcs` was zero.
    ZeroMcs,
    /// `epoch_cycles` was zero.
    ZeroEpochCycles,
    /// An MSHR capacity was zero.
    ZeroMshrs,
    /// The governor's staleness window `K` was zero (the fail-safe would
    /// degrade on the very first epoch).
    ZeroStalenessWindow,
    /// The topology's mesh grid has fewer cells than the system has tiles.
    MeshTooSmall {
        /// Grid cells the mesh provides (`cols × rows`).
        cells: usize,
        /// Tiles that need placement.
        cores: usize,
    },
    /// No tile was given a workload.
    NoWorkloads,
    /// The classes' workload lists need more cores than the system has.
    TooManyCores {
        /// Cores consumed by the workload lists.
        requested: usize,
        /// Cores the configuration provides.
        available: usize,
    },
    /// A tile references a QoS class outside the weight table.
    ClassOutOfRange {
        /// The out-of-range class index.
        class: usize,
        /// Number of classes the weight table defines.
        classes: usize,
    },
    /// The weight table is invalid (empty class set, zero or overflowing
    /// weights, too many classes).
    Weights(ShareError),
    /// DRAM timing validation failed.
    Dram(String),
    /// Governor configuration validation failed (typed: callers can
    /// match the exact constraint, mirroring the variants here).
    Monitor(MonitorConfigError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid system config: ")?;
        match self {
            ConfigError::ZeroCores => write!(f, "cores must be non-zero"),
            ConfigError::ZeroMcs => write!(f, "mcs must be non-zero"),
            ConfigError::ZeroEpochCycles => write!(f, "epoch_cycles must be non-zero"),
            ConfigError::ZeroMshrs => write!(f, "MSHR capacities must be non-zero"),
            ConfigError::ZeroStalenessWindow => {
                write!(f, "monitor staleness window K must be >= 1")
            }
            ConfigError::MeshTooSmall { cells, cores } => {
                write!(f, "mesh has {cells} cells but must place {cores} tiles")
            }
            ConfigError::NoWorkloads => write!(f, "at least one core must run a workload"),
            ConfigError::TooManyCores { requested, available } => {
                write!(f, "classes use {requested} cores but the system has {available}")
            }
            ConfigError::ClassOutOfRange { class, classes } => {
                write!(f, "workload class {class} out of range for {classes} weights")
            }
            ConfigError::Weights(e) => write!(f, "{e}"),
            ConfigError::Dram(m) => write!(f, "{m}"),
            ConfigError::Monitor(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<ShareError> for ConfigError {
    fn from(e: ShareError) -> Self {
        ConfigError::Weights(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_valid() {
        assert!(SystemConfig::baseline_32core().validate().is_ok());
        assert!(SystemConfig::scaled_8core().validate().is_ok());
        assert!(SystemConfig::small_test().validate().is_ok());
        assert!(SystemConfig::mesh_64().validate().is_ok());
        assert!(SystemConfig::mesh_256x16().validate().is_ok());
    }

    #[test]
    fn scaled_system_is_quarter_size() {
        let big = SystemConfig::baseline_32core();
        let small = SystemConfig::scaled_8core();
        assert_eq!(small.cores * 4, big.cores);
        assert_eq!(small.mcs * 4, big.mcs);
        assert_eq!(small.l3.bytes() * 4, big.l3.bytes());
    }

    #[test]
    fn baseline_pacing_constants_match_their_derivation() {
        // Table III's hand-tuned 16/128 are exactly what the shape
        // derivation produces for the 32-core machine — pinning that here
        // documents their provenance and keeps the literals honest.
        let c = SystemConfig::baseline_32core();
        assert_eq!(c.pacer_burst, c.derived_pacer_burst());
        assert_eq!(c.arbiter_slack, c.derived_arbiter_slack());
    }

    #[test]
    fn scaled_config_rescales_pacing_with_the_shape() {
        // The satellite bug: scaled_8core used to keep the 32-core values
        // (16/128) despite having a quarter of the ingress depth and
        // tiles. Both must now follow the shape.
        let c = SystemConfig::scaled_8core();
        assert_eq!(c.pacer_burst, (c.dram.ingress_cap * c.mcs) as u64);
        assert_eq!(c.arbiter_slack, 4 * c.cores as u64);
        assert!(c.pacer_burst < SystemConfig::baseline_32core().pacer_burst);
        let m = SystemConfig::mesh_256x16();
        assert_eq!(m.pacer_burst, (m.dram.ingress_cap * m.mcs) as u64);
        assert_eq!(m.arbiter_slack, 1024);
    }

    #[test]
    fn mesh_validation_rejects_undersized_grids() {
        let mut c = SystemConfig::mesh_64();
        c.topology.mesh_rows = 4; // 8×4 = 32 cells for 64 tiles
        assert_eq!(c.validate(), Err(ConfigError::MeshTooSmall { cells: 32, cores: 64 }));
        assert!(c.validate().unwrap_err().to_string().contains("64 tiles"));
    }

    #[test]
    fn mesh_placement_stays_on_the_grid() {
        for cfg in [SystemConfig::mesh_64(), SystemConfig::mesh_256x16()] {
            let t = cfg.topology;
            for i in 0..cfg.cores {
                let (r, c) = t.tile_pos(i);
                assert!(r < t.mesh_rows && c < t.mesh_cols, "tile {i} off-grid");
            }
            let mut seen = std::collections::BTreeSet::new();
            for k in 0..cfg.mcs {
                let (r, c) = t.mc_pos(k, cfg.mcs);
                assert!(r < t.mesh_rows && c < t.mesh_cols, "mc {k} off-grid");
                assert!(
                    r == 0 || r == t.mesh_rows - 1,
                    "controllers sit on the top/bottom die edges"
                );
                assert!(seen.insert((r, c)), "mc {k} collides at ({r},{c})");
            }
            let (lr, lc) = t.l3_pos();
            assert!(lr < t.mesh_rows && lc < t.mesh_cols);
        }
    }

    #[test]
    fn hop_distance_is_manhattan() {
        assert_eq!(Topology::hops((0, 0), (3, 4)), 7);
        assert_eq!(Topology::hops((2, 5), (2, 5)), 0);
        assert_eq!(Topology::hops((5, 1), (1, 2)), 5);
    }

    #[test]
    fn channel_maps_dispatch_to_their_hashes() {
        let line = LineAddr::new(0xdead_beef);
        assert_eq!(ChannelMap::XorFold.channel_of(line, 16), line.interleave(16));
        assert_eq!(ChannelMap::DoubleFold.channel_of(line, 16), line.interleave_spread(16));
        assert_eq!(ChannelMap::default(), ChannelMap::XorFold, "legacy map stays the default");
    }

    #[test]
    fn mode_component_activation() {
        assert!(RegulationMode::Pabst.source_active());
        assert!(RegulationMode::Pabst.target_active());
        assert!(RegulationMode::SourceOnly.source_active());
        assert!(!RegulationMode::SourceOnly.target_active());
        assert!(!RegulationMode::TargetOnly.source_active());
        assert!(RegulationMode::TargetOnly.target_active());
        assert!(!RegulationMode::None.source_active());
        assert!(!RegulationMode::None.target_active());
    }

    #[test]
    fn validation_rejects_zero_cores() {
        let mut c = SystemConfig::baseline_32core();
        c.cores = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroCores));
        let mut c = SystemConfig::baseline_32core();
        c.epoch_cycles = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroEpochCycles));
    }

    #[test]
    fn validation_errors_are_typed() {
        let mut c = SystemConfig::baseline_32core();
        c.mcs = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroMcs));
        let mut c = SystemConfig::baseline_32core();
        c.l3_mshrs = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroMshrs));
        let mut c = SystemConfig::baseline_32core();
        c.monitor.staleness_k = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroStalenessWindow));
        let mut c = SystemConfig::baseline_32core();
        c.monitor.dm_min = 0;
        // The inner error is typed too — matchable down to the exact
        // violated constraint, not a string.
        assert_eq!(c.validate(), Err(ConfigError::Monitor(MonitorConfigError::BadDeltaBounds)));
    }

    #[test]
    fn mechanism_provenance_hash_tracks_the_selection() {
        let base = SystemConfig::baseline_32core();
        assert_eq!(base.mechanism_label(), "sat/edf");
        assert_eq!(base.mechanism_hash(), SystemConfig::baseline_32core().mechanism_hash());
        let mut lms = base;
        lms.governor = GovernorKind::LmsAr;
        assert_ne!(lms.mechanism_hash(), base.mechanism_hash());
        assert_eq!(lms.mechanism_label(), "lms-ar/edf");
        let mut dpq = base;
        dpq.arbiter = ArbiterMode::Dpq;
        assert_ne!(dpq.mechanism_hash(), base.mechanism_hash());
        assert_ne!(dpq.mechanism_hash(), lms.mechanism_hash());
        let mut knob = base;
        knob.arbiter_slack += 1;
        assert_ne!(knob.mechanism_hash(), base.mechanism_hash(), "knobs are provenance too");
    }

    #[test]
    fn config_error_display_keeps_the_invalid_config_prefix() {
        assert!(ConfigError::ZeroCores.to_string().starts_with("invalid system config: "));
        let e = ConfigError::Weights(ShareError::ZeroWeight);
        assert!(e.to_string().contains("non-zero"), "{e}");
        let e = ConfigError::ClassOutOfRange { class: 5, classes: 2 };
        assert!(e.to_string().contains("class 5"), "{e}");
    }
}
