//! System configuration (the paper's Table III class of machine).

use std::fmt;

use pabst_cache::CacheConfig;
use pabst_core::governor::MonitorConfig;
use pabst_core::qos::ShareError;
use pabst_dram::DramConfig;
use pabst_simkit::Cycle;

/// Which PABST components are active — the four configurations the paper
/// compares (Figs. 1, 7, 10, 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegulationMode {
    /// No bandwidth QoS at all (the contention baseline).
    None,
    /// Governor + pacer only (source-based regulation).
    SourceOnly,
    /// Priority arbiter only (target-based regulation).
    TargetOnly,
    /// Both — full PABST.
    Pabst,
}

impl RegulationMode {
    /// True when the source governor/pacer is active.
    pub fn source_active(self) -> bool {
        matches!(self, RegulationMode::SourceOnly | RegulationMode::Pabst)
    }

    /// True when the memory-controller priority arbiter is active.
    pub fn target_active(self) -> bool {
        matches!(self, RegulationMode::TargetOnly | RegulationMode::Pabst)
    }

    /// Display label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            RegulationMode::None => "none",
            RegulationMode::SourceOnly => "source-only",
            RegulationMode::TargetOnly => "target-only",
            RegulationMode::Pabst => "pabst",
        }
    }
}

/// Who gets charged for memory writes caused by dirty L3 evictions (§V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WbAccounting {
    /// Charge the class whose demand fill caused the eviction (the paper's
    /// default, §III-B3): the response carries a writeback flag and the
    /// pacer adds one period.
    #[default]
    ChargeDemand,
    /// Charge the class that owned the evicted line.
    ChargeOwner,
    /// Charge nobody (writeback bandwidth rides free).
    ChargeNone,
}

/// Full system configuration.
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// Number of tiles (cores).
    pub cores: usize,
    /// Number of memory controllers.
    pub mcs: usize,
    /// Epoch length in cycles (10 µs at 2 GHz = 20 000).
    pub epoch_cycles: Cycle,
    /// Core structural parameters.
    pub core: pabst_cpu::CoreConfig,
    /// L1D geometry.
    pub l1: CacheConfig,
    /// Private L2 geometry.
    pub l2: CacheConfig,
    /// Shared L3 geometry (way-partitioned between classes).
    pub l3: CacheConfig,
    /// L2 MSHR entries per tile.
    pub l2_mshrs: usize,
    /// L3 MSHR entries (global).
    pub l3_mshrs: usize,
    /// L1 hit latency, cycles.
    pub l1_lat: u64,
    /// L2 hit latency, cycles.
    pub l2_lat: u64,
    /// Tile → L3 network + L3 array latency, cycles.
    pub l3_lat: Cycle,
    /// L3/MC → tile response latency, cycles.
    pub resp_lat: Cycle,
    /// DRAM timing/geometry per controller.
    pub dram: DramConfig,
    /// Governor feedback-loop parameters.
    pub monitor: MonitorConfig,
    /// Pacer burst window, requests.
    pub pacer_burst: u64,
    /// Arbiter slack, virtual ticks.
    pub arbiter_slack: u64,
    /// Writeback charging policy.
    pub wb_accounting: WbAccounting,
    /// Per-MC regulation (SIII-C1's alternative): one SAT signal and one
    /// governor per memory controller, and one pacer per (tile, MC). The
    /// paper's default is a single global wired-OR SAT and one governor;
    /// the per-MC variant avoids under-utilizing lightly loaded channels
    /// when traffic is skewed across controllers.
    pub per_mc_regulation: bool,
    /// Forward-progress watchdog: abort with a full diagnostic snapshot
    /// after this many consecutive epochs in which requests were pending
    /// but nothing completed. Zero disables the watchdog (the default —
    /// healthy experiments never need it; resilience runs enable it).
    pub watchdog_epochs: u64,
}

impl SystemConfig {
    /// The paper's 32-core baseline (Table III): 8×4 tiled SoC, 32 KiB
    /// L1D, 256 KiB L2, 16 MiB shared L3 (16-way), 4 DDR channels.
    pub fn baseline_32core() -> Self {
        Self {
            cores: 32,
            mcs: 4,
            epoch_cycles: 20_000,
            core: pabst_cpu::CoreConfig::default(),
            l1: CacheConfig::with_capacity(32 * 1024, 8),
            l2: CacheConfig::with_capacity(256 * 1024, 8),
            l3: CacheConfig::with_capacity(16 * 1024 * 1024, 16),
            // 16 per-core L2 MSHRs: one 16-core streaming class's
            // outstanding requests (256) fit within the four controllers'
            // aggregate queueing (~320), while two classes' (512) do not —
            // the boundary Fig. 1 exercises.
            l2_mshrs: 16,
            l3_mshrs: 512,
            l1_lat: 4,
            l2_lat: 14,
            // Mesh hop + L3 array: low enough that the chaser (4 chains x
            // 16 cores = 64 outstanding) can saturate memory in isolation,
            // as the paper's methodology requires (SIV-A).
            l3_lat: 24,
            resp_lat: 8,
            dram: DramConfig::default(),
            monitor: MonitorConfig::default(),
            pacer_burst: 16,
            arbiter_slack: 128,
            wb_accounting: WbAccounting::ChargeDemand,
            per_mc_regulation: false,
            watchdog_epochs: 0,
        }
    }

    /// The paper's memcached machine: everything scaled down 4× from the
    /// 32-core system (8 cores, 1 memory controller, 4 MiB L3).
    pub fn scaled_8core() -> Self {
        let mut c = Self::baseline_32core();
        c.cores = 8;
        c.mcs = 1;
        c.l3 = CacheConfig::with_capacity(4 * 1024 * 1024, 16);
        c.l3_mshrs = 128;
        c
    }

    /// A tiny configuration for fast unit tests (4 cores, 1 MC, small
    /// caches). Not used by any experiment.
    pub fn small_test() -> Self {
        let mut c = Self::baseline_32core();
        c.cores = 4;
        c.mcs = 1;
        c.l3 = CacheConfig::with_capacity(256 * 1024, 16);
        c.l3_mshrs = 64;
        c.epoch_cycles = 2_000;
        c
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError::ZeroCores);
        }
        if self.mcs == 0 {
            return Err(ConfigError::ZeroMcs);
        }
        if self.epoch_cycles == 0 {
            return Err(ConfigError::ZeroEpochCycles);
        }
        if self.l2_mshrs == 0 || self.l3_mshrs == 0 {
            return Err(ConfigError::ZeroMshrs);
        }
        if self.monitor.staleness_k == 0 {
            // Typed here (not just as a string from the monitor): a zero
            // staleness window is the fail-safe misconfiguration callers
            // most plausibly hit programmatically.
            return Err(ConfigError::ZeroStalenessWindow);
        }
        self.dram.validate().map_err(ConfigError::Dram)?;
        self.monitor.validate().map_err(ConfigError::Monitor)?;
        Ok(())
    }
}

/// An invalid [`SystemConfig`] or [`crate::system::SystemBuilder`] input,
/// as a typed error — callers can match on the failure instead of
/// string-scraping, and nothing panics deep in `qos::stride`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `cores` was zero.
    ZeroCores,
    /// `mcs` was zero.
    ZeroMcs,
    /// `epoch_cycles` was zero.
    ZeroEpochCycles,
    /// An MSHR capacity was zero.
    ZeroMshrs,
    /// The governor's staleness window `K` was zero (the fail-safe would
    /// degrade on the very first epoch).
    ZeroStalenessWindow,
    /// No tile was given a workload.
    NoWorkloads,
    /// The classes' workload lists need more cores than the system has.
    TooManyCores {
        /// Cores consumed by the workload lists.
        requested: usize,
        /// Cores the configuration provides.
        available: usize,
    },
    /// A tile references a QoS class outside the weight table.
    ClassOutOfRange {
        /// The out-of-range class index.
        class: usize,
        /// Number of classes the weight table defines.
        classes: usize,
    },
    /// The weight table is invalid (empty class set, zero or overflowing
    /// weights, too many classes).
    Weights(ShareError),
    /// DRAM timing validation failed.
    Dram(String),
    /// Governor configuration validation failed.
    Monitor(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid system config: ")?;
        match self {
            ConfigError::ZeroCores => write!(f, "cores must be non-zero"),
            ConfigError::ZeroMcs => write!(f, "mcs must be non-zero"),
            ConfigError::ZeroEpochCycles => write!(f, "epoch_cycles must be non-zero"),
            ConfigError::ZeroMshrs => write!(f, "MSHR capacities must be non-zero"),
            ConfigError::ZeroStalenessWindow => {
                write!(f, "monitor staleness window K must be >= 1")
            }
            ConfigError::NoWorkloads => write!(f, "at least one core must run a workload"),
            ConfigError::TooManyCores { requested, available } => {
                write!(f, "classes use {requested} cores but the system has {available}")
            }
            ConfigError::ClassOutOfRange { class, classes } => {
                write!(f, "workload class {class} out of range for {classes} weights")
            }
            ConfigError::Weights(e) => write!(f, "{e}"),
            ConfigError::Dram(m) => write!(f, "{m}"),
            ConfigError::Monitor(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<ShareError> for ConfigError {
    fn from(e: ShareError) -> Self {
        ConfigError::Weights(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_valid() {
        assert!(SystemConfig::baseline_32core().validate().is_ok());
        assert!(SystemConfig::scaled_8core().validate().is_ok());
        assert!(SystemConfig::small_test().validate().is_ok());
    }

    #[test]
    fn scaled_system_is_quarter_size() {
        let big = SystemConfig::baseline_32core();
        let small = SystemConfig::scaled_8core();
        assert_eq!(small.cores * 4, big.cores);
        assert_eq!(small.mcs * 4, big.mcs);
        assert_eq!(small.l3.bytes() * 4, big.l3.bytes());
    }

    #[test]
    fn mode_component_activation() {
        assert!(RegulationMode::Pabst.source_active());
        assert!(RegulationMode::Pabst.target_active());
        assert!(RegulationMode::SourceOnly.source_active());
        assert!(!RegulationMode::SourceOnly.target_active());
        assert!(!RegulationMode::TargetOnly.source_active());
        assert!(RegulationMode::TargetOnly.target_active());
        assert!(!RegulationMode::None.source_active());
        assert!(!RegulationMode::None.target_active());
    }

    #[test]
    fn validation_rejects_zero_cores() {
        let mut c = SystemConfig::baseline_32core();
        c.cores = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroCores));
        let mut c = SystemConfig::baseline_32core();
        c.epoch_cycles = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroEpochCycles));
    }

    #[test]
    fn validation_errors_are_typed() {
        let mut c = SystemConfig::baseline_32core();
        c.mcs = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroMcs));
        let mut c = SystemConfig::baseline_32core();
        c.l3_mshrs = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroMshrs));
        let mut c = SystemConfig::baseline_32core();
        c.monitor.staleness_k = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroStalenessWindow));
        let mut c = SystemConfig::baseline_32core();
        c.monitor.dm_min = 0;
        assert!(matches!(c.validate(), Err(ConfigError::Monitor(_))));
    }

    #[test]
    fn config_error_display_keeps_the_invalid_config_prefix() {
        assert!(ConfigError::ZeroCores.to_string().starts_with("invalid system config: "));
        let e = ConfigError::Weights(ShareError::ZeroWeight);
        assert!(e.to_string().contains("non-zero"), "{e}");
        let e = ConfigError::ClassOutOfRange { class: 5, classes: 2 };
        assert!(e.to_string().contains("class 5"), "{e}");
    }
}
