//! One tile: core + L1D + private L2 with MSHRs + the PABST pacer.
//!
//! The tile implements the core's [`pabst_cpu::MemPort`]: L1 and L2 are
//! probed inline (their latency is returned to the core), an L2 miss
//! allocates an MSHR and enqueues a network injection, and the *pacer*
//! gates injections into the SoC network — the paper's source-regulation
//! point (§III-B3).

use std::collections::VecDeque;

use pabst_cache::{LineAddr, MshrOutcome, MshrTable, SetAssocCache};
use pabst_core::pacer::Pacer;
use pabst_core::qos::QosId;
use pabst_cpu::{Access, LoadId, MemPort, OooCore, Workload};
use pabst_simkit::Cycle;

use crate::config::ChannelMap;

/// A waiter merged into an L2 MSHR entry: which dynamic load (or a store)
/// wants the line.
#[derive(Debug, Clone, Copy)]
pub struct L2Waiter {
    /// The core-side load identity; `None` for stores.
    pub load: Option<LoadId>,
    /// Whether the line must be filled dirty (write-allocate store).
    pub store: bool,
}

/// A request the tile wants to inject into the SoC network.
#[derive(Debug, Clone, Copy)]
pub struct InjectReq {
    /// Missed line.
    pub line: LineAddr,
    /// Whether any waiter is a store (fill dirty).
    pub store: bool,
}

/// The tile's L1/L2 front end, kept separate from the core so the borrow
/// of the core during `step` doesn't alias the port.
#[derive(Debug)]
pub struct TileMem {
    /// Tile's QoS class.
    pub class: QosId,
    l1: SetAssocCache,
    l2: SetAssocCache,
    pub(crate) mshrs: MshrTable<L2Waiter>,
    /// Primary misses awaiting injection into the network (pacer-gated).
    pub(crate) inject_q: VecDeque<InjectReq>,
    /// The source pacers: empty when source regulation is disabled, one
    /// entry for the paper's single global governor, or one per memory
    /// controller for the per-MC variant (SIII-C1), selected by the
    /// request's home controller.
    pub(crate) pacers: Vec<Pacer>,
    /// Number of memory controllers (for per-MC pacer selection).
    mcs: usize,
    /// Line→controller map (must match the interconnect's routing, or the
    /// per-MC pacers would meter the wrong controller's traffic).
    channel_map: ChannelMap,
    /// Period charged when each in-flight line issued, keyed by line: the
    /// settlement refund/extra-charge must use the issue-time amount, not
    /// whatever period an epoch boundary has since programmed. A flat
    /// table: at most one entry per in-flight primary miss (MSHR-bounded),
    /// so linear search beats a tree and never allocates at steady state.
    charged: Vec<(LineAddr, Cycle)>,
    l1_lat: u64,
    l2_lat: u64,
    /// Dirty L2 victims waiting to be written back into the L3.
    pub(crate) l2_wb_q: VecDeque<LineAddr>,
    /// Recycled waiter buffer for [`TileMem::on_fill`] (no per-fill
    /// allocation on the response hot path).
    fill_scratch: Vec<L2Waiter>,
}

impl TileMem {
    /// Builds the tile memory front end.
    #[allow(clippy::too_many_arguments)] // flat constructor mirrors SystemBuilder's plumbing
    pub fn new(
        class: QosId,
        l1: SetAssocCache,
        l2: SetAssocCache,
        mshrs: usize,
        l1_lat: u64,
        l2_lat: u64,
        pacers: Vec<Pacer>,
        mcs: usize,
        channel_map: ChannelMap,
    ) -> Self {
        assert!(mcs > 0, "at least one memory controller");
        assert!(
            pacers.is_empty() || pacers.len() == 1 || pacers.len() == mcs,
            "pacer count must be 0 (off), 1 (global) or one per MC"
        );
        Self {
            class,
            l1,
            l2,
            mshrs: MshrTable::new(mshrs),
            inject_q: VecDeque::new(),
            pacers,
            mcs,
            channel_map,
            charged: Vec::new(),
            l1_lat,
            l2_lat,
            l2_wb_q: VecDeque::new(),
            fill_scratch: Vec::new(),
        }
    }

    /// The pacer responsible for `line` (per-MC mode selects by the home
    /// controller).
    fn pacer_for(&mut self, line: LineAddr) -> Option<&mut Pacer> {
        match self.pacers.len() {
            0 => None,
            1 => self.pacers.first_mut(),
            _ => {
                let idx = self.channel_map.channel_of(line, self.mcs);
                self.pacers.get_mut(idx)
            }
        }
    }

    /// Handles a fill returning from the L3/memory: fills L2 (and L1),
    /// releases the MSHR, and returns the waiters plus any dirty L2 victim
    /// that must be written back to the L3. The returned slice borrows an
    /// internal buffer that the next `on_fill` call reuses.
    pub fn on_fill(&mut self, line: LineAddr) -> &[L2Waiter] {
        let mut waiters = std::mem::take(&mut self.fill_scratch);
        waiters.clear();
        self.mshrs.complete_into(line, &mut waiters);
        let dirty = waiters.iter().any(|w| w.store);
        if let Some(ev) = self.l2.fill(line, self.class, dirty) {
            if ev.dirty {
                self.l2_wb_q.push_back(ev.line);
            }
        }
        // Fill L1 as well; L1 victims are clean or folded into L2.
        if let Some(ev) = self.l1.fill(line, self.class, dirty) {
            if ev.dirty {
                // Write-back L1 victim into L2 (mark dirty if present).
                self.l2.probe_write(ev.line);
            }
        }
        self.fill_scratch = waiters;
        &self.fill_scratch
    }

    /// All pacers (empty when source regulation is off).
    pub fn pacers_mut(&mut self) -> &mut [Pacer] {
        &mut self.pacers
    }

    /// All pacers, read-only (inspection and invariant checks).
    pub fn pacers(&self) -> &[Pacer] {
        &self.pacers
    }

    /// Settles response-side accounting for `line`: refund when the shared
    /// cache serviced it, extra charge when its fill caused a writeback.
    /// Both use the period recorded when the request issued — an epoch
    /// boundary may have reprogrammed the pacer while it was in flight.
    pub fn settle_response(&mut self, line: LineAddr, l3_hit: bool, wb_flag: bool, now: Cycle) {
        let charged = match self.charged.iter().position(|(l, _)| *l == line) {
            Some(i) => self.charged.swap_remove(i).1,
            None => 0,
        };
        if let Some(p) = self.pacer_for(line) {
            if l3_hit {
                p.on_shared_hit(charged, now);
            }
            if wb_flag {
                p.on_writeback(charged);
            }
        }
    }

    /// True when at least one miss is queued for injection; lets the SoC
    /// loop skip idle tiles without consulting the pacer.
    pub fn wants_inject(&self) -> bool {
        !self.inject_q.is_empty()
    }

    /// Attempts to release the oldest pending injection, gated by the
    /// responsible pacer. Returns the request when the network may take it
    /// this cycle.
    pub fn try_inject(&mut self, now: Cycle) -> Option<InjectReq> {
        let head = *self.inject_q.front()?;
        let charged = match self.pacer_for(head.line) {
            Some(p) => {
                if !p.try_issue(now) {
                    return None;
                }
                Some(p.period())
            }
            None => None,
        };
        if let Some(c) = charged {
            // Insert-or-overwrite, matching map semantics (at most one
            // entry per line).
            match self.charged.iter_mut().find(|(l, _)| *l == head.line) {
                Some((_, v)) => *v = c,
                None => self.charged.push((head.line, c)),
            }
        }
        self.inject_q.pop_front();
        Some(head)
    }

    /// Read-only variant of [`TileMem::pacer_for`], for horizon queries.
    fn pacer_ref_for(&self, line: LineAddr) -> Option<&Pacer> {
        match self.pacers.len() {
            0 => None,
            1 => self.pacers.first(),
            _ => self.pacers.get(self.channel_map.channel_of(line, self.mcs)),
        }
    }

    /// The earliest cycle a [`TileMem::try_inject`] call can change state:
    /// `None` when nothing is queued, `Some(now)` when the head request
    /// could issue this cycle (no pacer, unthrottled, or period already
    /// elapsed), otherwise the head pacer's `C_next`. While the head is
    /// NACKed, the only per-cycle mutation naive stepping performs is the
    /// pacer's throttle counter, which the skip path accrues through
    /// [`TileMem::accrue_throttle_skip`].
    pub fn next_inject_at(&self, now: Cycle) -> Option<Cycle> {
        let head = self.inject_q.front()?;
        match self.pacer_ref_for(head.line) {
            None => Some(now),
            Some(p) => Some(p.next_issue_at().max(now)),
        }
    }

    /// Batch-accrues the throttle NACKs that `cycles` naive
    /// [`TileMem::try_inject`] calls would have recorded on the head
    /// request's pacer. Only valid over a window in which every such call
    /// would have NACKed — i.e. the window ends before
    /// [`TileMem::next_inject_at`]. A tile with nothing queued is a no-op.
    pub fn accrue_throttle_skip(&mut self, cycles: u64) {
        let Some(head) = self.inject_q.front().copied() else { return };
        if let Some(p) = self.pacer_for(head.line) {
            p.note_throttled(cycles);
        }
    }

    /// Pending L2 writebacks to the L3.
    pub fn pop_l2_writeback(&mut self) -> Option<LineAddr> {
        self.l2_wb_q.pop_front()
    }

    /// L2 demand hit/miss counts (for reports).
    pub fn l2_stats(&self) -> (u64, u64) {
        (self.l2.hits(), self.l2.misses())
    }
}

impl MemPort for TileMem {
    fn access(&mut self, _now: Cycle, line: LineAddr, store: bool, id: LoadId) -> Access {
        // L1 probe.
        let l1_hit = if store { self.l1.probe_write(line) } else { self.l1.probe(line) };
        if l1_hit {
            // Store dirtiness must eventually reach L2 on L1 eviction; the
            // fill path handles it. For hits, also mark L2 (inclusive-ish).
            if store {
                self.l2.probe_write(line);
            }
            return Access::Hit(self.l1_lat);
        }
        // L2 probe.
        let l2_hit = if store { self.l2.probe_write(line) } else { self.l2.probe(line) };
        if l2_hit {
            if let Some(ev) = self.l1.fill(line, self.class, store) {
                if ev.dirty {
                    self.l2.probe_write(ev.line);
                }
            }
            return Access::Hit(self.l2_lat);
        }
        // L2 miss: allocate an MSHR.
        let waiter = L2Waiter { load: (!store).then_some(id), store };
        match self.mshrs.alloc(line, waiter) {
            MshrOutcome::Primary => {
                self.inject_q.push_back(InjectReq { line, store });
                Access::Miss
            }
            MshrOutcome::Secondary => Access::Miss,
            MshrOutcome::Full => Access::Stall,
        }
    }
}

/// A full tile: the core plus its memory front end and workload.
pub struct Tile {
    /// The out-of-order core.
    pub core: OooCore,
    /// L1/L2/MSHR/pacer front end.
    pub mem: TileMem,
    /// The workload generator driving the core.
    pub workload: Box<dyn Workload>,
}

impl std::fmt::Debug for Tile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tile")
            .field("class", &self.mem.class)
            .field("workload", &self.workload.name())
            .finish_non_exhaustive()
    }
}

impl Tile {
    /// Advances the core one cycle against the tile's memory front end.
    pub fn step_core(&mut self, now: Cycle) {
        self.core.step(now, self.workload.as_mut(), &mut self.mem);
    }

    /// The earliest cycle this tile can change state on its own: the min
    /// of the injection-queue horizon ([`TileMem::next_inject_at`]) and
    /// the core's self-scheduled horizon. [`crate::system::System`]'s
    /// quiescence skipping min-combines this across tiles; a too-early
    /// answer costs speed only, never correctness.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut h = pabst_simkit::horizon::Horizon::new();
        h.merge(self.mem.next_inject_at(now));
        h.merge(self.core.next_event(now));
        h.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pabst_cache::CacheConfig;
    use pabst_cpu::Access;

    fn mem(pacers: Vec<Pacer>) -> TileMem {
        TileMem::new(
            QosId::new(0),
            SetAssocCache::new(CacheConfig { sets: 8, ways: 2 }),
            SetAssocCache::new(CacheConfig { sets: 32, ways: 4 }),
            4,
            4,
            14,
            pacers,
            4,
            ChannelMap::XorFold,
        )
    }

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn miss_allocates_mshr_and_queues_injection() {
        let mut m = mem(Vec::new());
        let r = m.access(0, line(1), false, LoadId(1));
        assert_eq!(r, Access::Miss);
        assert_eq!(m.mshrs.len(), 1);
        assert!(m.try_inject(0).is_some(), "primary miss must inject");
        assert!(m.try_inject(0).is_none(), "only one injection per miss");
    }

    #[test]
    fn secondary_miss_does_not_reinject() {
        let mut m = mem(Vec::new());
        assert_eq!(m.access(0, line(1), false, LoadId(1)), Access::Miss);
        assert_eq!(m.access(0, line(1), false, LoadId(2)), Access::Miss);
        assert_eq!(m.mshrs.len(), 1, "secondary merges");
        let _ = m.try_inject(0);
        assert!(m.try_inject(0).is_none());
    }

    #[test]
    fn mshr_exhaustion_stalls() {
        let mut m = mem(Vec::new());
        for i in 0..4 {
            assert_eq!(m.access(0, line(i * 64), false, LoadId(i)), Access::Miss);
        }
        assert_eq!(m.access(0, line(999), false, LoadId(9)), Access::Stall);
    }

    #[test]
    fn fill_wakes_all_waiters_and_hits_after() {
        let mut m = mem(Vec::new());
        let _ = m.access(0, line(5), false, LoadId(1));
        let _ = m.access(0, line(5), false, LoadId(2));
        let waiters = m.on_fill(line(5));
        assert_eq!(waiters.len(), 2);
        // Now a hit in L1 (fast path).
        assert_eq!(m.access(1, line(5), false, LoadId(3)), Access::Hit(4));
    }

    #[test]
    fn store_miss_fills_dirty_and_later_evicts_as_writeback() {
        let mut m = mem(Vec::new());
        assert_eq!(m.access(0, line(7), true, LoadId(1)), Access::Miss);
        let w = m.on_fill(line(7));
        assert!(w[0].store);
        // Thrash the L2 set containing line 7 to force its eviction
        // (L2 has 32 sets, 4 ways: lines 7+32k share its set; the L1
        // eviction path may refresh line 7's recency, so overfill).
        let mut wbs = Vec::new();
        for k in 1..=8 {
            let l = line(7 + 32 * k);
            let _ = m.access(0, l, false, LoadId(10 + k));
            m.on_fill(l);
            while let Some(wb) = m.pop_l2_writeback() {
                wbs.push(wb);
            }
        }
        assert!(wbs.contains(&line(7)), "dirty victim must write back, got {wbs:?}");
    }

    #[test]
    fn pacer_gates_injection() {
        let mut m = mem(vec![Pacer::with_burst(1000, 1)]);
        let _ = m.access(0, line(1), false, LoadId(1));
        let _ = m.access(0, line(2), false, LoadId(2));
        assert!(m.try_inject(0).is_some(), "first injection rides initial credit");
        assert!(m.try_inject(1).is_none(), "second is paced");
        assert!(m.try_inject(1000).is_some(), "period elapsed");
    }

    #[test]
    fn next_inject_at_tracks_the_head_pacer() {
        let mut m = mem(vec![Pacer::with_burst(1000, 1)]);
        assert_eq!(m.next_inject_at(5), None, "empty queue has no horizon");
        let _ = m.access(0, line(1), false, LoadId(1));
        let _ = m.access(0, line(2), false, LoadId(2));
        assert_eq!(m.next_inject_at(0), Some(0), "initial credit issues now");
        assert!(m.try_inject(0).is_some());
        assert_eq!(m.next_inject_at(1), Some(1000), "head NACKed until the period elapses");

        // Unpaced tiles can always inject.
        let mut free = mem(Vec::new());
        let _ = free.access(0, line(3), false, LoadId(3));
        assert_eq!(free.next_inject_at(7), Some(7));
    }

    #[test]
    fn accrued_throttle_skip_matches_naive_nack_loop() {
        let mut naive = mem(vec![Pacer::with_burst(100, 1)]);
        let mut skipped = mem(vec![Pacer::with_burst(100, 1)]);
        for m in [&mut naive, &mut skipped] {
            let _ = m.access(0, line(1), false, LoadId(1));
            let _ = m.access(0, line(2), false, LoadId(2));
            assert!(m.try_inject(0).is_some());
        }
        for now in 1..100 {
            assert!(naive.try_inject(now).is_none());
        }
        skipped.accrue_throttle_skip(99);
        assert_eq!(naive.pacers(), skipped.pacers());
        assert!(naive.try_inject(100).is_some());
        assert!(skipped.try_inject(100).is_some());
        assert_eq!(naive.pacers(), skipped.pacers());
        // An idle tile accrues nothing.
        let mut idle = mem(vec![Pacer::new(100)]);
        idle.accrue_throttle_skip(50);
        assert_eq!(idle.pacers()[0].throttled(), 0);
    }

    #[test]
    fn settlement_refunds_issue_time_charge_not_current_period() {
        // Issue under a 100-cycle period, reprogram to 10 mid-flight, then
        // settle as a shared hit: the refund is the 100 cycles actually
        // charged, re-clamped so credit cannot exceed the new burst window.
        let mut m = mem(vec![Pacer::with_burst(100, 2)]);
        let _ = m.access(0, line(1), false, LoadId(1));
        assert!(m.try_inject(0).is_some());
        m.pacers_mut()[0].set_period(10, 50);
        m.settle_response(line(1), true, false, 50);
        let p = &m.pacers()[0];
        assert!(
            p.credit_at(50) <= p.burst_window(),
            "refund pushed credit {} past window {}",
            p.credit_at(50),
            p.burst_window()
        );

        // Writeback flag: the extra charge is likewise the issue-time 100,
        // not the current 10.
        let mut m = mem(vec![Pacer::with_burst(100, 2)]);
        let _ = m.access(0, line(2), false, LoadId(1));
        assert!(m.try_inject(0).is_some()); // c_next = 100
        m.settle_response(line(2), false, true, 0); // c_next = 200
        assert_eq!(m.pacers()[0].credit_at(200), 0, "extra charge holds until cycle 200");
    }

    #[test]
    fn l1_hit_is_fastest_path() {
        let mut m = mem(Vec::new());
        let _ = m.access(0, line(3), false, LoadId(1));
        m.on_fill(line(3));
        assert_eq!(m.access(1, line(3), false, LoadId(2)), Access::Hit(4));
        // A line only in L2 (L1 victimized) returns the L2 latency.
        // Fill enough lines mapping to L1 set of line 3 (8 sets, 2 ways).
        for k in 1..=2 {
            let l = line(3 + 8 * k);
            let _ = m.access(2, l, false, LoadId(10 + k));
            m.on_fill(l);
        }
        assert_eq!(m.access(3, line(3), false, LoadId(5)), Access::Hit(14));
    }

    #[test]
    fn l2_stats_track_hits_and_misses() {
        let mut m = mem(Vec::new());
        let _ = m.access(0, line(1), false, LoadId(1));
        m.on_fill(line(1));
        let (h0, mi0) = m.l2_stats();
        // L1 was filled too, so probe L2 via an L1-missing line.
        let _ = m.access(1, line(1 + 8), false, LoadId(2)); // different L1 set? ensure miss
        let (h1, mi1) = m.l2_stats();
        assert!(h1 + mi1 > h0 + mi0, "L2 must have been probed");
    }
}
