//! System-wide measurement: everything the paper's figures report.

use pabst_core::qos::MAX_CLASSES;
use pabst_simkit::stats::{ClassSeries, Histogram};
use pabst_simkit::Cycle;

/// Collected measurements, populated by [`crate::system::System`] each
/// epoch and on demand.
#[derive(Debug)]
pub struct Metrics {
    /// Per-class bytes transferred at the memory controllers per epoch
    /// (the bandwidth-over-time series of Figs. 5, 6, 8).
    pub bw_series: ClassSeries,
    /// The governor multiplier at each epoch boundary.
    pub m_series: Vec<u32>,
    /// The ORed saturation bit at each epoch boundary.
    pub sat_series: Vec<bool>,
    /// Per-core transaction service times (from workload markers), cycles.
    pub service: Vec<Histogram>,
    /// Cycle the measurement window started (after warmup).
    pub measure_from: Cycle,
    /// Per-core retired-instruction counts at the measurement start.
    pub retired_at_start: Vec<u64>,
    /// Data-bus busy cycles (all MCs) at measurement start.
    pub bus_busy_at_start: u64,
    /// Stalled controller-cycles (mc-stall fault windows, all MCs) at
    /// measurement start — the utilization denominator's exclusion base.
    pub stall_cycles_at_start: u64,
    /// Total bytes per class at measurement start.
    pub bytes_at_start: [u64; MAX_CLASSES],
    /// Last marker retirement cycle per core (service-time deltas).
    pub last_marker: Vec<Option<Cycle>>,
    /// Cycles the event-horizon fast-forward elided (see
    /// `docs/PERFORMANCE.md`). Purely diagnostic: never reported in traces
    /// or experiment JSON, so skip-on and skip-off runs stay byte-identical.
    pub cycles_skipped: u64,
}

impl Metrics {
    /// Creates empty metrics for `cores` cores and `classes` classes.
    pub fn new(cores: usize, classes: usize, epoch_cycles: Cycle) -> Self {
        Self {
            bw_series: ClassSeries::new(classes, epoch_cycles),
            m_series: Vec::new(),
            sat_series: Vec::new(),
            service: (0..cores).map(|_| Histogram::new()).collect(),
            measure_from: 0,
            retired_at_start: vec![0; cores],
            bus_busy_at_start: 0,
            stall_cycles_at_start: 0,
            bytes_at_start: [0; MAX_CLASSES],
            last_marker: vec![None; cores],
            cycles_skipped: 0,
        }
    }

    /// Mean bandwidth share of `class` over epochs from `from_epoch`,
    /// as a fraction of all classes' traffic.
    pub fn mean_share(&self, class: usize, from_epoch: usize) -> f64 {
        let mine = self.bw_series.mean_over(class, from_epoch);
        let total: f64 =
            (0..self.bw_series.classes()).map(|c| self.bw_series.mean_over(c, from_epoch)).sum();
        if total == 0.0 {
            0.0
        } else {
            mine / total
        }
    }

    /// Mean bytes/cycle delivered to `class` from `from_epoch` on.
    pub fn mean_bytes_per_cycle(&self, class: usize, from_epoch: usize) -> f64 {
        self.bw_series.mean_over(class, from_epoch) / self.bw_series.epoch_cycles() as f64
    }

    /// Total mean bytes/cycle across classes from `from_epoch` on.
    pub fn total_bytes_per_cycle(&self, from_epoch: usize) -> f64 {
        (0..self.bw_series.classes()).map(|c| self.mean_bytes_per_cycle(c, from_epoch)).sum()
    }
}
