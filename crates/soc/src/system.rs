//! The assembled system and its cycle-stepped main loop.

use std::collections::VecDeque;

use pabst_cache::{LineAddr, MshrTable, SetAssocCache, WayMask};
use pabst_core::governor::{DeltaDir, Governor, RateDir, RateGenerator, GOVERNOR_STRIDE_SCALE};
use pabst_core::pacer::Pacer;
use pabst_core::qos::{QosId, ShareTable};
use pabst_core::satmon::or_sat;
use pabst_cpu::{OooCore, Workload};
use pabst_dram::{ArbiterMode, Completion, MemController, MemReq};
use pabst_simkit::fault::{FaultKind, FaultPlan};
use pabst_simkit::invariant::{InvariantChecker, InvariantReport};
use pabst_simkit::sanitizer::Sanitizer;
use pabst_simkit::trace::{EpochRecord, TraceSink};
use pabst_simkit::Cycle;

use crate::config::{ConfigError, RegulationMode, SystemConfig, WbAccounting};
use crate::metrics::Metrics;
use crate::net::{Interconnect, L3Req, TileResp};
use crate::sched::DomainSched;
use crate::tile::{Tile, TileMem};

/// A waiter on an L3 MSHR entry.
#[derive(Debug, Clone, Copy)]
struct L3Waiter {
    tile: usize,
    store: bool,
}

/// The full modelled machine.
///
/// Built by [`SystemBuilder`]; stepped by [`System::run_epochs`] /
/// [`System::run_cycles`]; inspected through [`System::metrics`] and the
/// per-component accessors.
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    mode: RegulationMode,
    shares: ShareTable,
    now: Cycle,
    tiles: Vec<Tile>,
    /// Tile index → class id (redundant with tiles, for quick scans).
    tile_class: Vec<QosId>,
    /// Active thread count per class (Eq. 4's `threads_c`).
    threads: Vec<u32>,
    l3: SetAssocCache,
    l3_mshrs: MshrTable<L3Waiter>,
    /// The modelled network: request/response paths with topology-derived
    /// delays plus the per-MC staging/arbitration stage (see
    /// [`crate::net::Interconnect`]).
    net: Interconnect,
    /// Misses refused an L3 MSHR (table full), retried in order.
    mshr_wait: VecDeque<L3Req>,
    mcs: Vec<MemController>,
    /// One governor for the paper's global-SAT design; one per MC in the
    /// per-MC variant (SIII-C1). The concrete mechanism behind the
    /// [`Governor`] seam is selected by [`SystemConfig::governor`].
    monitors: Vec<Box<dyn Governor>>,
    rategen: RateGenerator,
    metrics: Metrics,
    /// Event-horizon fast-forward active (the default; cleared by the
    /// `PABST_NO_SKIP` environment variable or [`SystemBuilder::skip`]).
    skip_enabled: bool,
    /// Park/unpark scheduler over the per-tile and per-controller skip
    /// domains (see [`crate::sched::DomainSched`]). Structurally inert
    /// when skipping is disabled: nothing ever parks.
    sched: DomainSched,
    /// Next cycle at which [`System::advance`] probes the horizon. Purely
    /// a host-side pacing knob: simulated behavior never depends on it.
    probe_at: Cycle,
    /// Current probe backoff in cycles (doubles per failed probe, resets
    /// to 1 on every successful skip).
    probe_backoff: u64,
    /// Cap on `probe_backoff` ([`SystemBuilder::probe_backoff_cap`];
    /// default [`System::DEFAULT_PROBE_BACKOFF_CAP`]). Host-side pacing
    /// only — simulated behavior never depends on it.
    probe_cap: u64,
    epochs_run: usize,
    /// Per-epoch invariant checks; no-ops unless debug_assertions or the
    /// `sanitize` feature is on.
    sanitizer: Sanitizer,
    /// Release-mode invariant recorder (the sanitizer's always-on,
    /// non-panicking counterpart): evaluates conservation/bound/liveness
    /// laws at every epoch boundary and accumulates typed violations for
    /// chaos-campaign classification. Read-only over simulator state.
    invariants: InvariantChecker,
    /// Attached observability sinks; each receives one [`EpochRecord`] per
    /// epoch boundary. Empty by default (zero overhead when unused).
    trace_sinks: Vec<Box<dyn TraceSink>>,
    /// Cumulative per-tile throttle counts at the previous boundary, for
    /// per-epoch deltas in the trace record.
    prev_throttles: Vec<u64>,
    /// Recycled buffer for each cycle's memory-controller completions, so
    /// the hot loop does not allocate per cycle.
    completions_scratch: Vec<Completion>,
    /// Recycled buffer for L3-MSHR waiters on the completion path.
    l3_waiters_scratch: Vec<L3Waiter>,
    /// Active fault-injection plan. `None` (the default) is structurally
    /// inert: no RNG draws, no history upkeep, no behavioral change.
    fault_plan: Option<FaultPlan>,
    /// Per-monitor history of raw SAT broadcasts, feeding the sat-delay
    /// fault kind (bounded to [`SAT_HISTORY_MAX`] epochs). Empty unless a
    /// plan is attached.
    sat_history: Vec<VecDeque<bool>>,
    /// Per-MC stall window for the epoch in progress (mc-stall faults): a
    /// stalled controller freezes — it accepts ingress but services
    /// nothing until the window ends.
    mc_stalled: Vec<bool>,
    /// Cumulative controller-cycles frozen by mc-stall fault windows
    /// (summed over controllers, accrued per epoch at the boundary). The
    /// utilization denominator excludes them: a brownout must not read as
    /// a utilization drop on the controllers that were never asked to run.
    mc_stall_cycles: u64,
    /// Total fault events injected so far, across all kinds.
    faults_injected: u64,
    /// Consecutive epochs with queued memory work but zero delivered
    /// bytes, for the forward-progress watchdog.
    stalled_epochs: u64,
}

/// SAT broadcast history kept per monitor for the sat-delay fault kind.
const SAT_HISTORY_MAX: usize = 64;

/// Process-wide kill switch for cycle skipping (see
/// [`force_no_skip`]).
static FORCE_NO_SKIP: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Forces naive per-cycle stepping for every [`System`] built in this
/// process from now on, exactly as the `PABST_NO_SKIP` environment
/// variable does. The flag form exists for CI A/B drivers (`--no-skip`)
/// that want the switch without mutating the process environment; an
/// explicit [`SystemBuilder::skip`] call still wins. There is no undo —
/// the switch is for whole-process A/B runs, not per-system toggling.
pub fn force_no_skip() {
    FORCE_NO_SKIP.store(true, std::sync::atomic::Ordering::Relaxed);
}

impl System {
    /// Default cap on the horizon probe backoff (see [`System::advance`];
    /// override with [`SystemBuilder::probe_backoff_cap`]). Small enough
    /// that the start of a quiescent window is never missed by more than
    /// a handful of naive steps, large enough that a saturated machine
    /// pays for at most one probe every eight cycles — the
    /// `sim_throughput` backoff sweep shows cap 1 costs ~5% on the
    /// saturated baseline and every cap from 2 upward is within noise
    /// (tile-local parking, not probe cadence, now carries the
    /// idle-heavy configs), so the historical value stands.
    pub const DEFAULT_PROBE_BACKOFF_CAP: u64 = 8;

    /// Current simulated cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Epochs completed.
    pub fn epochs_run(&self) -> usize {
        self.epochs_run
    }

    /// The QoS class of tile `i`.
    pub fn tile_class(&self, i: usize) -> QosId {
        self.tile_class[i]
    }

    /// The share table in force.
    pub fn shares(&self) -> &ShareTable {
        &self.shares
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The epoch invariant sanitizer (its check counter proves the
    /// invariants actually ran in debug/`sanitize` builds).
    pub fn sanitizer(&self) -> &Sanitizer {
        &self.sanitizer
    }

    /// Cycles elided by the event-horizon fast-forward (always zero when
    /// skipping is disabled). Diagnostic only: deliberately absent from
    /// trace records and experiment reports, so skip-on and skip-off runs
    /// stay byte-identical. See `docs/PERFORMANCE.md`.
    pub fn cycles_skipped(&self) -> u64 {
        self.metrics.cycles_skipped
    }

    /// Tile-cycles elided by tile-local parking (always zero when
    /// skipping is disabled). Counts every cycle a parked tile's
    /// bookkeeping was batch-accrued instead of stepped — including
    /// cycles inside global jumps, which park everything. Diagnostic
    /// only, like [`System::cycles_skipped`]: absent from every
    /// artifact, so skip-on and skip-off runs stay byte-identical.
    pub fn tile_cycles_skipped(&self) -> u64 {
        self.sched.tile_cycles()
    }

    /// Controller-cycles elided by controller parking (always zero when
    /// skipping is disabled). Diagnostic only; see
    /// [`System::tile_cycles_skipped`].
    pub fn mc_cycles_skipped(&self) -> u64 {
        self.sched.mc_cycles()
    }

    /// Whether quiescence-aware cycle skipping is active.
    pub fn skip_enabled(&self) -> bool {
        self.skip_enabled
    }

    /// Mutable metrics (service-time percentiles need `&mut`).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Attaches an observability sink; it receives one [`EpochRecord`] at
    /// every epoch boundary from now on.
    pub fn add_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace_sinks.push(sink);
    }

    /// The tiles (inspection only).
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Number of memory controllers.
    pub fn mc_count(&self) -> usize {
        self.mcs.len()
    }

    /// Total fault events injected so far by the attached plan (all
    /// kinds). Always zero without a plan.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// Epochs any governor has spent in the degraded (stale-SAT) policy.
    pub fn degraded_epochs(&self) -> u64 {
        self.monitors.iter().map(|m| m.degraded_epochs()).sum()
    }

    /// Label of the source-side governor mechanism in force.
    pub fn governor_label(&self) -> &'static str {
        self.monitors[0].label()
    }

    /// Label of the target-side arbiter mechanism in force. All
    /// controllers share one mode, so controller 0 speaks for the system;
    /// note this is the *effective* mechanism — regulation modes without
    /// an active target run FCFS regardless of the configured arbiter.
    pub fn arbiter_label(&self) -> &'static str {
        self.mcs[0].arbiter_name()
    }

    /// FNV-1a provenance hash over the configured mechanism selection and
    /// regulation knobs (see [`SystemConfig::mechanism_hash`]).
    pub fn mechanism_hash(&self) -> u64 {
        self.cfg.mechanism_hash()
    }

    /// Instructions retired by core `i` since the measurement mark.
    pub fn retired_since_mark(&self, i: usize) -> u64 {
        self.tiles[i].core.stats().retired - self.metrics.retired_at_start[i]
    }

    /// IPC of core `i` over the measurement window.
    // simlint: allow(taint-float): report-time ratio over final counters; nothing in the stepping path consumes it
    pub fn ipc_since_mark(&self, i: usize) -> f64 {
        let cycles = self.now - self.metrics.measure_from;
        if cycles == 0 {
            0.0
        } else {
            self.retired_since_mark(i) as f64 / cycles as f64
        }
    }

    /// Aggregate data-bus utilization across MCs over the measurement
    /// window (the paper's memory-efficiency metric, Fig. 12).
    ///
    /// Controller-cycles frozen by an mc-stall fault window are excluded
    /// from the denominator: a stalled controller *cannot* move bytes, so
    /// counting its dead cycles would under-report how well the live
    /// controllers used the bus during a brownout. Stall accounting is
    /// epoch-granular (windows open and close at boundaries), so a mark
    /// taken mid-epoch sees the exclusion of every *completed* stalled
    /// epoch. Unfaulted runs subtract zero and are bit-identical.
    // simlint: allow(taint-float): report-time ratio over final counters; nothing in the stepping path consumes it
    pub fn bus_utilization_since_mark(&self) -> f64 {
        let busy: u64 = self.mcs.iter().map(|m| m.stats().bus_busy).sum();
        let window = (self.now - self.metrics.measure_from) * self.cfg.mcs as u64;
        let live = window.saturating_sub(self.stalled_mc_cycles_since_mark());
        if live == 0 {
            0.0
        } else {
            (busy - self.metrics.bus_busy_at_start) as f64 / live as f64
        }
    }

    /// Controller-cycles spent frozen in mc-stall fault windows since the
    /// measurement mark (summed across controllers). Always zero without
    /// a fault plan.
    pub fn stalled_mc_cycles_since_mark(&self) -> u64 {
        self.mc_stall_cycles - self.metrics.stall_cycles_at_start
    }

    /// Mean in-controller read latency per class (cycles), aggregated
    /// across MCs over the whole run (diagnostic).
    pub fn mc_read_latency(&self, class: usize) -> Option<f64> {
        let id = QosId::new(class as u8);
        let (mut sum, mut n) = (0.0, 0u64);
        for mc in &self.mcs {
            let s = mc.stats();
            if let Some(lat) = s.mean_read_latency(id) {
                let k = s.read_lat_n[id.index()];
                sum += lat * k as f64;
                n += k;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Total requests refused at MC ingress ports (backpressure events).
    pub fn ingress_rejects(&self) -> u64 {
        self.mcs.iter().map(|m| m.ingress_rejects()).sum()
    }

    /// Bytes delivered per class since the measurement mark.
    pub fn bytes_since_mark(&self, class: usize) -> u64 {
        let total: u64 = self.mcs.iter().map(|m| m.stats().bytes[class]).sum();
        total - self.metrics.bytes_at_start[class]
    }

    /// Marks the start of the measurement window (call after warmup).
    pub fn mark_measurement(&mut self) {
        self.metrics.measure_from = self.now;
        for (i, t) in self.tiles.iter().enumerate() {
            self.metrics.retired_at_start[i] = t.core.stats().retired;
        }
        self.metrics.bus_busy_at_start = self.mcs.iter().map(|m| m.stats().bus_busy).sum();
        self.metrics.stall_cycles_at_start = self.mc_stall_cycles;
        for c in 0..pabst_core::qos::MAX_CLASSES {
            self.metrics.bytes_at_start[c] = self.mcs.iter().map(|m| m.stats().bytes[c]).sum();
        }
        for h in &mut self.metrics.service {
            *h = pabst_simkit::stats::Histogram::new();
        }
        for m in &mut self.metrics.last_marker {
            *m = None;
        }
    }

    /// Runs `n` epochs (each `epoch_cycles` long). From a mid-epoch start
    /// the first epoch is the remainder of the current one — epochs are
    /// wall-clock aligned, exactly as [`System::run_cycles`] sees them.
    pub fn run_epochs(&mut self, n: usize) {
        let e = self.cfg.epoch_cycles;
        self.advance(((self.now / e) + n as u64) * e);
    }

    /// Runs an exact number of cycles (epoch boundaries still fire on
    /// schedule).
    pub fn run_cycles(&mut self, n: Cycle) {
        self.advance(self.now + n);
    }

    /// The single stepping loop both public entry points share: advances
    /// to cycle `until`, firing [`System::on_epoch_boundary`] at every
    /// multiple of `epoch_cycles` — one code path, so the two entry points
    /// cannot drift on when the governor heartbeat runs.
    ///
    /// With skipping enabled, each iteration first asks [`System::horizon`]
    /// for the earliest cycle any component can change state. When that is
    /// in the future, the loop jumps there in one [`System::apply_skip`]
    /// call instead of stepping dead cycles. Jumps never cross an epoch
    /// boundary (or `until`), so the heartbeat — SAT aggregation, governor
    /// update, fault windows, watchdog, sanitizer — observes the exact
    /// boundary sequence naive stepping would.
    ///
    /// Probe backoff: on a saturated machine the horizon is `now` nearly
    /// every cycle, and probing it would be pure overhead. Each failed
    /// probe doubles the distance to the next one (capped at
    /// [`System::MAX_PROBE_BACKOFF`]); a successful skip resets it.
    /// Un-probed cycles are stepped naively, which is always correct —
    /// backoff trades a few missed skip opportunities at the start of a
    /// quiescent window for near-zero probe cost in the busy regime, and
    /// never affects simulated behavior.
    fn advance(&mut self, until: Cycle) {
        while self.now < until {
            if self.skip_enabled && self.now >= self.probe_at {
                let h = self.horizon();
                if h != Some(self.now) {
                    let e = self.cfg.epoch_cycles;
                    let boundary = (self.now / e + 1) * e;
                    let target = h.unwrap_or(boundary).min(boundary).min(until);
                    self.apply_skip(target - self.now);
                    self.probe_backoff = 1;
                    self.probe_at = self.now;
                    if self.now.is_multiple_of(e) {
                        self.on_epoch_boundary();
                    }
                    continue;
                }
                self.probe_at = self.now + self.probe_backoff;
                self.probe_backoff = (self.probe_backoff * 2).min(self.probe_cap);
            }
            self.step();
            if self.now.is_multiple_of(self.cfg.epoch_cycles) {
                self.on_epoch_boundary();
            }
        }
        // Settle: callers (measurement marks, stats readers, reports) must
        // observe fully-accrued state, so no domain stays parked across a
        // return. Domains re-park at the next probe; behavior over the
        // parked window is already fixed, so settling is invisible.
        if self.skip_enabled && self.sched.any_parked() {
            self.sched.wake_all(self.now, &mut self.tiles, &mut self.mcs);
        }
    }

    /// The event horizon: the earliest cycle at which any component may
    /// change state. `Some(now)` means something can act this cycle (the
    /// loop must step naively); a later cycle means every component is
    /// provably quiescent until then; `None` means no component holds any
    /// self-scheduled event at all (fully idle — safe to jump straight to
    /// the next epoch boundary).
    ///
    /// Soundness: the minimum over per-component `next_event` horizons is
    /// a sound global horizon because a component with no event of its own
    /// changes state only when another component acts on it — and that
    /// component's own horizon already bounds the jump. A too-*early*
    /// horizon merely costs speed; only a too-late one could diverge, so
    /// every check below short-circuits to `now` on any doubt. Checks are
    /// ordered cheapest-first.
    ///
    /// The probe is also where domains **park** (see
    /// [`crate::sched::DomainSched`]): a tile or controller whose
    /// `next_event` answer lies in the future is inert on its own — even
    /// if some *other* component forces this probe to answer "due" — so
    /// it is handed to the domain scheduler with that answer as its
    /// cached wake time. Parked domains fold their cached answer here
    /// instead of recomputing (the memoization), and a parked domain
    /// whose cached wake has arrived reads as due: the step loop's
    /// due-scan wakes it.
    fn horizon(&mut self) -> Option<Cycle> {
        use pabst_simkit::horizon::Horizon;
        let now = self.now;
        let mut h = Horizon::new();
        // The interconnect: in-flight requests/responses wake at their
        // delivery cycle; a staged request past its hop delay drains (or
        // bumps a reject counter) every cycle. Memoized: queue mutations
        // dirty the cached answer.
        if h.merge_due(self.net.next_event_memo(now), now) {
            return Some(now);
        }
        // An MSHR-refused miss whose retry can progress acts this cycle;
        // one still blocked unblocks only via an MC completion, which the
        // controller horizons below already bound.
        if let Some(req) = self.mshr_wait.front() {
            if self.l3_mshrs.contains(req.line) || !self.l3_mshrs.is_full() {
                return Some(now);
            }
        }
        for (k, mc) in self.mcs.iter().enumerate() {
            // A stalled controller (mc-stall fault window) is frozen until
            // the next boundary: no events, no occupancy samples — and it
            // is never parked (parking accrues samples; a stalled window
            // takes none).
            if self.mc_stalled[k] {
                continue;
            }
            if self.sched.mc_parked(k) {
                if h.merge_due(self.sched.mc_wake(k), now) {
                    return Some(now);
                }
                continue;
            }
            let ev = mc.next_event(now);
            if h.merge_due(ev, now) {
                return Some(now);
            }
            self.sched.park_mc(k, now, ev);
        }
        for (i, tile) in self.tiles.iter().enumerate() {
            if self.sched.tile_parked(i) {
                if h.merge_due(self.sched.tile_wake(i), now) {
                    return Some(now);
                }
                continue;
            }
            let ev = tile.next_event(now);
            if h.merge_due(ev, now) {
                return Some(now);
            }
            self.sched.park_tile(i, now, ev);
        }
        h.get()
    }

    /// Fast-forwards `cycles` provably-dead cycles in one jump. Under
    /// the partitioned scheduler this is a pure clock bump: a jump only
    /// happens when the probe found no due domain, which means it parked
    /// every tile and every live controller — their owed-bookkeeping
    /// windows simply grow with the clock and are batch-accrued at their
    /// next wake edge, exactly as naive stepping would have charged them
    /// cycle by cycle.
    fn apply_skip(&mut self, cycles: Cycle) {
        debug_assert!(cycles > 0, "a zero-length skip is a stepping bug");
        debug_assert!(
            self.sched.fully_parked(&self.mc_stalled),
            "a global jump requires every live domain parked"
        );
        self.now += cycles;
        self.metrics.cycles_skipped += cycles;
    }

    /// One cycle of the whole machine.
    fn step(&mut self) {
        let now = self.now;
        let skip_enabled = self.skip_enabled;

        // 0. Due wakes: any parked domain whose cached horizon has
        //    arrived rejoins live stepping *this* cycle, owed bookkeeping
        //    accrued — the local clock clamps back to `now` before any
        //    stage could observe stale state.
        if skip_enabled {
            self.sched.wake_due_mcs(now, &mut self.mcs);
            self.sched.wake_due_tiles(now, &mut self.tiles);
        }

        // 1. Memory controllers: advance DRAM, collect completions into
        //    the recycled scratch buffer (no per-cycle allocation).
        let mut completions = std::mem::take(&mut self.completions_scratch);
        completions.clear();
        for (k, mc) in self.mcs.iter_mut().enumerate() {
            // A stalled controller (mc-stall fault window) freezes: it
            // still accepts ingress, but services nothing. The arbiter's
            // virtual clocks only advance on picks, so they stay monotone
            // and the other controllers keep running.
            if self.mc_stalled[k] {
                continue;
            }
            if skip_enabled {
                if self.sched.mc_parked(k) {
                    continue;
                }
                mc.step_into(now, &mut completions);
                // An empty controller's step is just an occupancy sample;
                // park it (this cycle's sample was taken live, so owed
                // starts next cycle). Only an ingress push — the drain
                // wake below — or an epoch boundary can make it act.
                if mc.pending() == 0 {
                    self.sched.park_mc(k, now + 1, None);
                }
            } else {
                mc.step_into(now, &mut completions);
            }
        }
        for c in completions.drain(..) {
            self.on_mc_completion(c);
        }
        self.completions_scratch = completions;

        // 2. Drain per-MC staging into MC ingress, round-robin across
        //    class queues (per-source-fair network arbitration) under the
        //    per-link bandwidth budget. Lives in the interconnect now; see
        //    `Interconnect::drain_into`.
        //
        //    Push wake: a parked controller about to receive an admissible
        //    staged request is woken first, owed samples accrued through
        //    this cycle inclusive — its naive step this cycle would have
        //    been exactly one pre-push occupancy sample, which the accrual
        //    reproduces (read queues are frozen while parked).
        if skip_enabled {
            for k in 0..self.mcs.len() {
                if self.sched.mc_parked(k) && self.net.mc_admissible(k, now) {
                    self.sched.wake_mc(k, now + 1, &mut self.mcs[k]);
                }
            }
        }
        self.net.drain_into(now, &mut self.mcs);

        // 3. Shared L3: consume the network head (head-of-line blocking
        //    when the miss path is backed up). Provably a no-op when both
        //    the retry queue and the request network are empty.
        if !self.mshr_wait.is_empty() || self.net.has_requests() {
            self.l3_service(now);
        }

        // 4. Responses reach tiles (skip the pop loop when provably empty).
        if self.net.has_responses() {
            while let Some(resp) = self.net.pop_response(now) {
                self.on_tile_response(resp);
            }
        }

        // 5. Tiles: inject paced L2 misses + L2 writebacks, then step cores.
        self.tile_injection(now);
        for (i, tile) in self.tiles.iter_mut().enumerate() {
            if skip_enabled && self.sched.tile_parked(i) {
                continue;
            }
            // Per-tile quiescence: a core that provably cannot retire,
            // issue, or dispatch this cycle would only bump its ROB-full
            // stall counter — accrue that directly and skip the pipeline
            // walk. Gated on skip mode so the naive A/B baseline stays a
            // pure per-cycle interpreter.
            if skip_enabled {
                let core_h = tile.core.next_event(now);
                if core_h.is_none_or(|at| at > now) {
                    tile.core.accrue_skip(1);
                    // Tile-local park: when the injection path is also
                    // quiescent past `now`, stop visiting the tile. This
                    // cycle was handled live (the injection NACK above,
                    // the stall accrual here), so owed starts next cycle;
                    // the tile horizon becomes the cached wake.
                    let mut th = pabst_simkit::horizon::Horizon::new();
                    th.merge(core_h);
                    th.merge(tile.mem.next_inject_at(now));
                    let th = th.get();
                    if th.is_none_or(|at| at > now) {
                        self.sched.park_tile(i, now + 1, th);
                    }
                    continue;
                }
                tile.step_core(now);
            } else {
                tile.step_core(now);
            }
            if tile.core.has_markers() {
                for (tag, at) in tile.core.take_markers() {
                    let _ = tag;
                    if let Some(prev) = self.metrics.last_marker[i] {
                        self.metrics.service[i].record(at - prev);
                    }
                    self.metrics.last_marker[i] = Some(at);
                }
            }
        }

        self.now += 1;
    }

    /// Service the L3 input pipeline: hits respond, misses go to memory.
    /// The L3 is banked and never head-of-line blocks: misses that cannot
    /// get an MSHR wait in `mshr_wait`; admitted misses stage per-MC in
    /// the interconnect.
    fn l3_service(&mut self, now: Cycle) {
        // Retry MSHR-refused misses first (oldest first). A waiting miss
        // whose line gained an MSHR entry since it was refused (another
        // tile's miss to the same line was admitted) must merge as a
        // secondary, not re-admit: re-admitting would enqueue a duplicate
        // DRAM read for the line.
        while let Some(&req) = self.mshr_wait.front() {
            if self.l3_mshrs.contains(req.line) {
                self.mshr_wait.pop_front();
                self.l3_mshrs.alloc(req.line, L3Waiter { tile: req.tile, store: req.store });
            } else if self.l3_mshrs.is_full() {
                break;
            } else {
                self.mshr_wait.pop_front();
                self.admit_miss(now, req);
            }
        }
        // Bounded number of L3 operations per cycle (banked array).
        for _ in 0..4 {
            let Some(req) = self.net.pop_request(now) else { break };
            if req.l2_wb {
                // L2 writeback into the L3: mark dirty if present, else
                // install dirty (may evict another dirty line to memory).
                if !self.l3.probe_write(req.line) {
                    let ev = self.l3.fill(req.line, req.class, true);
                    if let Some(ev) = ev {
                        if ev.dirty {
                            self.emit_l3_writeback(now, ev.line, ev.owner, req.class);
                        }
                    }
                }
                continue;
            }
            let hit =
                if req.store { self.l3.probe_write(req.line) } else { self.l3.probe(req.line) };
            if hit {
                self.net.send_l3_response(
                    now,
                    TileResp { line: req.line, tile: req.tile, l3_hit: true, wb_flag: false },
                );
                continue;
            }
            if self.l3_mshrs.contains(req.line) {
                // Secondary miss: merge.
                self.l3_mshrs.alloc(req.line, L3Waiter { tile: req.tile, store: req.store });
            } else if self.l3_mshrs.is_full() {
                self.mshr_wait.push_back(req);
            } else {
                self.admit_miss(now, req);
            }
        }
    }

    /// Allocates the L3 MSHR for a primary miss and stages it toward its
    /// home memory controller (per the topology's channel map).
    fn admit_miss(&mut self, now: Cycle, req: L3Req) {
        debug_assert!(!req.l2_wb && !self.l3_mshrs.contains(req.line));
        self.l3_mshrs.alloc(req.line, L3Waiter { tile: req.tile, store: req.store });
        let mc = self.net.channel_of(req.line);
        self.net.stage(
            now,
            mc,
            MemReq { line: req.line, class: req.class, is_write: false, token: 0 },
        );
    }

    /// Routes a memory-controller completion: reads fill the L3 and wake
    /// tile waiters; writes are fire-and-forget.
    fn on_mc_completion(&mut self, c: Completion) {
        if c.is_write {
            return;
        }
        let now = self.now;
        let mc = self.net.channel_of(c.line);
        let mut waiters = std::mem::take(&mut self.l3_waiters_scratch);
        waiters.clear();
        self.l3_mshrs.complete_into(c.line, &mut waiters);
        let any_store = waiters.iter().any(|w| w.store);
        // Fill the L3 on behalf of the demanding class.
        let mut wb_flag = false;
        if let Some(ev) = self.l3.fill(c.line, c.class, any_store) {
            if ev.dirty {
                self.emit_l3_writeback(now, ev.line, ev.owner, c.class);
                // The source-side extra-period charge lands on the demand
                // pacer, so it only applies under the ChargeDemand policy;
                // ChargeOwner/ChargeNone attribute the writeback at the
                // controller (or nowhere) and must not charge the demand
                // source.
                wb_flag = matches!(self.cfg.wb_accounting, WbAccounting::ChargeDemand);
            }
        }
        for w in &waiters {
            self.net.send_mc_response(
                now,
                mc,
                TileResp { line: c.line, tile: w.tile, l3_hit: false, wb_flag },
            );
            // Only one response should carry the charge.
            wb_flag = false;
        }
        self.l3_waiters_scratch = waiters;
    }

    /// Stages a dirty-L3-eviction writeback to memory, attributed per the
    /// configured accounting policy.
    fn emit_l3_writeback(&mut self, now: Cycle, line: LineAddr, owner: QosId, demand: QosId) {
        let class = match self.cfg.wb_accounting {
            WbAccounting::ChargeDemand => demand,
            WbAccounting::ChargeOwner => owner,
            WbAccounting::ChargeNone => demand, // bytes still attributed somewhere
        };
        let mc = self.net.channel_of(line);
        self.net.stage(now, mc, MemReq { line, class, is_write: true, token: 0 });
    }

    /// A response arrives at a tile: fill caches, wake the core, settle
    /// pacer accounting.
    fn on_tile_response(&mut self, resp: TileResp) {
        let now = self.now;
        // Response wake: a parked tile rejoins live stepping before the
        // fill is applied, so its owed accrual closes on pre-fill state
        // and it participates in this cycle's injection + core step.
        if self.skip_enabled {
            self.sched.wake_tile(resp.tile, now, &mut self.tiles[resp.tile]);
        }
        let tile = &mut self.tiles[resp.tile];
        let waiters = tile.mem.on_fill(resp.line);
        for w in waiters {
            if let Some(id) = w.load {
                tile.core.on_fill(now, id);
                tile.core.release_slot();
            }
        }
        tile.mem.settle_response(resp.line, resp.l3_hit, resp.wb_flag, now);
        // L2 victims displaced by this fill go back to the L3.
        while let Some(line) = tile.mem.pop_l2_writeback() {
            let class = tile.mem.class;
            self.net.send_request(
                now,
                L3Req { line, class, tile: resp.tile, store: false, l2_wb: true },
            );
        }
    }

    /// Paced injection of L2 misses into the network, round-robin across
    /// tiles for fairness.
    fn tile_injection(&mut self, now: Cycle) {
        let n = self.tiles.len();
        // Fairness cursor: rotates one tile per cycle. Derived from the
        // clock rather than a counter stepped once per `step` call, so a
        // fast-forward jump lands on exactly the cursor naive stepping
        // would have reached.
        let start = (now % n as u64) as usize;
        let skip_enabled = self.skip_enabled;
        for off in 0..n {
            let i = (start + off) % n;
            // A parked tile's injection path is provably quiescent (its
            // park horizon folded `next_inject_at`); the NACK its pacer
            // would take this cycle is owed and accrues at wake.
            if skip_enabled && self.sched.tile_parked(i) {
                continue;
            }
            // Idle tiles (nothing queued for injection) are skipped before
            // the pacer is consulted.
            if !self.tiles[i].mem.wants_inject() {
                continue;
            }
            // One injection per tile per cycle.
            if let Some(req) = self.tiles[i].mem.try_inject(now) {
                let class = self.tiles[i].mem.class;
                self.net.send_request(
                    now,
                    L3Req { line: req.line, class, tile: i, store: req.store, l2_wb: false },
                );
            }
        }
    }

    /// Epoch heartbeat: SAT aggregation (through the fault layer when a
    /// plan is attached), governor update, pacer reprogramming, metrics
    /// snapshot, fault-window refresh, watchdog.
    fn on_epoch_boundary(&mut self) {
        let now = self.now;
        // Boundary wake: the heartbeat reads and reprograms every
        // component (SAT aggregation, pacer periods, fault windows,
        // sanitizer), so every parked domain is woken first — owed
        // bookkeeping accrued through the epoch's last cycle, exactly as
        // naive stepping would have left it at this boundary.
        if self.skip_enabled && self.sched.any_parked() {
            self.sched.wake_all(now, &mut self.tiles, &mut self.mcs);
        }
        let epoch = self.epochs_run as u64;
        let sats: Vec<bool> = self.mcs.iter_mut().map(|m| m.take_epoch_sat()).collect();
        // What each governor actually observes: the raw SAT broadcast,
        // possibly dropped / delayed / inverted by the fault plan. With no
        // plan this is `Some(raw)` and the governor path is bit-identical
        // to an unfaulted build.
        let observed: Vec<Option<bool>> = if self.monitors.len() == 1 {
            // Global wired-OR SAT, one governor (the paper's default).
            vec![self.observe_sat(0, or_sat(sats.iter().copied()), epoch)]
        } else {
            // Per-MC SAT and governors (SIII-C1 variant).
            (0..sats.len()).map(|k| self.observe_sat(k, sats[k], epoch)).collect()
        };
        let ms: Vec<u32> =
            self.monitors.iter_mut().zip(&observed).map(|(mon, &o)| mon.on_epoch(o)).collect();
        self.metrics.m_series.push(ms[0]);
        self.metrics.sat_series.push(or_sat(sats.iter().copied()));

        if self.mode.source_active() {
            for (i, tile) in self.tiles.iter_mut().enumerate() {
                let class = tile.mem.class;
                let stride = self.shares.scaled_stride(class, GOVERNOR_STRIDE_SCALE);
                let threads = self.threads[class.index()].max(1);
                if let Some(plan) = &self.fault_plan {
                    // Epoch-sync skew: this tile misses the reprogram
                    // broadcast and keeps its stale periods this epoch.
                    // The boundary credit clamp is the pacer's own
                    // hardware, not part of the broadcast, so it still
                    // applies (at the stale period).
                    if plan.fires(FaultKind::EpochSkew, i as u64, epoch) {
                        self.faults_injected += 1;
                        for p in tile.mem.pacers_mut().iter_mut() {
                            let stale = p.period();
                            p.set_period(stale, now);
                        }
                        continue;
                    }
                }
                let leak = self
                    .fault_plan
                    .as_ref()
                    .and_then(|p| p.magnitude(FaultKind::CreditLeak, i as u64, epoch));
                for (k, p) in tile.mem.pacers_mut().iter_mut().enumerate() {
                    let m = ms[k.min(ms.len() - 1)];
                    let period = self.rategen.source_period(m, stride, threads);
                    p.set_period(period, now);
                    if let Some(cycles) = leak {
                        p.leak_credit(cycles);
                    }
                }
                if leak.is_some() {
                    self.faults_injected += 1;
                }
            }
        }

        // Per-class bandwidth this epoch (exact u64 for the trace record,
        // f64 for the figure series).
        let mut bytes_u64 = vec![0u64; self.shares.classes()];
        let mut mc_bytes = vec![0u64; self.mcs.len()];
        for (k, mc) in self.mcs.iter_mut().enumerate() {
            let per_class = mc.stats_mut().take_epoch_bytes();
            for (c, b) in bytes_u64.iter_mut().enumerate() {
                *b += per_class[c];
            }
            mc_bytes[k] = per_class.iter().sum();
        }
        let epoch_bytes: u64 = bytes_u64.iter().sum();
        self.push_epoch_figures(&bytes_u64);
        if !self.trace_sinks.is_empty() {
            let sat = or_sat(sats.iter().copied());
            self.emit_trace_record(now, sat, bytes_u64);
        }
        self.epochs_run += 1;
        // The epoch that just ended is now fully accounted: accrue its
        // stalled controller-cycles (for the utilization denominator)
        // before the windows refresh for the next epoch.
        let stalled_now = self.mc_stalled.iter().filter(|&&s| s).count() as u64;
        self.mc_stall_cycles += stalled_now * self.cfg.epoch_cycles;
        // Refresh mc-stall windows for the epoch now starting.
        if self.fault_plan.is_some() {
            let next = self.epochs_run as u64;
            for k in 0..self.mc_stalled.len() {
                let stalled = self
                    .fault_plan
                    .as_ref()
                    .is_some_and(|p| p.fires(FaultKind::McStall, k as u64, next));
                self.mc_stalled[k] = stalled;
                if stalled {
                    self.faults_injected += 1;
                }
            }
        }
        self.check_forward_progress(now, epoch_bytes);
        self.sanitize_epoch(now);
        self.check_invariants(now, epoch, &mc_bytes);
    }

    /// Pushes this epoch's per-class delivered bytes into the bandwidth
    /// figure series. The conversion to `f64` lives here, fenced off from
    /// the governor arithmetic in the heartbeat proper.
    // simlint: allow(taint-float): figure-series conversion of already-final epoch byte counts; feeds plots, never the regulation datapath
    fn push_epoch_figures(&mut self, bytes_u64: &[u64]) {
        let bytes: Vec<f64> = bytes_u64.iter().map(|&b| b as f64).collect();
        self.metrics.bw_series.push_epoch(&bytes);
    }

    /// Applies the SAT-broadcast fault kinds to one monitor's raw sample
    /// for this epoch: drop (`None` — no sample arrives), delay (a stale
    /// sample from `magnitude` epochs ago), corrupt (inverted). Pure
    /// pass-through when no plan is attached.
    fn observe_sat(&mut self, k: usize, sat: bool, epoch: u64) -> Option<bool> {
        let Some(plan) = &self.fault_plan else { return Some(sat) };
        let hist = &mut self.sat_history[k];
        hist.push_back(sat);
        if hist.len() > SAT_HISTORY_MAX {
            hist.pop_front();
        }
        let target = k as u64;
        if plan.fires(FaultKind::SatDrop, target, epoch) {
            self.faults_injected += 1;
            return None;
        }
        if let Some(d) = plan.magnitude(FaultKind::SatDelay, target, epoch) {
            self.faults_injected += 1;
            let d = (d.max(1) as usize).min(hist.len() - 1);
            return Some(hist[hist.len() - 1 - d]);
        }
        if plan.fires(FaultKind::SatCorrupt, target, epoch) {
            self.faults_injected += 1;
            return Some(!sat);
        }
        Some(sat)
    }

    /// Forward-progress watchdog: aborts with a full diagnostic snapshot
    /// after `watchdog_epochs` consecutive epochs in which memory requests
    /// were queued somewhere but zero bytes were delivered. Disabled when
    /// `watchdog_epochs` is 0 (the default).
    ///
    /// The abort is a panic so the bench harness's per-cell isolation
    /// turns it into a failure record instead of a dead sweep.
    fn check_forward_progress(&mut self, now: Cycle, epoch_bytes: u64) {
        if self.cfg.watchdog_epochs == 0 {
            return;
        }
        let queued = self.mcs.iter().any(|m| m.pending() > 0)
            || self.net.any_staged()
            || !self.mshr_wait.is_empty();
        if queued && epoch_bytes == 0 {
            self.stalled_epochs += 1;
        } else {
            self.stalled_epochs = 0;
        }
        if self.stalled_epochs >= self.cfg.watchdog_epochs {
            panic!("{}", self.watchdog_diagnostic(now));
        }
    }

    /// Renders the watchdog abort diagnostic: governor, memory-controller,
    /// and pacer snapshots plus the fault counter, one line each.
    fn watchdog_diagnostic(&self, now: Cycle) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "watchdog: no forward progress for {} epochs (epoch {}, cycle {})",
            self.stalled_epochs, self.epochs_run, now
        );
        for (i, mon) in self.monitors.iter().enumerate() {
            let s = mon.snapshot();
            let _ = writeln!(
                out,
                "  monitor[{i}]: m={} dm={} e={} stale={} degraded={}",
                s.m, s.delta_m, s.steady_epochs, s.stale_epochs, s.degraded
            );
        }
        for (k, mc) in self.mcs.iter().enumerate() {
            let s = mc.snapshot();
            let _ = writeln!(
                out,
                "  mc[{k}]: read_q={} write_q={} pending={} stalled={}",
                s.read_q_depth, s.write_q_depth, s.pending, self.mc_stalled[k]
            );
        }
        for (i, tile) in self.tiles.iter().enumerate() {
            for (k, p) in tile.mem.pacers().iter().enumerate() {
                let s = p.snapshot(now);
                let _ = writeln!(
                    out,
                    "  pacer[tile {i}, mc {k}]: period={} credit={} issued={} throttled={}",
                    s.period, s.credit, s.issued, s.throttled
                );
            }
        }
        let _ = writeln!(out, "  faults_injected={}", self.faults_injected);
        let _ = writeln!(out, "  mechanism_hash={:#018x}", self.cfg.mechanism_hash());
        let _ = writeln!(
            out,
            "  fault_plan_digest={:#018x}",
            self.fault_plan.as_ref().map(FaultPlan::digest).unwrap_or(0)
        );
        out
    }

    /// Builds one [`EpochRecord`] for the epoch that just ended and hands
    /// it to every attached sink.
    fn emit_trace_record(&mut self, now: Cycle, sat: bool, class_bytes: Vec<u64>) {
        let snap = self.monitors[0].snapshot();
        let mut tile_throttles = Vec::with_capacity(self.tiles.len());
        for (i, tile) in self.tiles.iter().enumerate() {
            let total: u64 = tile.mem.pacers().iter().map(Pacer::throttled).sum();
            tile_throttles.push(total - self.prev_throttles[i]);
            self.prev_throttles[i] = total;
        }
        let mut mc_read_depth = Vec::with_capacity(self.mcs.len());
        let mut mc_write_depth = Vec::with_capacity(self.mcs.len());
        let mut mc_pending = Vec::with_capacity(self.mcs.len());
        for mc in &self.mcs {
            let s = mc.snapshot();
            mc_read_depth.push(s.read_q_depth);
            mc_write_depth.push(s.write_q_depth);
            mc_pending.push(s.pending);
        }
        let rec = EpochRecord {
            epoch: self.epochs_run as u64,
            cycle: now,
            m: u64::from(snap.m),
            dm: u64::from(snap.delta_m),
            e: u64::from(snap.steady_epochs),
            rate_up: matches!(snap.rate_dir, RateDir::Up),
            delta_up: matches!(snap.delta_dir, DeltaDir::Up),
            sat,
            mechanism_hash: self.cfg.mechanism_hash(),
            class_bytes,
            tile_throttles,
            mc_read_depth,
            mc_write_depth,
            mc_pending,
        };
        for sink in &mut self.trace_sinks {
            sink.record(&rec);
        }
    }

    /// Re-verifies the paper's accounting invariants at the epoch
    /// boundary (no-op in plain release builds):
    ///
    /// * pacer credit never exceeds the burst window (§III-B3's bounded
    ///   `C_next` lag) — checked right after reprogramming, which clamps;
    /// * every per-class virtual clock in every controller's arbiter is
    ///   monotonically nondecreasing (§III-C2);
    /// * memory-controller request conservation: accepted = completed +
    ///   pending, so no request is lost or double-counted;
    /// * the SAT duty cycle is a valid fraction of epochs.
    fn sanitize_epoch(&mut self, now: Cycle) {
        if !self.sanitizer.enabled() {
            return;
        }
        let san = &mut self.sanitizer;
        for (i, tile) in self.tiles.iter().enumerate() {
            // Period 0 means unthrottled: no credit bound to enforce.
            for p in tile.mem.pacers().iter().filter(|p| p.period() > 0) {
                san.check_le("pacer credit", i, p.credit_at(now), p.burst_window());
            }
        }
        for (k, mc) in self.mcs.iter().enumerate() {
            for c in 0..self.shares.classes() {
                san.check_monotone("mc virtual clock", k, c, mc.virtual_clock(QosId::new(c as u8)));
            }
            let s = mc.stats();
            san.check_conserved(
                "mc requests",
                k,
                mc.accepted(),
                s.reads + s.writes,
                mc.pending() as u64,
            );
        }
        // The staged-request counter that gates the per-cycle drain must
        // agree with the actual class-queue contents.
        for (k, counted, actual) in self.net.staged_conservation() {
            san.check_conserved("net staged", k, counted, actual, 0);
        }
        let sat_epochs = self.metrics.sat_series.iter().filter(|&&s| s).count() as u64;
        san.check_fraction("sat duty", 0, sat_epochs, self.metrics.sat_series.len() as u64);
    }

    /// Evaluates the release-mode invariant laws for the epoch that just
    /// ended, recording (never panicking on) violations. The same
    /// accounting laws the debug sanitizer enforces, plus the families
    /// only this checker covers: queue occupancy vs. configured
    /// capacity, the DPQ worst-case service bound (when
    /// `invariants.bound_checks` promoted it to release mode), and
    /// per-controller forward-progress liveness. `mc_bytes` carries each
    /// controller's delivered bytes this epoch.
    fn check_invariants(&mut self, now: Cycle, epoch: u64, mc_bytes: &[u64]) {
        if !self.invariants.enabled() {
            return;
        }
        let inv = &mut self.invariants;
        inv.begin_epoch(epoch, now);
        for (i, tile) in self.tiles.iter().enumerate() {
            // Period 0 means unthrottled: no credit bound to enforce.
            for p in tile.mem.pacers().iter().filter(|p| p.period() > 0) {
                inv.check_le("pacer credit", i, p.credit_at(now), p.burst_window(), || {
                    let s = p.snapshot(now);
                    format!("period={} issued={} throttled={}", s.period, s.issued, s.throttled)
                });
            }
        }
        let caps = self.cfg.dram;
        for (k, mc) in self.mcs.iter().enumerate() {
            for c in 0..self.shares.classes() {
                inv.check_monotone(
                    "mc virtual clock",
                    k,
                    c,
                    mc.virtual_clock(QosId::new(c as u8)),
                    || format!("arbiter={} class={c}", mc.arbiter_name()),
                );
            }
            let s = mc.stats();
            let snap = mc.snapshot();
            inv.check_conserved(
                "mc requests",
                k,
                mc.accepted(),
                s.reads + s.writes,
                mc.pending() as u64,
                || {
                    format!(
                        "read_q={} write_q={} pending={} stalled={}",
                        snap.read_q_depth, snap.write_q_depth, snap.pending, self.mc_stalled[k]
                    )
                },
            );
            inv.check_le("mc read queue", k, snap.read_q_depth, caps.read_q_cap as u64, || {
                format!("arbiter={}", mc.arbiter_name())
            });
            inv.check_le("mc write queue", k, snap.write_q_depth, caps.write_q_cap as u64, || {
                format!("arbiter={}", mc.arbiter_name())
            });
            inv.check_counter_still("dpq service bound", k, mc.bound_violations(), || {
                format!("arbiter={} pending={}", mc.arbiter_name(), snap.pending)
            });
        }
        // The staged-request counter that gates the per-cycle drain must
        // agree with the actual class-queue contents (per-source ingress
        // fairness rests on that counter).
        for (k, counted, actual) in self.net.staged_conservation() {
            inv.check_conserved("net staged", k, counted, actual, 0, String::new);
        }
        let sat_epochs = self.metrics.sat_series.iter().filter(|&&s| s).count() as u64;
        inv.check_le("sat duty", 0, sat_epochs, self.metrics.sat_series.len() as u64, String::new);
        // Per-controller liveness: a controller with queued requests
        // must deliver bytes within the configured window — the
        // watchdog's panic generalized to a per-component report.
        for (k, &bytes) in mc_bytes.iter().enumerate() {
            let pending = self.mcs[k].pending();
            inv.check_progress("mc service", k, bytes > 0, pending > 0, || {
                format!("pending={pending} stalled={}", self.mc_stalled[k])
            });
        }
    }

    /// The accumulated runtime-invariant report (see
    /// [`pabst_simkit::invariant`]). Empty when checking is disabled.
    pub fn invariant_report(&self) -> &InvariantReport {
        self.invariants.report()
    }

    /// True when memory work is queued anywhere in the machine
    /// (controller queues, staged network requests, or the L3 MSHR
    /// retry queue) — the same predicate the forward-progress watchdog
    /// uses, exposed for campaign timeout classification.
    pub fn has_pending_work(&self) -> bool {
        self.mcs.iter().any(|m| m.pending() > 0)
            || self.net.any_staged()
            || !self.mshr_wait.is_empty()
    }
}

/// Assembles a [`System`] from QoS classes with weights and per-core
/// workloads.
///
/// Cores are assigned to classes in the order `class` is called; the L3 is
/// partitioned into equal exclusive way groups per class (override with
/// [`SystemBuilder::l3_ways`]).
pub struct SystemBuilder {
    cfg: SystemConfig,
    mode: RegulationMode,
    weights: Vec<u32>,
    workloads: Vec<Vec<Box<dyn Workload>>>,
    l3_ways: Vec<Option<(usize, usize)>>,
    fault_plan: Option<FaultPlan>,
    skip: Option<bool>,
    probe_cap: Option<u64>,
}

impl SystemBuilder {
    /// Starts building a system with the given configuration and
    /// regulation mode.
    pub fn new(cfg: SystemConfig, mode: RegulationMode) -> Self {
        Self {
            cfg,
            mode,
            weights: Vec::new(),
            workloads: Vec::new(),
            l3_ways: Vec::new(),
            fault_plan: None,
            skip: None,
            probe_cap: None,
        }
    }

    /// Overrides the horizon probe backoff cap (default
    /// [`System::DEFAULT_PROBE_BACKOFF_CAP`]). Purely a host-side pacing
    /// knob for the skip machinery: larger caps probe a saturated
    /// machine less often, smaller caps catch the start of a quiescent
    /// window sooner. Simulated behavior is byte-identical at any value
    /// (the `sim_throughput` harness sweeps it).
    ///
    /// A cap of 0 is clamped to 1 (probe every cycle).
    pub fn probe_backoff_cap(mut self, cap: u64) -> Self {
        self.probe_cap = Some(cap.max(1));
        self
    }

    /// Overrides quiescence-aware cycle skipping for this system. The
    /// default is on, unless the `PABST_NO_SKIP` environment variable is
    /// set (non-empty) — the A/B switch the equivalence CI job flips.
    /// Skipping is an execution strategy, not a model parameter: every
    /// observable output is byte-identical either way.
    pub fn skip(mut self, enabled: bool) -> Self {
        self.skip = Some(enabled);
        self
    }

    /// Attaches a deterministic fault-injection plan (see
    /// [`pabst_simkit::fault`]). An absent or inert plan leaves every
    /// output byte-identical to an unfaulted run.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Adds a QoS class with proportional-share `weight`, running one
    /// workload per core (consuming `workloads.len()` cores).
    pub fn class(mut self, weight: u32, workloads: Vec<Box<dyn Workload>>) -> Self {
        self.weights.push(weight);
        self.workloads.push(workloads);
        self.l3_ways.push(None);
        self
    }

    /// Overrides the L3 way partition of the most recently added class:
    /// `count` ways starting at `first`.
    ///
    /// # Panics
    ///
    /// Panics if called before any `class`.
    pub fn l3_ways(mut self, first: usize, count: usize) -> Self {
        *self.l3_ways.last_mut().expect("call class() first") = Some((first, count));
        self
    }

    /// Builds the system.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration is invalid, the
    /// classes exceed the core count, or shares are malformed.
    pub fn build(self) -> Result<System, ConfigError> {
        self.cfg.validate()?;
        let total_cores: usize = self.workloads.iter().map(Vec::len).sum();
        if total_cores == 0 {
            return Err(ConfigError::NoWorkloads);
        }
        if total_cores > self.cfg.cores {
            return Err(ConfigError::TooManyCores {
                requested: total_cores,
                available: self.cfg.cores,
            });
        }
        let shares = ShareTable::from_weights(&self.weights).map_err(ConfigError::Weights)?;

        // L3 partitioning: equal exclusive slices by default.
        let mut l3 = SetAssocCache::new(self.cfg.l3);
        let classes = self.weights.len();
        let default_slice = (self.cfg.l3.ways / classes).max(1);
        for c in 0..classes {
            let (first, count) = self.l3_ways[c].unwrap_or((c * default_slice, default_slice));
            l3.set_partition(QosId::new(c as u8), WayMask::range(first, count));
        }

        let arb = if self.mode.target_active() { self.cfg.arbiter } else { ArbiterMode::Fcfs };
        let mut mcs: Vec<MemController> = (0..self.cfg.mcs)
            .map(|_| MemController::new(self.cfg.dram, arb, &shares, self.cfg.arbiter_slack))
            .collect();
        if self.cfg.invariants.bound_checks {
            for mc in &mut mcs {
                mc.set_bound_checks(true);
            }
        }

        let mut tiles = Vec::new();
        let mut tile_class = Vec::new();
        let mut threads = vec![0u32; classes];
        for (c, class_workloads) in self.workloads.into_iter().enumerate() {
            let class = QosId::new(c as u8);
            for workload in class_workloads {
                let pacers = if !self.mode.source_active() {
                    Vec::new()
                } else if self.cfg.per_mc_regulation {
                    (0..self.cfg.mcs).map(|_| Pacer::with_burst(0, self.cfg.pacer_burst)).collect()
                } else {
                    vec![Pacer::with_burst(0, self.cfg.pacer_burst)]
                };
                let mem = TileMem::new(
                    class,
                    SetAssocCache::new(self.cfg.l1),
                    SetAssocCache::new(self.cfg.l2),
                    self.cfg.l2_mshrs,
                    self.cfg.l1_lat,
                    self.cfg.l2_lat,
                    pacers,
                    self.cfg.mcs,
                    self.cfg.topology.channel_map,
                );
                tiles.push(Tile { core: OooCore::new(self.cfg.core), mem, workload });
                tile_class.push(class);
                threads[c] += 1;
            }
        }

        let cores = tiles.len();
        let n_monitors = if self.cfg.per_mc_regulation { self.cfg.mcs } else { 1 };
        // Epoch 0's mc-stall windows are decided at build time; later
        // epochs refresh at each boundary.
        let mc_stalled: Vec<bool> = (0..self.cfg.mcs)
            .map(|k| {
                self.fault_plan.as_ref().is_some_and(|p| p.fires(FaultKind::McStall, k as u64, 0))
            })
            .collect();
        let faults_injected = mc_stalled.iter().filter(|&&s| s).count() as u64;
        let skip_enabled = self.skip.unwrap_or_else(|| {
            !FORCE_NO_SKIP.load(std::sync::atomic::Ordering::Relaxed)
                && std::env::var_os("PABST_NO_SKIP").is_none_or(|v| v.is_empty())
        });
        Ok(System {
            metrics: Metrics::new(cores, classes, self.cfg.epoch_cycles),
            l3,
            l3_mshrs: MshrTable::new(self.cfg.l3_mshrs),
            net: Interconnect::new(&self.cfg, classes),
            mshr_wait: VecDeque::new(),
            mcs,
            monitors: (0..n_monitors).map(|_| self.cfg.governor.build(self.cfg.monitor)).collect(),
            rategen: RateGenerator::default(),
            tiles,
            tile_class,
            threads,
            shares,
            now: 0,
            skip_enabled,
            sched: DomainSched::new(cores, self.cfg.mcs),
            probe_at: 0,
            probe_backoff: 1,
            probe_cap: self.probe_cap.unwrap_or(System::DEFAULT_PROBE_BACKOFF_CAP),
            epochs_run: 0,
            sanitizer: Sanitizer::new(),
            invariants: InvariantChecker::new(self.cfg.invariants),
            trace_sinks: Vec::new(),
            prev_throttles: vec![0; cores],
            completions_scratch: Vec::new(),
            l3_waiters_scratch: Vec::new(),
            sat_history: vec![VecDeque::new(); n_monitors],
            mc_stalled,
            mc_stall_cycles: 0,
            faults_injected,
            stalled_epochs: 0,
            fault_plan: self.fault_plan,
            cfg: self.cfg,
            mode: self.mode,
        })
    }
}

impl std::fmt::Debug for SystemBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemBuilder")
            .field("mode", &self.mode)
            .field("weights", &self.weights)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pabst_cpu::Op;

    struct Idle;
    impl Workload for Idle {
        fn next_op(&mut self) -> Op {
            Op::Compute(4)
        }
        fn name(&self) -> &str {
            "idle"
        }
    }

    fn idle_boxes(n: usize) -> Vec<Box<dyn Workload>> {
        (0..n).map(|_| Box::new(Idle) as Box<dyn Workload>).collect()
    }

    #[test]
    fn builder_rejects_too_many_cores() {
        let cfg = SystemConfig::small_test(); // 4 cores
        let err = SystemBuilder::new(cfg, RegulationMode::Pabst).class(1, idle_boxes(5)).build();
        assert!(err.is_err());
    }

    #[test]
    fn builder_rejects_empty() {
        let cfg = SystemConfig::small_test();
        assert!(SystemBuilder::new(cfg, RegulationMode::Pabst).build().is_err());
    }

    #[test]
    fn idle_system_advances_and_reports_no_traffic() {
        let cfg = SystemConfig::small_test();
        let mut sys =
            SystemBuilder::new(cfg, RegulationMode::Pabst).class(1, idle_boxes(2)).build().unwrap();
        sys.run_epochs(3);
        assert_eq!(sys.epochs_run(), 3);
        assert_eq!(sys.now(), 3 * cfg.epoch_cycles);
        assert!(sys.metrics().mean_bytes_per_cycle(0, 0) < 1e-6);
        // Idle cores still retire compute at full width.
        assert!(sys.tiles()[0].core.stats().retired > 0);
        // No saturation ever.
        assert!(sys.metrics().sat_series.iter().all(|&s| !s));
    }

    #[test]
    fn sanitizer_checks_run_every_epoch() {
        // Test builds carry debug_assertions, so the epoch sanitizer is
        // live and must have evaluated its invariants.
        let cfg = SystemConfig::small_test();
        let mut sys =
            SystemBuilder::new(cfg, RegulationMode::Pabst).class(1, idle_boxes(2)).build().unwrap();
        sys.run_epochs(2);
        assert!(sys.sanitizer().enabled());
        assert!(sys.sanitizer().checks_run() > 0);
    }

    /// Total demand reads staged toward the memory controllers.
    fn queued_mem_reads(sys: &System) -> usize {
        sys.net
            .staged
            .iter()
            .flat_map(|queues| queues.iter())
            .flat_map(|q| q.iter())
            .filter(|(_, r)| !r.is_write)
            .count()
    }

    #[test]
    fn mshr_wait_retry_merges_same_line_misses() {
        // Two misses to the same line are refused while the L3 MSHR table
        // is full. Once space frees, the retry loop must admit the first
        // and merge the second as a secondary — not re-admit it, which
        // would enqueue a duplicate DRAM read (and trip admit_miss's
        // debug_assert in test builds).
        let mut cfg = SystemConfig::small_test();
        cfg.l3_mshrs = 2;
        let mut sys =
            SystemBuilder::new(cfg, RegulationMode::Pabst).class(1, idle_boxes(2)).build().unwrap();

        // Fill the table with two unrelated in-flight misses.
        let blockers = [LineAddr::new(998), LineAddr::new(999)];
        for b in blockers {
            sys.l3_mshrs.alloc(b, L3Waiter { tile: 0, store: false });
        }
        assert!(sys.l3_mshrs.is_full());

        // Two tiles miss on the same line while the table is full.
        let line = LineAddr::new(7);
        for tile in 0..2 {
            sys.mshr_wait.push_back(L3Req {
                line,
                class: QosId::new(0),
                tile,
                store: false,
                l2_wb: false,
            });
        }

        // Both blockers complete; the retry loop runs with two free slots.
        for b in blockers {
            let _ = sys.l3_mshrs.complete(b);
        }
        sys.l3_service(0);

        assert!(sys.mshr_wait.is_empty(), "both waiting misses must drain");
        assert_eq!(sys.l3_mshrs.len(), 1, "same-line misses share one MSHR entry");
        assert_eq!(queued_mem_reads(&sys), 1, "exactly one DRAM read for the line");
        assert_eq!(sys.l3_mshrs.complete(line).len(), 2, "both tiles wait on the entry");
    }

    /// Drives one dirty-eviction L3 fill completion under `policy` and
    /// returns the `wb_flag` delivered to the demanding tile.
    fn completion_wb_flag(policy: WbAccounting) -> bool {
        let mut cfg = SystemConfig::small_test();
        cfg.wb_accounting = policy;
        let mut sys =
            SystemBuilder::new(cfg, RegulationMode::Pabst).class(1, idle_boxes(1)).build().unwrap();
        // Dirty every way of L3 set 0 so the next fill there must evict a
        // dirty line (small_test: 256 sets, lines k*256 map to set 0).
        for w in 0..16u64 {
            let _ = sys.l3.fill(LineAddr::new(w * 256), QosId::new(0), true);
        }
        let line = LineAddr::new(16 * 256);
        sys.l3_mshrs.alloc(line, L3Waiter { tile: 0, store: false });
        sys.on_mc_completion(Completion { token: 0, class: QosId::new(0), is_write: false, line });
        let resp = sys.net.resp_net.pop_ready(u64::MAX).expect("completion must respond");
        resp.wb_flag
    }

    #[test]
    fn wb_flag_respects_accounting_policy() {
        // Only ChargeDemand puts the writeback's extra period on the
        // demand source's pacer; the ablation modes must not.
        assert!(completion_wb_flag(WbAccounting::ChargeDemand));
        assert!(!completion_wb_flag(WbAccounting::ChargeOwner));
        assert!(!completion_wb_flag(WbAccounting::ChargeNone));
    }

    #[derive(Debug, Clone, Default)]
    struct Cap(std::rc::Rc<std::cell::RefCell<Vec<EpochRecord>>>);
    impl TraceSink for Cap {
        fn record(&mut self, rec: &EpochRecord) {
            self.0.borrow_mut().push(rec.clone());
        }
    }

    #[test]
    fn trace_records_one_per_epoch_and_deterministic() {
        let run = || {
            let cfg = SystemConfig::small_test();
            let mut sys = SystemBuilder::new(cfg, RegulationMode::Pabst)
                .class(1, idle_boxes(2))
                .build()
                .unwrap();
            let cap = Cap::default();
            sys.add_trace_sink(Box::new(cap.clone()));
            sys.run_epochs(3);
            let records = cap.0.borrow().clone();
            records
        };
        let a = run();
        assert_eq!(a.len(), 3, "one record per epoch");
        for (i, rec) in a.iter().enumerate() {
            assert_eq!(rec.epoch, i as u64);
            assert_eq!(rec.class_bytes.len(), 1, "one class");
            assert_eq!(rec.tile_throttles.len(), 2, "one entry per tile");
            assert_eq!(rec.mc_read_depth.len(), 1, "one entry per MC");
            assert!(rec.m > 0, "monitor state present");
        }
        let b = run();
        assert_eq!(a, b, "trace must be deterministic across identical runs");
    }

    use pabst_simkit::fault::FaultSpec;
    use pabst_workloads::{Region, StreamGen};

    /// Memory-bound read streamers over a region far larger than the L3,
    /// so every epoch generates misses for as long as the run lasts.
    fn stream_boxes(n: usize) -> Vec<Box<dyn Workload>> {
        (0..n)
            .map(|i| {
                Box::new(StreamGen::reads(Region::new(0, 1 << 16), i as u64)) as Box<dyn Workload>
            })
            .collect()
    }

    fn always(kind: FaultKind, target: u64, magnitude: u64) -> FaultSpec {
        FaultSpec {
            kind,
            target,
            from_epoch: 0,
            until_epoch: u64::MAX,
            prob_ppm: pabst_simkit::fault::PPM_SCALE,
            magnitude,
            seed: 1,
        }
    }

    #[test]
    fn watchdog_fires_on_a_permanently_stalled_mc() {
        let mut cfg = SystemConfig::small_test();
        cfg.watchdog_epochs = 3;
        let mut plan = FaultPlan::new();
        plan.push(always(FaultKind::McStall, 0, 0));
        let digest = plan.digest();
        let mut sys = SystemBuilder::new(cfg, RegulationMode::Pabst)
            .class(1, stream_boxes(2))
            .fault_plan(plan)
            .build()
            .unwrap();
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sys.run_epochs(20);
        }))
        .expect_err("a fully stalled memory system must trip the watchdog");
        let msg =
            panic.downcast_ref::<String>().cloned().unwrap_or_else(|| "<non-string panic>".into());
        assert!(msg.starts_with("watchdog: no forward progress"), "{msg}");
        assert!(msg.contains("mc[0]"), "diagnostic must include MC snapshots: {msg}");
        assert!(msg.contains("monitor[0]"), "diagnostic must include governor state: {msg}");
        assert!(
            msg.contains(&format!("mechanism_hash={:#018x}", cfg.mechanism_hash())),
            "diagnostic must carry mechanism provenance: {msg}"
        );
        assert!(
            msg.contains(&format!("fault_plan_digest={:#018x}", digest)),
            "diagnostic must carry the fault-plan digest: {msg}"
        );
    }

    #[test]
    fn watchdog_is_silent_on_a_healthy_run() {
        let mut cfg = SystemConfig::small_test();
        cfg.watchdog_epochs = 2;
        let mut sys = SystemBuilder::new(cfg, RegulationMode::Pabst)
            .class(1, stream_boxes(2))
            .build()
            .unwrap();
        sys.run_epochs(10);
        assert_eq!(sys.epochs_run(), 10);
        assert_eq!(sys.faults_injected(), 0);
    }

    #[test]
    fn inert_fault_plan_is_bit_identical_to_no_plan() {
        let run = |plan: Option<FaultPlan>| {
            let cfg = SystemConfig::small_test();
            let mut b = SystemBuilder::new(cfg, RegulationMode::Pabst).class(1, stream_boxes(2));
            if let Some(p) = plan {
                b = b.fault_plan(p);
            }
            let mut sys = b.build().unwrap();
            let cap = Cap::default();
            sys.add_trace_sink(Box::new(cap.clone()));
            sys.run_epochs(6);
            let records = cap.0.borrow().clone();
            (records, sys.faults_injected())
        };
        let mut inert = FaultPlan::new();
        for kind in FaultKind::ALL {
            inert.push(FaultSpec {
                kind,
                target: 0,
                from_epoch: 0,
                until_epoch: u64::MAX,
                prob_ppm: 0,
                magnitude: 3,
                seed: 7,
            });
        }
        assert!(inert.is_inert());
        let (a, faults_a) = run(None);
        let (b, faults_b) = run(Some(inert));
        assert_eq!(a, b, "an inert plan must not perturb a single trace field");
        assert_eq!((faults_a, faults_b), (0, 0));
    }

    #[test]
    fn sat_drop_drives_the_governor_into_degraded_mode() {
        let cfg = SystemConfig::small_test();
        let mut plan = FaultPlan::new();
        plan.push(always(FaultKind::SatDrop, 0, 0));
        let mut sys = SystemBuilder::new(cfg, RegulationMode::Pabst)
            .class(1, stream_boxes(2))
            .fault_plan(plan)
            .build()
            .unwrap();
        sys.run_epochs(12);
        // Every epoch's broadcast was dropped; past the staleness window
        // the fail-safe decay kicks in.
        assert_eq!(sys.faults_injected(), 12);
        assert!(sys.degraded_epochs() > 0, "governor must enter the degraded policy");
        assert_eq!(sys.degraded_epochs(), 12 - u64::from(cfg.monitor.staleness_k));
    }

    #[test]
    fn finite_mc_stall_window_recovers_without_deadlock() {
        let mut cfg = SystemConfig::small_test();
        cfg.watchdog_epochs = 5;
        let mut plan = FaultPlan::new();
        plan.push(FaultSpec {
            kind: FaultKind::McStall,
            target: 0,
            from_epoch: 1,
            until_epoch: 2,
            prob_ppm: pabst_simkit::fault::PPM_SCALE,
            magnitude: 0,
            seed: 0,
        });
        let mut sys = SystemBuilder::new(cfg, RegulationMode::Pabst)
            .class(1, stream_boxes(2))
            .fault_plan(plan)
            .build()
            .unwrap();
        sys.run_epochs(8);
        assert_eq!(sys.epochs_run(), 8, "the sweep must outlive the stall window");
        assert_eq!(sys.faults_injected(), 2, "epochs 1 and 2 stall");
        assert!(sys.bytes_since_mark(0) > 0, "traffic must flow after recovery");
    }

    #[test]
    fn invariant_checker_runs_and_stays_clean_on_a_healthy_run() {
        let mut cfg = SystemConfig::small_test();
        cfg.invariants.bound_checks = true;
        cfg.invariants.liveness_epochs = 4;
        let mut sys = SystemBuilder::new(cfg, RegulationMode::Pabst)
            .class(1, stream_boxes(2))
            .build()
            .unwrap();
        sys.run_epochs(10);
        let report = sys.invariant_report();
        assert!(report.checks_run() > 0, "the release-mode checker must be live by default");
        assert!(report.is_clean(), "healthy run violated laws: {:?}", report.violations());
    }

    #[test]
    fn liveness_invariant_reports_a_wedged_mc_without_panicking() {
        // Same wedge the watchdog test aborts on — but with the watchdog
        // off and a liveness window configured, the run completes and
        // the stall is *recorded* as a typed violation instead.
        let mut cfg = SystemConfig::small_test();
        cfg.watchdog_epochs = 0;
        cfg.invariants.liveness_epochs = 3;
        let mut plan = FaultPlan::new();
        plan.push(always(FaultKind::McStall, 0, 0));
        let mut sys = SystemBuilder::new(cfg, RegulationMode::Pabst)
            .class(1, stream_boxes(2))
            .fault_plan(plan)
            .build()
            .unwrap();
        sys.run_epochs(12);
        assert_eq!(sys.epochs_run(), 12, "no abort");
        let report = sys.invariant_report();
        assert!(!report.is_clean(), "a permanently wedged MC must trip liveness");
        let v = &report.violations()[0];
        assert_eq!(v.law, pabst_simkit::invariant::InvariantLaw::Liveness);
        assert_eq!(v.name, "mc service");
        assert!(v.detail.contains("stalled=true"), "{}", v.detail);
        assert!(sys.has_pending_work(), "the wedge leaves requests queued");
    }

    #[test]
    fn invariant_checking_is_observation_only() {
        // The acceptance criterion behind leaving the checker on in
        // golden runs: enabling every invariant family (including the
        // release-promoted DPQ bound and a liveness window) must not
        // perturb a single trace field.
        let run = |inv: pabst_simkit::invariant::InvariantConfig| {
            let mut cfg = SystemConfig::small_test();
            cfg.invariants = inv;
            let mut sys = SystemBuilder::new(cfg, RegulationMode::Pabst)
                .class(1, stream_boxes(2))
                .build()
                .unwrap();
            let cap = Cap::default();
            sys.add_trace_sink(Box::new(cap.clone()));
            sys.run_epochs(6);
            let records = cap.0.borrow().clone();
            records
        };
        let off = run(pabst_simkit::invariant::InvariantConfig {
            enabled: false,
            bound_checks: false,
            liveness_epochs: 0,
        });
        let on = run(pabst_simkit::invariant::InvariantConfig {
            enabled: true,
            bound_checks: true,
            liveness_epochs: 1,
        });
        assert_eq!(off, on, "the checker must read state, never mutate it");
    }

    #[test]
    fn skew_and_credit_leak_fire_per_tile() {
        let cfg = SystemConfig::small_test();
        let mut plan = FaultPlan::new();
        plan.push(always(FaultKind::EpochSkew, 0, 0));
        plan.push(always(FaultKind::CreditLeak, 1, 10_000));
        let mut sys = SystemBuilder::new(cfg, RegulationMode::Pabst)
            .class(1, stream_boxes(2))
            .fault_plan(plan)
            .build()
            .unwrap();
        sys.run_epochs(6);
        // One skew (tile 0) and one leak (tile 1) per boundary.
        assert_eq!(sys.faults_injected(), 12);
    }

    #[test]
    fn all_idle_step_performs_no_queue_operations() {
        // Compute-only tiles never miss, so every memory-side structure
        // must stay untouched no matter how long the system steps: the
        // guarded paths in `step` (MC drain, L3 service, response pop,
        // injection) all see empty queues and do no work.
        let cfg = SystemConfig::small_test();
        let mut sys =
            SystemBuilder::new(cfg, RegulationMode::Pabst).class(1, idle_boxes(2)).build().unwrap();
        for _ in 0..500 {
            sys.step();
        }
        assert!(!sys.net.has_requests(), "nothing may enter the request network");
        assert!(!sys.net.has_responses(), "nothing may enter the response network");
        assert!(sys.mshr_wait.is_empty());
        assert_eq!(sys.l3_mshrs.len(), 0);
        assert!(!sys.net.any_staged());
        for mc in &sys.mcs {
            assert_eq!(mc.accepted(), 0, "no request may reach a controller");
            assert_eq!(mc.pending(), 0);
        }
        // Busy compute cores are never quiescent, so nothing was skipped.
        assert_eq!(sys.cycles_skipped(), 0);
        assert_eq!(sys.now(), 500);
    }

    #[test]
    fn fast_forward_is_bit_identical_to_naive_stepping() {
        // The tentpole contract in miniature (the full config × workload ×
        // fault matrix lives in tests/skip_equiv.rs): same machine, same
        // workloads, skip on vs off — every trace field, the clock, and
        // every core's retirement count must match exactly.
        let run = |skip: bool| {
            let cfg = SystemConfig::small_test();
            let mut sys = SystemBuilder::new(cfg, RegulationMode::Pabst)
                .class(3, stream_boxes(2))
                .class(1, stream_boxes(2))
                .skip(skip)
                .build()
                .unwrap();
            assert_eq!(sys.skip_enabled(), skip);
            let cap = Cap::default();
            sys.add_trace_sink(Box::new(cap.clone()));
            sys.run_epochs(8);
            let records = cap.0.borrow().clone();
            let retired: Vec<u64> = sys.tiles().iter().map(|t| t.core.stats().retired).collect();
            (records, sys.now(), retired, sys.cycles_skipped())
        };
        let (rec_skip, now_skip, ret_skip, skipped) = run(true);
        let (rec_naive, now_naive, ret_naive, skipped_naive) = run(false);
        assert_eq!(rec_skip, rec_naive, "trace records must be byte-identical");
        assert_eq!(now_skip, now_naive);
        assert_eq!(ret_skip, ret_naive);
        assert_eq!(skipped_naive, 0, "naive mode must never skip");
        assert!(skipped > 0, "saturating streams must leave skippable gaps, got 0");
    }

    #[test]
    fn partitions_default_to_equal_slices() {
        // Two classes on a 16-way L3: 8 ways each; build must not panic and
        // the system must run.
        let cfg = SystemConfig::small_test();
        let mut sys = SystemBuilder::new(cfg, RegulationMode::None)
            .class(1, idle_boxes(1))
            .class(1, idle_boxes(1))
            .build()
            .unwrap();
        sys.run_epochs(1);
    }
}
