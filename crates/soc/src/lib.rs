//! Full-system assembly for the PABST reproduction: the 32-core tiled SoC
//! of the paper's §III (Fig. 2), with the PABST governor/pacer at each
//! private L2 and the priority arbiter + saturation monitor at each memory
//! controller.
//!
//! ```text
//! tile = core + L1D + private L2 (+ PABST governor/pacer)
//! 32 tiles ──► network ──► shared, way-partitioned L3 ──► 4 memory controllers
//!     ▲                                                    │ SAT (wired-OR)
//!     └───────────── epoch heartbeat + M ◄─────────────────┘
//! ```
//!
//! The [`system::System`] owns every component and advances cycle by
//! cycle; [`system::SystemBuilder`] assembles experiments (QoS classes,
//! weights, workloads, cache partitions, regulation mode). [`metrics`]
//! collects everything the paper's figures report.
//!
//! # Quick start
//!
//! ```
//! use pabst_soc::config::{RegulationMode, SystemConfig};
//! use pabst_soc::system::SystemBuilder;
//! use pabst_cpu::{Op, Workload};
//!
//! // A trivial compute-only workload (real experiments use
//! // `pabst-workloads` generators).
//! struct Idle;
//! impl Workload for Idle {
//!     fn next_op(&mut self) -> Op { Op::Compute(4) }
//!     fn name(&self) -> &str { "idle" }
//! }
//!
//! let cfg = SystemConfig::small_test();
//! let mut sys = SystemBuilder::new(cfg, RegulationMode::Pabst)
//!     .class(1, (0..2).map(|_| Box::new(Idle) as Box<dyn Workload>).collect())
//!     .build()?;
//! sys.run_epochs(2);
//! assert!(sys.now() > 0);
//! # Ok::<(), pabst_soc::config::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod metrics;
pub mod net;
pub mod report;
pub mod sched;
pub mod system;
pub mod tile;

pub use config::{ChannelMap, NetModel, RegulationMode, SystemConfig, Topology, WbAccounting};
pub use metrics::Metrics;
pub use report::SystemReport;
pub use system::{System, SystemBuilder};
