//! Fixture: the stepping root for the determinism-taint pairs.

impl System {
    /// The stepping loop; everything it reaches must be bit-replayable.
    pub fn advance(&mut self) {
        epoch_heartbeat(self.now);
    }
}
