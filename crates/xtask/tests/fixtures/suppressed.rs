//! Fixture: every violation carries a justified suppression — lints clean.

use std::collections::HashMap; // simlint: allow(hash-map): never iterated; keyed lookups only

// simlint: allow(unwrap): capacity > 0 is asserted by the constructor
// simlint: allow(hash-map): never iterated; keyed lookups only
fn occupancy(table: &HashMap<u64, u32>, key: u64) -> u32 {
    table.get(&key).copied().unwrap()
}

/// Documented, and the float is justified.
// simlint: allow(float-math): reporting-only percentage for the run summary
pub fn percent(hits: u64, total: u64) -> f64 {
    hits as f64 * 100.0 / total.max(1) as f64
}
