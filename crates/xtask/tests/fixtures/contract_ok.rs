//! Fixture: the same stepped component with its horizon surface defined.

pub struct Prefetcher {
    inflight: u64,
}

impl Prefetcher {
    /// Issues one queued prefetch per cycle.
    pub fn step(&mut self) {
        if self.inflight > 0 {
            self.inflight -= 1;
        }
    }

    /// The earliest cycle this component can change state.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        if self.inflight > 0 {
            Some(now)
        } else {
            None
        }
    }
}
