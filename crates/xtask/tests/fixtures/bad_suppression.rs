//! Fixture: malformed suppressions are themselves violations, and an
//! unjustified allow does not silence the underlying diagnostic.

use std::collections::HashMap; // simlint: allow(hash-map)

fn f() -> HashMap<u8, u8> {
    // simlint: allow(determinism): no such rule
    HashMap::new()
}
