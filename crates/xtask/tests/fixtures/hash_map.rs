//! Fixture: violates `hash-map` (L1) when linted as simulation-crate code.

use std::collections::HashMap;
use std::collections::HashSet;

fn hashed_state() -> usize {
    let occupancy: HashMap<u64, u32> = HashMap::new();
    let lines: HashSet<u64> = HashSet::new();
    occupancy.len() + lines.len()
}
