//! Fixture: direct RNG draws in a mechanism crate (rule L7, `fault-rng`).

use pabst_simkit::rng::SimRng;

pub fn ad_hoc_drop(rng: &mut SimRng) -> bool {
    rng.gen_bool(250_000)
}

pub fn ad_hoc_delay(rng: &mut SimRng) -> u64 {
    rng.gen_range(8)
}

// A suppression with justification silences the item that follows.
// simlint: allow(fault-rng): fixture demonstrating a sanctioned escape hatch
pub fn sanctioned(rng: &mut SimRng) -> u64 {
    rng.gen_range(2)
}

pub fn lookalikes_stay_clean() {
    let gen_bool_count = 4;
    let _ = gen_bool_count;
}
