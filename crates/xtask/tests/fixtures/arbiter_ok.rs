//! Fixture: the same arbiter with its wake-ups exposed to the min-combine.

pub struct BlindArbiter {
    promote_at: u64,
}

impl TargetArbiter for BlindArbiter {
    /// Stamps a deadline and remembers it as the next wake-up.
    fn stamp(&mut self, now: u64) {
        self.promote_at = now + 64;
    }

    /// The earliest cycle a queued request's priority can change.
    fn next_event(&self, now: u64) -> u64 {
        self.promote_at.max(now)
    }
}
