//! Fixture: std::thread usage outside the sweep executor (rule L6).

use std::thread;

pub fn racy_fanout() {
    let h = thread::spawn(|| 1 + 1);
    let _ = h.join();
}

pub fn scoped(xs: &mut [u64]) {
    std::thread::scope(|s| {
        s.spawn(|| xs[0] += 1);
    });
}

// A suppression with justification silences the item that follows.
// simlint: allow(thread): fixture demonstrating a sanctioned escape hatch
pub fn sanctioned() {
    std::thread::yield_now();
}

pub fn lookalikes_stay_clean() {
    let thread_count = 4;
    let _ = thread_count;
}
