//! Fixture: per-cycle stepping and accounting outside the audited
//! event-horizon set (rule L8, `horizon`).

pub fn naive_loop(until: u64) {
    let mut now = 0;
    while now < until {
        now += 1;
    }
}

pub fn per_cycle_sampling(mon: &mut Satmon, q: usize) {
    mon.sample(q as u64);
    mon.sample_n(q as u64, 4);
}

pub fn per_cycle_counters(stats: &mut Stats) {
    stats.throttled += 1;
    stats.rob_full_cycles += 1;
}

// A suppression with justification silences the item that follows.
// simlint: allow(horizon): fixture demonstrating an audited escape hatch
pub fn audited(now: &mut u64) {
    *now += 1;
}

pub fn lookalikes_stay_clean(now: u64) -> u64 {
    let subsample = now + 1;
    let sample_rate = subsample;
    sample_rate
}
