//! Fixture: per-cycle stepping in a file that also defines its event
//! horizon — the structural exemption for rule L8 (`horizon`).

pub struct Ctl {
    now: u64,
    pending: Option<u64>,
}

impl Ctl {
    /// Steps one cycle. Per-cycle state is fine here: the same file
    /// exposes `next_event`, so the skip loop can bound this stepping.
    pub fn step(&mut self) {
        self.now += 1;
    }

    /// The earliest cycle this component can change state.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        self.pending.map(|at| at.max(now))
    }
}
