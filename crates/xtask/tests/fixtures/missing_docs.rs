//! Fixture: violates `missing-docs` (L5) — one documented, one bare pub fn.

/// Documented: the paper's Eq. 2 stride derivation.
pub fn documented_stride(weight: u64) -> u64 {
    720_720 / weight.max(1)
}

pub fn undocumented_credit(now: u64, c_next: u64) -> u64 {
    now.saturating_sub(c_next)
}

#[must_use]
pub fn undocumented_with_attr(x: u64) -> u64 {
    x + 1
}
