//! Fixture: a stepping root whose horizon min-combine reaches the
//! component's `next_event`.

impl System {
    /// The stepping loop: probes the component horizon before stepping.
    pub fn advance(&mut self, p: &Prefetcher) {
        if p.next_event(self.now) == Some(self.now) {
            step_everything();
        }
    }
}
