//! Fixture: a TargetArbiter impl with no horizon surface (horizon-contract).

pub struct BlindArbiter {
    promote_at: u64,
}

impl TargetArbiter for BlindArbiter {
    /// Stamps a deadline but never exposes it as a wake-up.
    fn stamp(&mut self, now: u64) {
        self.promote_at = now + 64;
    }
}
