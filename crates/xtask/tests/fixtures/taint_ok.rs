//! Fixture: the same call shape with an integer-only reached path; the
//! sinks live in a function nothing on the stepping path reaches.

/// Epoch bookkeeping the root calls into — integer domain only.
pub fn epoch_heartbeat(epoch: u64) {
    let _ = epoch.wrapping_mul(3);
}

/// Never called from the stepping path: sinks here stay unflagged.
pub fn offline_summary(values: &[u64]) -> f64 {
    values.iter().sum::<u64>() as f64 * 0.5
}
