//! Fixture: every sink class, reached from the stepping root.

/// Epoch bookkeeping the root calls into — each line is a sink.
pub fn epoch_heartbeat(epoch: u64) {
    let _started = std::time::Instant::now();
    let _rng = thread_rng();
    observe(epoch);
}

fn observe(epoch: u64) {
    let mut seen = HashMap::new();
    seen.insert(epoch, 2.5);
}
