//! Fixture: per-domain wiring — the component's `next_event` is consulted
//! from the domain scheduler's park path, not the global min-combine.

impl DomainSched {
    /// Parks one tile at the component's own horizon: the cached wake
    /// time is exactly what the probe would have min-combined.
    pub fn park_tile(&mut self, p: &Prefetcher, now: u64) {
        let wake = p.next_event(now);
        self.cache_wake(wake);
    }
}
