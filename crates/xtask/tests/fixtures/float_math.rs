//! Fixture: violates `float-math` (L3) when linted as a regulation-datapath
//! file (`crates/core/src/pacer.rs`).

/// Documented so only the float rule fires.
pub fn credit_fraction(credit: u64, cap: u64) -> f64 {
    credit as f64 / cap as f64
}

/// Documented so only the float rule fires.
pub fn scaled(period: u64) -> u64 {
    (period as f32 * 1.5) as u64
}
