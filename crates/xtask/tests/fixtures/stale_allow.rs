//! Fixture: one live suppression, one stale one (unused-suppression).

// simlint: allow(hash-map): fixture demonstrating a live suppression
pub fn lookup_table() {
    let _ = HashMap::new();
}

// simlint: allow(hash-map): nothing below touches a hashed collection
pub fn integer_only(x: u64) -> u64 {
    x + 1
}
