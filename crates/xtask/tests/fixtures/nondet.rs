//! Fixture: violates `nondet` (L2) — host clock and entropy sources.

use std::time::Instant;

fn wall_clock_epoch() -> u64 {
    let t = Instant::now();
    let _ = std::time::SystemTime::now();
    t.elapsed().as_nanos() as u64
}

fn unseeded() {
    let _rng = thread_rng();
}
