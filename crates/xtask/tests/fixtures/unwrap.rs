//! Fixture: violates `unwrap` (L4) — panicking extractors in mechanism code.
//! `unwrap_or` is a total fallback and must NOT be flagged.

fn head(q: &[u64]) -> u64 {
    *q.first().unwrap()
}

fn deadline(d: Option<u64>) -> u64 {
    d.expect("deadline must be stamped")
}

fn tail(q: &[u64]) -> u64 {
    q.last().copied().unwrap_or(0)
}
