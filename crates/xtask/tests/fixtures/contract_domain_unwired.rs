//! Fixture: a domain scheduler that parks blindly — it never consults the
//! component's `next_event`, so the horizon surface stays unreached.

impl DomainSched {
    /// Parks one tile with no wake horizon at all.
    pub fn park_blind(&mut self, i: usize, now: u64) {
        self.owed_from[i] = now;
    }
}
