//! Fixture: a stepped component with no event horizon (horizon-contract).

pub struct Prefetcher {
    inflight: u64,
}

impl Prefetcher {
    /// Issues one queued prefetch per cycle.
    pub fn step(&mut self) {
        if self.inflight > 0 {
            self.inflight -= 1;
        }
    }
}
