//! Drives every `tests/fixtures/*.rs` file through `lint_source` and checks
//! that each rule fires where intended — and stays quiet where suppressed.
//!
//! The fixtures live under `tests/fixtures/` precisely so the workspace walk
//! skips them: they violate the rules on purpose.

use xtask::{lint_files, lint_source, Diagnostic, FileSpec, SourceFile};

fn lint_fixture(crate_name: &str, rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let spec = FileSpec { crate_name, rel_path, is_test: false };
    lint_source(&spec, source)
}

/// A fixture file for the full (cross-file) pipeline.
fn sf(crate_name: &str, rel_path: &str, source: &str) -> SourceFile {
    SourceFile {
        crate_name: crate_name.to_string(),
        rel_path: rel_path.to_string(),
        is_test: false,
        source: source.to_string(),
    }
}

fn lines_for(diags: &[Diagnostic], rule: &str) -> Vec<usize> {
    diags.iter().filter(|d| d.rule == rule).map(|d| d.line).collect()
}

#[test]
fn hash_map_fixture_flags_every_use() {
    let diags =
        lint_fixture("cache", "crates/cache/src/fixture.rs", include_str!("fixtures/hash_map.rs"));
    assert!(diags.iter().all(|d| d.rule == xtask::RULE_HASH_MAP), "{diags:?}");
    assert_eq!(lines_for(&diags, xtask::RULE_HASH_MAP), vec![3, 4, 7, 8]);
}

#[test]
fn nondet_fixture_flags_clock_and_entropy() {
    let diags = lint_fixture(
        "workloads",
        "crates/workloads/src/fixture.rs",
        include_str!("fixtures/nondet.rs"),
    );
    assert!(diags.iter().all(|d| d.rule == xtask::RULE_NONDET), "{diags:?}");
    assert_eq!(lines_for(&diags, xtask::RULE_NONDET), vec![3, 6, 7, 12]);
}

#[test]
fn nondet_fixture_is_clean_in_bench_crate() {
    let diags =
        lint_fixture("bench", "crates/bench/src/fixture.rs", include_str!("fixtures/nondet.rs"));
    assert!(diags.is_empty(), "bench is exempt from nondet: {diags:?}");
}

#[test]
fn float_fixture_flags_datapath_floats() {
    let diags =
        lint_fixture("core", "crates/core/src/pacer.rs", include_str!("fixtures/float_math.rs"));
    assert!(diags.iter().all(|d| d.rule == xtask::RULE_FLOAT_MATH), "{diags:?}");
    assert_eq!(lines_for(&diags, xtask::RULE_FLOAT_MATH).len(), 3);
}

#[test]
fn float_fixture_is_clean_outside_datapath_files() {
    let diags =
        lint_fixture("core", "crates/core/src/governor.rs", include_str!("fixtures/float_math.rs"));
    assert!(
        !diags.iter().any(|d| d.rule == xtask::RULE_FLOAT_MATH),
        "governor.rs is not in the float-free set: {diags:?}"
    );
}

#[test]
fn float_fixture_flags_simkit_trace_module() {
    let diags = lint_fixture(
        "simkit",
        "crates/simkit/src/trace.rs",
        include_str!("fixtures/float_math.rs"),
    );
    assert!(diags.iter().all(|d| d.rule == xtask::RULE_FLOAT_MATH), "{diags:?}");
    assert_eq!(lines_for(&diags, xtask::RULE_FLOAT_MATH).len(), 3);
}

#[test]
fn float_fixture_is_clean_in_other_simkit_files() {
    let diags = lint_fixture(
        "simkit",
        "crates/simkit/src/stats.rs",
        include_str!("fixtures/float_math.rs"),
    );
    assert!(
        !diags.iter().any(|d| d.rule == xtask::RULE_FLOAT_MATH),
        "stats.rs keeps its f64 summaries: {diags:?}"
    );
}

#[test]
fn unwrap_fixture_flags_panicking_extractors_only() {
    let diags =
        lint_fixture("simkit", "crates/simkit/src/fixture.rs", include_str!("fixtures/unwrap.rs"));
    assert!(diags.iter().all(|d| d.rule == xtask::RULE_UNWRAP), "{diags:?}");
    // unwrap() on line 5 and expect() on line 9; unwrap_or() on 13 is fine.
    assert_eq!(lines_for(&diags, xtask::RULE_UNWRAP), vec![5, 9]);
}

#[test]
fn missing_docs_fixture_flags_bare_pub_fns() {
    let diags = lint_fixture(
        "core",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/missing_docs.rs"),
    );
    assert!(diags.iter().all(|d| d.rule == xtask::RULE_MISSING_DOCS), "{diags:?}");
    assert_eq!(lines_for(&diags, xtask::RULE_MISSING_DOCS), vec![8, 13]);
}

#[test]
fn thread_fixture_flags_spawns_outside_the_harness() {
    let diags =
        lint_fixture("soc", "crates/soc/src/fixture.rs", include_str!("fixtures/thread_use.rs"));
    assert!(diags.iter().all(|d| d.rule == xtask::RULE_THREAD), "{diags:?}");
    // `use std::thread`, `thread::spawn`, `std::thread::scope`; the
    // justified allow silences `sanctioned()` and plain identifiers
    // containing "thread" never match.
    assert_eq!(lines_for(&diags, xtask::RULE_THREAD), vec![3, 6, 11]);
}

#[test]
fn thread_fixture_in_the_harness_file_reports_only_the_stale_allow() {
    // The sweep executor may use std::thread, so the fixture's
    // allow(thread) suppresses nothing — strict hygiene reports exactly
    // that, and nothing else.
    let diags = lint_fixture(
        "bench",
        "crates/bench/src/harness.rs",
        include_str!("fixtures/thread_use.rs"),
    );
    assert_eq!(lines_for(&diags, xtask::RULE_UNUSED_SUPPRESSION), vec![17]);
    assert_eq!(diags.len(), 1, "{diags:?}");
}

#[test]
fn fault_rng_fixture_flags_direct_draws() {
    let diags =
        lint_fixture("soc", "crates/soc/src/fixture.rs", include_str!("fixtures/fault_rng.rs"));
    assert!(diags.iter().all(|d| d.rule == xtask::RULE_FAULT_RNG), "{diags:?}");
    // The `use`, both signatures naming SimRng, and both draw calls; the
    // justified allow silences `sanctioned()` and `gen_bool_count` on the
    // lookalike line never matches.
    assert_eq!(lines_for(&diags, xtask::RULE_FAULT_RNG), vec![3, 5, 6, 9, 10]);
}

#[test]
fn fault_rng_fixture_is_clean_in_simkit_and_workloads() {
    for (krate, path) in [
        ("simkit", "crates/simkit/src/fixture.rs"),
        ("workloads", "crates/workloads/src/fixture.rs"),
    ] {
        let diags = lint_fixture(krate, path, include_str!("fixtures/fault_rng.rs"));
        assert!(
            !diags.iter().any(|d| d.rule == xtask::RULE_FAULT_RNG),
            "{krate} hosts/seeds RNG legitimately: {diags:?}"
        );
    }
}

#[test]
fn horizon_fixture_flags_per_cycle_state() {
    let diags =
        lint_fixture("soc", "crates/soc/src/fixture.rs", include_str!("fixtures/horizon.rs"));
    assert!(diags.iter().all(|d| d.rule == xtask::RULE_HORIZON), "{diags:?}");
    // The naive `now += 1` loop, both per-cycle sample calls, and both
    // per-cycle counters; the justified allow silences `audited()` and
    // identifiers merely containing "sample" never match.
    assert_eq!(lines_for(&diags, xtask::RULE_HORIZON), vec![7, 12, 13, 17, 18]);
}

#[test]
fn horizon_exemption_is_structural_not_a_file_list() {
    // A file that defines its own `next_event` surface steps per cycle
    // by design — the skip loop can bound it.
    let diags = lint_fixture(
        "dram",
        "crates/dram/src/controller.rs",
        include_str!("fixtures/horizon_exempt.rs"),
    );
    assert!(diags.is_empty(), "files defining next_event are exempt: {diags:?}");
    // The same path without that surface is no longer grandfathered:
    // there is no HORIZON_AUDITED_FILES list to hide behind.
    let diags =
        lint_fixture("dram", "crates/dram/src/controller.rs", include_str!("fixtures/horizon.rs"));
    assert_eq!(lines_for(&diags, xtask::RULE_HORIZON), vec![7, 12, 13, 17, 18]);
    // Harness crates stay out of scope — and then the fixture's
    // allow(horizon) suppresses nothing, which strict hygiene reports.
    let diags =
        lint_fixture("bench", "crates/bench/src/fixture.rs", include_str!("fixtures/horizon.rs"));
    assert!(lines_for(&diags, xtask::RULE_HORIZON).is_empty(), "{diags:?}");
    assert_eq!(lines_for(&diags, xtask::RULE_UNUSED_SUPPRESSION), vec![22]);
}

#[test]
fn taint_pair_flags_each_sink_class_reached_from_advance() {
    let diags = lint_files(&[
        sf("soc", "crates/soc/src/system.rs", include_str!("fixtures/taint_root.rs")),
        sf("bench", "crates/bench/src/util.rs", include_str!("fixtures/taint_bad.rs")),
    ]);
    for (rule, line) in [
        (xtask::RULE_TAINT_CLOCK, 5),
        (xtask::RULE_TAINT_ENTROPY, 6),
        (xtask::RULE_TAINT_HASH_ITER, 11),
        (xtask::RULE_TAINT_FLOAT, 12),
    ] {
        assert!(
            diags.iter().any(|d| d.rule == rule
                && d.file == "crates/bench/src/util.rs"
                && d.line == line
                && d.message.contains("System::advance")),
            "expected {rule} at line {line}: {diags:?}"
        );
    }
    // Every diagnostic names the full call chain from the root.
    assert!(diags.iter().all(|d| d.message.contains(" via System::advance → ")), "{diags:?}");
}

#[test]
fn taint_pair_stays_quiet_when_sinks_are_unreachable() {
    let diags = lint_files(&[
        sf("soc", "crates/soc/src/system.rs", include_str!("fixtures/taint_root.rs")),
        sf("bench", "crates/bench/src/util.rs", include_str!("fixtures/taint_ok.rs")),
    ]);
    assert!(diags.is_empty(), "sinks off the stepping path are legitimate: {diags:?}");
}

#[test]
fn contract_pair_requires_next_event_for_stepped_types() {
    let diags = lint_files(&[sf(
        "cache",
        "crates/cache/src/prefetch.rs",
        include_str!("fixtures/contract_bad.rs"),
    )]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, xtask::RULE_HORIZON_CONTRACT);
    assert_eq!(diags[0].line, 9, "anchored at the step definition");
    assert!(diags[0].message.contains("`Prefetcher` defines `step` but no `next_event`"));

    let diags = lint_files(&[sf(
        "cache",
        "crates/cache/src/prefetch.rs",
        include_str!("fixtures/contract_ok.rs"),
    )]);
    assert!(diags.is_empty(), "a defined horizon surface satisfies the contract: {diags:?}");
}

#[test]
fn contract_requires_next_event_to_be_wired_into_advance() {
    // A defined-but-unreached next_event is still a contract violation
    // when the workspace has a System::advance to wire it into...
    let diags = lint_files(&[
        sf("soc", "crates/soc/src/system.rs", include_str!("fixtures/taint_root.rs")),
        sf("cache", "crates/cache/src/prefetch.rs", include_str!("fixtures/contract_ok.rs")),
    ]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, xtask::RULE_HORIZON_CONTRACT);
    assert!(diags[0].message.contains("never reached from System::advance"), "{diags:?}");
    // ...and wiring it in clears the diagnostic.
    let diags = lint_files(&[
        sf("soc", "crates/soc/src/system.rs", include_str!("fixtures/contract_root_wired.rs")),
        sf("cache", "crates/cache/src/prefetch.rs", include_str!("fixtures/contract_ok.rs")),
    ]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn contract_accepts_next_event_wired_through_a_domain_probe() {
    // Per-domain parking consults the component's horizon from inside
    // DomainSched rather than from System::advance's min-combine — a
    // domain park site is a legitimate wiring point.
    let diags = lint_files(&[
        sf("soc", "crates/soc/src/system.rs", include_str!("fixtures/taint_root.rs")),
        sf("soc", "crates/soc/src/sched.rs", include_str!("fixtures/contract_domain_wired.rs")),
        sf("cache", "crates/cache/src/prefetch.rs", include_str!("fixtures/contract_ok.rs")),
    ]);
    assert!(diags.is_empty(), "a DomainSched probe counts as wiring: {diags:?}");
    // ...but a scheduler that parks blindly leaves the surface unreached,
    // and the diagnostic names both root kinds.
    let diags = lint_files(&[
        sf("soc", "crates/soc/src/system.rs", include_str!("fixtures/taint_root.rs")),
        sf("soc", "crates/soc/src/sched.rs", include_str!("fixtures/contract_domain_unwired.rs")),
        sf("cache", "crates/cache/src/prefetch.rs", include_str!("fixtures/contract_ok.rs")),
    ]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, xtask::RULE_HORIZON_CONTRACT);
    assert!(
        diags[0].message.contains("never reached from System::advance or a DomainSched probe"),
        "{diags:?}"
    );
}

#[test]
fn arbiter_impl_requires_next_event() {
    // A `TargetArbiter` impl owes the horizon surface even without a
    // `step` method of its own — the controller steps on its behalf.
    let diags = lint_files(&[sf(
        "dram",
        "crates/dram/src/fixture.rs",
        include_str!("fixtures/arbiter_bad.rs"),
    )]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, xtask::RULE_HORIZON_CONTRACT);
    assert!(
        diags[0].message.contains("`BlindArbiter` implements TargetArbiter but defines no"),
        "{diags:?}"
    );

    let diags = lint_files(&[sf(
        "dram",
        "crates/dram/src/fixture.rs",
        include_str!("fixtures/arbiter_ok.rs"),
    )]);
    assert!(diags.is_empty(), "a defined horizon surface satisfies the seam: {diags:?}");
}

#[test]
fn arbiter_next_event_must_be_wired_into_advance() {
    // Defined but unreached: the workspace has a System::advance that never
    // consults the arbiter's wake-ups.
    let diags = lint_files(&[
        sf("soc", "crates/soc/src/system.rs", include_str!("fixtures/taint_root.rs")),
        sf("dram", "crates/dram/src/fixture.rs", include_str!("fixtures/arbiter_ok.rs")),
    ]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, xtask::RULE_HORIZON_CONTRACT);
    assert!(diags[0].message.contains("`BlindArbiter::next_event` is never reached"), "{diags:?}");
    // A root that probes `next_event` in its min-combine clears it.
    let diags = lint_files(&[
        sf("soc", "crates/soc/src/system.rs", include_str!("fixtures/contract_root_wired.rs")),
        sf("dram", "crates/dram/src/fixture.rs", include_str!("fixtures/arbiter_ok.rs")),
    ]);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn stale_allow_pair_flags_only_the_unused_suppression() {
    let diags = lint_fixture(
        "cache",
        "crates/cache/src/fixture.rs",
        include_str!("fixtures/stale_allow.rs"),
    );
    assert_eq!(lines_for(&diags, xtask::RULE_UNUSED_SUPPRESSION), vec![8]);
    assert_eq!(diags.len(), 1, "the live allow still suppresses its hash-map hit: {diags:?}");
}

/// Pins the `--format json` schema: field names, ordering, and rendering
/// are a contract for CI artifact consumers. Regenerate deliberately with
/// `UPDATE_SNAPSHOTS=1 cargo test -p xtask`.
#[test]
fn json_report_matches_the_pinned_snapshot() {
    let diags =
        lint_fixture("cache", "crates/cache/src/fixture.rs", include_str!("fixtures/hash_map.rs"));
    let json = xtask::report_json(&diags).to_pretty();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots/hash_map_report.json");
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(&path, &json).expect("write snapshot");
    }
    let expected =
        std::fs::read_to_string(&path).expect("snapshot exists (run with UPDATE_SNAPSHOTS=1)");
    assert_eq!(json, expected, "JSON report schema drifted; update the snapshot deliberately");
}

#[test]
fn suppressed_fixture_is_fully_clean() {
    let diags =
        lint_fixture("core", "crates/core/src/pacer.rs", include_str!("fixtures/suppressed.rs"));
    assert!(diags.is_empty(), "justified allows silence everything: {diags:?}");
}

#[test]
fn bad_suppression_fixture_reports_and_does_not_silence() {
    let diags = lint_fixture(
        "cache",
        "crates/cache/src/fixture.rs",
        include_str!("fixtures/bad_suppression.rs"),
    );
    // The unjustified allow is reported AND the underlying hash-map
    // violation still fires; the unknown rule name is reported too.
    assert_eq!(lines_for(&diags, xtask::RULE_SUPPRESSION), vec![4, 7]);
    assert_eq!(lines_for(&diags, xtask::RULE_HASH_MAP), vec![4, 6, 8]);
}

#[test]
fn diagnostics_render_file_line_rule() {
    let diags =
        lint_fixture("cache", "crates/cache/src/fixture.rs", include_str!("fixtures/hash_map.rs"));
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("crates/cache/src/fixture.rs:3: [hash-map]"),
        "diagnostic format is file:line: [rule] message — got {rendered}"
    );
}

/// The acceptance gate: the repaired workspace itself lints clean. Keeping
/// this as a test means `cargo test` catches regressions even when nobody
/// runs `cargo run -p xtask -- lint` by hand.
#[test]
fn real_workspace_lints_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = xtask::lint_workspace(&root).expect("workspace scan");
    assert!(diags.is_empty(), "workspace must lint clean:\n{diags:?}");
}
