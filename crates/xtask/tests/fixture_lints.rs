//! Drives every `tests/fixtures/*.rs` file through `lint_source` and checks
//! that each rule fires where intended — and stays quiet where suppressed.
//!
//! The fixtures live under `tests/fixtures/` precisely so the workspace walk
//! skips them: they violate the rules on purpose.

use xtask::{lint_source, Diagnostic, FileSpec};

fn lint_fixture(crate_name: &str, rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let spec = FileSpec { crate_name, rel_path, is_test: false };
    lint_source(&spec, source)
}

fn lines_for(diags: &[Diagnostic], rule: &str) -> Vec<usize> {
    diags.iter().filter(|d| d.rule == rule).map(|d| d.line).collect()
}

#[test]
fn hash_map_fixture_flags_every_use() {
    let diags =
        lint_fixture("cache", "crates/cache/src/fixture.rs", include_str!("fixtures/hash_map.rs"));
    assert!(diags.iter().all(|d| d.rule == xtask::RULE_HASH_MAP), "{diags:?}");
    assert_eq!(lines_for(&diags, xtask::RULE_HASH_MAP), vec![3, 4, 7, 8]);
}

#[test]
fn nondet_fixture_flags_clock_and_entropy() {
    let diags = lint_fixture(
        "workloads",
        "crates/workloads/src/fixture.rs",
        include_str!("fixtures/nondet.rs"),
    );
    assert!(diags.iter().all(|d| d.rule == xtask::RULE_NONDET), "{diags:?}");
    assert_eq!(lines_for(&diags, xtask::RULE_NONDET), vec![3, 6, 7, 12]);
}

#[test]
fn nondet_fixture_is_clean_in_bench_crate() {
    let diags =
        lint_fixture("bench", "crates/bench/src/fixture.rs", include_str!("fixtures/nondet.rs"));
    assert!(diags.is_empty(), "bench is exempt from nondet: {diags:?}");
}

#[test]
fn float_fixture_flags_datapath_floats() {
    let diags =
        lint_fixture("core", "crates/core/src/pacer.rs", include_str!("fixtures/float_math.rs"));
    assert!(diags.iter().all(|d| d.rule == xtask::RULE_FLOAT_MATH), "{diags:?}");
    assert_eq!(lines_for(&diags, xtask::RULE_FLOAT_MATH).len(), 3);
}

#[test]
fn float_fixture_is_clean_outside_datapath_files() {
    let diags =
        lint_fixture("core", "crates/core/src/governor.rs", include_str!("fixtures/float_math.rs"));
    assert!(
        !diags.iter().any(|d| d.rule == xtask::RULE_FLOAT_MATH),
        "governor.rs is not in the float-free set: {diags:?}"
    );
}

#[test]
fn float_fixture_flags_simkit_trace_module() {
    let diags = lint_fixture(
        "simkit",
        "crates/simkit/src/trace.rs",
        include_str!("fixtures/float_math.rs"),
    );
    assert!(diags.iter().all(|d| d.rule == xtask::RULE_FLOAT_MATH), "{diags:?}");
    assert_eq!(lines_for(&diags, xtask::RULE_FLOAT_MATH).len(), 3);
}

#[test]
fn float_fixture_is_clean_in_other_simkit_files() {
    let diags = lint_fixture(
        "simkit",
        "crates/simkit/src/stats.rs",
        include_str!("fixtures/float_math.rs"),
    );
    assert!(
        !diags.iter().any(|d| d.rule == xtask::RULE_FLOAT_MATH),
        "stats.rs keeps its f64 summaries: {diags:?}"
    );
}

#[test]
fn unwrap_fixture_flags_panicking_extractors_only() {
    let diags =
        lint_fixture("simkit", "crates/simkit/src/fixture.rs", include_str!("fixtures/unwrap.rs"));
    assert!(diags.iter().all(|d| d.rule == xtask::RULE_UNWRAP), "{diags:?}");
    // unwrap() on line 5 and expect() on line 9; unwrap_or() on 13 is fine.
    assert_eq!(lines_for(&diags, xtask::RULE_UNWRAP), vec![5, 9]);
}

#[test]
fn missing_docs_fixture_flags_bare_pub_fns() {
    let diags = lint_fixture(
        "core",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/missing_docs.rs"),
    );
    assert!(diags.iter().all(|d| d.rule == xtask::RULE_MISSING_DOCS), "{diags:?}");
    assert_eq!(lines_for(&diags, xtask::RULE_MISSING_DOCS), vec![8, 13]);
}

#[test]
fn thread_fixture_flags_spawns_outside_the_harness() {
    let diags =
        lint_fixture("soc", "crates/soc/src/fixture.rs", include_str!("fixtures/thread_use.rs"));
    assert!(diags.iter().all(|d| d.rule == xtask::RULE_THREAD), "{diags:?}");
    // `use std::thread`, `thread::spawn`, `std::thread::scope`; the
    // justified allow silences `sanctioned()` and plain identifiers
    // containing "thread" never match.
    assert_eq!(lines_for(&diags, xtask::RULE_THREAD), vec![3, 6, 11]);
}

#[test]
fn thread_fixture_is_clean_in_the_harness_file() {
    let diags = lint_fixture(
        "bench",
        "crates/bench/src/harness.rs",
        include_str!("fixtures/thread_use.rs"),
    );
    assert!(diags.is_empty(), "the sweep executor may use std::thread: {diags:?}");
}

#[test]
fn fault_rng_fixture_flags_direct_draws() {
    let diags =
        lint_fixture("soc", "crates/soc/src/fixture.rs", include_str!("fixtures/fault_rng.rs"));
    assert!(diags.iter().all(|d| d.rule == xtask::RULE_FAULT_RNG), "{diags:?}");
    // The `use`, both signatures naming SimRng, and both draw calls; the
    // justified allow silences `sanctioned()` and `gen_bool_count` on the
    // lookalike line never matches.
    assert_eq!(lines_for(&diags, xtask::RULE_FAULT_RNG), vec![3, 5, 6, 9, 10]);
}

#[test]
fn fault_rng_fixture_is_clean_in_simkit_and_workloads() {
    for (krate, path) in [
        ("simkit", "crates/simkit/src/fixture.rs"),
        ("workloads", "crates/workloads/src/fixture.rs"),
    ] {
        let diags = lint_fixture(krate, path, include_str!("fixtures/fault_rng.rs"));
        assert!(
            !diags.iter().any(|d| d.rule == xtask::RULE_FAULT_RNG),
            "{krate} hosts/seeds RNG legitimately: {diags:?}"
        );
    }
}

#[test]
fn horizon_fixture_flags_per_cycle_state() {
    let diags =
        lint_fixture("soc", "crates/soc/src/fixture.rs", include_str!("fixtures/horizon.rs"));
    assert!(diags.iter().all(|d| d.rule == xtask::RULE_HORIZON), "{diags:?}");
    // The naive `now += 1` loop, both per-cycle sample calls, and both
    // per-cycle counters; the justified allow silences `audited()` and
    // identifiers merely containing "sample" never match.
    assert_eq!(lines_for(&diags, xtask::RULE_HORIZON), vec![7, 12, 13, 17, 18]);
}

#[test]
fn horizon_fixture_is_clean_in_audited_files_and_harness_crates() {
    let diags =
        lint_fixture("dram", "crates/dram/src/controller.rs", include_str!("fixtures/horizon.rs"));
    assert!(diags.is_empty(), "audited files step per cycle by design: {diags:?}");
    let diags =
        lint_fixture("bench", "crates/bench/src/fixture.rs", include_str!("fixtures/horizon.rs"));
    assert!(diags.is_empty(), "horizon is scoped to simulation crates: {diags:?}");
}

#[test]
fn suppressed_fixture_is_fully_clean() {
    let diags =
        lint_fixture("core", "crates/core/src/pacer.rs", include_str!("fixtures/suppressed.rs"));
    assert!(diags.is_empty(), "justified allows silence everything: {diags:?}");
}

#[test]
fn bad_suppression_fixture_reports_and_does_not_silence() {
    let diags = lint_fixture(
        "cache",
        "crates/cache/src/fixture.rs",
        include_str!("fixtures/bad_suppression.rs"),
    );
    // The unjustified allow is reported AND the underlying hash-map
    // violation still fires; the unknown rule name is reported too.
    assert_eq!(lines_for(&diags, xtask::RULE_SUPPRESSION), vec![4, 7]);
    assert_eq!(lines_for(&diags, xtask::RULE_HASH_MAP), vec![4, 6, 8]);
}

#[test]
fn diagnostics_render_file_line_rule() {
    let diags =
        lint_fixture("cache", "crates/cache/src/fixture.rs", include_str!("fixtures/hash_map.rs"));
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("crates/cache/src/fixture.rs:3: [hash-map]"),
        "diagnostic format is file:line: [rule] message — got {rendered}"
    );
}

/// The acceptance gate: the repaired workspace itself lints clean. Keeping
/// this as a test means `cargo test` catches regressions even when nobody
/// runs `cargo run -p xtask -- lint` by hand.
#[test]
fn real_workspace_lints_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = xtask::lint_workspace(&root).expect("workspace scan");
    assert!(diags.is_empty(), "workspace must lint clean:\n{diags:?}");
}
