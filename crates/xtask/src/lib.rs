//! `simlint`: the PABST workspace's determinism & accounting static-analysis
//! pass.
//!
//! A cycle-accurate simulator is only as trustworthy as its reproducibility:
//! the paper's figures (proportional slowdowns, SAT duty cycles, epoch
//! traces) must come out bit-identical on every run and every host. This
//! crate enforces the workspace conventions that make that true, with a
//! hand-rolled scanner — the workspace builds without network access, so no
//! `syn`/`dylint` machinery is available (or needed).
//!
//! Rules (catalogued in `docs/LINTS.md`):
//!
//! * `hash-map` — no `HashMap`/`HashSet` in simulation crates (iteration
//!   order is hasher-randomized per process).
//! * `nondet` — no wall-clock or entropy sources (`std::time`, `Instant`,
//!   `SystemTime`, `thread_rng`, `from_entropy`) outside the bench harness.
//! * `float-math` — no floating-point in the regulation datapath
//!   (`core::{pacer, arbiter, qos}`); credits, strides and deadlines are
//!   integer state machines in the paper's hardware.
//! * `unwrap` — no `.unwrap()`/`.expect()` in non-test code of `pabst-core`
//!   and `pabst-simkit`; mechanism code must surface errors, not abort.
//! * `missing-docs` — every `pub fn` in `pabst-core` carries a doc comment.
//! * `thread` — no `std::thread` outside `bench::harness`; the sweep
//!   executor is the single place parallelism is allowed, because its
//!   submission-order merge is what keeps parallel runs byte-identical.
//! * `fault-rng` — no direct `SimRng`/`gen_bool`/`gen_range` in mechanism
//!   crates; randomized perturbations must route through `simkit::fault`
//!   so every injection decision is plan-seeded and replayable.
//! * `horizon` — no per-cycle stepping or accounting (`now += 1` loops,
//!   per-cycle `.sample()` calls, per-cycle stall counters) in simulation
//!   crates outside the audited event-horizon set; cycle-skipping only
//!   stays byte-identical if every such site batches over skipped windows
//!   and reports a `next_event` (see `docs/PERFORMANCE.md`).
//!
//! Suppression: `// simlint: allow(<rule>): <justification>` on the same
//! line silences that line; on its own line it silences the item that
//! follows (through the item's closing brace or terminating semicolon). The
//! justification is mandatory — an allow without one is itself a violation.

#![forbid(unsafe_code)]

use std::fmt;
use std::path::Path;

/// Rule identifiers, as used in diagnostics and `allow(...)` suppressions.
pub const RULE_HASH_MAP: &str = "hash-map";
/// See [`RULE_HASH_MAP`]; wall-clock / entropy sources.
pub const RULE_NONDET: &str = "nondet";
/// Floating-point arithmetic in the regulation datapath.
pub const RULE_FLOAT_MATH: &str = "float-math";
/// `.unwrap()` / `.expect()` in mechanism crates.
pub const RULE_UNWRAP: &str = "unwrap";
/// `pub fn` without a doc comment in `pabst-core`.
pub const RULE_MISSING_DOCS: &str = "missing-docs";
/// `std::thread` outside the sweep executor.
pub const RULE_THREAD: &str = "thread";
/// Direct RNG draws in mechanism crates instead of `simkit::fault`.
pub const RULE_FAULT_RNG: &str = "fault-rng";
/// Per-cycle stepping/accounting outside the horizon-audited file set.
pub const RULE_HORIZON: &str = "horizon";
/// Malformed suppression comments (missing justification, unknown rule).
pub const RULE_SUPPRESSION: &str = "suppression";

/// All real (suppressible) rule names.
pub const ALL_RULES: [&str; 8] = [
    RULE_HASH_MAP,
    RULE_NONDET,
    RULE_FLOAT_MATH,
    RULE_UNWRAP,
    RULE_MISSING_DOCS,
    RULE_THREAD,
    RULE_FAULT_RNG,
    RULE_HORIZON,
];

/// Crates whose simulation state must iterate deterministically (rule L1).
const SIM_CRATES: [&str; 6] = ["simkit", "core", "cache", "cpu", "dram", "soc"];
/// Crates exempt from the nondeterminism rule (L2): the timing harness
/// genuinely needs `Instant`, and this linter names the banned tokens.
const NONDET_EXEMPT_CRATES: [&str; 2] = ["bench", "xtask"];
/// `pabst-core` files forming the integer regulation datapath (rule L3).
const FLOAT_FREE_FILES: [&str; 3] = ["pacer.rs", "arbiter.rs", "qos.rs"];
/// `pabst-simkit` files under the same no-float rule: trace records must
/// round-trip bit-exactly and identically on every platform.
const FLOAT_FREE_SIMKIT_FILES: [&str; 1] = ["trace.rs"];
/// Crates where `.unwrap()`/`.expect()` are banned outside tests (rule L4).
const PANIC_FREE_CRATES: [&str; 2] = ["core", "simkit"];
/// The one file allowed to touch `std::thread` (rule L6): the sweep
/// executor whose submission-order merge makes parallelism deterministic.
const THREAD_EXEMPT_FILES: [&str; 1] = ["crates/bench/src/harness.rs"];
/// Crates whose non-test code may not draw from an RNG directly (rule L7).
/// `simkit` hosts the RNG and the fault layer itself; `workloads` seeds
/// access streams; everything else must take fault decisions from a
/// `FaultPlan` so a run is a pure function of its plan and seeds.
const RNG_CONFINED_CRATES: [&str; 5] = ["core", "cache", "cpu", "dram", "soc"];
/// Files audited for the event-horizon contract (rule L8): each of these
/// either drives the clock (`System::advance`), owns a `next_event`
/// implementation, or hosts the batch-sampling primitives themselves.
/// Per-cycle state anywhere else silently breaks the byte-identical
/// cycle-skipping guarantee — a skipped window would under-count it — so
/// new per-cycle sites must batch over windows, report a `next_event`,
/// and then be added here (process in `docs/PERFORMANCE.md`).
const HORIZON_AUDITED_FILES: [&str; 6] = [
    "crates/soc/src/system.rs",
    "crates/core/src/pacer.rs",
    "crates/core/src/satmon.rs",
    "crates/cpu/src/core_model.rs",
    "crates/dram/src/controller.rs",
    "crates/simkit/src/stats.rs",
];

/// A single lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// What the scanner needs to know about a file before rule dispatch.
#[derive(Debug, Clone)]
pub struct FileSpec<'a> {
    /// Short crate name: the directory under `crates/` (e.g. `"core"`),
    /// or `"examples"` / `"tests"` for the top-level members.
    pub crate_name: &'a str,
    /// Workspace-relative path, used in diagnostics and for per-file rule
    /// scoping (rule L3 matches on the file name).
    pub rel_path: &'a str,
    /// True when the whole file is test/bench support (lives under a
    /// `tests/` or `benches/` directory, or in the integration-test
    /// package). `#[cfg(test)]` modules inside `src/` are detected
    /// separately.
    pub is_test: bool,
}

// ---------------------------------------------------------------------------
// Scanner: strip comments and literals, keep line structure.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Comment {
    /// 0-based line the comment starts on.
    line: usize,
    /// Raw comment text including the `//` / `/*` introducer.
    text: String,
    /// True when code precedes the comment on its start line.
    trailing: bool,
}

#[derive(Debug)]
struct Scanned {
    /// Source with comments, string/char literals blanked to spaces.
    /// Newlines are preserved, so line/column structure is intact.
    cleaned: Vec<char>,
    /// Byte-offset... (char-offset) of the start of each line in `cleaned`.
    line_starts: Vec<usize>,
    comments: Vec<Comment>,
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn scan(source: &str) -> Scanned {
    let src: Vec<char> = source.chars().collect();
    let n = src.len();
    let mut cleaned = src.clone();
    let mut comments = Vec::new();

    let mut i = 0;
    let mut line = 0usize;
    let mut line_start = 0usize; // index where the current line began
    let mut line_has_code = false;

    macro_rules! blank {
        ($idx:expr) => {
            if cleaned[$idx] != '\n' {
                cleaned[$idx] = ' ';
            }
        };
    }
    macro_rules! blank_range {
        ($range:expr) => {
            for ch in &mut cleaned[$range] {
                if *ch != '\n' {
                    *ch = ' ';
                }
            }
        };
    }

    while i < n {
        let c = src[i];
        match c {
            '\n' => {
                line += 1;
                line_start = i + 1;
                line_has_code = false;
                i += 1;
            }
            '/' if i + 1 < n && src[i + 1] == '/' => {
                let start = i;
                while i < n && src[i] != '\n' {
                    blank!(i);
                    i += 1;
                }
                comments.push(Comment {
                    line,
                    text: src[start..i].iter().collect(),
                    trailing: line_has_code,
                });
            }
            '/' if i + 1 < n && src[i + 1] == '*' => {
                // Rust block comments nest.
                let (start, start_line, trailing) = (i, line, line_has_code);
                let mut depth = 1usize;
                blank!(i);
                blank!(i + 1);
                i += 2;
                while i < n && depth > 0 {
                    if src[i] == '\n' {
                        line += 1;
                        line_start = i + 1;
                        i += 1;
                    } else if src[i] == '/' && i + 1 < n && src[i + 1] == '*' {
                        depth += 1;
                        blank!(i);
                        blank!(i + 1);
                        i += 2;
                    } else if src[i] == '*' && i + 1 < n && src[i + 1] == '/' {
                        depth -= 1;
                        blank!(i);
                        blank!(i + 1);
                        i += 2;
                    } else {
                        blank!(i);
                        i += 1;
                    }
                }
                line_has_code = cleaned[line_start..i].iter().any(|&ch| !ch.is_whitespace());
                comments.push(Comment {
                    line: start_line,
                    text: src[start..i.min(n)].iter().collect(),
                    trailing,
                });
            }
            '"' => {
                line_has_code = true;
                i += 1;
                while i < n {
                    match src[i] {
                        '\\' => {
                            blank!(i);
                            if i + 1 < n {
                                blank!(i + 1);
                            }
                            i += 2;
                        }
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            line += 1;
                            line_start = i + 1;
                            i += 1;
                        }
                        _ => {
                            blank!(i);
                            i += 1;
                        }
                    }
                }
            }
            'r' if i + 1 < n
                && (src[i + 1] == '"' || src[i + 1] == '#')
                && (i == 0 || !is_ident_char(src[i - 1])) =>
            {
                // Raw string r"..." / r#"..."# (any hash depth).
                let mut hashes = 0usize;
                let mut j = i + 1;
                while j < n && src[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && src[j] == '"' {
                    line_has_code = true;
                    blank!(i);
                    blank_range!(i + 1..=j);
                    j += 1;
                    'raw: while j < n {
                        if src[j] == '\n' {
                            line += 1;
                            line_start = j + 1;
                            j += 1;
                        } else if src[j] == '"' {
                            let mut k = j + 1;
                            let mut h = 0usize;
                            while k < n && h < hashes && src[k] == '#' {
                                h += 1;
                                k += 1;
                            }
                            if h == hashes {
                                blank_range!(j..k);
                                j = k;
                                break 'raw;
                            }
                            blank!(j);
                            j += 1;
                        } else {
                            blank!(j);
                            j += 1;
                        }
                    }
                    i = j;
                } else {
                    line_has_code = true;
                    i += 1;
                }
            }
            '\'' => {
                line_has_code = true;
                if i + 1 < n && src[i + 1] == '\\' {
                    // Escaped char literal: '\n', '\\', '\u{..}', ...
                    let mut j = i + 2;
                    while j < n && src[j] != '\'' && src[j] != '\n' {
                        j += 1;
                    }
                    blank_range!(i..=j.min(n - 1));
                    i = j + 1;
                } else if i + 2 < n && src[i + 2] == '\'' {
                    // Plain char literal 'x'.
                    blank!(i);
                    blank!(i + 1);
                    blank!(i + 2);
                    i += 3;
                } else {
                    // Lifetime ('a) — leave in place, it is code.
                    i += 1;
                }
            }
            _ => {
                if !c.is_whitespace() {
                    line_has_code = true;
                }
                i += 1;
            }
        }
    }

    let mut line_starts = vec![0usize];
    for (idx, &ch) in cleaned.iter().enumerate() {
        if ch == '\n' {
            line_starts.push(idx + 1);
        }
    }

    Scanned { cleaned, line_starts, comments }
}

impl Scanned {
    fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// The cleaned text of 0-based `line`.
    fn line(&self, line: usize) -> &[char] {
        let start = self.line_starts[line];
        let end = self
            .line_starts
            .get(line + 1)
            .map(|&e| e - 1) // drop the '\n'
            .unwrap_or(self.cleaned.len());
        &self.cleaned[start..end]
    }

    fn line_is_blank(&self, line: usize) -> bool {
        self.line(line).iter().all(|c| c.is_whitespace())
    }

    /// 0-based line of the `}` matching the first `{` at or after the start
    /// of `from_line`; falls back to the terminating `;` line for brace-less
    /// items, or `from_line` itself when neither appears.
    fn item_end_line(&self, from_line: usize) -> usize {
        let start = self.line_starts[from_line];
        let mut depth = 0usize;
        let mut line = from_line;
        let mut entered = false;
        for idx in start..self.cleaned.len() {
            match self.cleaned[idx] {
                '\n' => line += 1,
                '{' => {
                    depth += 1;
                    entered = true;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if entered && depth == 0 {
                        return line;
                    }
                }
                ';' if !entered && depth == 0 => return line,
                _ => {}
            }
        }
        from_line
    }
}

// ---------------------------------------------------------------------------
// Region analysis: #[cfg(test)] modules and suppressions.
// ---------------------------------------------------------------------------

/// Marks every line inside a `#[cfg(test)]`-gated item as test code.
fn test_lines(sc: &Scanned) -> Vec<bool> {
    let mut is_test = vec![false; sc.line_count()];
    let text: String = sc.cleaned.iter().collect();
    let mut search_from = 0;
    while let Some(pos) = text[search_from..].find("#[cfg(test)]") {
        let abs = search_from + pos;
        search_from = abs + 1;
        let start_line = text[..abs].matches('\n').count();
        let end_line = sc.item_end_line(start_line);
        for flag in is_test.iter_mut().take(end_line + 1).skip(start_line) {
            *flag = true;
        }
    }
    is_test
}

#[derive(Debug)]
struct Suppression {
    rule: String,
    /// 0-based inclusive line range the suppression covers.
    first_line: usize,
    last_line: usize,
}

/// Parses `simlint: allow(rule): justification` comments into suppressed
/// line ranges. Malformed suppressions are reported as diagnostics.
fn suppressions(spec: &FileSpec<'_>, sc: &Scanned) -> (Vec<Suppression>, Vec<Diagnostic>) {
    let mut sups = Vec::new();
    let mut diags = Vec::new();
    for c in &sc.comments {
        // Doc comments describe the convention; only plain comments enact it.
        if ["///", "//!", "/**", "/*!"].iter().any(|p| c.text.starts_with(p)) {
            continue;
        }
        let Some(tag) = c.text.find("simlint:") else { continue };
        let rest = c.text[tag + "simlint:".len()..].trim_start();
        let diag = |msg: String| Diagnostic {
            file: spec.rel_path.to_string(),
            line: c.line + 1,
            rule: RULE_SUPPRESSION,
            message: msg,
        };
        let Some(inner) = rest.strip_prefix("allow(") else {
            diags.push(diag("malformed simlint comment: expected `allow(<rule>)`".into()));
            continue;
        };
        let Some(close) = inner.find(')') else {
            diags.push(diag("malformed simlint comment: unclosed `allow(`".into()));
            continue;
        };
        let rule = inner[..close].trim().to_string();
        if !ALL_RULES.contains(&rule.as_str()) {
            diags.push(diag(format!(
                "unknown rule `{rule}` in allow(...); known rules: {}",
                ALL_RULES.join(", ")
            )));
            continue;
        }
        let justification = inner[close + 1..].trim_start().strip_prefix(':').map(str::trim);
        match justification {
            Some(j) if !j.is_empty() => {}
            _ => {
                diags.push(diag(format!(
                    "allow({rule}) needs a justification: `// simlint: allow({rule}): <why>`"
                )));
                continue;
            }
        }
        let (first_line, last_line) = if c.trailing {
            (c.line, c.line)
        } else {
            // Stand-alone comment: cover the item that follows.
            let mut item = c.line + 1;
            while item < sc.line_count() && sc.line_is_blank(item) {
                item += 1;
            }
            if item >= sc.line_count() {
                diags.push(diag(format!("allow({rule}) does not precede any code")));
                continue;
            }
            (item, sc.item_end_line(item))
        };
        sups.push(Suppression { rule, first_line, last_line });
    }
    (sups, diags)
}

fn suppressed(sups: &[Suppression], rule: &str, line: usize) -> bool {
    sups.iter().any(|s| s.rule == rule && line >= s.first_line && line <= s.last_line)
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

/// Yields `(start_column, word)` for each identifier-like token on a line.
fn words(line: &[char]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < line.len() {
        if is_ident_char(line[i]) {
            let start = i;
            while i < line.len() && is_ident_char(line[i]) {
                i += 1;
            }
            out.push((start, line[start..i].iter().collect()));
        } else {
            i += 1;
        }
    }
    out
}

/// True when `word` at `col` on `line` is a method call: preceded by `.`
/// (skipping whitespace) and followed by `(` (skipping whitespace).
fn is_method_call(line: &[char], col: usize, word: &str) -> bool {
    let before = line[..col].iter().rev().find(|c| !c.is_whitespace());
    if before != Some(&'.') {
        return false;
    }
    let after = line[col + word.len()..].iter().find(|c| !c.is_whitespace());
    after == Some(&'(')
}

/// True when the line contains a floating-point literal (`1.0`, `2.5e3`)
/// in cleaned code. Tuple indexing (`pair.0`), ranges (`0..10`) and integer
/// method calls (`1.max(x)`) do not match: we require digits on both sides
/// of a single `.`.
fn has_float_literal(line: &[char]) -> bool {
    // A digit on both sides of a single `.` already excludes ranges
    // (`0..10` puts a `.` next to the dot, not a digit), tuple fields
    // (`pair.0` has an identifier before the dot) and integer method calls
    // (`1.max(x)` has a letter after it). `1e9`-style exponent floats
    // without a dot are not caught; the datapath files never use them.
    (1..line.len().saturating_sub(1))
        .any(|i| line[i] == '.' && line[i - 1].is_ascii_digit() && line[i + 1].is_ascii_digit())
}

/// Runs every applicable rule over one file. This is the unit the fixture
/// tests drive directly.
pub fn lint_source(spec: &FileSpec<'_>, source: &str) -> Vec<Diagnostic> {
    let sc = scan(source);
    let tests = test_lines(&sc);
    let (sups, mut diags) = suppressions(spec, &sc);

    let raw_lines: Vec<&str> = source.lines().collect();

    let in_sim_crate = SIM_CRATES.contains(&spec.crate_name);
    let nondet_applies = !NONDET_EXEMPT_CRATES.contains(&spec.crate_name);
    let file_name =
        Path::new(spec.rel_path).file_name().and_then(|f| f.to_str()).unwrap_or(spec.rel_path);
    let float_free = (spec.crate_name == "core" && FLOAT_FREE_FILES.contains(&file_name)
        || spec.crate_name == "simkit" && FLOAT_FREE_SIMKIT_FILES.contains(&file_name))
        && spec.rel_path.contains("src");
    let panic_free = PANIC_FREE_CRATES.contains(&spec.crate_name);
    let wants_docs = spec.crate_name == "core";
    let thread_applies = !THREAD_EXEMPT_FILES.contains(&spec.rel_path);
    let rng_confined = RNG_CONFINED_CRATES.contains(&spec.crate_name);
    let horizon_applies = in_sim_crate && !HORIZON_AUDITED_FILES.contains(&spec.rel_path);

    // One diagnostic per (line, rule): a line with two banned tokens is one
    // problem to fix, not two.
    let push = |diags: &mut Vec<Diagnostic>, line: usize, rule: &'static str, msg: String| {
        if suppressed(&sups, rule, line) {
            return;
        }
        if diags.iter().any(|d| d.rule == rule && d.line == line + 1) {
            return;
        }
        diags.push(Diagnostic {
            file: spec.rel_path.to_string(),
            line: line + 1,
            rule,
            message: msg,
        });
    };

    for (ln, &line_in_cfg_test) in tests.iter().enumerate() {
        let in_test = spec.is_test || line_in_cfg_test;
        let line = sc.line(ln);
        let toks = words(line);

        // L1: hashed collections randomize iteration order per process.
        if in_sim_crate && !in_test {
            for (_, w) in &toks {
                if w == "HashMap" || w == "HashSet" {
                    push(
                        &mut diags,
                        ln,
                        RULE_HASH_MAP,
                        format!(
                            "{w} in a simulation crate: iteration order is \
                                 hasher-randomized; use BTreeMap/BTreeSet or an \
                                 index-keyed Vec"
                        ),
                    );
                }
            }
        }

        // L2: wall-clock and entropy sources break replayability. Applies
        // to test code too — tests must be as deterministic as the model.
        if nondet_applies {
            for (_, w) in &toks {
                let banned =
                    matches!(w.as_str(), "thread_rng" | "from_entropy" | "Instant" | "SystemTime");
                if banned {
                    push(
                        &mut diags,
                        ln,
                        RULE_NONDET,
                        format!(
                            "{w} is a nondeterminism source; simulations must \
                                 be seeded and clocked by the model, not the host"
                        ),
                    );
                }
            }
            let text: String = line.iter().collect();
            if text.contains("std::time") {
                push(
                    &mut diags,
                    ln,
                    RULE_NONDET,
                    "std::time reads host wall-clock state; use simkit cycles".into(),
                );
            }
        }

        // L3: the regulation datapath (credits, strides, deadlines) is
        // integer hardware in the paper; floats would both mismodel it and
        // introduce platform-dependent rounding. The simkit trace
        // serializer is held to the same rule so epoch records round-trip
        // bit-exactly on every platform.
        if float_free && !in_test {
            let scope = if spec.crate_name == "simkit" {
                "the trace serializer; records must round-trip bit-exactly"
            } else {
                "the regulation datapath; credits/strides/deadlines are \
                 integer state machines (paper §II-C)"
            };
            for (_, w) in &toks {
                if w == "f32" || w == "f64" {
                    push(&mut diags, ln, RULE_FLOAT_MATH, format!("{w} in {scope}"));
                }
            }
            if has_float_literal(line) {
                push(
                    &mut diags,
                    ln,
                    RULE_FLOAT_MATH,
                    format!("float literal in {scope}; use integer arithmetic"),
                );
            }
        }

        // L4: mechanism crates must propagate errors, not abort the
        // simulation. (`unwrap_or`/`expect_err` etc. do not match: the
        // token must be the exact method name.)
        if panic_free && !in_test {
            for (col, w) in &toks {
                if (w == "unwrap" || w == "expect") && is_method_call(line, *col, w) {
                    push(
                        &mut diags,
                        ln,
                        RULE_UNWRAP,
                        format!(
                            ".{w}() in mechanism code; return a Result or \
                                 use a total fallback (unwrap_or, match)"
                        ),
                    );
                }
            }
        }

        // L6: parallelism is confined to the sweep executor. Anywhere
        // else, a spawned thread can reorder observable output (or worse,
        // simulation state) and silently break the byte-identical-runs
        // guarantee the figures rest on. Applies to test code too — a
        // racy test is as unreproducible as a racy model.
        if thread_applies {
            let text: String = line.iter().collect();
            let thread_token = toks.iter().any(|(col, w)| {
                w == "thread"
                    && line[col + w.len()..]
                        .iter()
                        .collect::<String>()
                        .trim_start()
                        .starts_with("::")
            });
            if text.contains("std::thread") || thread_token {
                push(
                    &mut diags,
                    ln,
                    RULE_THREAD,
                    "std::thread outside bench::harness; route parallelism \
                     through the sweep executor (harness::run_indexed), whose \
                     submission-order merge keeps output deterministic"
                        .into(),
                );
            }
        }

        // L7: mechanism crates must not draw randomness themselves. A
        // stray `SimRng` in an arbiter or controller makes the run depend
        // on draw order instead of the fault plan; every probabilistic
        // decision belongs in `simkit::fault`, where it is a pure function
        // of (seed, kind, target, epoch).
        if rng_confined && !in_test {
            for (_, w) in &toks {
                if matches!(w.as_str(), "SimRng" | "gen_bool" | "gen_range") {
                    push(
                        &mut diags,
                        ln,
                        RULE_FAULT_RNG,
                        format!(
                            "{w} in a mechanism crate; route randomized \
                                 decisions through simkit::fault (FaultPlan / \
                                 FaultSpec::fires) so they replay bit-identically"
                        ),
                    );
                }
            }
        }

        // L8: per-cycle state must stay inside the audited horizon set.
        // `System::advance` fast-forwards over provably dead windows; any
        // counter bumped or monitor sampled once per cycle outside the
        // audited files would silently under-count across a skip and break
        // the byte-identical A/B guarantee the tentpole rests on.
        if horizon_applies && !in_test {
            let text: String = line.iter().collect();
            let counter = ["now += 1", "throttled +=", "rob_full_cycles +="]
                .iter()
                .find(|p| text.contains(*p));
            if let Some(p) = counter {
                push(
                    &mut diags,
                    ln,
                    RULE_HORIZON,
                    format!(
                        "per-cycle accounting (`{p}`) outside the \
                             horizon-audited set; batch over skipped windows \
                             and report a next_event, then add the file to \
                             HORIZON_AUDITED_FILES (docs/PERFORMANCE.md)"
                    ),
                );
            }
            for (col, w) in &toks {
                if (w == "sample" || w == "sample_n") && is_method_call(line, *col, w) {
                    push(
                        &mut diags,
                        ln,
                        RULE_HORIZON,
                        format!(
                            ".{w}() outside the horizon-audited set; \
                                 per-cycle sampling under-counts across \
                                 skipped windows — use the batched form and \
                                 audit the call site (docs/PERFORMANCE.md)"
                        ),
                    );
                }
            }
        }

        // L5: public mechanism API must be documented.
        if wants_docs && !in_test {
            let text: String = line.iter().collect();
            if let Some(fn_pos) = find_pub_fn(&text) {
                let name: String = text[fn_pos..]
                    .chars()
                    .skip_while(|c| !c.is_whitespace())
                    .skip_while(|c| c.is_whitespace())
                    .take_while(|&c| is_ident_char(c))
                    .collect();
                if !has_doc_above(&raw_lines, ln) {
                    push(
                        &mut diags,
                        ln,
                        RULE_MISSING_DOCS,
                        format!("pub fn `{name}` has no doc comment"),
                    );
                }
            }
        }
    }

    diags
}

/// Finds `pub fn` (exactly — `pub(crate) fn` is crate-private API and out
/// of rule L5's scope) as whole words; returns the offset of `fn`.
fn find_pub_fn(text: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(p) = text[from..].find("pub fn ") {
        let abs = from + p;
        let prev_ok =
            abs == 0 || !text[..abs].chars().next_back().map(is_ident_char).unwrap_or(false);
        if prev_ok {
            return Some(abs + "pub ".len());
        }
        from = abs + 1;
    }
    None
}

/// Looks upward from the raw line above `ln` for a `///` doc comment,
/// skipping attributes and plain `//` comments (e.g. simlint suppressions).
fn has_doc_above(raw_lines: &[&str], ln: usize) -> bool {
    let mut i = ln;
    while i > 0 {
        i -= 1;
        let t = raw_lines.get(i).map(|l| l.trim()).unwrap_or("");
        if t.starts_with("///") || t.starts_with("//!") || t.starts_with("#[doc") {
            return true;
        }
        if t.starts_with("#[") || t.starts_with("#![") || (t.starts_with("//")) {
            continue;
        }
        if t.ends_with("*/") {
            // Tail of a block comment; accept only doc-block (`/**`) heads.
            while i > 0 && !raw_lines[i].trim_start().starts_with("/*") {
                i -= 1;
            }
            if raw_lines[i].trim_start().starts_with("/**") {
                return true;
            }
            continue;
        }
        return false;
    }
    false
}

// ---------------------------------------------------------------------------
// Workspace walk.
// ---------------------------------------------------------------------------

/// Collects and lints every Rust source file in the workspace rooted at
/// `root`. Fixture files under `tests/fixtures/` are skipped — they exist
/// to violate the rules on purpose.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files: Vec<(String, String, bool)> = Vec::new(); // (crate, rel_path, is_test)

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .filter(|e| e.path().is_dir())
        .map(|e| e.path())
        .collect();
    crate_dirs.sort();

    for dir in crate_dirs {
        let name = dir.file_name().and_then(|f| f.to_str()).unwrap_or_default().to_string();
        collect_rs(root, &dir.join("src"), &name, false, &mut files)?;
        collect_rs(root, &dir.join("tests"), &name, true, &mut files)?;
        collect_rs(root, &dir.join("benches"), &name, true, &mut files)?;
    }
    // Top-level members: examples are runnable model code (all rules except
    // the crate-scoped ones apply); the tests package is test support.
    collect_rs(root, &root.join("examples"), "examples", false, &mut files)?;
    collect_rs(root, &root.join("tests"), "tests", true, &mut files)?;

    files.sort();
    let mut diags = Vec::new();
    for (crate_name, rel_path, is_test) in &files {
        let source = std::fs::read_to_string(root.join(rel_path))?;
        let spec = FileSpec { crate_name, rel_path, is_test: *is_test };
        diags.extend(lint_source(&spec, &source));
    }
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(diags)
}

fn collect_rs(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    is_test: bool,
    out: &mut Vec<(String, String, bool)>,
) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> =
        std::fs::read_dir(dir)?.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().and_then(|f| f.to_str()) == Some("fixtures") {
                continue;
            }
            collect_rs(root, &path, crate_name, is_test, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            out.push((crate_name.to_string(), rel, is_test));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec<'a>(crate_name: &'a str, rel_path: &'a str) -> FileSpec<'a> {
        FileSpec { crate_name, rel_path, is_test: false }
    }

    fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn scanner_strips_strings_and_comments() {
        let sc = scan("let x = \"HashMap\"; // HashMap\n/* HashMap */ let y = 1;\n");
        let text: String = sc.cleaned.iter().collect();
        assert!(!text.contains("HashMap"));
        assert!(text.contains("let x"));
        assert_eq!(sc.comments.len(), 2);
        assert!(sc.comments[0].trailing);
        assert!(!sc.comments[1].trailing);
    }

    #[test]
    fn scanner_handles_raw_strings_and_chars() {
        let sc =
            scan("let s = r#\"thread_rng \" quote\"#; let c = '\\n'; let l: &'static str = s;\n");
        let text: String = sc.cleaned.iter().collect();
        assert!(!text.contains("thread_rng"));
        assert!(text.contains("'static"), "lifetimes survive: {text}");
    }

    #[test]
    fn hash_map_flagged_in_sim_crate_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules(&lint_source(&spec("core", "crates/core/src/x.rs"), src)), ["hash-map"]);
        assert!(lint_source(&spec("workloads", "crates/workloads/src/x.rs"), src).is_empty());
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn b() { let _: HashMap<u8, u8>; }\n}\n";
        assert!(lint_source(&spec("core", "crates/core/src/x.rs"), src).is_empty());
    }

    #[test]
    fn nondet_flagged_everywhere_but_bench() {
        let src = "use std::time::Instant;\nlet t = Instant::now();\n";
        let diags = lint_source(&spec("workloads", "crates/workloads/src/x.rs"), src);
        assert!(diags.iter().all(|d| d.rule == RULE_NONDET));
        assert!(diags.len() >= 2, "both lines flagged: {diags:?}");
        assert!(lint_source(&spec("bench", "crates/bench/src/x.rs"), src).is_empty());
    }

    #[test]
    fn float_rule_scoped_to_datapath_files() {
        let src = "pub(crate) fn f(x: u64) -> f64 {\n    x as f64 * 0.5\n}\n";
        let diags = lint_source(&spec("core", "crates/core/src/pacer.rs"), src);
        assert_eq!(rules(&diags), [RULE_FLOAT_MATH, RULE_FLOAT_MATH]);
        assert!(lint_source(&spec("core", "crates/core/src/governor.rs"), src)
            .iter()
            .all(|d| d.rule != RULE_FLOAT_MATH));
    }

    #[test]
    fn float_rule_covers_simkit_trace_module() {
        let src = "pub(crate) fn f(x: u64) -> f64 {\n    x as f64 * 0.5\n}\n";
        let diags = lint_source(&spec("simkit", "crates/simkit/src/trace.rs"), src);
        assert_eq!(rules(&diags), [RULE_FLOAT_MATH, RULE_FLOAT_MATH]);
        assert!(diags[0].message.contains("trace serializer"), "{diags:?}");
        // Other simkit files (stats keeps f64 summaries) stay exempt.
        assert!(lint_source(&spec("simkit", "crates/simkit/src/stats.rs"), src)
            .iter()
            .all(|d| d.rule != RULE_FLOAT_MATH));
    }

    #[test]
    fn float_literal_detection_avoids_ranges_and_tuples() {
        assert!(has_float_literal(&"let x = 1.25;".chars().collect::<Vec<_>>()));
        assert!(!has_float_literal(&"for i in 0..10 {}".chars().collect::<Vec<_>>()));
        assert!(!has_float_literal(&"let y = pair.0;".chars().collect::<Vec<_>>()));
        assert!(!has_float_literal(&"let z = 1.max(2);".chars().collect::<Vec<_>>()));
    }

    #[test]
    fn unwrap_exact_method_only() {
        let src = "fn f(o: Option<u8>) -> u8 { o.unwrap() }\nfn g(o: Option<u8>) -> u8 { o.unwrap_or(0) }\n";
        let diags = lint_source(&spec("simkit", "crates/simkit/src/x.rs"), src);
        assert_eq!(rules(&diags), [RULE_UNWRAP]);
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn missing_docs_on_undocumented_pub_fn() {
        let src = "/// Documented.\npub fn a() {}\npub fn b() {}\n#[must_use]\n/// Attr then doc is fine too.\npub fn c() -> u8 { 0 }\n";
        let diags = lint_source(&spec("core", "crates/core/src/x.rs"), src);
        assert_eq!(rules(&diags), [RULE_MISSING_DOCS]);
        assert_eq!(diags[0].line, 3);
        assert!(diags[0].message.contains('b'));
    }

    #[test]
    fn trailing_suppression_covers_one_line() {
        let src = "use std::collections::HashMap; // simlint: allow(hash-map): test scaffolding\nuse std::collections::HashSet;\n";
        let diags = lint_source(&spec("core", "crates/core/src/x.rs"), src);
        assert_eq!(rules(&diags), [RULE_HASH_MAP]);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn standalone_suppression_covers_following_item() {
        let src = "// simlint: allow(unwrap): invariant established by constructor\nfn f(o: Option<u8>) -> u8 {\n    o.unwrap()\n}\nfn g(o: Option<u8>) -> u8 { o.unwrap() }\n";
        let diags = lint_source(&spec("core", "crates/core/src/x.rs"), src);
        assert_eq!(rules(&diags), [RULE_UNWRAP]);
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn suppression_requires_justification() {
        let src = "use std::collections::HashMap; // simlint: allow(hash-map)\n";
        let diags = lint_source(&spec("core", "crates/core/src/x.rs"), src);
        let r = rules(&diags);
        assert!(r.contains(&RULE_SUPPRESSION), "{diags:?}");
        assert!(r.contains(&RULE_HASH_MAP), "unjustified allow must not suppress: {diags:?}");
    }

    #[test]
    fn doc_comments_are_not_suppressions() {
        let src =
            "/// Use `// simlint: allow(<rule>): <why>` to suppress.\npub fn documented() {}\n";
        assert!(lint_source(&spec("simkit", "crates/simkit/src/x.rs"), src).is_empty());
    }

    #[test]
    fn suppression_unknown_rule_reported() {
        let src = "let x = 1; // simlint: allow(made-up): because\n";
        let diags = lint_source(&spec("core", "crates/core/src/x.rs"), src);
        assert_eq!(rules(&diags), [RULE_SUPPRESSION]);
    }

    #[test]
    fn thread_banned_everywhere_but_the_harness() {
        let src = "use std::thread;\nfn f() { thread::spawn(|| {}); }\n";
        let diags = lint_source(&spec("soc", "crates/soc/src/x.rs"), src);
        assert_eq!(rules(&diags), [RULE_THREAD, RULE_THREAD]);
        // The sweep executor itself is the one sanctioned user.
        assert!(lint_source(&spec("bench", "crates/bench/src/harness.rs"), src).is_empty());
        // The rest of the bench crate still may not spawn.
        let diags = lint_source(&spec("bench", "crates/bench/src/bin/sim_throughput.rs"), src);
        assert_eq!(rules(&diags), [RULE_THREAD, RULE_THREAD]);
    }

    #[test]
    fn thread_rule_ignores_lookalike_identifiers() {
        let src = "let thread_count = 4;\nlet t = my_thread;\nfn thread() {}\n";
        assert!(lint_source(&spec("soc", "crates/soc/src/x.rs"), src).is_empty());
    }

    #[test]
    fn thread_rule_applies_to_test_code() {
        let fixture =
            FileSpec { crate_name: "soc", rel_path: "crates/soc/tests/t.rs", is_test: true };
        let diags = lint_source(&fixture, "fn f() { std::thread::sleep(d); }\n");
        assert_eq!(rules(&diags), [RULE_THREAD]);
    }

    #[test]
    fn fault_rng_banned_in_mechanism_crates_only() {
        let src = "use pabst_simkit::rng::SimRng;\nfn f(r: &mut SimRng) -> bool { r.gen_bool(500_000) }\n";
        let diags = lint_source(&spec("soc", "crates/soc/src/x.rs"), src);
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.rule == RULE_FAULT_RNG), "{diags:?}");
        assert!(diags[0].message.contains("simkit::fault"), "{diags:?}");
        // simkit hosts the RNG and the fault layer; workloads seed streams.
        assert!(lint_source(&spec("simkit", "crates/simkit/src/fault.rs"), src).is_empty());
        assert!(lint_source(&spec("workloads", "crates/workloads/src/x.rs"), src).is_empty());
    }

    #[test]
    fn fault_rng_skips_test_code() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn f(r: &mut SimRng) -> u64 { r.gen_range(4) }\n}\n";
        assert!(lint_source(&spec("core", "crates/core/src/x.rs"), src).is_empty());
        let fixture =
            FileSpec { crate_name: "dram", rel_path: "crates/dram/tests/t.rs", is_test: true };
        assert!(
            lint_source(&fixture, "fn f(r: &mut SimRng) -> u64 { r.gen_range(4) }\n").is_empty()
        );
    }

    #[test]
    fn horizon_flags_per_cycle_state_outside_audited_files() {
        let src = "fn run(mut now: u64, m: &mut Mon) { now += 1; m.sample(3); }\n";
        let diags = lint_source(&spec("soc", "crates/soc/src/x.rs"), src);
        assert_eq!(rules(&diags), [RULE_HORIZON], "{diags:?}");
        // Audited files step per cycle by design; harness crates are out of
        // scope entirely.
        assert!(lint_source(&spec("soc", "crates/soc/src/system.rs"), src).is_empty());
        assert!(lint_source(&spec("bench", "crates/bench/src/x.rs"), src).is_empty());
    }

    #[test]
    fn horizon_ignores_lookalike_identifiers() {
        let src = "fn f(now: u64) -> u64 { let sample_rate = now + 1; sample_rate }\n";
        assert!(lint_source(&spec("soc", "crates/soc/src/x.rs"), src).is_empty());
    }

    #[test]
    fn test_files_keep_nondet_rule_but_skip_others() {
        let fixture =
            FileSpec { crate_name: "core", rel_path: "crates/core/tests/t.rs", is_test: true };
        let src = "use std::collections::HashMap;\nfn f(o: Option<u8>) -> u8 { o.unwrap() }\nuse std::time::Instant;\n";
        let diags = lint_source(&fixture, src);
        assert_eq!(rules(&diags), [RULE_NONDET]);
    }
}
