//! `simlint`: the PABST workspace's determinism & accounting static-analysis
//! pass.
//!
//! A cycle-accurate simulator is only as trustworthy as its reproducibility:
//! the paper's figures (proportional slowdowns, SAT duty cycles, epoch
//! traces) must come out bit-identical on every run and every host. This
//! crate enforces the workspace conventions that make that true. It is
//! hand-rolled end to end — the workspace builds without network access, so
//! no `syn`/`dylint` machinery is available (or needed).
//!
//! The engine has two layers (catalogued with the rules in `docs/LINTS.md`):
//!
//! 1. **[`lexer`] + [`index`]** — a comment/string-correct Rust token
//!    stream, and from it a per-file item index: every `fn` (owner type,
//!    visibility, doc status, test status, outgoing calls/references,
//!    determinism *sinks*), type definitions, `use` paths, and top-level
//!    fn-pointer-table references.
//! 2. **[`graph`]** — a workspace call-graph approximation over those
//!    indexes. Edges are name-based (CHA-style over-approximation), which
//!    lets reachability-scoped rules trace a sink back to an entry point.
//!
//! File-scoped rules (`hash-map`, `nondet`, `float-math`, `unwrap`,
//! `missing-docs`, `thread`, `fault-rng`, `horizon`) run on layer 1 alone.
//! Reachability-scoped rules run on layer 2:
//!
//! * `taint-clock` / `taint-entropy` / `taint-hash-iter` / `taint-float` —
//!   nothing reachable from `System::advance` may read the host clock, draw
//!   entropy, iterate a hashed collection, or touch floats; nothing
//!   reachable from `Experiment::run` (including through the fn-pointer
//!   registry) may draw entropy or iterate hashed collections.
//! * `horizon-contract` — every sim-crate type with a `step`/`step_*`
//!   method must define `next_event`, and that `next_event` must be
//!   reached from `System::advance`'s horizon min-combine.
//!
//! Hygiene rules police the lint machinery itself: `suppression` (malformed
//! allows) and `unused-suppression` (an allow that silences nothing).
//!
//! Suppression: `// simlint: allow(<rule>): <justification>` on the same
//! line silences that line; on its own line it silences the item that
//! follows (through the item's closing brace or terminating semicolon). The
//! justification is mandatory — an allow without one is itself a violation,
//! and so is an allow that no longer suppresses anything.

#![forbid(unsafe_code)]

pub mod cache;
pub mod graph;
pub mod index;
pub mod json;
pub mod lexer;
pub mod rules;

use std::fmt;
use std::path::Path;

/// Rule identifiers, as used in diagnostics and `allow(...)` suppressions.
pub const RULE_HASH_MAP: &str = "hash-map";
/// See [`RULE_HASH_MAP`]; wall-clock / entropy sources.
pub const RULE_NONDET: &str = "nondet";
/// Floating-point arithmetic in the regulation datapath.
pub const RULE_FLOAT_MATH: &str = "float-math";
/// `.unwrap()` / `.expect()` in mechanism crates.
pub const RULE_UNWRAP: &str = "unwrap";
/// `pub fn` without a doc comment in `pabst-core`.
pub const RULE_MISSING_DOCS: &str = "missing-docs";
/// `std::thread` outside the sweep executor.
pub const RULE_THREAD: &str = "thread";
/// Direct RNG draws in mechanism crates instead of `simkit::fault`.
pub const RULE_FAULT_RNG: &str = "fault-rng";
/// Per-cycle stepping/accounting in a file with no next_event surface.
pub const RULE_HORIZON: &str = "horizon";
/// Wall-clock reads reachable from a determinism root.
pub const RULE_TAINT_CLOCK: &str = "taint-clock";
/// Entropy draws reachable from a determinism root.
pub const RULE_TAINT_ENTROPY: &str = "taint-entropy";
/// Hasher-randomized collections reachable from a determinism root.
pub const RULE_TAINT_HASH_ITER: &str = "taint-hash-iter";
/// Floating-point operations reachable from `System::advance`.
pub const RULE_TAINT_FLOAT: &str = "taint-float";
/// A `step` method without a wired-up `next_event` counterpart.
pub const RULE_HORIZON_CONTRACT: &str = "horizon-contract";
/// Malformed suppression comments (missing justification, unknown rule).
pub const RULE_SUPPRESSION: &str = "suppression";
/// A valid suppression that no longer suppresses anything.
pub const RULE_UNUSED_SUPPRESSION: &str = "unused-suppression";

/// All real (suppressible) rule names.
pub const ALL_RULES: [&str; 13] = [
    RULE_HASH_MAP,
    RULE_NONDET,
    RULE_FLOAT_MATH,
    RULE_UNWRAP,
    RULE_MISSING_DOCS,
    RULE_THREAD,
    RULE_FAULT_RNG,
    RULE_HORIZON,
    RULE_TAINT_CLOCK,
    RULE_TAINT_ENTROPY,
    RULE_TAINT_HASH_ITER,
    RULE_TAINT_FLOAT,
    RULE_HORIZON_CONTRACT,
];

/// Reachability-scoped rules: these only run in whole-workspace lints, so
/// single-file lints cannot judge whether their suppressions are used.
pub const CROSS_RULES: [&str; 5] = [
    RULE_TAINT_CLOCK,
    RULE_TAINT_ENTROPY,
    RULE_TAINT_HASH_ITER,
    RULE_TAINT_FLOAT,
    RULE_HORIZON_CONTRACT,
];

/// Maps a rule name to its canonical `&'static str` id (any rule that can
/// appear in a diagnostic, including the hygiene rules).
pub fn rule_id(name: &str) -> Option<&'static str> {
    ALL_RULES
        .iter()
        .chain([RULE_SUPPRESSION, RULE_UNUSED_SUPPRESSION].iter())
        .copied()
        .find(|r| *r == name)
}

/// A single lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// What the linter needs to know about a file before rule dispatch.
#[derive(Debug, Clone)]
pub struct FileSpec<'a> {
    /// Short crate name: the directory under `crates/` (e.g. `"core"`),
    /// or `"examples"` / `"tests"` for the top-level members.
    pub crate_name: &'a str,
    /// Workspace-relative path, used in diagnostics and for per-file rule
    /// scoping (the float rule matches on the file name).
    pub rel_path: &'a str,
    /// True when the whole file is test/bench support (lives under a
    /// `tests/` or `benches/` directory, or in the integration-test
    /// package). `#[cfg(test)]` modules inside `src/` are detected
    /// separately.
    pub is_test: bool,
}

/// An owned [`FileSpec`] plus its source text: the unit of input for
/// whole-workspace lints ([`lint_files`]).
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// See [`FileSpec::crate_name`].
    pub crate_name: String,
    /// See [`FileSpec::rel_path`].
    pub rel_path: String,
    /// See [`FileSpec::is_test`].
    pub is_test: bool,
    /// The file's full source text.
    pub source: String,
}

/// Lints one file in isolation: the file-scoped rules plus suppression
/// hygiene for them. Reachability-scoped rules need the whole workspace
/// ([`lint_files`]), so their suppressions are not judged here.
pub fn lint_source(spec: &FileSpec<'_>, source: &str) -> Vec<Diagnostic> {
    let lx = lexer::lex(source);
    let idx = index::index_file(spec.crate_name, spec.rel_path, spec.is_test, source, &lx);
    let mut pass = rules::file_pass(spec, &lx, &idx);
    rules::unused_pass(spec.rel_path, &mut pass, false);
    pass.diags
}

/// Lints a file set as one workspace: per-file pass, then the cross pass
/// (taint, horizon-contract), then suppression-usage hygiene over all rules.
pub fn lint_files(files: &[SourceFile]) -> Vec<Diagnostic> {
    let mut indexes = Vec::new();
    let mut passes = Vec::new();
    for f in files {
        let spec =
            FileSpec { crate_name: &f.crate_name, rel_path: &f.rel_path, is_test: f.is_test };
        let lx = lexer::lex(&f.source);
        let idx = index::index_file(&f.crate_name, &f.rel_path, f.is_test, &f.source, &lx);
        let pass = rules::file_pass(&spec, &lx, &idx);
        indexes.push(idx);
        passes.push(pass);
    }
    finish(indexes, passes)
}

/// Cross pass + hygiene + final sort, shared by the cached and uncached
/// workspace entry points.
fn finish(indexes: Vec<index::FileIndex>, mut passes: Vec<rules::FilePass>) -> Vec<Diagnostic> {
    rules::cross_pass(&indexes, &mut passes);
    let mut diags = Vec::new();
    for (idx, pass) in indexes.iter().zip(passes.iter_mut()) {
        rules::unused_pass(&idx.rel_path, pass, true);
        diags.append(&mut pass.diags);
    }
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    diags
}

/// Collects and lints every Rust source file in the workspace rooted at
/// `root`, running the full pipeline (no cache). Fixture files under
/// `tests/fixtures/` are skipped — they exist to violate the rules on
/// purpose.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut sources = Vec::new();
    for (crate_name, rel_path, is_test) in workspace_files(root)? {
        let source = std::fs::read_to_string(root.join(&rel_path))?;
        sources.push(SourceFile { crate_name, rel_path, is_test, source });
    }
    Ok(lint_files(&sources))
}

/// Like [`lint_workspace`], but skips the per-file pass for files whose
/// content hash matches `cache_path` (see [`cache`]). The cross pass always
/// runs fresh. The cache file is rewritten on every run.
pub fn lint_workspace_cached(root: &Path, cache_path: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let old = cache::Cache::load(cache_path);
    let mut new = cache::Cache::default();
    let mut indexes = Vec::new();
    let mut passes = Vec::new();
    for (crate_name, rel_path, is_test) in workspace_files(root)? {
        let source = std::fs::read_to_string(root.join(&rel_path))?;
        let hash = cache::fnv1a(source.as_bytes());
        let (idx, pass) = match old.get(&rel_path, hash) {
            Some(e) => cache::entry_to_pass(e),
            None => {
                let spec = FileSpec { crate_name: &crate_name, rel_path: &rel_path, is_test };
                let lx = lexer::lex(&source);
                let idx = index::index_file(&crate_name, &rel_path, is_test, &source, &lx);
                let pass = rules::file_pass(&spec, &lx, &idx);
                (idx, pass)
            }
        };
        new.entries.insert(
            rel_path,
            cache::Entry {
                hash,
                index: idx.clone(),
                diags: pass.diags.clone(),
                sups: pass.sups.clone(),
            },
        );
        indexes.push(idx);
        passes.push(pass);
    }
    new.save(cache_path);
    Ok(finish(indexes, passes))
}

/// The machine-readable report (`--format json` / `--report`). The shape is
/// pinned by the snapshot test in `tests/fixture_lints.rs`.
pub fn report_json(diags: &[Diagnostic]) -> json::Json {
    use json::Json;
    let items = diags
        .iter()
        .map(|d| {
            Json::Obj(vec![
                ("file".into(), Json::Str(d.file.clone())),
                ("line".into(), Json::Num(d.line as i64)),
                ("rule".into(), Json::Str(d.rule.into())),
                ("message".into(), Json::Str(d.message.clone())),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::Str("simlint-report-v1".into())),
        ("count".into(), Json::Num(diags.len() as i64)),
        ("diagnostics".into(), Json::Arr(items)),
    ])
}

/// Walks the workspace: `(crate, rel_path, is_test)` triples in
/// deterministic order.
fn workspace_files(root: &Path) -> std::io::Result<Vec<(String, String, bool)>> {
    let mut files: Vec<(String, String, bool)> = Vec::new();

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .filter(|e| e.path().is_dir())
        .map(|e| e.path())
        .collect();
    crate_dirs.sort();

    for dir in crate_dirs {
        let name = dir.file_name().and_then(|f| f.to_str()).unwrap_or_default().to_string();
        collect_rs(root, &dir.join("src"), &name, false, &mut files)?;
        collect_rs(root, &dir.join("tests"), &name, true, &mut files)?;
        collect_rs(root, &dir.join("benches"), &name, true, &mut files)?;
    }
    // Top-level members: examples are runnable model code (all rules except
    // the crate-scoped ones apply); the tests package is test support.
    collect_rs(root, &root.join("examples"), "examples", false, &mut files)?;
    collect_rs(root, &root.join("tests"), "tests", true, &mut files)?;

    files.sort();
    Ok(files)
}

fn collect_rs(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    is_test: bool,
    out: &mut Vec<(String, String, bool)>,
) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> =
        std::fs::read_dir(dir)?.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().and_then(|f| f.to_str()) == Some("fixtures") {
                continue;
            }
            collect_rs(root, &path, crate_name, is_test, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            out.push((crate_name.to_string(), rel, is_test));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec<'a>(crate_name: &'a str, rel_path: &'a str) -> FileSpec<'a> {
        FileSpec { crate_name, rel_path, is_test: false }
    }

    fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn hash_map_flagged_in_sim_crate_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules(&lint_source(&spec("core", "crates/core/src/x.rs"), src)), ["hash-map"]);
        assert!(lint_source(&spec("workloads", "crates/workloads/src/x.rs"), src).is_empty());
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn b() { let _: HashMap<u8, u8>; }\n}\n";
        assert!(lint_source(&spec("core", "crates/core/src/x.rs"), src).is_empty());
    }

    #[test]
    fn nondet_flagged_everywhere_but_bench() {
        let src = "use std::time::Instant;\nlet t = Instant::now();\n";
        let diags = lint_source(&spec("workloads", "crates/workloads/src/x.rs"), src);
        assert!(diags.iter().all(|d| d.rule == RULE_NONDET));
        assert!(diags.len() >= 2, "both lines flagged: {diags:?}");
        assert!(lint_source(&spec("bench", "crates/bench/src/x.rs"), src).is_empty());
    }

    #[test]
    fn float_rule_scoped_to_datapath_files() {
        let src = "pub(crate) fn f(x: u64) -> f64 {\n    x as f64 * 0.5\n}\n";
        let diags = lint_source(&spec("core", "crates/core/src/pacer.rs"), src);
        assert_eq!(rules(&diags), [RULE_FLOAT_MATH, RULE_FLOAT_MATH]);
        assert!(lint_source(&spec("core", "crates/core/src/governor.rs"), src)
            .iter()
            .all(|d| d.rule != RULE_FLOAT_MATH));
    }

    #[test]
    fn float_rule_covers_simkit_trace_module() {
        let src = "pub(crate) fn f(x: u64) -> f64 {\n    x as f64 * 0.5\n}\n";
        let diags = lint_source(&spec("simkit", "crates/simkit/src/trace.rs"), src);
        assert_eq!(rules(&diags), [RULE_FLOAT_MATH, RULE_FLOAT_MATH]);
        assert!(diags[0].message.contains("trace serializer"), "{diags:?}");
        // Other simkit files (stats keeps f64 summaries) stay exempt.
        assert!(lint_source(&spec("simkit", "crates/simkit/src/stats.rs"), src)
            .iter()
            .all(|d| d.rule != RULE_FLOAT_MATH));
    }

    #[test]
    fn float_literal_detection_avoids_ranges_and_tuples() {
        // Ranges, tuple fields and integer method calls are not floats.
        let ok =
            "fn f(pair: (u64, u64)) -> u64 {\n    for _i in 0..10 {}\n    pair.0 + 1.max(2)\n}\n";
        assert!(lint_source(&spec("core", "crates/core/src/pacer.rs"), ok).is_empty());
        let bad = "fn f() -> u64 {\n    let _x = 1.25;\n    0\n}\n";
        let diags = lint_source(&spec("core", "crates/core/src/pacer.rs"), bad);
        assert_eq!(rules(&diags), [RULE_FLOAT_MATH]);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn unwrap_exact_method_only() {
        let src = "fn f(o: Option<u8>) -> u8 { o.unwrap() }\nfn g(o: Option<u8>) -> u8 { o.unwrap_or(0) }\n";
        let diags = lint_source(&spec("simkit", "crates/simkit/src/x.rs"), src);
        assert_eq!(rules(&diags), [RULE_UNWRAP]);
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn missing_docs_on_undocumented_pub_fn() {
        let src = "/// Documented.\npub fn a() {}\npub fn b() {}\n#[must_use]\n/// Attr then doc is fine too.\npub fn c() -> u8 { 0 }\n";
        let diags = lint_source(&spec("core", "crates/core/src/x.rs"), src);
        assert_eq!(rules(&diags), [RULE_MISSING_DOCS]);
        assert_eq!(diags[0].line, 3);
        assert!(diags[0].message.contains('b'));
    }

    #[test]
    fn trailing_suppression_covers_one_line() {
        let src = "use std::collections::HashMap; // simlint: allow(hash-map): test scaffolding\nuse std::collections::HashSet;\n";
        let diags = lint_source(&spec("core", "crates/core/src/x.rs"), src);
        assert_eq!(rules(&diags), [RULE_HASH_MAP]);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn standalone_suppression_covers_following_item() {
        let src = "// simlint: allow(unwrap): invariant established by constructor\nfn f(o: Option<u8>) -> u8 {\n    o.unwrap()\n}\nfn g(o: Option<u8>) -> u8 { o.unwrap() }\n";
        let diags = lint_source(&spec("core", "crates/core/src/x.rs"), src);
        assert_eq!(rules(&diags), [RULE_UNWRAP]);
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn suppression_requires_justification() {
        let src = "use std::collections::HashMap; // simlint: allow(hash-map)\n";
        let diags = lint_source(&spec("core", "crates/core/src/x.rs"), src);
        let r = rules(&diags);
        assert!(r.contains(&RULE_SUPPRESSION), "{diags:?}");
        assert!(r.contains(&RULE_HASH_MAP), "unjustified allow must not suppress: {diags:?}");
    }

    #[test]
    fn doc_comments_are_not_suppressions() {
        let src =
            "/// Use `// simlint: allow(<rule>): <why>` to suppress.\npub fn documented() {}\n";
        assert!(lint_source(&spec("simkit", "crates/simkit/src/x.rs"), src).is_empty());
    }

    #[test]
    fn suppression_unknown_rule_reported() {
        let src = "let x = 1; // simlint: allow(made-up): because\n";
        let diags = lint_source(&spec("core", "crates/core/src/x.rs"), src);
        assert_eq!(rules(&diags), [RULE_SUPPRESSION]);
    }

    #[test]
    fn unused_suppression_is_flagged() {
        let src = "// simlint: allow(hash-map): was needed before the BTreeMap port\nfn f() {}\n";
        let diags = lint_source(&spec("core", "crates/core/src/x.rs"), src);
        assert_eq!(rules(&diags), [RULE_UNUSED_SUPPRESSION]);
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn cross_rule_suppressions_not_judged_by_single_file_lint() {
        // Taint suppressions can only be judged by the workspace pass; a
        // single-file lint must not call them unused.
        let src = "// simlint: allow(taint-float): judged by the workspace pass\nfn f() {}\n";
        assert!(lint_source(&spec("core", "crates/core/src/x.rs"), src).is_empty());
    }

    #[test]
    fn thread_banned_everywhere_but_the_harness() {
        let src = "use std::thread;\nfn f() { thread::spawn(|| {}); }\n";
        let diags = lint_source(&spec("soc", "crates/soc/src/x.rs"), src);
        assert_eq!(rules(&diags), [RULE_THREAD, RULE_THREAD]);
        // The sweep executor itself is the one sanctioned user.
        assert!(lint_source(&spec("bench", "crates/bench/src/harness.rs"), src).is_empty());
        // The rest of the bench crate still may not spawn.
        let diags = lint_source(&spec("bench", "crates/bench/src/bin/sim_throughput.rs"), src);
        assert_eq!(rules(&diags), [RULE_THREAD, RULE_THREAD]);
    }

    #[test]
    fn thread_rule_ignores_lookalike_identifiers() {
        let src = "let thread_count = 4;\nlet t = my_thread;\nfn thread() {}\n";
        assert!(lint_source(&spec("soc", "crates/soc/src/x.rs"), src).is_empty());
    }

    #[test]
    fn thread_rule_applies_to_test_code() {
        let fixture =
            FileSpec { crate_name: "soc", rel_path: "crates/soc/tests/t.rs", is_test: true };
        let diags = lint_source(&fixture, "fn f() { std::thread::sleep(d); }\n");
        assert_eq!(rules(&diags), [RULE_THREAD]);
    }

    #[test]
    fn fault_rng_banned_in_mechanism_crates_only() {
        let src = "use pabst_simkit::rng::SimRng;\nfn f(r: &mut SimRng) -> bool { r.gen_bool(500_000) }\n";
        let diags = lint_source(&spec("soc", "crates/soc/src/x.rs"), src);
        assert!(!diags.is_empty());
        assert!(diags.iter().all(|d| d.rule == RULE_FAULT_RNG), "{diags:?}");
        assert!(diags[0].message.contains("simkit::fault"), "{diags:?}");
        // simkit hosts the RNG and the fault layer; workloads seed streams.
        assert!(lint_source(&spec("simkit", "crates/simkit/src/fault.rs"), src).is_empty());
        assert!(lint_source(&spec("workloads", "crates/workloads/src/x.rs"), src).is_empty());
    }

    #[test]
    fn fault_rng_skips_test_code() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn f(r: &mut SimRng) -> u64 { r.gen_range(4) }\n}\n";
        assert!(lint_source(&spec("core", "crates/core/src/x.rs"), src).is_empty());
        let fixture =
            FileSpec { crate_name: "dram", rel_path: "crates/dram/tests/t.rs", is_test: true };
        assert!(
            lint_source(&fixture, "fn f(r: &mut SimRng) -> u64 { r.gen_range(4) }\n").is_empty()
        );
    }

    #[test]
    fn horizon_flags_per_cycle_state_unless_file_defines_next_event() {
        let src = "fn run(mut now: u64, m: &mut Mon) { now += 1; m.sample(3); }\n";
        let diags = lint_source(&spec("soc", "crates/soc/src/x.rs"), src);
        assert_eq!(rules(&diags), [RULE_HORIZON], "{diags:?}");
        // A file that exposes a next_event/batch-accrual surface steps per
        // cycle by design: that is what the structural exemption keys on.
        let exempt = format!("{src}impl Mon {{ pub fn next_event(&self) -> u64 {{ 0 }} }}\n");
        assert!(lint_source(&spec("soc", "crates/soc/src/x.rs"), &exempt).is_empty());
        // Harness crates are out of scope entirely.
        assert!(lint_source(&spec("bench", "crates/bench/src/x.rs"), src).is_empty());
    }

    #[test]
    fn horizon_ignores_lookalike_identifiers() {
        let src = "fn f(now: u64) -> u64 { let sample_rate = now + 1; sample_rate }\n";
        assert!(lint_source(&spec("soc", "crates/soc/src/x.rs"), src).is_empty());
    }

    #[test]
    fn test_files_keep_nondet_rule_but_skip_others() {
        let fixture =
            FileSpec { crate_name: "core", rel_path: "crates/core/tests/t.rs", is_test: true };
        let src = "use std::collections::HashMap;\nfn f(o: Option<u8>) -> u8 { o.unwrap() }\nuse std::time::Instant;\n";
        let diags = lint_source(&fixture, src);
        assert_eq!(rules(&diags), [RULE_NONDET]);
    }

    #[test]
    fn lint_files_taints_sinks_reachable_from_advance() {
        let sys = SourceFile {
            crate_name: "soc".into(),
            rel_path: "crates/soc/src/system.rs".into(),
            is_test: false,
            source: "impl System {\n    pub fn advance(&mut self) { helper(); }\n}\n".into(),
        };
        let util = SourceFile {
            crate_name: "bench".into(),
            rel_path: "crates/bench/src/util.rs".into(),
            is_test: false,
            // `Instant` is legal in bench under the file-scoped rules — only
            // reachability analysis can catch it leaking into the sim clock.
            source: "pub fn helper() -> u64 {\n    let _t = Instant::now();\n    0\n}\n".into(),
        };
        let diags = lint_files(&[sys, util]);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == RULE_TAINT_CLOCK && d.file == "crates/bench/src/util.rs"),
            "{diags:?}"
        );
        let taint = diags.iter().find(|d| d.rule == RULE_TAINT_CLOCK).unwrap();
        assert!(taint.message.contains("System::advance"), "{taint:?}");
        assert_eq!(taint.line, 2);
    }

    #[test]
    fn report_json_round_trips() {
        let diags = vec![Diagnostic {
            file: "crates/core/src/x.rs".into(),
            line: 3,
            rule: RULE_HASH_MAP,
            message: "m".into(),
        }];
        let j = report_json(&diags);
        let back = json::parse(&j.to_pretty()).expect("parse");
        assert_eq!(back.get("schema").and_then(json::Json::as_str), Some("simlint-report-v1"));
        assert_eq!(back.get("count").and_then(json::Json::as_i64), Some(1));
        let items = back.get("diagnostics").and_then(json::Json::as_arr).unwrap();
        assert_eq!(items[0].get("rule").and_then(json::Json::as_str), Some("hash-map"));
    }
}
