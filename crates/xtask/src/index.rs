//! Layer 1½ of the simlint engine: the per-file item index.
//!
//! One pass over the token stream produces, per file: every `fn` (with its
//! owning `impl`/`trait` type, visibility, doc status, test status), every
//! type definition, the `use` graph, and — per function — the outgoing
//! call/reference edges and the determinism *sinks* (wall-clock, entropy,
//! hash-iteration, float ops) the function touches directly. The workspace
//! call graph (`graph`) and the reachability-scoped rules (`rules`) are
//! built entirely from these indexes.
//!
//! The index is a deliberate approximation: calls and references are
//! name-based (no type resolution), so `x.step()` records an edge to every
//! workspace function named `step`. That over-approximation is the right
//! polarity for a lint — it can produce a conservative path, never miss one
//! through a resolved call.

use crate::lexer::{Lexed, Tok, TokKind};

/// Determinism sink classes tracked per function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkClass {
    /// Wall-clock reads: `Instant`, `SystemTime`, the `std::time` path.
    Clock,
    /// Entropy sources: `thread_rng`, `from_entropy`.
    Entropy,
    /// Hasher-randomized collections: `HashMap`, `HashSet`.
    HashIter,
    /// Floating point: `f32`/`f64` tokens and float literals.
    Float,
}

impl SinkClass {
    /// Stable name used in cache serialization and diagnostics.
    pub fn as_str(self) -> &'static str {
        match self {
            SinkClass::Clock => "clock",
            SinkClass::Entropy => "entropy",
            SinkClass::HashIter => "hash-iter",
            SinkClass::Float => "float",
        }
    }

    /// Inverse of [`SinkClass::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "clock" => Some(SinkClass::Clock),
            "entropy" => Some(SinkClass::Entropy),
            "hash-iter" => Some(SinkClass::HashIter),
            "float" => Some(SinkClass::Float),
            _ => None,
        }
    }
}

/// One determinism sink inside a function body or signature.
#[derive(Debug, Clone)]
pub struct Sink {
    /// What kind of nondeterminism this token introduces.
    pub class: SinkClass,
    /// 0-based source line.
    pub line: usize,
    /// The offending token text (`Instant`, `f64`, `2.5`, ...).
    pub what: String,
}

/// One indexed function.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name, if any.
    pub owner: Option<String>,
    /// Trait named in the enclosing `impl Trait for Type` header, if any.
    /// `None` for inherent impls, trait declarations, and free functions —
    /// so a trait's own (default) methods never masquerade as an impl.
    pub impl_trait: Option<String>,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// True for exactly-`pub` functions (`pub(crate)` is not pub here,
    /// matching the missing-docs rule's scope).
    pub is_pub: bool,
    /// True when a doc comment or `#[doc]` attribute precedes the item.
    pub has_doc: bool,
    /// True when the file is test support or the fn sits inside a
    /// `#[cfg(test)]`-gated item.
    pub in_test: bool,
    /// Names invoked with call syntax (`foo(...)`, `.foo(...)`).
    pub calls: Vec<String>,
    /// Bare identifier references (potential fn-pointer mentions).
    pub refs: Vec<String>,
    /// Determinism sinks touched directly by this function.
    pub sinks: Vec<Sink>,
}

impl FnInfo {
    /// `Owner::name` or bare `name`, for diagnostics.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One `struct`/`enum`/`union` definition.
#[derive(Debug, Clone)]
pub struct TypeDef {
    /// Type name.
    pub name: String,
    /// 0-based line of the defining keyword.
    pub line: usize,
}

/// The full index of one source file.
#[derive(Debug, Clone)]
pub struct FileIndex {
    /// Short crate name (directory under `crates/`).
    pub crate_name: String,
    /// Workspace-relative path.
    pub rel_path: String,
    /// Whole-file test status (tests/, benches/, the tests package).
    pub is_test: bool,
    /// Every function, in source order.
    pub fns: Vec<FnInfo>,
    /// Every type definition, in source order.
    pub types: Vec<TypeDef>,
    /// `use` paths (token texts joined), for the cross-file use graph.
    pub uses: Vec<String>,
    /// Identifiers referenced in top-level (non-fn) item bodies — static
    /// fn-pointer tables like `static EXPERIMENTS: [Experiment; N]`. These
    /// seed dynamic-dispatch roots in the call graph.
    pub top_refs: Vec<String>,
    /// 0-based inclusive line ranges of `#[cfg(test)]`-gated items.
    pub test_ranges: Vec<(usize, usize)>,
}

impl FileIndex {
    /// True when 0-based `line` is inside test code.
    pub fn line_in_test(&self, line: usize) -> bool {
        self.is_test || self.test_ranges.iter().any(|&(a, b)| line >= a && line <= b)
    }
}

/// Rust keywords (plus reserved words) excluded from call/ref edges.
const KEYWORDS: [&str; 40] = [
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move",
    "mut", "pub", "ref", "return", "self", "Self", "static", "struct", "super", "trait", "true",
    "type", "union", "unsafe", "use", "where", "while",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

fn text(toks: &[Tok], i: usize) -> &str {
    toks.get(i).map(|t| t.text.as_str()).unwrap_or("")
}

/// Skips an attribute starting at the `#` token; returns the index past the
/// closing `]`. Attribute contents never produce edges or sinks.
fn skip_attr(toks: &[Tok], mut i: usize) -> usize {
    debug_assert_eq!(text(toks, i), "#");
    i += 1;
    if text(toks, i) == "!" {
        i += 1;
    }
    if text(toks, i) != "[" {
        return i;
    }
    let mut depth = 0usize;
    while i < toks.len() {
        match text(toks, i) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Finds every `#[cfg(test)]`-gated item and returns its 0-based inclusive
/// line range (attribute line through the item's closing brace/semicolon).
fn cfg_test_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut k = 0usize;
    while k + 6 < toks.len() {
        let is_cfg_test = text(toks, k) == "#"
            && text(toks, k + 1) == "["
            && text(toks, k + 2) == "cfg"
            && text(toks, k + 3) == "("
            && text(toks, k + 4) == "test"
            && text(toks, k + 5) == ")"
            && text(toks, k + 6) == "]";
        if !is_cfg_test {
            k += 1;
            continue;
        }
        let start_line = toks[k].line;
        let mut m = k + 7;
        // Skip any further attributes between the cfg and the item.
        while text(toks, m) == "#" {
            m = skip_attr(toks, m);
        }
        let mut depth = 0usize;
        let mut entered = false;
        let mut end_line = start_line;
        while m < toks.len() {
            match text(toks, m) {
                "{" => {
                    depth += 1;
                    entered = true;
                }
                "}" => {
                    depth = depth.saturating_sub(1);
                    if entered && depth == 0 {
                        end_line = toks[m].line;
                        break;
                    }
                }
                ";" if !entered && depth == 0 => {
                    end_line = toks[m].line;
                    break;
                }
                _ => {}
            }
            m += 1;
        }
        out.push((start_line, end_line));
        k += 7;
    }
    out
}

/// Looks upward from the raw line above `ln` for a doc comment, skipping
/// attributes and plain `//` comments (e.g. simlint suppressions).
pub fn has_doc_above(raw_lines: &[&str], ln: usize) -> bool {
    let mut i = ln;
    while i > 0 {
        i -= 1;
        let t = raw_lines.get(i).map(|l| l.trim()).unwrap_or("");
        if t.starts_with("///") || t.starts_with("//!") || t.starts_with("#[doc") {
            return true;
        }
        if t.starts_with("#[") || t.starts_with("#![") || t.starts_with("//") {
            continue;
        }
        if t.ends_with("*/") {
            // Tail of a block comment; accept only doc-block (`/**`) heads.
            while i > 0 && !raw_lines[i].trim_start().starts_with("/*") {
                i -= 1;
            }
            if raw_lines[i].trim_start().starts_with("/**") {
                return true;
            }
            continue;
        }
        return false;
    }
    false
}

#[derive(Debug)]
enum CtxKind {
    Impl { subject: String, trait_name: Option<String> },
    Trait(String),
    Fn(usize),
    Other,
}

#[derive(Debug)]
struct Ctx {
    kind: CtxKind,
    entry_depth: usize,
}

/// Checks one identifier (at `i`) for sink-hood and records it on `f`.
fn sink_check(toks: &[Tok], i: usize, f: &mut FnInfo) {
    let t = &toks[i];
    let class = match t.text.as_str() {
        "Instant" | "SystemTime" => Some(SinkClass::Clock),
        "std" if text(toks, i + 1) == "::" && text(toks, i + 2) == "time" => Some(SinkClass::Clock),
        "thread_rng" | "from_entropy" => Some(SinkClass::Entropy),
        "HashMap" | "HashSet" => Some(SinkClass::HashIter),
        "f32" | "f64" => Some(SinkClass::Float),
        _ => None,
    };
    if let Some(class) = class {
        let what = if t.text == "std" { "std::time".to_string() } else { t.text.clone() };
        f.sinks.push(Sink { class, line: t.line, what });
    }
}

/// Builds the [`FileIndex`] for one lexed file.
pub fn index_file(
    crate_name: &str,
    rel_path: &str,
    is_test: bool,
    source: &str,
    lx: &Lexed,
) -> FileIndex {
    let toks = &lx.toks;
    let raw_lines: Vec<&str> = source.lines().collect();
    let test_ranges = cfg_test_ranges(toks);

    let mut idx = FileIndex {
        crate_name: crate_name.to_string(),
        rel_path: rel_path.to_string(),
        is_test,
        fns: Vec::new(),
        types: Vec::new(),
        uses: Vec::new(),
        top_refs: Vec::new(),
        test_ranges,
    };

    let mut stack: Vec<Ctx> = Vec::new();
    let mut pending: Option<CtxKind> = None;
    let mut depth = 0usize;
    let mut i = 0usize;

    let cur_fn = |stack: &[Ctx]| -> Option<usize> {
        stack.iter().rev().find_map(|c| match c.kind {
            CtxKind::Fn(fi) => Some(fi),
            _ => None,
        })
    };
    let owner = |stack: &[Ctx]| -> Option<String> {
        stack.iter().rev().find_map(|c| match &c.kind {
            CtxKind::Impl { subject, .. } | CtxKind::Trait(subject) => Some(subject.clone()),
            _ => None,
        })
    };
    let impl_trait = |stack: &[Ctx]| -> Option<String> {
        // Stops at the nearest impl/trait context, like `owner` — a fn owned
        // by a trait declaration must not inherit an outer impl's trait.
        stack
            .iter()
            .rev()
            .find_map(|c| match &c.kind {
                CtxKind::Impl { trait_name, .. } => Some(trait_name.clone()),
                CtxKind::Trait(_) => Some(None),
                _ => None,
            })
            .flatten()
    };

    while i < toks.len() {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") => {
                depth += 1;
                stack.push(Ctx {
                    kind: pending.take().unwrap_or(CtxKind::Other),
                    entry_depth: depth,
                });
                i += 1;
            }
            (TokKind::Punct, "}") => {
                if stack.last().map(|c| c.entry_depth) == Some(depth) {
                    stack.pop();
                }
                depth = depth.saturating_sub(1);
                i += 1;
            }
            (TokKind::Punct, "#") => i = skip_attr(toks, i),
            (TokKind::Ident, "use") => {
                // Consume the whole use item so its path segments never
                // become references; `use a::{b, c};` nests braces.
                let start = i + 1;
                let mut brace = 0usize;
                i += 1;
                while i < toks.len() {
                    match text(toks, i) {
                        "{" => brace += 1,
                        "}" => brace = brace.saturating_sub(1),
                        ";" if brace == 0 => break,
                        _ => {}
                    }
                    i += 1;
                }
                if cur_fn(&stack).is_none() {
                    let path: String =
                        toks[start..i.min(toks.len())].iter().map(|t| t.text.as_str()).collect();
                    idx.uses.push(path);
                }
                i += 1; // past the `;`
            }
            (TokKind::Ident, "impl") => {
                // Header: `impl<G> Trait for Type where ... {` — the subject
                // type is the last angle-depth-0 path segment (after `for`
                // when present); whatever `for` displaced is the implemented
                // trait. Header tokens produce no edges.
                let mut j = i + 1;
                let mut angle = 0i32;
                let mut name = String::new();
                let mut trait_name: Option<String> = None;
                while j < toks.len() {
                    let w = text(toks, j);
                    match w {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "{" | "where" if angle <= 0 => break,
                        "for" if angle <= 0 => {
                            if !name.is_empty() {
                                trait_name = Some(std::mem::take(&mut name));
                            }
                        }
                        _ => {
                            if angle <= 0 && toks[j].kind == TokKind::Ident && !is_keyword(w) {
                                name = w.to_string();
                            }
                        }
                    }
                    j += 1;
                }
                while j < toks.len() && text(toks, j) != "{" {
                    j += 1;
                }
                pending = Some(CtxKind::Impl { subject: name, trait_name });
                i = j;
            }
            (TokKind::Ident, "trait") => {
                let name = if toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Ident) {
                    text(toks, i + 1).to_string()
                } else {
                    String::new()
                };
                let mut j = i + 2;
                while j < toks.len() && text(toks, j) != "{" && text(toks, j) != ";" {
                    j += 1;
                }
                if text(toks, j) == "{" {
                    pending = Some(CtxKind::Trait(name));
                    i = j;
                } else {
                    i = j + 1;
                }
            }
            (TokKind::Ident, "struct" | "enum" | "union") => {
                if let Some(n) = toks.get(i + 1) {
                    if n.kind == TokKind::Ident {
                        idx.types.push(TypeDef { name: n.text.clone(), line: t.line });
                        i += 2;
                        continue;
                    }
                }
                i += 1;
            }
            (TokKind::Ident, "fn") => {
                // `fn` can also appear as a fn-pointer *type* (`run: fn(&P)`).
                let name_tok = match toks.get(i + 1) {
                    Some(n) if n.kind == TokKind::Ident => n,
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let line = t.line;
                let is_pub = i > 0 && text(toks, i - 1) == "pub";
                let fi = idx.fns.len();
                idx.fns.push(FnInfo {
                    name: name_tok.text.clone(),
                    owner: owner(&stack),
                    impl_trait: impl_trait(&stack),
                    line,
                    is_pub,
                    has_doc: has_doc_above(&raw_lines, line),
                    in_test: is_test
                        || idx.test_ranges.iter().any(|&(a, b)| line >= a && line <= b),
                    calls: Vec::new(),
                    refs: Vec::new(),
                    sinks: Vec::new(),
                });
                // Signature scan: sinks only (e.g. `-> f64`), no edges. A
                // `;` at bracket depth 0 ends a bodyless declaration; `[`
                // tracking keeps `[u8; 4]` array types from ending it early.
                let mut j = i + 2;
                let mut open = 0i32;
                let mut body = false;
                while j < toks.len() {
                    match (toks[j].kind, text(toks, j)) {
                        (TokKind::Punct, "(") | (TokKind::Punct, "[") => open += 1,
                        (TokKind::Punct, ")") | (TokKind::Punct, "]") => open -= 1,
                        (TokKind::Punct, "{") if open <= 0 => {
                            body = true;
                            break;
                        }
                        (TokKind::Punct, ";") if open <= 0 => break,
                        (TokKind::Punct, "#") => {
                            j = skip_attr(toks, j);
                            continue;
                        }
                        (TokKind::Ident, _) => sink_check(toks, j, &mut idx.fns[fi]),
                        (TokKind::Float, _) => {
                            let w = toks[j].text.clone();
                            let l = toks[j].line;
                            idx.fns[fi].sinks.push(Sink {
                                class: SinkClass::Float,
                                line: l,
                                what: w,
                            });
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if body {
                    pending = Some(CtxKind::Fn(fi));
                    i = j; // the `{` — handled by the loop head
                } else {
                    i = (j + 1).min(toks.len());
                }
            }
            (TokKind::Ident, "mod") => {
                // Skip the module name so `mod horizon;` doesn't reference
                // a fn named `horizon`.
                i += 1;
                if toks.get(i).map(|t| t.kind) == Some(TokKind::Ident) {
                    i += 1;
                }
            }
            (TokKind::Ident, "let") => {
                // Skip the binding identifier so `let run = ...` doesn't
                // reference a fn named `run`.
                i += 1;
                if text(toks, i) == "mut" {
                    i += 1;
                }
                if toks.get(i).map(|t| t.kind) == Some(TokKind::Ident) {
                    i += 1;
                }
            }
            (TokKind::Ident, w) => {
                let fnctx = cur_fn(&stack);
                if let Some(fi) = fnctx {
                    sink_check(toks, i, &mut idx.fns[fi]);
                }
                if is_keyword(w) {
                    i += 1;
                    continue;
                }
                // Qualified call `Owner::name(...)`: record one
                // owner-resolved edge instead of a bare `name` edge that
                // would fan out to every same-named fn in the workspace
                // (`RunCtx::new` must not taint every `new`).
                if text(toks, i + 1) == "::"
                    && toks.get(i + 2).map(|t| t.kind) == Some(TokKind::Ident)
                    && !is_keyword(text(toks, i + 2))
                    && text(toks, i + 3) == "("
                {
                    let callee = format!("{w}::{}", text(toks, i + 2));
                    match fnctx {
                        Some(fi) => idx.fns[fi].calls.push(callee),
                        None => idx.top_refs.push(callee),
                    }
                    i += 3;
                    continue;
                }
                match text(toks, i + 1) {
                    "(" => match fnctx {
                        Some(fi) => idx.fns[fi].calls.push(w.to_string()),
                        None => idx.top_refs.push(w.to_string()),
                    },
                    "!" => {} // macro name, not a call
                    ":" => {} // field name / type ascription (`::` is one token)
                    _ => match fnctx {
                        Some(fi) => idx.fns[fi].refs.push(w.to_string()),
                        None => idx.top_refs.push(w.to_string()),
                    },
                }
                i += 1;
            }
            (TokKind::Float, w) => {
                if let Some(fi) = cur_fn(&stack) {
                    idx.fns[fi].sinks.push(Sink {
                        class: SinkClass::Float,
                        line: t.line,
                        what: w.to_string(),
                    });
                }
                i += 1;
            }
            _ => i += 1,
        }
    }

    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn index(src: &str) -> FileIndex {
        index_file("soc", "crates/soc/src/x.rs", false, src, &lex(src))
    }

    #[test]
    fn fns_get_owner_visibility_and_docs() {
        let src = "pub struct System;\n\
                   impl System {\n\
                       /// Documented.\n\
                       pub fn advance(&mut self, until: u64) { self.step(); }\n\
                       pub(crate) fn step(&mut self) {}\n\
                   }\n\
                   fn free() {}\n";
        let idx = index(src);
        assert_eq!(idx.types.len(), 1);
        assert_eq!(idx.types[0].name, "System");
        let names: Vec<(&str, Option<&str>)> =
            idx.fns.iter().map(|f| (f.name.as_str(), f.owner.as_deref())).collect();
        assert_eq!(names, [("advance", Some("System")), ("step", Some("System")), ("free", None)]);
        assert!(idx.fns[0].is_pub && idx.fns[0].has_doc);
        assert!(!idx.fns[1].is_pub, "pub(crate) is not pub");
        assert_eq!(idx.fns[0].calls, ["step"]);
    }

    #[test]
    fn impl_trait_for_type_attributes_to_the_type() {
        let src = "impl fmt::Display for Diagnostic {\n    fn fmt(&self) {}\n}\n";
        let idx = index(src);
        assert_eq!(idx.fns[0].owner.as_deref(), Some("Diagnostic"));
        // The last path segment before `for` names the implemented trait.
        assert_eq!(idx.fns[0].impl_trait.as_deref(), Some("Display"));
    }

    #[test]
    fn impl_trait_is_recorded_only_for_trait_impls() {
        let src = "impl Arbiter {\n    fn inherent(&self) {}\n}\n\
                   impl<T> TargetArbiter for Generic<T> {\n    fn stamp(&mut self) {}\n}\n\
                   trait TargetArbiter {\n    fn stamp(&mut self) {}\n}\n";
        let idx = index(src);
        let by_line: Vec<(Option<&str>, Option<&str>)> =
            idx.fns.iter().map(|f| (f.owner.as_deref(), f.impl_trait.as_deref())).collect();
        assert_eq!(
            by_line,
            [
                (Some("Arbiter"), None),
                (Some("Generic"), Some("TargetArbiter")),
                // A trait's own default methods are a declaration, not an impl.
                (Some("TargetArbiter"), None),
            ]
        );
    }

    #[test]
    fn sinks_are_recorded_in_bodies_and_signatures() {
        let src = "fn report(&self) -> f64 {\n\
                       let t = Instant::now();\n\
                       let m: HashMap<u8, u8> = HashMap::new();\n\
                       let _ = thread_rng();\n\
                       m.len() as f64 * 0.5\n\
                   }\n";
        let idx = index(src);
        let f = &idx.fns[0];
        let classes: Vec<SinkClass> = f.sinks.iter().map(|s| s.class).collect();
        assert!(classes.contains(&SinkClass::Clock));
        assert!(classes.contains(&SinkClass::Entropy));
        assert!(classes.contains(&SinkClass::HashIter));
        // `-> f64` in the signature, plus the cast and the literal.
        assert!(f.sinks.iter().filter(|s| s.class == SinkClass::Float).count() >= 3);
        assert_eq!(f.sinks.iter().find(|s| s.class == SinkClass::Clock).unwrap().line, 1);
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = "fn live() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn helper() { let _ = Instant::now(); }\n\
                   }\n";
        let idx = index(src);
        assert!(!idx.fns[0].in_test);
        assert!(idx.fns[1].in_test);
        assert_eq!(idx.test_ranges, [(1, 4)]);
    }

    #[test]
    fn top_level_statics_seed_top_refs_but_uses_do_not() {
        let src = "use crate::table03_render;\n\
                   pub static TABLE: [Experiment; 1] =\n\
                       [Experiment { name: \"t\", run: table03_run }];\n";
        let idx = index(src);
        assert!(idx.top_refs.contains(&"table03_run".to_string()), "{:?}", idx.top_refs);
        assert!(!idx.top_refs.contains(&"table03_render".to_string()), "{:?}", idx.top_refs);
        assert!(!idx.top_refs.contains(&"run".to_string()), "field names excluded");
        assert_eq!(idx.uses, ["crate::table03_render"]);
    }

    #[test]
    fn method_calls_macros_and_lets_classify_correctly() {
        let src = "fn f(&mut self) {\n\
                       self.mc.next_event(3);\n\
                       assert!(ready);\n\
                       let sample = 4;\n\
                       helper(sample);\n\
                   }\n";
        let idx = index(src);
        let f = &idx.fns[0];
        assert!(f.calls.contains(&"next_event".to_string()));
        assert!(f.calls.contains(&"helper".to_string()));
        assert!(!f.calls.contains(&"assert".to_string()), "macros are not calls");
        // `let sample` binds; the later bare `sample` is a ref.
        assert!(f.refs.contains(&"sample".to_string()));
        assert!(f.refs.contains(&"ready".to_string()), "macro arguments still produce refs");
    }

    #[test]
    fn bodyless_trait_fns_and_fn_pointer_types_do_not_confuse_the_parser() {
        let src = "trait Workload {\n\
                       fn next_op(&mut self, now: u64) -> Option<Op>;\n\
                   }\n\
                   pub struct Experiment {\n\
                       pub run: fn(&Params) -> u64,\n\
                   }\n\
                   fn after() { work(); }\n";
        let idx = index(src);
        assert_eq!(idx.fns[0].name, "next_op");
        assert_eq!(idx.fns[0].owner.as_deref(), Some("Workload"));
        assert!(idx.fns[0].calls.is_empty());
        assert_eq!(idx.fns[1].name, "after");
        assert_eq!(idx.fns[1].calls, ["work"]);
    }
}
