//! Layer 2 of the simlint engine: the workspace call-graph approximation.
//!
//! Nodes are the non-test functions of every crate except `xtask` itself
//! (the linter names the banned tokens). Edges are name-based: a call or
//! bare reference to `step` links to *every* workspace function named
//! `step`, class-hierarchy-analysis style. No type resolution means the
//! graph over-approximates — a reachability-scoped rule can report a
//! conservative path but never misses a real one through a resolved call.
//!
//! Dynamic dispatch through fn-pointer tables (the bench registry's
//! `static EXPERIMENTS: [Experiment; N] = [...]`) is covered by seeding
//! roots with every top-level initializer reference (`FileIndex::top_refs`).

use crate::index::FileIndex;
use std::collections::BTreeMap;

/// A node: `(file index, fn index within that file)`.
pub type NodeId = (usize, usize);

/// The workspace call graph over a set of file indexes.
pub struct Graph<'a> {
    files: &'a [FileIndex],
    /// fn name → nodes bearing that name, in deterministic file order.
    /// Each owned fn is indexed twice: bare (`step`) for method-call and
    /// bare-reference edges, and qualified (`Tile::step`) for
    /// owner-resolved path calls.
    by_name: BTreeMap<String, Vec<NodeId>>,
}

impl<'a> Graph<'a> {
    /// Builds the graph. `files` order defines node order, so results are
    /// deterministic for a deterministic file walk.
    pub fn build(files: &'a [FileIndex]) -> Self {
        let mut by_name: BTreeMap<String, Vec<NodeId>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            if file.crate_name == "xtask" {
                continue;
            }
            for (ni, f) in file.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                by_name.entry(f.name.clone()).or_default().push((fi, ni));
                if let Some(owner) = &f.owner {
                    by_name.entry(format!("{owner}::{}", f.name)).or_default().push((fi, ni));
                }
            }
        }
        Graph { files, by_name }
    }

    /// Finds the unique node for `owner::name`, if indexed.
    pub fn find(&self, owner: &str, name: &str) -> Option<NodeId> {
        self.by_name.get(&format!("{owner}::{name}")).and_then(|v| v.first().copied())
    }

    /// All nodes named `name`.
    pub fn named(&self, name: &str) -> &[NodeId] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// BFS over call ∪ ref edges from `roots` (plus `seeds`, attributed to
    /// the first root for path rendering). Returns `node → parent`; roots
    /// map to themselves.
    pub fn reachable(&self, roots: &[NodeId], seeds: &[NodeId]) -> BTreeMap<NodeId, NodeId> {
        let mut parent: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut queue: Vec<NodeId> = Vec::new();
        for &r in roots {
            if parent.insert(r, r).is_none() {
                queue.push(r);
            }
        }
        for &s in seeds {
            if let Some(&r) = roots.first() {
                if parent.insert(s, r).is_none() {
                    queue.push(s);
                }
            }
        }
        let mut head = 0usize;
        while head < queue.len() {
            let node = queue[head];
            head += 1;
            let f = &self.files[node.0].fns[node.1];
            for name in f.calls.iter().chain(f.refs.iter()) {
                for &next in self.named(name) {
                    if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(next) {
                        e.insert(node);
                        queue.push(next);
                    }
                }
            }
        }
        parent
    }

    /// Renders the call chain root → … → `node` as `a → b → c` using the
    /// parent map from [`Graph::reachable`].
    pub fn path(&self, parent: &BTreeMap<NodeId, NodeId>, node: NodeId) -> String {
        let mut chain = vec![node];
        let mut cur = node;
        while let Some(&p) = parent.get(&cur) {
            if p == cur {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
            .iter()
            .map(|&(fi, ni)| self.files[fi].fns[ni].display())
            .collect::<Vec<_>>()
            .join(" → ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::index_file;
    use crate::lexer::lex;

    fn idx(crate_name: &str, rel_path: &str, src: &str) -> FileIndex {
        index_file(crate_name, rel_path, false, src, &lex(src))
    }

    #[test]
    fn reachability_crosses_files_by_name() {
        let a = idx(
            "soc",
            "crates/soc/src/system.rs",
            "impl System { pub fn advance(&mut self) { helper(1); } }\n",
        );
        let b = idx(
            "bench",
            "crates/bench/src/util.rs",
            "pub fn helper(x: u64) { deeper(x); }\nfn deeper(_x: u64) {}\nfn unrelated() {}\n",
        );
        let files = [a, b];
        let g = Graph::build(&files);
        let root = g.find("System", "advance").expect("root");
        let reach = g.reachable(&[root], &[]);
        let names: Vec<&str> =
            reach.keys().map(|&(fi, ni)| files[fi].fns[ni].name.as_str()).collect();
        assert!(names.contains(&"helper") && names.contains(&"deeper"));
        assert!(!names.contains(&"unrelated"));
        let deeper = g.named("deeper")[0];
        assert_eq!(g.path(&reach, deeper), "System::advance → helper → deeper");
    }

    #[test]
    fn test_fns_and_xtask_are_outside_the_graph() {
        let a = idx(
            "soc",
            "crates/soc/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    fn hidden() {}\n}\npub fn live() {}\n",
        );
        let b = idx("xtask", "crates/xtask/src/lib.rs", "pub fn lint_workspace() {}\n");
        let files = [a, b];
        let g = Graph::build(&files);
        assert!(g.named("hidden").is_empty());
        assert!(g.named("lint_workspace").is_empty());
        assert_eq!(g.named("live").len(), 1);
    }

    #[test]
    fn qualified_calls_resolve_by_owner_only() {
        let caller = idx(
            "soc",
            "crates/soc/src/system.rs",
            "impl System { pub fn advance(&mut self) { RunCtx::new(); } }\n",
        );
        let a = idx("bench", "crates/bench/src/ctx.rs", "impl RunCtx { pub fn new() {} }\n");
        let b = idx(
            "cache",
            "crates/cache/src/sets.rs",
            "impl SetModel { pub fn new() { leak(); } }\nfn leak() {}\n",
        );
        let files = [caller, a, b];
        let g = Graph::build(&files);
        let root = g.find("System", "advance").expect("root");
        let reach = g.reachable(&[root], &[]);
        let names: Vec<String> =
            reach.keys().map(|&(fi, ni)| files[fi].fns[ni].display()).collect();
        assert!(names.contains(&"RunCtx::new".to_string()), "{names:?}");
        assert!(
            !names.contains(&"SetModel::new".to_string()),
            "qualified call must not fan out: {names:?}"
        );
        assert!(!names.contains(&"leak".to_string()), "{names:?}");
    }

    #[test]
    fn seeds_model_fn_pointer_dispatch() {
        let reg = idx(
            "bench",
            "crates/bench/src/registry.rs",
            "pub static TABLE: [Experiment; 1] = [Experiment { run: table_run }];\n\
             fn table_run() { sinkhole(); }\nfn sinkhole() {}\n",
        );
        let root_file = idx(
            "bench",
            "crates/bench/src/harness.rs",
            "impl Experiment { pub fn run(&self) {} }\n",
        );
        let files = [reg, root_file];
        let g = Graph::build(&files);
        let root = g.find("Experiment", "run").expect("root");
        let seeds: Vec<NodeId> = files
            .iter()
            .flat_map(|f| f.top_refs.iter())
            .flat_map(|n| g.named(n))
            .copied()
            .collect();
        let reach = g.reachable(&[root], &seeds);
        let names: Vec<&str> =
            reach.keys().map(|&(fi, ni)| files[fi].fns[ni].name.as_str()).collect();
        assert!(names.contains(&"table_run") && names.contains(&"sinkhole"), "{names:?}");
    }
}
