//! Workspace task runner. Currently one task:
//!
//! ```text
//! cargo run -p xtask -- lint [--root <dir>] [--format text|json]
//!                            [--filter <rule>] [--report <path>] [--no-cache]
//! ```
//!
//! runs the `simlint` determinism & accounting pass over every workspace
//! crate and exits non-zero when violations are found. See `docs/LINTS.md`
//! for the rule catalogue and the JSON report schema.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo run -p xtask -- lint [--root <workspace-dir>] \
         [--format text|json] [--filter <rule>] [--report <path>] [--no-cache]"
    );
}

fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = "text".to_string();
    let mut filter: Option<&'static str> = None;
    let mut report: Option<PathBuf> = None;
    let mut use_cache = true;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("xtask: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--format" => match it.next().map(String::as_str) {
                Some(f @ ("text" | "json")) => format = f.to_string(),
                Some(other) => {
                    eprintln!("xtask: --format must be `text` or `json`, got `{other}`");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("xtask: --format needs `text` or `json`");
                    return ExitCode::from(2);
                }
            },
            "--filter" => match it.next() {
                Some(name) => match xtask::rule_id(name) {
                    Some(rule) => filter = Some(rule),
                    None => {
                        eprintln!(
                            "xtask: unknown rule `{name}` in --filter; known rules: {}",
                            xtask::ALL_RULES.join(", ")
                        );
                        return ExitCode::from(2);
                    }
                },
                None => {
                    eprintln!("xtask: --filter needs a rule name");
                    return ExitCode::from(2);
                }
            },
            "--report" => match it.next() {
                Some(path) => report = Some(PathBuf::from(path)),
                None => {
                    eprintln!("xtask: --report needs a file path");
                    return ExitCode::from(2);
                }
            },
            "--no-cache" => use_cache = false,
            other => {
                eprintln!("xtask: unknown lint option `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    // `cargo run -p xtask` runs from the workspace root, but fall back to
    // the compile-time manifest location so the binary also works when
    // invoked from a crate subdirectory.
    let root = root.unwrap_or_else(|| {
        let cwd = PathBuf::from(".");
        if cwd.join("crates").is_dir() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        }
    });

    let result = if use_cache {
        xtask::lint_workspace_cached(&root, &root.join("target/simlint-cache.json"))
    } else {
        xtask::lint_workspace(&root)
    };
    let mut diags = match result {
        Ok(diags) => diags,
        Err(e) => {
            eprintln!("simlint: i/o error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(rule) = filter {
        diags.retain(|d| d.rule == rule);
    }

    // The report is written even on a clean run, so CI can always upload it.
    if let Some(path) = &report {
        let text = xtask::report_json(&diags).to_pretty();
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("simlint: cannot write report {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    match format.as_str() {
        "json" => print!("{}", xtask::report_json(&diags).to_pretty()),
        _ => {
            for d in &diags {
                println!("{d}");
            }
            if diags.is_empty() {
                println!("simlint: clean");
            } else {
                println!("simlint: {} violation(s)", diags.len());
            }
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
