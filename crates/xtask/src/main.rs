//! Workspace task runner. Currently one task:
//!
//! ```text
//! cargo run -p xtask -- lint [--root <dir>]
//! ```
//!
//! runs the `simlint` determinism & accounting pass over every workspace
//! crate and exits non-zero when violations are found. See `docs/LINTS.md`
//! for the rule catalogue.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!("usage: cargo run -p xtask -- lint [--root <workspace-dir>]");
}

fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("xtask: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("xtask: unknown lint option `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    // `cargo run -p xtask` runs from the workspace root, but fall back to
    // the compile-time manifest location so the binary also works when
    // invoked from a crate subdirectory.
    let root = root.unwrap_or_else(|| {
        let cwd = PathBuf::from(".");
        if cwd.join("crates").is_dir() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        }
    });

    match xtask::lint_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("simlint: clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("simlint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("simlint: i/o error: {e}");
            ExitCode::from(2)
        }
    }
}
