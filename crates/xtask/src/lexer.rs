//! Layer 1 of the simlint engine: a hand-rolled Rust lexer.
//!
//! Produces a comment/string-correct token stream: string, char and byte
//! literals are consumed (never tokenized), comments are collected into a
//! side list for suppression parsing, and every remaining token carries its
//! 0-based source line. Everything downstream — the per-line file rules,
//! the item index, and the workspace call graph — works on this stream, so
//! a banned identifier inside a string or a doc comment can never produce
//! a false diagnostic.
//!
//! The lexer is deliberately not a full Rust grammar: it recognizes exactly
//! the shapes the rules need (identifiers, raw identifiers, lifetimes,
//! integer vs. float literals, and a small set of compound operators) and
//! treats everything else as single-character punctuation.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `HashMap`, `sample_n`, ...).
    Ident,
    /// An integer literal (`42`, `0xFF`, `1_000`, `1e9` without a dot).
    Int,
    /// A floating-point literal — digits on both sides of a `.`
    /// (`1.0`, `2.5e3`). Tuple indices (`pair.0`), ranges (`0..10`) and
    /// integer method calls (`1.max(x)`) lex as `Int` + punctuation.
    Float,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// Punctuation; compound operators (`::`, `+=`, `..`, `->`, ...) are
    /// single tokens.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Raw token text (raw identifiers keep their `r#` prefix stripped).
    pub text: String,
    /// 0-based line the token starts on.
    pub line: usize,
}

/// A comment, kept out of the token stream for suppression parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 0-based line the comment starts on.
    pub line: usize,
    /// Raw comment text including the `//` / `/*` introducer.
    pub text: String,
    /// True when code precedes the comment on its start line.
    pub trailing: bool,
}

/// The full lexed form of one source file.
#[derive(Debug)]
pub struct Lexed {
    /// Token stream in source order (comments and literals excluded).
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
    /// Number of source lines.
    pub line_count: usize,
}

/// Compound operators lexed as single punctuation tokens, longest first.
/// `<<`/`>>`/`<=`/`>=` are deliberately absent: keeping `<` and `>` single
/// tokens lets the item index count angle-bracket depth through nested
/// generics like `Vec<Vec<u8>>`.
const MULTI_PUNCT: [&str; 15] =
    ["..=", "::", "..", "->", "=>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "==", "!="];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// True for identifier-continue characters.
pub fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `source` into tokens plus a comment side list.
pub fn lex(source: &str) -> Lexed {
    let src: Vec<char> = source.chars().collect();
    let n = src.len();
    let mut toks: Vec<Tok> = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();

    let mut i = 0usize;
    let mut line = 0usize;
    let mut line_has_code = false;

    while i < n {
        let c = src[i];
        match c {
            '\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && src[i + 1] == '/' => {
                let start = i;
                while i < n && src[i] != '\n' {
                    i += 1;
                }
                comments.push(Comment {
                    line,
                    text: src[start..i].iter().collect(),
                    trailing: line_has_code,
                });
            }
            '/' if i + 1 < n && src[i + 1] == '*' => {
                // Rust block comments nest.
                let (start, start_line, trailing) = (i, line, line_has_code);
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if src[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if src[i] == '/' && i + 1 < n && src[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if src[i] == '*' && i + 1 < n && src[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                comments.push(Comment {
                    line: start_line,
                    text: src[start..i.min(n)].iter().collect(),
                    trailing,
                });
            }
            '"' => {
                line_has_code = true;
                i = skip_string(&src, i + 1, &mut line);
            }
            '\'' => {
                line_has_code = true;
                i = lex_quote(&src, i, line, &mut toks);
            }
            c if c.is_ascii_digit() => {
                line_has_code = true;
                i = lex_number(&src, i, line, &mut toks);
            }
            c if is_ident_start(c) => {
                line_has_code = true;
                i = lex_ident(&src, i, &mut line, &mut toks);
            }
            _ => {
                line_has_code = true;
                let rest: String = src[i..(i + 3).min(n)].iter().collect();
                let mp = MULTI_PUNCT.iter().find(|p| rest.starts_with(**p));
                match mp {
                    Some(p) => {
                        toks.push(Tok { kind: TokKind::Punct, text: (*p).to_string(), line });
                        i += p.chars().count();
                    }
                    None => {
                        toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
                        i += 1;
                    }
                }
            }
        }
    }

    let line_count = source.lines().count().max(1);
    Lexed { toks, comments, line_count }
}

/// Consumes a `"`-delimited string body starting at `i` (past the opening
/// quote); returns the index past the closing quote.
fn skip_string(src: &[char], mut i: usize, line: &mut usize) -> usize {
    let n = src.len();
    while i < n {
        match src[i] {
            '\\' => {
                // A line-continuation escape (`\` before a newline) still
                // advances the line counter.
                if i + 1 < n && src[i + 1] == '\n' {
                    *line += 1;
                }
                i += 2;
            }
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consumes a raw string `r"..."` / `r#"..."#` starting at the first `#`
/// or `"` (past the `r`/`br` prefix); returns the index past the closer.
fn skip_raw_string(src: &[char], mut i: usize, line: &mut usize) -> usize {
    let n = src.len();
    let mut hashes = 0usize;
    while i < n && src[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= n || src[i] != '"' {
        return i; // not actually a raw string; treat prefix as consumed
    }
    i += 1;
    while i < n {
        if src[i] == '\n' {
            *line += 1;
            i += 1;
        } else if src[i] == '"' {
            let mut k = i + 1;
            let mut h = 0usize;
            while k < n && h < hashes && src[k] == '#' {
                h += 1;
                k += 1;
            }
            if h == hashes {
                return k;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Disambiguates `'` into a char literal (consumed) or a lifetime token.
fn lex_quote(src: &[char], i: usize, line: usize, toks: &mut Vec<Tok>) -> usize {
    let n = src.len();
    if i + 1 < n && src[i + 1] == '\\' {
        // Escaped char literal: '\n', '\\', '\'', '\u{..}', ... The char
        // after the backslash is part of the escape, so skip it before
        // looking for the closing quote (otherwise '\'' ends early).
        let mut j = i + 3;
        while j < n && src[j] != '\'' && src[j] != '\n' {
            j += 1;
        }
        return (j + 1).min(n);
    }
    if i + 2 < n && src[i + 2] == '\'' {
        return i + 3; // plain char literal 'x'
    }
    if i + 1 < n && is_ident_start(src[i + 1]) {
        // Lifetime.
        let start = i + 1;
        let mut j = start;
        while j < n && is_ident_char(src[j]) {
            j += 1;
        }
        toks.push(Tok { kind: TokKind::Lifetime, text: src[start..j].iter().collect(), line });
        return j;
    }
    // Oddball like '(' as a char literal.
    let mut j = i + 1;
    while j < n && src[j] != '\'' && src[j] != '\n' {
        j += 1;
    }
    (j + 1).min(n)
}

/// Lexes a numeric literal; classifies float when a `.` has digits on both
/// sides (so ranges, tuple fields and integer method calls stay `Int`).
fn lex_number(src: &[char], i: usize, line: usize, toks: &mut Vec<Tok>) -> usize {
    let n = src.len();
    let start = i;
    let mut j = i;
    let mut is_float = false;
    while j < n && (is_ident_char(src[j]) || src[j] == '.') {
        if src[j] == '.' {
            let dot_ok = !is_float
                && j + 1 < n
                && src[j + 1].is_ascii_digit()
                && src[j - 1].is_ascii_digit();
            if !dot_ok {
                break;
            }
            is_float = true;
        }
        j += 1;
    }
    toks.push(Tok {
        kind: if is_float { TokKind::Float } else { TokKind::Int },
        text: src[start..j].iter().collect(),
        line,
    });
    j
}

/// Lexes an identifier; routes raw-string / byte-literal prefixes (`r"`,
/// `br#"`, `b"`, `b'`) and raw identifiers (`r#name`) appropriately.
fn lex_ident(src: &[char], i: usize, line: &mut usize, toks: &mut Vec<Tok>) -> usize {
    let n = src.len();
    let start = i;
    let mut j = i;
    while j < n && is_ident_char(src[j]) {
        j += 1;
    }
    let word: String = src[start..j].iter().collect();
    if j < n {
        match (word.as_str(), src[j]) {
            ("r" | "br" | "b" | "rb", '"') => return skip_string(src, j + 1, line),
            ("r" | "br" | "rb", '#') => {
                // Raw string r#"..."# — or a raw identifier r#name.
                let mut k = j;
                while k < n && src[k] == '#' {
                    k += 1;
                }
                if k < n && src[k] == '"' {
                    return skip_raw_string(src, j, line);
                }
                if word == "r" && k == j + 1 && k < n && is_ident_start(src[k]) {
                    let id_start = k;
                    let mut m = k;
                    while m < n && is_ident_char(src[m]) {
                        m += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Ident,
                        text: src[id_start..m].iter().collect(),
                        line: *line,
                    });
                    return m;
                }
            }
            ("b", '\'') => {
                // Byte literal b'x'.
                let mut k = j + 1;
                if k < n && src[k] == '\\' {
                    k += 1;
                }
                while k < n && src[k] != '\'' && src[k] != '\n' {
                    k += 1;
                }
                return (k + 1).min(n);
            }
            _ => {}
        }
    }
    toks.push(Tok { kind: TokKind::Ident, text: word, line: *line });
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(l: &Lexed) -> Vec<&str> {
        l.toks.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn strings_and_comments_never_tokenize() {
        let l = lex("let x = \"HashMap\"; // HashMap\n/* HashMap */ let y = 1;\n");
        assert!(!texts(&l).contains(&"HashMap"));
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].trailing);
        assert!(!l.comments[1].trailing);
    }

    #[test]
    fn raw_strings_and_chars_skip_lifetimes_survive() {
        let l = lex("let s = r#\"thread_rng \" quote\"#; let c = '\\n'; let l: &'static str = s;");
        assert!(!texts(&l).contains(&"thread_rng"));
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "static"));
    }

    #[test]
    fn float_classification_matches_the_rules() {
        let l = lex("let a = 1.25; let r = 0..10; let t = pair.0; let m = 1.max(2);");
        let floats: Vec<&str> =
            l.toks.iter().filter(|t| t.kind == TokKind::Float).map(|t| t.text.as_str()).collect();
        assert_eq!(floats, ["1.25"]);
    }

    #[test]
    fn compound_operators_are_single_tokens() {
        let l = lex("now += 1; a::b; x..y; f() -> u8");
        assert!(l.toks.iter().any(|t| t.text == "+="));
        assert!(l.toks.iter().any(|t| t.text == "::"));
        assert!(l.toks.iter().any(|t| t.text == ".."));
        assert!(l.toks.iter().any(|t| t.text == "->"));
    }

    #[test]
    fn generics_keep_single_angle_brackets() {
        let l = lex("let v: Vec<Vec<u8>> = Vec::new();");
        assert_eq!(l.toks.iter().filter(|t| t.text == ">").count(), 2);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let l = lex("let r#type = 1;");
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "type"));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let l = lex("let a = \"x\ny\";\nlet b = 2;\n");
        let b = l.toks.iter().find(|t| t.text == "b").expect("b");
        assert_eq!(b.line, 2);
        assert_eq!(l.line_count, 3);
    }

    #[test]
    fn string_line_continuations_do_not_drift_line_numbers() {
        // The `\` before the newline is an escape, but the newline must
        // still count (this bit qos.rs's wrapped error messages).
        let l = lex("let m = \"first \\\n    second\";\nlet after = 1;\n");
        let after = l.toks.iter().find(|t| t.text == "after").expect("after");
        assert_eq!(after.line, 2);
    }

    #[test]
    fn escaped_quote_char_literal_does_not_end_early() {
        let l = lex("let q = '\\''; let tail = 9;\n");
        assert!(l.toks.iter().any(|t| t.text == "tail"));
        assert!(!l.toks.iter().any(|t| t.kind == TokKind::Lifetime));
    }
}
