//! The content-hash lint cache (`target/simlint-cache.json`).
//!
//! The file pass — lexing, indexing, and the file-scoped rules — depends
//! only on a file's bytes and its `FileSpec`, so its results are cached
//! keyed on an FNV-1a hash of the source. The cross pass (taint,
//! horizon-contract, unused-suppression) is whole-workspace and always
//! runs fresh over the cached indexes; it is cheap next to re-lexing.
//!
//! Any load failure — missing file, corrupt JSON, schema mismatch —
//! degrades to an empty cache. A stale or damaged cache can cost time,
//! never correctness.

use crate::index::{FileIndex, FnInfo, Sink, SinkClass, TypeDef};
use crate::json::{parse, Json};
use crate::rules::{FilePass, Suppression};
use crate::Diagnostic;
use std::collections::BTreeMap;
use std::path::Path;

// v2: `FnInfo` gained `impl_trait`; v1 caches miss the key and degrade to
// a cold run, exactly as a schema mismatch would — the bump just says so.
const SCHEMA: &str = "simlint-cache-v2";

/// 64-bit FNV-1a over the file bytes: deterministic, dependency-free, and
/// plenty for change detection (this is a cache key, not a security hash).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One cached file-pass result.
#[derive(Debug, Clone)]
pub struct Entry {
    /// FNV-1a of the source bytes the entry was computed from.
    pub hash: u64,
    /// The file's index (feeds the always-fresh cross pass).
    pub index: FileIndex,
    /// File-scoped diagnostics, post-suppression.
    pub diags: Vec<Diagnostic>,
    /// Suppression table with file-pass usage marks (cross-pass marks are
    /// recomputed each run).
    pub sups: Vec<Suppression>,
}

/// The cache: workspace-relative path → entry.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    /// See [`Cache`].
    pub entries: BTreeMap<String, Entry>,
}

impl Cache {
    /// Loads a cache file; empty on any error or schema mismatch.
    pub fn load(path: &Path) -> Cache {
        let Ok(text) = std::fs::read_to_string(path) else { return Cache::default() };
        from_json(&text).unwrap_or_default()
    }

    /// Looks up a still-valid entry for `rel_path`.
    pub fn get(&self, rel_path: &str, hash: u64) -> Option<&Entry> {
        self.entries.get(rel_path).filter(|e| e.hash == hash)
    }

    /// Writes the cache. Failure is ignored (e.g. read-only target dir):
    /// see the module docs on degradation.
    pub fn save(&self, path: &Path) {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let _ = std::fs::write(path, to_json(self).to_compact());
    }
}

fn str_arr(items: &[String]) -> Json {
    Json::Arr(items.iter().map(|s| Json::Str(s.clone())).collect())
}

fn to_json(cache: &Cache) -> Json {
    let files = cache
        .entries
        .iter()
        .map(|(path, e)| {
            Json::Obj(vec![
                ("path".into(), Json::Str(path.clone())),
                ("hash".into(), Json::Str(format!("{:016x}", e.hash))),
                ("index".into(), index_to_json(&e.index)),
                ("diags".into(), Json::Arr(e.diags.iter().map(diag_to_json).collect())),
                ("sups".into(), Json::Arr(e.sups.iter().map(sup_to_json).collect())),
            ])
        })
        .collect();
    Json::Obj(vec![("schema".into(), Json::Str(SCHEMA.into())), ("files".into(), Json::Arr(files))])
}

fn index_to_json(idx: &FileIndex) -> Json {
    let fns = idx
        .fns
        .iter()
        .map(|f| {
            let sinks = f
                .sinks
                .iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("class".into(), Json::Str(s.class.as_str().into())),
                        ("line".into(), Json::Num(s.line as i64)),
                        ("what".into(), Json::Str(s.what.clone())),
                    ])
                })
                .collect();
            Json::Obj(vec![
                ("name".into(), Json::Str(f.name.clone())),
                ("owner".into(), f.owner.clone().map(Json::Str).unwrap_or(Json::Null)),
                ("impl_trait".into(), f.impl_trait.clone().map(Json::Str).unwrap_or(Json::Null)),
                ("line".into(), Json::Num(f.line as i64)),
                ("is_pub".into(), Json::Bool(f.is_pub)),
                ("has_doc".into(), Json::Bool(f.has_doc)),
                ("in_test".into(), Json::Bool(f.in_test)),
                ("calls".into(), str_arr(&f.calls)),
                ("refs".into(), str_arr(&f.refs)),
                ("sinks".into(), Json::Arr(sinks)),
            ])
        })
        .collect();
    let types = idx
        .types
        .iter()
        .map(|t| {
            Json::Obj(vec![
                ("name".into(), Json::Str(t.name.clone())),
                ("line".into(), Json::Num(t.line as i64)),
            ])
        })
        .collect();
    let ranges = idx
        .test_ranges
        .iter()
        .map(|&(a, b)| Json::Arr(vec![Json::Num(a as i64), Json::Num(b as i64)]))
        .collect();
    Json::Obj(vec![
        ("crate".into(), Json::Str(idx.crate_name.clone())),
        ("rel_path".into(), Json::Str(idx.rel_path.clone())),
        ("is_test".into(), Json::Bool(idx.is_test)),
        ("fns".into(), Json::Arr(fns)),
        ("types".into(), Json::Arr(types)),
        ("uses".into(), str_arr(&idx.uses)),
        ("top_refs".into(), str_arr(&idx.top_refs)),
        ("test_ranges".into(), Json::Arr(ranges)),
    ])
}

fn diag_to_json(d: &Diagnostic) -> Json {
    Json::Obj(vec![
        ("file".into(), Json::Str(d.file.clone())),
        ("line".into(), Json::Num(d.line as i64)),
        ("rule".into(), Json::Str(d.rule.into())),
        ("message".into(), Json::Str(d.message.clone())),
    ])
}

fn sup_to_json(s: &Suppression) -> Json {
    Json::Obj(vec![
        ("rule".into(), Json::Str(s.rule.into())),
        ("comment_line".into(), Json::Num(s.comment_line as i64)),
        ("first_line".into(), Json::Num(s.first_line as i64)),
        ("last_line".into(), Json::Num(s.last_line as i64)),
        ("used".into(), Json::Bool(s.used)),
    ])
}

fn get_str(v: &Json, key: &str) -> Option<String> {
    v.get(key)?.as_str().map(String::from)
}

fn get_usize(v: &Json, key: &str) -> Option<usize> {
    usize::try_from(v.get(key)?.as_i64()?).ok()
}

fn get_strs(v: &Json, key: &str) -> Option<Vec<String>> {
    v.get(key)?.as_arr()?.iter().map(|s| s.as_str().map(String::from)).collect()
}

fn from_json(text: &str) -> Option<Cache> {
    let root = parse(text)?;
    if root.get("schema")?.as_str()? != SCHEMA {
        return None;
    }
    let mut entries = BTreeMap::new();
    for file in root.get("files")?.as_arr()? {
        let path = get_str(file, "path")?;
        let hash = u64::from_str_radix(file.get("hash")?.as_str()?, 16).ok()?;
        let index = index_from_json(file.get("index")?)?;
        let diags =
            file.get("diags")?.as_arr()?.iter().map(diag_from_json).collect::<Option<Vec<_>>>()?;
        let sups =
            file.get("sups")?.as_arr()?.iter().map(sup_from_json).collect::<Option<Vec<_>>>()?;
        entries.insert(path, Entry { hash, index, diags, sups });
    }
    Some(Cache { entries })
}

fn index_from_json(v: &Json) -> Option<FileIndex> {
    let mut fns = Vec::new();
    for f in v.get("fns")?.as_arr()? {
        let mut sinks = Vec::new();
        for s in f.get("sinks")?.as_arr()? {
            sinks.push(Sink {
                class: SinkClass::parse(s.get("class")?.as_str()?)?,
                line: get_usize(s, "line")?,
                what: get_str(s, "what")?,
            });
        }
        fns.push(FnInfo {
            name: get_str(f, "name")?,
            owner: match f.get("owner")? {
                Json::Null => None,
                other => Some(other.as_str()?.to_string()),
            },
            impl_trait: match f.get("impl_trait")? {
                Json::Null => None,
                other => Some(other.as_str()?.to_string()),
            },
            line: get_usize(f, "line")?,
            is_pub: f.get("is_pub")?.as_bool()?,
            has_doc: f.get("has_doc")?.as_bool()?,
            in_test: f.get("in_test")?.as_bool()?,
            calls: get_strs(f, "calls")?,
            refs: get_strs(f, "refs")?,
            sinks,
        });
    }
    let mut types = Vec::new();
    for t in v.get("types")?.as_arr()? {
        types.push(TypeDef { name: get_str(t, "name")?, line: get_usize(t, "line")? });
    }
    let mut test_ranges = Vec::new();
    for r in v.get("test_ranges")?.as_arr()? {
        let pair = r.as_arr()?;
        if pair.len() != 2 {
            return None;
        }
        test_ranges.push((
            usize::try_from(pair[0].as_i64()?).ok()?,
            usize::try_from(pair[1].as_i64()?).ok()?,
        ));
    }
    Some(FileIndex {
        crate_name: get_str(v, "crate")?,
        rel_path: get_str(v, "rel_path")?,
        is_test: v.get("is_test")?.as_bool()?,
        fns,
        types,
        uses: get_strs(v, "uses")?,
        top_refs: get_strs(v, "top_refs")?,
        test_ranges,
    })
}

fn diag_from_json(v: &Json) -> Option<Diagnostic> {
    Some(Diagnostic {
        file: get_str(v, "file")?,
        line: get_usize(v, "line")?,
        rule: crate::rule_id(v.get("rule")?.as_str()?)?,
        message: get_str(v, "message")?,
    })
}

fn sup_from_json(v: &Json) -> Option<Suppression> {
    Some(Suppression {
        rule: crate::rule_id(v.get("rule")?.as_str()?)?,
        comment_line: get_usize(v, "comment_line")?,
        first_line: get_usize(v, "first_line")?,
        last_line: get_usize(v, "last_line")?,
        used: v.get("used")?.as_bool()?,
    })
}

/// Converts a cache entry back into the `(FileIndex, FilePass)` pair the
/// pipeline consumes.
pub fn entry_to_pass(e: &Entry) -> (FileIndex, FilePass) {
    (e.index.clone(), FilePass { diags: e.diags.clone(), sups: e.sups.clone() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn cache_round_trips_through_json() {
        let src = "impl Pacer { pub fn step(&mut self) { self.now += 1.5; } }\n";
        let lx = crate::lexer::lex(src);
        let index = crate::index::index_file("core", "crates/core/src/pacer.rs", false, src, &lx);
        let spec = crate::FileSpec {
            crate_name: "core",
            rel_path: "crates/core/src/pacer.rs",
            is_test: false,
        };
        let pass = crate::rules::file_pass(&spec, &lx, &index);
        let mut cache = Cache::default();
        cache.entries.insert(
            spec.rel_path.to_string(),
            Entry {
                hash: fnv1a(src.as_bytes()),
                index,
                diags: pass.diags.clone(),
                sups: pass.sups.clone(),
            },
        );
        let text = to_json(&cache).to_compact();
        let back = from_json(&text).expect("parse");
        let e = back.get(spec.rel_path, fnv1a(src.as_bytes())).expect("hit");
        assert_eq!(e.diags.len(), pass.diags.len());
        assert_eq!(e.diags[0].rule, pass.diags[0].rule);
        assert_eq!(e.index.fns.len(), 1);
        assert_eq!(e.index.fns[0].name, "step");
        assert!(back.get(spec.rel_path, 0xdead_beef).is_none(), "hash mismatch must miss");
    }

    #[test]
    fn corrupt_or_mismatched_cache_is_empty() {
        assert!(from_json("not json").is_none());
        assert!(from_json("{\"schema\": \"other\", \"files\": []}").is_none());
        let missing = Path::new("/nonexistent/simlint-cache.json");
        assert!(Cache::load(missing).entries.is_empty());
    }
}
