//! The simlint rule engine: the per-file token pass, the workspace
//! reachability pass, and suppression bookkeeping.
//!
//! Scoping model (see `docs/LINTS.md`):
//!
//! * **File-scoped** rules decide from one file's tokens and index alone
//!   (`hash-map`, `nondet`, `float-math`, `unwrap`, `missing-docs`,
//!   `thread`, `fault-rng`, `horizon`).
//! * **Reachability-scoped** rules need the workspace call graph
//!   (`taint-*`, `horizon-contract`).
//! * **Hygiene** rules police the lint machinery itself (`suppression`,
//!   `unused-suppression`).

use crate::graph::{Graph, NodeId};
use crate::index::{FileIndex, SinkClass};
use crate::lexer::{Lexed, Tok, TokKind};
use crate::{
    Diagnostic, FileSpec, ALL_RULES, CROSS_RULES, RULE_FAULT_RNG, RULE_FLOAT_MATH, RULE_HASH_MAP,
    RULE_HORIZON, RULE_HORIZON_CONTRACT, RULE_MISSING_DOCS, RULE_NONDET, RULE_SUPPRESSION,
    RULE_TAINT_CLOCK, RULE_TAINT_ENTROPY, RULE_TAINT_FLOAT, RULE_TAINT_HASH_ITER, RULE_THREAD,
    RULE_UNUSED_SUPPRESSION, RULE_UNWRAP,
};

/// Crates whose simulation state must iterate deterministically.
pub const SIM_CRATES: [&str; 6] = ["simkit", "core", "cache", "cpu", "dram", "soc"];
/// Crates exempt from the nondeterminism rule: the timing harness genuinely
/// needs `Instant`, and this linter names the banned tokens.
const NONDET_EXEMPT_CRATES: [&str; 2] = ["bench", "xtask"];
/// `pabst-core` files forming the integer regulation datapath.
const FLOAT_FREE_FILES: [&str; 3] = ["pacer.rs", "arbiter.rs", "qos.rs"];
/// `pabst-simkit` files under the same no-float rule: trace records must
/// round-trip bit-exactly and identically on every platform.
const FLOAT_FREE_SIMKIT_FILES: [&str; 1] = ["trace.rs"];
/// Crates where `.unwrap()`/`.expect()` are banned outside tests.
const PANIC_FREE_CRATES: [&str; 2] = ["core", "simkit"];
/// The one file allowed to touch `std::thread`: the sweep executor whose
/// submission-order merge makes parallelism deterministic.
const THREAD_EXEMPT_FILES: [&str; 1] = ["crates/bench/src/harness.rs"];
/// Crates whose non-test code may not draw from an RNG directly.
const RNG_CONFINED_CRATES: [&str; 5] = ["core", "cache", "cpu", "dram", "soc"];

/// A parsed, valid `simlint: allow(...)` suppression.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Canonical rule id (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// 0-based line of the comment itself (where hygiene diags anchor).
    pub comment_line: usize,
    /// 0-based inclusive line range the suppression covers.
    pub first_line: usize,
    /// See [`Suppression::first_line`].
    pub last_line: usize,
    /// True once the suppression has silenced at least one diagnostic.
    pub used: bool,
}

/// The per-file result of the token pass: diagnostics (already
/// suppression-filtered) plus the suppression table with usage marks.
#[derive(Debug, Clone, Default)]
pub struct FilePass {
    /// Diagnostics from file-scoped rules (cross-pass diags are appended
    /// by [`cross_pass`]).
    pub diags: Vec<Diagnostic>,
    /// Valid suppressions, with usage from the file pass.
    pub sups: Vec<Suppression>,
}

impl FilePass {
    /// Suppression-aware, per-`(line, rule)`-deduplicated diagnostic push.
    /// Returns nothing; a suppressed hit marks the suppression used.
    fn push(&mut self, file: &str, line0: usize, rule: &'static str, message: String) {
        if let Some(s) = self
            .sups
            .iter_mut()
            .find(|s| s.rule == rule && line0 >= s.first_line && line0 <= s.last_line)
        {
            s.used = true;
            return;
        }
        if self.diags.iter().any(|d| d.rule == rule && d.line == line0 + 1) {
            return;
        }
        self.diags.push(Diagnostic { file: file.to_string(), line: line0 + 1, rule, message });
    }
}

fn text(toks: &[Tok], i: usize) -> &str {
    toks.get(i).map(|t| t.text.as_str()).unwrap_or("")
}

/// 0-based line where the item starting at token `k` ends: the brace
/// matching its first `{`, or its terminating `;`, or its own line.
fn item_end_line(toks: &[Tok], k: usize) -> usize {
    let mut depth = 0usize;
    let mut entered = false;
    let mut m = k;
    while m < toks.len() {
        match text(toks, m) {
            "{" => {
                depth += 1;
                entered = true;
            }
            "}" => {
                depth = depth.saturating_sub(1);
                if entered && depth == 0 {
                    return toks[m].line;
                }
            }
            ";" if !entered && depth == 0 => return toks[m].line,
            _ => {}
        }
        m += 1;
    }
    toks.get(k).map(|t| t.line).unwrap_or(0)
}

/// Parses `simlint: allow(rule): justification` comments into suppressions.
/// Malformed suppressions are reported as `suppression` diagnostics.
fn suppressions(spec: &FileSpec<'_>, lx: &Lexed) -> (Vec<Suppression>, Vec<Diagnostic>) {
    let mut sups = Vec::new();
    let mut diags = Vec::new();
    for c in &lx.comments {
        // Doc comments describe the convention; only plain comments enact it.
        if ["///", "//!", "/**", "/*!"].iter().any(|p| c.text.starts_with(p)) {
            continue;
        }
        let Some(tag) = c.text.find("simlint:") else { continue };
        let rest = c.text[tag + "simlint:".len()..].trim_start();
        let diag = |msg: String| Diagnostic {
            file: spec.rel_path.to_string(),
            line: c.line + 1,
            rule: RULE_SUPPRESSION,
            message: msg,
        };
        let Some(inner) = rest.strip_prefix("allow(") else {
            diags.push(diag("malformed simlint comment: expected `allow(<rule>)`".into()));
            continue;
        };
        let Some(close) = inner.find(')') else {
            diags.push(diag("malformed simlint comment: unclosed `allow(`".into()));
            continue;
        };
        let rule_name = inner[..close].trim();
        let Some(rule) = crate::rule_id(rule_name).filter(|r| ALL_RULES.contains(r)) else {
            diags.push(diag(format!(
                "unknown rule `{rule_name}` in allow(...); known rules: {}",
                ALL_RULES.join(", ")
            )));
            continue;
        };
        let justification = inner[close + 1..].trim_start().strip_prefix(':').map(str::trim);
        match justification {
            Some(j) if !j.is_empty() => {}
            _ => {
                diags.push(diag(format!(
                    "allow({rule}) needs a justification: `// simlint: allow({rule}): <why>`"
                )));
                continue;
            }
        }
        let (first_line, last_line) = if c.trailing {
            (c.line, c.line)
        } else {
            // Stand-alone comment: cover the item that follows. The first
            // token on a later line starts that item (comment-only and
            // blank lines have no tokens).
            match lx.toks.iter().position(|t| t.line > c.line) {
                Some(k) => (lx.toks[k].line, item_end_line(&lx.toks, k)),
                None => {
                    diags.push(diag(format!("allow({rule}) does not precede any code")));
                    continue;
                }
            }
        };
        sups.push(Suppression { rule, comment_line: c.line, first_line, last_line, used: false });
    }
    (sups, diags)
}

/// True when the file hosts part of the audited event-horizon machinery —
/// it defines a non-test `advance`, `horizon`, `sample_n`, or `next_*`
/// function. Such files drive the clock, declare wake-ups, or provide the
/// batch-accrual primitives, so per-cycle state in them is by design. This
/// structural check replaces the old hardcoded `HORIZON_AUDITED_FILES`
/// allowlist: adding a component's `next_event` is what exempts its file.
fn horizon_exempt(idx: &FileIndex) -> bool {
    idx.fns.iter().any(|f| {
        !f.in_test
            && (f.name == "advance"
                || f.name == "horizon"
                || f.name == "sample_n"
                || f.name.starts_with("next_"))
    })
}

/// Runs every file-scoped rule over one file.
pub fn file_pass(spec: &FileSpec<'_>, lx: &Lexed, idx: &FileIndex) -> FilePass {
    let (sups, sup_diags) = suppressions(spec, lx);
    let mut pass = FilePass { diags: sup_diags, sups };

    let in_sim_crate = SIM_CRATES.contains(&spec.crate_name);
    let nondet_applies = !NONDET_EXEMPT_CRATES.contains(&spec.crate_name);
    let file_name = std::path::Path::new(spec.rel_path)
        .file_name()
        .and_then(|f| f.to_str())
        .unwrap_or(spec.rel_path);
    let float_free = (spec.crate_name == "core" && FLOAT_FREE_FILES.contains(&file_name)
        || spec.crate_name == "simkit" && FLOAT_FREE_SIMKIT_FILES.contains(&file_name))
        && spec.rel_path.contains("src");
    let float_scope = if spec.crate_name == "simkit" {
        "the trace serializer; records must round-trip bit-exactly"
    } else {
        "the regulation datapath; credits/strides/deadlines are \
         integer state machines (paper §II-C)"
    };
    let panic_free = PANIC_FREE_CRATES.contains(&spec.crate_name);
    let wants_docs = spec.crate_name == "core";
    let thread_applies = !THREAD_EXEMPT_FILES.contains(&spec.rel_path);
    let rng_confined = RNG_CONFINED_CRATES.contains(&spec.crate_name);
    let horizon_applies = in_sim_crate && !horizon_exempt(idx);

    let toks = &lx.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        let ln = t.line;
        let in_test = spec.is_test || idx.line_in_test(ln);
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, w @ ("HashMap" | "HashSet")) if in_sim_crate && !in_test => {
                pass.push(
                    spec.rel_path,
                    ln,
                    RULE_HASH_MAP,
                    format!(
                        "{w} in a simulation crate: iteration order is \
                         hasher-randomized; use BTreeMap/BTreeSet or an \
                         index-keyed Vec"
                    ),
                );
            }
            (TokKind::Ident, w @ ("thread_rng" | "from_entropy" | "Instant" | "SystemTime"))
                if nondet_applies =>
            {
                pass.push(
                    spec.rel_path,
                    ln,
                    RULE_NONDET,
                    format!(
                        "{w} is a nondeterminism source; simulations must \
                         be seeded and clocked by the model, not the host"
                    ),
                );
            }
            (TokKind::Ident, "std") if text(toks, i + 1) == "::" => {
                // Path-based bans: `std::time` (nondet), `std::thread`.
                if nondet_applies && text(toks, i + 2) == "time" {
                    pass.push(
                        spec.rel_path,
                        ln,
                        RULE_NONDET,
                        "std::time reads host wall-clock state; use simkit cycles".into(),
                    );
                }
                if thread_applies && text(toks, i + 2) == "thread" {
                    pass.push(spec.rel_path, ln, RULE_THREAD, thread_message());
                }
            }
            (TokKind::Ident, "thread")
                if thread_applies
                    && text(toks, i + 1) == "::"
                    && (i == 0 || text(toks, i - 1) != "::") =>
            {
                // `thread::spawn(...)` — but not the tail of `std::thread`,
                // which the arm above already reported.
                pass.push(spec.rel_path, ln, RULE_THREAD, thread_message());
            }
            (TokKind::Ident, w @ ("f32" | "f64")) if float_free && !in_test => {
                pass.push(spec.rel_path, ln, RULE_FLOAT_MATH, format!("{w} in {float_scope}"));
            }
            (TokKind::Float, _) if float_free && !in_test => {
                pass.push(
                    spec.rel_path,
                    ln,
                    RULE_FLOAT_MATH,
                    format!("float literal in {float_scope}; use integer arithmetic"),
                );
            }
            (TokKind::Ident, w @ ("unwrap" | "expect"))
                if panic_free
                    && !in_test
                    && i > 0
                    && text(toks, i - 1) == "."
                    && text(toks, i + 1) == "(" =>
            {
                pass.push(
                    spec.rel_path,
                    ln,
                    RULE_UNWRAP,
                    format!(
                        ".{w}() in mechanism code; return a Result or \
                         use a total fallback (unwrap_or, match)"
                    ),
                );
            }
            (TokKind::Ident, w @ ("SimRng" | "gen_bool" | "gen_range"))
                if rng_confined && !in_test =>
            {
                pass.push(
                    spec.rel_path,
                    ln,
                    RULE_FAULT_RNG,
                    format!(
                        "{w} in a mechanism crate; route randomized \
                         decisions through simkit::fault (FaultPlan / \
                         FaultSpec::fires) so they replay bit-identically"
                    ),
                );
            }
            (TokKind::Ident, w @ ("now" | "throttled" | "rob_full_cycles"))
                if horizon_applies && !in_test && text(toks, i + 1) == "+=" =>
            {
                // `now += 1` stepping loops and the per-cycle stall
                // counters; `now += n` batch accrual is fine.
                let pattern = match w {
                    "now" if text(toks, i + 2) == "1" => Some("now += 1"),
                    "throttled" => Some("throttled +="),
                    "rob_full_cycles" => Some("rob_full_cycles +="),
                    _ => None,
                };
                if let Some(p) = pattern {
                    pass.push(
                        spec.rel_path,
                        ln,
                        RULE_HORIZON,
                        format!(
                            "per-cycle accounting (`{p}`) in a file with no \
                             next_event/batch-accrual surface; batch over \
                             skipped windows and report a next_event \
                             (docs/PERFORMANCE.md)"
                        ),
                    );
                }
            }
            (TokKind::Ident, w @ ("sample" | "sample_n"))
                if horizon_applies
                    && !in_test
                    && i > 0
                    && text(toks, i - 1) == "."
                    && text(toks, i + 1) == "(" =>
            {
                pass.push(
                    spec.rel_path,
                    ln,
                    RULE_HORIZON,
                    format!(
                        ".{w}() in a file with no next_event/batch-accrual \
                         surface; per-cycle sampling under-counts across \
                         skipped windows — use the batched form and wire a \
                         next_event (docs/PERFORMANCE.md)"
                    ),
                );
            }
            _ => {}
        }
    }

    // missing-docs: every `pub fn` in pabst-core carries a doc comment.
    if wants_docs {
        for f in &idx.fns {
            if f.is_pub && !f.in_test && !f.has_doc {
                pass.push(
                    spec.rel_path,
                    f.line,
                    RULE_MISSING_DOCS,
                    format!("pub fn `{}` has no doc comment", f.name),
                );
            }
        }
    }

    pass.diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    pass
}

fn thread_message() -> String {
    "std::thread outside bench::harness; route parallelism \
     through the sweep executor (harness::run_indexed), whose \
     submission-order merge keeps output deterministic"
        .into()
}

/// A taint root: a named entry point and the sink classes banned in code
/// reachable from it.
struct TaintRoot {
    owner: &'static str,
    name: &'static str,
    banned: &'static [SinkClass],
    /// Whether top-level initializer references seed the walk — models
    /// fn-pointer table dispatch (`static EXPERIMENTS: [...]`).
    seed_top_refs: bool,
}

/// `System::advance` is the simulation clock: everything it reaches must be
/// bit-replayable, including float-free. `Experiment::run` is the sweep
/// entry: host timing and float rendering are legitimate there, but entropy
/// and hash-order iteration would still make "the same experiment"
/// unrepeatable.
const TAINT_ROOTS: [TaintRoot; 2] = [
    TaintRoot {
        owner: "System",
        name: "advance",
        banned: &[SinkClass::Clock, SinkClass::Entropy, SinkClass::HashIter, SinkClass::Float],
        seed_top_refs: false,
    },
    TaintRoot {
        owner: "Experiment",
        name: "run",
        banned: &[SinkClass::Entropy, SinkClass::HashIter],
        seed_top_refs: true,
    },
];

fn taint_rule(class: SinkClass) -> &'static str {
    match class {
        SinkClass::Clock => RULE_TAINT_CLOCK,
        SinkClass::Entropy => RULE_TAINT_ENTROPY,
        SinkClass::HashIter => RULE_TAINT_HASH_ITER,
        SinkClass::Float => RULE_TAINT_FLOAT,
    }
}

fn class_phrase(class: SinkClass) -> &'static str {
    match class {
        SinkClass::Clock => "a wall-clock read",
        SinkClass::Entropy => "an entropy source",
        SinkClass::HashIter => "hasher-randomized iteration",
        SinkClass::Float => "a floating-point operation",
    }
}

/// Runs the reachability-scoped rules over the whole file set, appending
/// diagnostics to (and marking suppressions in) each file's pass.
pub fn cross_pass(indexes: &[FileIndex], passes: &mut [FilePass]) {
    debug_assert_eq!(indexes.len(), passes.len());
    let g = Graph::build(indexes);

    // --- determinism taint -------------------------------------------------
    for root in &TAINT_ROOTS {
        let Some(r) = g.find(root.owner, root.name) else { continue };
        let seeds: Vec<NodeId> = if root.seed_top_refs {
            indexes
                .iter()
                .flat_map(|f| f.top_refs.iter())
                .flat_map(|n| g.named(n))
                .copied()
                .collect()
        } else {
            Vec::new()
        };
        let reach = g.reachable(&[r], &seeds);
        for &node in reach.keys() {
            let (fi, ni) = node;
            let f = &indexes[fi].fns[ni];
            for sink in &f.sinks {
                if !root.banned.contains(&sink.class) {
                    continue;
                }
                let msg = format!(
                    "`{}` is {} reachable from {}::{} via {}",
                    sink.what,
                    class_phrase(sink.class),
                    root.owner,
                    root.name,
                    g.path(&reach, node),
                );
                passes[fi].push(&indexes[fi].rel_path, sink.line, taint_rule(sink.class), msg);
            }
        }
    }

    // --- horizon-contract completeness ------------------------------------
    // Every sim-crate type with a `step`/`step_*` method must define
    // `next_event` (drivers — types defining `advance`/`horizon` — are the
    // min-combine side of the contract and exempt), and that `next_event`
    // must actually be reached from `System::advance`. Types that implement
    // the `TargetArbiter` seam owe the same surface even though they have no
    // `step` of their own: the memory controller steps *for* them, so an
    // arbiter whose wake-ups are invisible to the min-combine lets the skip
    // loop jump a deadline promotion or a regulation window edge.
    #[derive(Default)]
    struct Surface {
        step: Option<(NodeId, String)>,
        next_event: Option<NodeId>,
        driver: bool,
        /// First fn seen inside an `impl TargetArbiter for Type` block.
        arbiter_impl: Option<NodeId>,
    }
    let mut surfaces: std::collections::BTreeMap<(String, String), Surface> =
        std::collections::BTreeMap::new();
    for (fi, file) in indexes.iter().enumerate() {
        if !SIM_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        for (ni, f) in file.fns.iter().enumerate() {
            let Some(owner) = &f.owner else { continue };
            if f.in_test {
                continue;
            }
            let key = (file.crate_name.clone(), owner.clone());
            let s = surfaces.entry(key).or_default();
            if f.impl_trait.as_deref() == Some("TargetArbiter") && s.arbiter_impl.is_none() {
                s.arbiter_impl = Some((fi, ni));
            }
            if f.name == "step" || f.name.starts_with("step_") {
                if s.step.is_none() {
                    s.step = Some(((fi, ni), f.name.clone()));
                }
            } else if f.name == "next_event" {
                s.next_event = Some((fi, ni));
            } else if f.name == "advance" || f.name == "horizon" {
                s.driver = true;
            }
        }
    }
    // Reachability roots are `System::advance` plus every `DomainSched`
    // probe: per-domain parking caches a component's `next_event` inside
    // the domain scheduler, so a surface consulted only from a
    // park/wake path is wired just as legitimately as one the global
    // min-combine reads directly.
    let advance_reach = g.find("System", "advance").map(|r| {
        let mut roots = vec![r];
        for (fi, file) in indexes.iter().enumerate() {
            if file.crate_name == "xtask" {
                continue;
            }
            for (ni, f) in file.fns.iter().enumerate() {
                if !f.in_test && f.owner.as_deref() == Some("DomainSched") {
                    roots.push((fi, ni));
                }
            }
        }
        g.reachable(&roots, &[])
    });
    let report_unreached = |ty: &str, nfi: usize, nni: usize, passes: &mut [FilePass]| {
        let Some(reach) = &advance_reach else { return };
        if reach.contains_key(&(nfi, nni)) {
            return;
        }
        let line = indexes[nfi].fns[nni].line;
        let msg = format!(
            "`{ty}::next_event` is never reached from \
             System::advance or a DomainSched probe; wire it into the \
             horizon min-combine (or a domain park site) so skips \
             respect this component's wake-ups"
        );
        passes[nfi].push(&indexes[nfi].rel_path, line, RULE_HORIZON_CONTRACT, msg);
    };
    for ((_crate, ty), s) in &surfaces {
        // The arbiter seam first: a `TargetArbiter` impl owes `next_event`
        // whether or not it steps itself (the controller steps for it).
        if let Some((afi, ani)) = s.arbiter_impl {
            match s.next_event {
                None => {
                    let line = indexes[afi].fns[ani].line;
                    let msg = format!(
                        "type `{ty}` implements TargetArbiter but defines no \
                         `next_event`; the memory controller's horizon \
                         min-combine cannot see its wake-ups and \
                         System::advance will skip over deadline or window \
                         edges — implement next_event (docs/MECHANISMS.md)"
                    );
                    passes[afi].push(&indexes[afi].rel_path, line, RULE_HORIZON_CONTRACT, msg);
                }
                Some((nfi, nni)) => report_unreached(ty, nfi, nni, passes),
            }
            // Covered; don't double-report through the step-method path.
            continue;
        }
        let Some(((fi, ni), step_name)) = &s.step else { continue };
        if s.driver {
            continue;
        }
        match s.next_event {
            None => {
                let line = indexes[*fi].fns[*ni].line;
                let msg = format!(
                    "type `{ty}` defines `{step_name}` but no `next_event`; \
                     System::advance's quiescence skipping will silently \
                     under-step it — implement next_event and wire it into \
                     the horizon min-combine (docs/PERFORMANCE.md)"
                );
                passes[*fi].push(&indexes[*fi].rel_path, line, RULE_HORIZON_CONTRACT, msg);
            }
            Some((nfi, nni)) => report_unreached(ty, nfi, nni, passes),
        }
    }
}

/// Flags every valid suppression that silenced nothing. `include_cross`
/// is false for single-file lints, where reachability-scoped rules never
/// ran and their suppressions cannot be judged.
pub fn unused_pass(rel_path: &str, pass: &mut FilePass, include_cross: bool) {
    let mut extra = Vec::new();
    for s in &pass.sups {
        if s.used {
            continue;
        }
        if !include_cross && CROSS_RULES.contains(&s.rule) {
            continue;
        }
        extra.push(Diagnostic {
            file: rel_path.to_string(),
            line: s.comment_line + 1,
            rule: RULE_UNUSED_SUPPRESSION,
            message: format!(
                "allow({}) suppresses nothing; remove it (a stale allow \
                 hides future violations of the rule it names)",
                s.rule
            ),
        });
    }
    pass.diags.extend(extra);
    pass.diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
}
