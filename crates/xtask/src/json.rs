//! A minimal JSON value, writer and parser — enough for the machine-readable
//! lint report (`--format json` / `--report`) and the content-hash lint
//! cache. Hand-rolled because the workspace builds offline: no `serde`.
//!
//! Numbers are restricted to `i64`: every quantity simlint serializes
//! (lines, counts, hashes split into two 32-bit halves) fits, and integer
//! round-tripping is exact — which is the whole point of a cache keyed on
//! byte equality.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order (serialization must be
/// byte-stable for the snapshot test).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (see module docs for why floats are excluded).
    Num(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is a number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line serialization.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with 2-space indentation and a trailing newline
    /// (the `--format json` / snapshot format).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Returns `None` on any syntax error — callers
/// (the cache loader, the round-trip test) treat that as "no data".
pub fn parse(text: &str) -> Option<Json> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let v = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos == chars.len() {
        Some(v)
    } else {
        None
    }
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while *pos < chars.len() && chars[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Option<Json> {
    skip_ws(chars, pos);
    match chars.get(*pos)? {
        '{' => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&'}') {
                *pos += 1;
                return Some(Json::Obj(pairs));
            }
            loop {
                skip_ws(chars, pos);
                let key = parse_string(chars, pos)?;
                skip_ws(chars, pos);
                if chars.get(*pos) != Some(&':') {
                    return None;
                }
                *pos += 1;
                let val = parse_value(chars, pos)?;
                pairs.push((key, val));
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Some(Json::Obj(pairs));
                    }
                    _ => return None,
                }
            }
        }
        '[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&']') {
                *pos += 1;
                return Some(Json::Arr(items));
            }
            loop {
                items.push(parse_value(chars, pos)?);
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Some(Json::Arr(items));
                    }
                    _ => return None,
                }
            }
        }
        '"' => Some(Json::Str(parse_string(chars, pos)?)),
        't' => parse_lit(chars, pos, "true", Json::Bool(true)),
        'f' => parse_lit(chars, pos, "false", Json::Bool(false)),
        'n' => parse_lit(chars, pos, "null", Json::Null),
        c if *c == '-' || c.is_ascii_digit() => {
            let start = *pos;
            if chars[*pos] == '-' {
                *pos += 1;
            }
            while *pos < chars.len() && chars[*pos].is_ascii_digit() {
                *pos += 1;
            }
            let s: String = chars[start..*pos].iter().collect();
            s.parse::<i64>().ok().map(Json::Num)
        }
        _ => None,
    }
}

fn parse_lit(chars: &[char], pos: &mut usize, lit: &str, v: Json) -> Option<Json> {
    let end = *pos + lit.len();
    if end <= chars.len() && chars[*pos..end].iter().collect::<String>() == lit {
        *pos = end;
        Some(v)
    } else {
        None
    }
}

fn parse_string(chars: &[char], pos: &mut usize) -> Option<String> {
    if chars.get(*pos) != Some(&'"') {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    while *pos < chars.len() {
        let c = chars[*pos];
        *pos += 1;
        match c {
            '"' => return Some(out),
            '\\' => {
                let e = chars.get(*pos)?;
                *pos += 1;
                match e {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{0008}'),
                    'f' => out.push('\u{000c}'),
                    'u' => {
                        let end = *pos + 4;
                        if end > chars.len() {
                            return None;
                        }
                        let hex: String = chars[*pos..end].iter().collect();
                        *pos = end;
                        let code = u32::from_str_radix(&hex, 16).ok()?;
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                }
            }
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::Obj(vec![
            ("schema".into(), Json::Str("simlint-report-v1".into())),
            ("count".into(), Json::Num(2)),
            ("ok".into(), Json::Bool(true)),
            (
                "items".into(),
                Json::Arr(vec![Json::Num(-7), Json::Null, Json::Str("a\"b\n".into())]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        assert_eq!(parse(&v.to_compact()), Some(v.clone()));
        assert_eq!(parse(&v.to_pretty()), Some(v));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert_eq!(parse("{\"a\": 1} x"), None);
        assert_eq!(parse("{\"a\" 1}"), None);
        assert_eq!(parse("[1,]"), None);
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = parse("{\"file\": \"a.rs\", \"line\": 3}").unwrap();
        assert_eq!(v.get("file").and_then(Json::as_str), Some("a.rs"));
        assert_eq!(v.get("line").and_then(Json::as_i64), Some(3));
        assert_eq!(v.get("missing"), None);
    }
}
