//! Property-style tests for the PABST mechanism invariants.
//!
//! Each property is exercised over a deterministic seeded sweep of
//! randomized cases (no external property-testing framework, no
//! shrinking): a failure message carries the sweep seed, which replays
//! the exact case.

use pabst_core::arbiter::{VirtualClocks, VirtualDeadline};
use pabst_core::governor::{MonitorConfig, RateGenerator, SystemMonitor};
use pabst_core::pacer::Pacer;
use pabst_core::qos::{QosId, ShareTable};
use pabst_simkit::rng::SimRng;

/// M stays within its configured bounds under any SAT sequence.
#[test]
fn monitor_m_always_bounded() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed);
        let epochs = 1 + rng.gen_range(0..500);
        let cfg = MonitorConfig::default();
        let mut mon = SystemMonitor::new(cfg);
        for _ in 0..epochs {
            let m = mon.on_epoch(Some(rng.gen_bool(0.5)));
            assert!(m >= cfg.m_min && m <= cfg.m_max, "seed {seed}: M={m} escaped bounds");
            assert!(
                mon.delta_m() >= cfg.dm_min && mon.delta_m() <= cfg.dm_max,
                "seed {seed}: delta_m escaped bounds"
            );
        }
    }
}

/// Replicated monitors never diverge, regardless of input sequence.
#[test]
fn monitor_replicas_lockstep() {
    for seed in 0..32u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xA5A5);
        let epochs = 1 + rng.gen_range(0..300);
        let cfg = MonitorConfig::default();
        let mut a = SystemMonitor::new(cfg);
        let mut b = SystemMonitor::new(cfg);
        for _ in 0..epochs {
            let sat = Some(rng.gen_bool(0.5));
            assert_eq!(a.on_epoch(sat), b.on_epoch(sat), "seed {seed}: replicas diverged");
        }
    }
}

/// The pacer never admits more than `elapsed/period + burst` requests
/// over any window when continuously backlogged.
#[test]
fn pacer_rate_bound() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x9ace);
        let period = 1 + rng.gen_range(0..199);
        let burst = 1 + rng.gen_range(0..31);
        let cycles = 100 + rng.gen_range(0..19_900);
        let mut p = Pacer::with_burst(period, burst);
        let mut admitted = 0u64;
        for now in 0..cycles {
            if p.try_issue(now) {
                admitted += 1;
            }
        }
        let bound = cycles / period + burst + 1;
        assert!(
            admitted <= bound,
            "seed {seed}: period={period} burst={burst} admitted={admitted} bound={bound}"
        );
    }
}

/// Pacer credit never exceeds the burst window, even after arbitrarily
/// long idle gaps.
#[test]
fn pacer_credit_bounded() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xc4ed);
        let period = 1 + rng.gen_range(0..99);
        let burst = 1 + rng.gen_range(0..31);
        let idle = rng.gen_range(0..1_000_000);
        let mut p = Pacer::with_burst(period, burst);
        let _ = p.try_issue(0);
        assert!(
            p.credit(idle) <= burst * period,
            "seed {seed}: credit after idle={idle} exceeds burst window"
        );
    }
}

/// Refund/charge accounting cannot underflow or make the pacer
/// permanently stuck: after refunds, issuing is at least as permissive.
#[test]
fn pacer_refund_never_hurts() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x3ef0);
        let period = 1 + rng.gen_range(0..99);
        let ops = 1 + rng.gen_range(0..99);
        let mut with_refunds = Pacer::new(period);
        let mut without = Pacer::new(period);
        let mut now = 0u64;
        for _ in 0..ops {
            match rng.gen_range(0..3) {
                0 => {
                    now += period / 2 + 1;
                    let a = with_refunds.try_issue(now);
                    let b = without.try_issue(now);
                    // Refunds only loosen the gate.
                    if b {
                        assert!(a, "seed {seed}: refund tightened the pacer at cycle {now}");
                    }
                }
                1 => with_refunds.on_shared_hit(period, now),
                _ => now += 1,
            }
        }
    }
}

/// Pacer credit never exceeds the burst window across randomized
/// `try_issue` / `on_shared_hit` / `on_writeback` / `set_period`
/// sequences, where every settlement refunds exactly what was charged
/// at issue time.
///
/// The invariant is checked after every clamping operation (`try_issue`,
/// `on_shared_hit`, `set_period`); `on_writeback` deliberately does not
/// clamp (it only moves `c_next` forward), so raw credit may transiently
/// exceed the window until the next lazy clamp — exactly the behavior
/// `Pacer::snapshot` papers over for observers.
#[test]
fn pacer_credit_never_exceeds_window_with_settlements() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x5e77);
        let mut period = 1 + rng.gen_range(0..99);
        let burst = 1 + rng.gen_range(0..7);
        let ops = 1 + rng.gen_range(0..199);
        let mut p = Pacer::with_burst(period, burst);
        let mut outstanding: Vec<u64> = Vec::new();
        let mut now = 0u64;
        let check = |p: &Pacer, now: u64, op: &str| {
            if p.period() > 0 {
                assert!(
                    p.credit_at(now) <= p.burst_window(),
                    "seed {seed}: after {op} at cycle {now}, credit {} exceeds window {}",
                    p.credit_at(now),
                    p.burst_window()
                );
            }
        };
        for _ in 0..ops {
            now += rng.gen_range(0..200);
            match rng.gen_range(0..4) {
                0 => {
                    if p.try_issue(now) {
                        outstanding.push(p.period());
                    }
                    check(&p, now, "try_issue");
                }
                1 => {
                    if !outstanding.is_empty() {
                        let i = rng.gen_range(0..outstanding.len() as u64) as usize;
                        let charged = outstanding.swap_remove(i);
                        p.on_shared_hit(charged, now);
                        check(&p, now, "on_shared_hit");
                    }
                }
                2 => {
                    if !outstanding.is_empty() {
                        let i = rng.gen_range(0..outstanding.len() as u64) as usize;
                        let charged = outstanding[i];
                        p.on_writeback(charged);
                    }
                }
                _ => {
                    period = 1 + rng.gen_range(0..99);
                    p.set_period(period, now);
                    check(&p, now, "set_period");
                }
            }
        }
    }
}

/// Virtual-deadline stamps per class never decrease.
#[test]
fn arbiter_stamps_nondecreasing() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xa4b1);
        let classes = 1 + rng.gen_range(0..7) as usize;
        let weights: Vec<u32> = (0..classes).map(|_| 1 + rng.gen_range(0..15) as u32).collect();
        let shares = ShareTable::from_weights(&weights).expect("weights are nonzero");
        let n = shares.classes();
        let mut vc = VirtualClocks::new(&shares, 128);
        let mut last: Vec<Option<VirtualDeadline>> = vec![None; n];
        let picks = 1 + rng.gen_range(0..199);
        for _ in 0..picks {
            let id = QosId::new(rng.gen_range(0..n as u64) as u8);
            let d = vc.stamp(id);
            if let Some(prev) = last[id.index()] {
                assert!(d >= prev, "seed {seed}: stamp regressed for {id}");
            }
            last[id.index()] = Some(d);
            vc.on_picked(id, d);
        }
    }
}

/// Among continuously backlogged classes the EDF service counts track
/// the weight ratio within 10%, for every weight pair in 1..9.
#[test]
fn arbiter_service_proportional() {
    for w0 in 1u32..9 {
        for w1 in 1u32..9 {
            let shares = ShareTable::from_weights(&[w0, w1]).expect("weights are nonzero");
            let mut vc = VirtualClocks::new(&shares, u64::MAX);
            let ids = [QosId::new(0), QosId::new(1)];
            let mut pending = [vc.stamp(ids[0]), vc.stamp(ids[1])];
            let mut served = [0u64; 2];
            for _ in 0..20_000 {
                let idx = VirtualClocks::pick_earliest(pending.iter().copied())
                    .expect("two pending deadlines");
                vc.on_picked(ids[idx], pending[idx]);
                served[idx] += 1;
                pending[idx] = vc.stamp(ids[idx]);
            }
            let observed = served[0] as f64 / served[1] as f64;
            let target = f64::from(w0) / f64::from(w1);
            assert!(
                (observed / target - 1.0).abs() < 0.1,
                "weights {w0}:{w1}: observed={observed} target={target}"
            );
        }
    }
}

/// Rate generator: periods scale monotonically in M, and the per-source
/// period brackets threads x class period (division-last fixed point).
#[test]
fn rategen_monotonic() {
    for seed in 0..128u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x47e9);
        let m1 = 1 + rng.gen_range(0..1999) as u32;
        let m2 = 1 + rng.gen_range(0..1999) as u32;
        let w = 1 + rng.gen_range(0..15) as u32;
        let shares = ShareTable::from_weights(&[w]).expect("weight is nonzero");
        let rg = RateGenerator::default();
        let s = shares.scaled_stride(QosId::new(0), pabst_core::governor::GOVERNOR_STRIDE_SCALE);
        let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        assert!(
            rg.class_period(lo, s) <= rg.class_period(hi, s),
            "seed {seed}: period not monotone in M"
        );
        let sp = rg.source_period(m1, s, 8);
        let cp = rg.class_period(m1, s);
        assert!(
            sp >= 8 * cp && sp <= 8 * (cp + 1),
            "seed {seed}: source period {sp} outside bracket of class period {cp}"
        );
    }
}
