//! Property-based tests for the PABST mechanism invariants.

use pabst_core::arbiter::{VirtualClocks, VirtualDeadline};
use pabst_core::governor::{MonitorConfig, RateGenerator, SystemMonitor};
use pabst_core::pacer::Pacer;
use pabst_core::qos::{QosId, ShareTable};
use proptest::prelude::*;

proptest! {
    /// M stays within its configured bounds under any SAT sequence.
    #[test]
    fn monitor_m_always_bounded(sats in proptest::collection::vec(any::<bool>(), 1..500)) {
        let cfg = MonitorConfig::default();
        let mut mon = SystemMonitor::new(cfg);
        for sat in sats {
            let m = mon.on_epoch(sat);
            prop_assert!(m >= cfg.m_min && m <= cfg.m_max);
            prop_assert!(mon.delta_m() >= cfg.dm_min && mon.delta_m() <= cfg.dm_max);
        }
    }

    /// Replicated monitors never diverge, regardless of input sequence.
    #[test]
    fn monitor_replicas_lockstep(sats in proptest::collection::vec(any::<bool>(), 1..300)) {
        let cfg = MonitorConfig::default();
        let mut a = SystemMonitor::new(cfg);
        let mut b = SystemMonitor::new(cfg);
        for sat in sats {
            prop_assert_eq!(a.on_epoch(sat), b.on_epoch(sat));
        }
    }

    /// The pacer never admits more than `elapsed/period + burst` requests
    /// over any window when continuously backlogged.
    #[test]
    fn pacer_rate_bound(period in 1u64..200, burst in 1u64..32, cycles in 100u64..20_000) {
        let mut p = Pacer::with_burst(period, burst);
        let mut admitted = 0u64;
        for now in 0..cycles {
            if p.try_issue(now) {
                admitted += 1;
            }
        }
        let bound = cycles / period + burst + 1;
        prop_assert!(admitted <= bound, "admitted={admitted} bound={bound}");
    }

    /// Pacer credit never exceeds the burst window.
    #[test]
    fn pacer_credit_bounded(period in 1u64..100, burst in 1u64..32, idle in 0u64..1_000_000) {
        let mut p = Pacer::with_burst(period, burst);
        let _ = p.try_issue(0);
        prop_assert!(p.credit(idle) <= burst * period);
    }

    /// Refund/charge accounting cannot underflow or make the pacer
    /// permanently stuck: after refunds, issuing is at least as permissive.
    #[test]
    fn pacer_refund_never_hurts(period in 1u64..100, ops in proptest::collection::vec(0u8..3, 1..100)) {
        let mut with_refunds = Pacer::new(period);
        let mut without = Pacer::new(period);
        let mut now = 0u64;
        for op in ops {
            match op {
                0 => {
                    now += period / 2 + 1;
                    let a = with_refunds.try_issue(now);
                    let b = without.try_issue(now);
                    // Refunds only loosen the gate.
                    if b { prop_assert!(a); }
                }
                1 => with_refunds.on_shared_hit(),
                _ => now += 1,
            }
        }
    }

    /// Virtual-deadline stamps per class are strictly increasing while the
    /// slack cap is not binding, and never decrease overall.
    #[test]
    fn arbiter_stamps_nondecreasing(weights in proptest::collection::vec(1u32..16, 1..8),
                                    picks in proptest::collection::vec(0usize..8, 1..200)) {
        let shares = ShareTable::from_weights(&weights).unwrap();
        let n = shares.classes();
        let mut vc = VirtualClocks::new(&shares, 128);
        let mut last: Vec<Option<VirtualDeadline>> = vec![None; n];
        for p in picks {
            let id = QosId::new((p % n) as u8);
            let d = vc.stamp(id);
            if let Some(prev) = last[id.index()] {
                prop_assert!(d >= prev, "stamp regressed for {id}");
            }
            last[id.index()] = Some(d);
            vc.on_picked(id, d);
        }
    }

    /// Among continuously backlogged classes the EDF service counts track
    /// the weight ratio within 10%.
    #[test]
    fn arbiter_service_proportional(w0 in 1u32..9, w1 in 1u32..9) {
        let shares = ShareTable::from_weights(&[w0, w1]).unwrap();
        let mut vc = VirtualClocks::new(&shares, u64::MAX);
        let ids = [QosId::new(0), QosId::new(1)];
        let mut pending = [vc.stamp(ids[0]), vc.stamp(ids[1])];
        let mut served = [0u64; 2];
        for _ in 0..20_000 {
            let idx = VirtualClocks::pick_earliest(pending.iter().copied()).unwrap();
            vc.on_picked(ids[idx], pending[idx]);
            served[idx] += 1;
            pending[idx] = vc.stamp(ids[idx]);
        }
        let observed = served[0] as f64 / served[1] as f64;
        let target = w0 as f64 / w1 as f64;
        prop_assert!((observed / target - 1.0).abs() < 0.1,
            "observed={observed} target={target}");
    }

    /// Rate generator: periods scale monotonically in M, and the
    /// per-source period brackets threads x class period (division-last
    /// fixed point).
    #[test]
    fn rategen_monotonic(m1 in 1u32..2000, m2 in 1u32..2000, w in 1u32..16) {
        let shares = ShareTable::from_weights(&[w]).unwrap();
        let rg = RateGenerator::default();
        let s = shares.scaled_stride(QosId::new(0), pabst_core::governor::GOVERNOR_STRIDE_SCALE);
        let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        prop_assert!(rg.class_period(lo, s) <= rg.class_period(hi, s));
        let sp = rg.source_period(m1, s, 8);
        let cp = rg.class_period(m1, s);
        prop_assert!(sp >= 8 * cp && sp <= 8 * (cp + 1));
    }
}
