//! The saturation monitor (§III-C1).
//!
//! Each memory controller averages its front-end read-queue occupancy over
//! an epoch; when the average exceeds half the queue capacity, the
//! controller's SAT bit is raised. The per-controller bits are combined by
//! a global wired-OR ([`or_sat`]) and delivered to every governor at the
//! epoch heartbeat.

use pabst_simkit::stats::EpochAverage;

/// Per-memory-controller occupancy averaging and threshold comparison.
///
/// # Examples
///
/// ```
/// use pabst_core::satmon::SatMonitor;
///
/// let mut m = SatMonitor::new(32); // 32-entry read queue
/// for _ in 0..100 { m.sample(20); } // consistently over half full
/// assert!(m.take_epoch_sat());
/// for _ in 0..100 { m.sample(3); }
/// assert!(!m.take_epoch_sat());
/// ```
#[derive(Debug, Clone)]
pub struct SatMonitor {
    capacity: usize,
    occupancy: EpochAverage,
}

impl SatMonitor {
    /// Creates a monitor for a read queue of `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        Self { capacity, occupancy: EpochAverage::new() }
    }

    /// Records the queue occupancy for one cycle.
    pub fn sample(&mut self, occupancy: usize) {
        debug_assert!(occupancy <= self.capacity, "occupancy above capacity");
        self.occupancy.sample(occupancy as u64);
    }

    /// Records the same occupancy for `cycles` consecutive cycles in one
    /// call — equivalent to `cycles` calls of [`SatMonitor::sample`].
    /// Used when the simulation fast-forwards over a quiescent window:
    /// the queue depth cannot have changed while nothing stepped, so the
    /// per-cycle samples naive stepping would have taken are all equal.
    pub fn sample_n(&mut self, occupancy: usize, cycles: u64) {
        debug_assert!(occupancy <= self.capacity, "occupancy above capacity");
        self.occupancy.sample_n(occupancy as u64, cycles);
    }

    /// Computes the SAT bit for the epoch that just ended (mean occupancy
    /// strictly greater than half capacity) and resets for the next epoch.
    ///
    /// An epoch with no samples reports unsaturated.
    pub fn take_epoch_sat(&mut self) -> bool {
        // `mean > capacity/2` tested exactly in the integer domain:
        // `2·sum > capacity·samples`. Widening to u128 wards off overflow
        // for arbitrarily long epochs.
        let (sum, samples) = self.occupancy.take_raw();
        2 * u128::from(sum) > self.capacity as u128 * u128::from(samples)
    }

    /// The monitored queue's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// The global wired-OR of per-controller SAT bits: the system is saturated
/// when *any* memory controller is (the paper's default aggregation; see
/// §III-C1 for the per-controller alternative).
pub fn or_sat(bits: impl IntoIterator<Item = bool>) -> bool {
    bits.into_iter().any(|b| b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_requires_over_half_average() {
        let mut m = SatMonitor::new(32);
        for _ in 0..10 {
            m.sample(16);
        }
        assert!(!m.take_epoch_sat(), "exactly half is not saturated");
        for _ in 0..10 {
            m.sample(17);
        }
        assert!(m.take_epoch_sat());
    }

    #[test]
    fn averaging_smooths_transients() {
        let mut m = SatMonitor::new(32);
        // One full-queue blip among an idle epoch must not raise SAT.
        m.sample(32);
        for _ in 0..99 {
            m.sample(0);
        }
        assert!(!m.take_epoch_sat());
    }

    #[test]
    fn sample_n_is_equivalent_to_repeated_samples() {
        let mut batched = SatMonitor::new(32);
        let mut looped = SatMonitor::new(32);
        batched.sample(20);
        batched.sample_n(17, 99);
        looped.sample(20);
        for _ in 0..99 {
            looped.sample(17);
        }
        assert_eq!(batched.take_epoch_sat(), looped.take_epoch_sat());
    }

    #[test]
    fn epoch_reset_is_complete() {
        let mut m = SatMonitor::new(8);
        for _ in 0..10 {
            m.sample(8);
        }
        assert!(m.take_epoch_sat());
        // New epoch, no samples: treated as unsaturated.
        assert!(!m.take_epoch_sat());
    }

    #[test]
    fn wired_or() {
        assert!(!or_sat([false, false, false]));
        assert!(or_sat([false, true, false]));
        assert!(!or_sat(std::iter::empty::<bool>()));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = SatMonitor::new(0);
    }
}
