//! QoS class identity and the proportional-share (weight / stride)
//! interface.
//!
//! Following the paper's §II, software expresses allocations as integer
//! *weights*; the hardware mechanism consumes the inverse, a *stride*
//! (§II-C). A class with stride `2s` receives half the bandwidth of a class
//! with stride `s`. Strides are derived from weights via a fixed scale,
//! [`STRIDE_UNIT`], chosen highly divisible so that small integer weights
//! yield exact integer strides.

use std::fmt;

/// Maximum number of concurrently defined QoS classes.
///
/// Matches commercial QoS architectures of the paper's era (Intel RDT
/// exposes on the order of 8–16 classes of service).
pub const MAX_CLASSES: usize = 16;

/// Numerator used when converting weights to strides:
/// `stride = STRIDE_UNIT / weight`.
///
/// 720720 = lcm(1..=16), so every weight up to 16 (and many beyond)
/// produces an exact integer stride.
pub const STRIDE_UNIT: u64 = 720_720;

/// Identifies a QoS class (the paper's per-CPU `QoSID` register value).
///
/// # Examples
///
/// ```
/// use pabst_core::qos::QosId;
/// let id = QosId::new(2);
/// assert_eq!(id.index(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QosId(u8);

impl QosId {
    /// Creates a class identifier.
    ///
    /// # Panics
    ///
    /// Panics if `id >= MAX_CLASSES`.
    pub fn new(id: u8) -> Self {
        assert!((id as usize) < MAX_CLASSES, "QosId out of range");
        Self(id)
    }

    /// The class index, suitable for array indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for QosId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qos{}", self.0)
    }
}

/// A proportional-share weight. Higher weight ⇒ more bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Weight(u32);

impl Weight {
    /// Creates a weight.
    ///
    /// # Errors
    ///
    /// Returns [`ShareError::ZeroWeight`] when `w` is zero: a zero weight
    /// would mean "no bandwidth ever", which the stride formulation cannot
    /// express (and which would starve the class even of its work-conserving
    /// share).
    pub fn new(w: u32) -> Result<Self, ShareError> {
        if w == 0 {
            Err(ShareError::ZeroWeight)
        } else {
            Ok(Self(w))
        }
    }

    /// The raw weight value.
    pub fn get(self) -> u32 {
        self.0
    }
}

/// The inverse of a weight: the relative cost for a class to use bandwidth
/// (paper Eq. 2). Produced from weights by [`ShareTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Stride(u64);

impl Stride {
    /// Derives the stride for `weight`: `STRIDE_UNIT / weight`, rounded to
    /// at least 1.
    pub fn from_weight(weight: Weight) -> Self {
        Self((STRIDE_UNIT / u64::from(weight.get())).max(1))
    }

    /// Wraps a raw stride value (already in the caller's chosen scale).
    pub fn from_raw(stride: u64) -> Self {
        Self(stride.max(1))
    }

    /// The raw stride in virtual ticks.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Largest tolerated `max_weight / min_weight` ratio.
///
/// Scaled strides grow with the weight ratio, and the governor's period
/// arithmetic multiplies a stride by the multiplier bound (`2^22`) and
/// the thread count; ratios beyond `2^24` could overflow that u64
/// datapath. No sensible QoS allocation approaches this bound — hitting
/// it is a configuration bug, reported as a typed error instead of
/// wrapping silently deep in the stride math.
pub const MAX_WEIGHT_RATIO: u64 = 1 << 24;

/// Errors from constructing shares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShareError {
    /// A weight of zero was supplied.
    ZeroWeight,
    /// More classes were supplied than [`MAX_CLASSES`].
    TooManyClasses {
        /// Number of classes requested.
        requested: usize,
    },
    /// No classes were supplied.
    Empty,
    /// The weight ratio would overflow the integer stride/period
    /// datapath (see [`MAX_WEIGHT_RATIO`]).
    RatioOverflow {
        /// Largest weight supplied.
        max: u32,
        /// Smallest weight supplied.
        min: u32,
    },
}

impl fmt::Display for ShareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShareError::ZeroWeight => write!(f, "weights must be non-zero"),
            ShareError::TooManyClasses { requested } => {
                write!(f, "requested {requested} classes, max is {MAX_CLASSES}")
            }
            ShareError::Empty => write!(f, "at least one class is required"),
            ShareError::RatioOverflow { max, min } => write!(
                f,
                "weight ratio {max}:{min} overflows the stride datapath \
                 (max ratio {MAX_WEIGHT_RATIO})"
            ),
        }
    }
}

impl std::error::Error for ShareError {}

/// The per-class weight/stride table programmed by privileged software
/// (the paper's single added allocation control, §II-B).
///
/// # Examples
///
/// ```
/// use pabst_core::qos::{QosId, ShareTable};
///
/// let t = ShareTable::from_weights(&[3, 1])?;
/// // Shares follow Eq. 1 (weight_i / sum(weights)): class 0 gets 3/4.
/// assert_eq!(t.weight(QosId::new(0)).get(), 3);
/// // Strides are inversely proportional to weights (Eq. 2).
/// assert_eq!(t.stride(QosId::new(0)).get() * 3, t.stride(QosId::new(1)).get());
/// # Ok::<(), pabst_core::qos::ShareError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShareTable {
    weights: Vec<Weight>,
    strides: Vec<Stride>,
}

impl ShareTable {
    /// Builds a table from raw integer weights, class `i` receiving
    /// `weights[i]`.
    ///
    /// # Errors
    ///
    /// Returns an error when `weights` is empty, longer than
    /// [`MAX_CLASSES`], contains a zero, or spans a ratio beyond
    /// [`MAX_WEIGHT_RATIO`] (which would overflow the stride datapath).
    pub fn from_weights(weights: &[u32]) -> Result<Self, ShareError> {
        if weights.is_empty() {
            return Err(ShareError::Empty);
        }
        if weights.len() > MAX_CLASSES {
            return Err(ShareError::TooManyClasses { requested: weights.len() });
        }
        let weights: Vec<Weight> =
            weights.iter().map(|&w| Weight::new(w)).collect::<Result<_, _>>()?;
        let max = weights.iter().map(|w| w.get()).max().unwrap_or(1);
        let min = weights.iter().map(|w| w.get()).min().unwrap_or(1);
        if u64::from(max) > MAX_WEIGHT_RATIO.saturating_mul(u64::from(min)) {
            return Err(ShareError::RatioOverflow { max, min });
        }
        let strides = weights.iter().map(|&w| Stride::from_weight(w)).collect();
        Ok(Self { weights, strides })
    }

    /// Number of classes in the table.
    pub fn classes(&self) -> usize {
        self.weights.len()
    }

    /// The weight of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the table.
    pub fn weight(&self, id: QosId) -> Weight {
        self.weights[id.index()]
    }

    /// The stride of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the table.
    pub fn stride(&self, id: QosId) -> Stride {
        self.strides[id.index()]
    }

    /// Iterates over `(QosId, Stride)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (QosId, Stride)> + '_ {
        self.strides.iter().enumerate().map(|(i, &s)| (QosId::new(i as u8), s))
    }

    /// A *scaled* stride for hardware consumption: the highest-weight class
    /// receives stride `scale` and every other class
    /// `round(scale × max_weight / weight)`.
    ///
    /// Raw [`STRIDE_UNIT`]-based strides encode shares exactly but are far
    /// too large for the paper's small-integer datapaths (12-bit governor
    /// arithmetic, an arbiter slack of ~128 virtual ticks). Scaling
    /// normalizes the smallest stride to `scale`, preserving ratios to
    /// within `1/scale` relative error (§V-A discusses why over-large
    /// strides are harmful).
    ///
    /// # Examples
    ///
    /// ```
    /// use pabst_core::qos::{QosId, ShareTable};
    /// let t = ShareTable::from_weights(&[3, 1])?;
    /// assert_eq!(t.scaled_stride(QosId::new(0), 16).get(), 16);
    /// assert_eq!(t.scaled_stride(QosId::new(1), 16).get(), 48);
    /// # Ok::<(), pabst_core::qos::ShareError>(())
    /// ```
    pub fn scaled_stride(&self, id: QosId, scale: u64) -> Stride {
        // from_weights rejects empty tables, so the max exists; fall back
        // to 1 rather than unwrap to keep core panic-free (simlint L4).
        let max_w = u64::from(self.weights.iter().map(|w| w.get()).max().unwrap_or(1));
        let w = u64::from(self.weight(id).get());
        Stride::from_raw((scale * max_w + w / 2) / w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_inverse_of_weight() {
        let w1 = Weight::new(1).unwrap();
        let w2 = Weight::new(2).unwrap();
        assert_eq!(Stride::from_weight(w1).get(), 2 * Stride::from_weight(w2).get());
    }

    #[test]
    fn zero_weight_rejected() {
        assert_eq!(Weight::new(0), Err(ShareError::ZeroWeight));
        assert_eq!(ShareTable::from_weights(&[1, 0]), Err(ShareError::ZeroWeight));
    }

    #[test]
    fn empty_and_oversize_rejected() {
        assert_eq!(ShareTable::from_weights(&[]), Err(ShareError::Empty));
        let too_many = vec![1u32; MAX_CLASSES + 1];
        assert!(matches!(
            ShareTable::from_weights(&too_many),
            Err(ShareError::TooManyClasses { .. })
        ));
    }

    #[test]
    fn overflowing_weight_ratio_rejected() {
        assert_eq!(
            ShareTable::from_weights(&[u32::MAX, 1]),
            Err(ShareError::RatioOverflow { max: u32::MAX, min: 1 })
        );
        // The boundary itself is accepted.
        let at_bound = ShareTable::from_weights(&[MAX_WEIGHT_RATIO as u32, 1]);
        assert!(at_bound.is_ok());
        let msg = ShareError::RatioOverflow { max: u32::MAX, min: 1 }.to_string();
        assert!(msg.contains("overflows"), "{msg}");
    }

    #[test]
    fn shares_match_eq1() {
        // Eq. 1 shares are weight_i / Σ weight_j; the table stores the
        // integer weights and reporting derives the fraction on demand
        // (the way `SystemReport::collect` does).
        let t = ShareTable::from_weights(&[7, 3]).unwrap();
        let total: u64 = (0..2).map(|i| u64::from(t.weight(QosId::new(i)).get())).sum();
        assert_eq!(total, 10);
        let share0 = f64::from(t.weight(QosId::new(0)).get()) / total as f64;
        let share1 = f64::from(t.weight(QosId::new(1)).get()) / total as f64;
        assert!((share0 - 0.7).abs() < 1e-12);
        assert!((share0 + share1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn huge_weight_stride_floors_at_one() {
        let w = Weight::new(u32::MAX).unwrap();
        assert_eq!(Stride::from_weight(w).get(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn qosid_out_of_range_panics() {
        let _ = QosId::new(MAX_CLASSES as u8);
    }

    #[test]
    fn display_impls() {
        assert_eq!(QosId::new(3).to_string(), "qos3");
        assert_eq!(ShareError::ZeroWeight.to_string(), "weights must be non-zero");
    }

    #[test]
    fn iter_yields_all_classes_in_order() {
        let t = ShareTable::from_weights(&[4, 2, 1]).unwrap();
        let ids: Vec<usize> = t.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        let strides: Vec<u64> = t.iter().map(|(_, s)| s.get()).collect();
        assert!(strides[0] < strides[1] && strides[1] < strides[2]);
    }
}
