//! The PABST source governor: system monitor and rate generator (§III-B).
//!
//! Every private cache hosts a governor, but all governors run the same
//! deterministic algorithm on the same two inputs — the epoch heartbeat and
//! the global saturation bit — so they stay in lockstep without
//! communicating. The [`SystemMonitor`] computes the system-wide multiplier
//! `M`; the [`RateGenerator`] scales `M` by a class stride (and active
//! thread count) into a per-source request *period* in cycles.
//!
//! ## State machine (Tables I/II)
//!
//! | symbol | meaning |
//! |--------|---------|
//! | `M`    | multiplier: how much throttling keeps the MCs from overcommitting; larger `M` ⇒ longer periods ⇒ less traffic |
//! | `δM`   | magnitude of the next change of `M` |
//! | `E`    | consecutive epochs without a rate-direction switch |
//! | phase  | current direction of the goal rate and of `δM` |
//!
//! Rules implemented (from the paper's prose; the printed transition table
//! is corrupt in our source text — see DESIGN.md §2):
//!
//! * `M` moves **opposite** to the goal rate: SAT high ⇒ `M += δM`
//!   (throttle), SAT low ⇒ `M -= δM` (drive more traffic).
//! * `δM` shrinks sharply (÷4) whenever the rate direction flips — a noisy
//!   SAT signal means the loop is hovering at the ideal operating point —
//!   and grows exponentially (×2) once the direction has held for
//!   `inertia` consecutive epochs, so consistently high *or* low SAT
//!   produces rapidly larger adjustments ("adjustments are larger when the
//!   saturation signal has been consistently high or low", §III-B).
//! * `E` counts the consecutive epochs (including the current one) with an
//!   unchanged rate direction; a flip resets it to 1.

use crate::qos::Stride;
use pabst_simkit::Cycle;
use std::fmt;

/// Direction of the goal request rate this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateDir {
    /// Rate increasing (M decreasing): memory controllers have headroom.
    Up,
    /// Rate decreasing (M increasing): memory controllers saturated.
    Down,
}

/// Direction `δM` moved this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaDir {
    /// δM grew (steady signal; accelerate).
    Up,
    /// δM shrank or held (noisy signal; settle).
    Down,
}

/// Configuration for the [`SystemMonitor`] feedback loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorConfig {
    /// Initial multiplier value.
    pub m_init: u32,
    /// Lower clamp for `M`. Must be ≥ 1 so periods never reach zero by
    /// multiplier alone.
    pub m_min: u32,
    /// Upper clamp for `M`, bounding the longest enforced period.
    pub m_max: u32,
    /// Initial / minimum step size.
    pub dm_min: u32,
    /// Maximum step size.
    pub dm_max: u32,
    /// Consecutive low-SAT epochs required before `δM` starts growing
    /// again (the paper's *inertia*, e.g. 3).
    pub inertia: u32,
    /// Fail-safe: stale epochs (no fresh SAT sample) tolerated while the
    /// monitor holds its last rate. Beyond this window the monitor enters
    /// the degraded policy and decays the rate toward a conservative
    /// floor. Must be ≥ 1 — a zero window would degrade on the very first
    /// sample and is a configuration error.
    pub staleness_k: u32,
    /// Fail-safe: the multiplier ceiling the degraded policy decays `M`
    /// toward — the conservative *rate floor*. Heavy throttling (safe when
    /// the feedback signal is lost) but not zero rate. Must lie within
    /// `[m_min, m_max]`.
    pub degraded_m: u32,
}

impl Default for MonitorConfig {
    /// Values tuned for the baseline system with
    /// [`GOVERNOR_STRIDE_SCALE`]-normalized strides, `F = 4096`, and
    /// 20 000-cycle (10 µs) epochs. The range of `M` is wider than the
    /// paper's quoted 12-bit datapath because our stride normalization
    /// moves precision from the stride into `M` (see DESIGN.md §2); the
    /// arithmetic remains adds and shifts.
    fn default() -> Self {
        Self {
            m_init: 2048,
            m_min: 1,
            m_max: 1 << 22,
            // With GOVERNOR_STRIDE_SCALE-normalized strides, saturation
            // operating points land at M in the low thousands for any
            // weight mix, so capping the step at 256 bounds overshoot to
            // ~10% while still crossing the whole operating range in a few
            // tens of epochs.
            dm_min: 1,
            dm_max: 256,
            inertia: 3,
            // With 10 µs epochs, four stale epochs is 40 µs of signal
            // loss before the fail-safe engages — long enough to ride out
            // a dropped broadcast, short enough to bound overcommit.
            staleness_k: 4,
            // 32× the default operating point: heavy throttling, but the
            // system keeps making forward progress while degraded.
            degraded_m: 1 << 16,
        }
    }
}

/// A violated [`MonitorConfig`] constraint, typed so callers can match on
/// the failure instead of probing strings (mirrors `soc::ConfigError`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorConfigError {
    /// `m_min` was zero: periods could reach zero by multiplier alone.
    ZeroMMin,
    /// `m_min` exceeded `m_max`.
    InvertedMBounds,
    /// `m_init` fell outside `[m_min, m_max]`.
    MInitOutOfRange,
    /// `dm_min` was zero or exceeded `dm_max`.
    BadDeltaBounds,
    /// `staleness_k` was zero, which would degrade on the first sample.
    ZeroStalenessWindow,
    /// `degraded_m` fell outside `[m_min, m_max]`.
    DegradedMOutOfRange,
}

impl fmt::Display for MonitorConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorConfigError::ZeroMMin => write!(f, "m_min must be >= 1"),
            MonitorConfigError::InvertedMBounds => write!(f, "m_min must not exceed m_max"),
            MonitorConfigError::MInitOutOfRange => {
                write!(f, "m_init must lie within [m_min, m_max]")
            }
            MonitorConfigError::BadDeltaBounds => write!(f, "require 0 < dm_min <= dm_max"),
            MonitorConfigError::ZeroStalenessWindow => {
                write!(f, "staleness_k must be >= 1 (a zero window degrades instantly)")
            }
            MonitorConfigError::DegradedMOutOfRange => {
                write!(f, "degraded_m must lie within [m_min, m_max]")
            }
        }
    }
}

impl std::error::Error for MonitorConfigError {}

impl MonitorConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a typed
    /// [`MonitorConfigError`].
    pub fn validate(&self) -> Result<(), MonitorConfigError> {
        if self.m_min == 0 {
            return Err(MonitorConfigError::ZeroMMin);
        }
        if self.m_min > self.m_max {
            return Err(MonitorConfigError::InvertedMBounds);
        }
        if !(self.m_min..=self.m_max).contains(&self.m_init) {
            return Err(MonitorConfigError::MInitOutOfRange);
        }
        if self.dm_min == 0 || self.dm_min > self.dm_max {
            return Err(MonitorConfigError::BadDeltaBounds);
        }
        if self.staleness_k == 0 {
            return Err(MonitorConfigError::ZeroStalenessWindow);
        }
        if !(self.m_min..=self.m_max).contains(&self.degraded_m) {
            return Err(MonitorConfigError::DegradedMOutOfRange);
        }
        Ok(())
    }
}

/// The source-side rate-governor seam: any mechanism that turns per-epoch
/// congestion observations into a rate multiplier `M` can stand in for
/// the paper's multiplicative SAT loop. Object-safe so `soc::System`
/// holds governors behind `Box<dyn Governor>`.
///
/// Implementations must be deterministic: identical observation sequences
/// must produce identical `M` sequences (the lockstep-replica property
/// PABST relies on to avoid inter-governor communication).
pub trait Governor: fmt::Debug {
    /// Advances one epoch. `Some(sat)` is a fresh congestion observation;
    /// `None` means the broadcast was lost this epoch and the governor
    /// must apply its fail-safe staleness policy (hold briefly, then
    /// decay the rate toward a conservative floor). Returns the
    /// multiplier `M` in force for the next epoch.
    fn on_epoch(&mut self, sat: Option<bool>) -> u32;

    /// The multiplier currently in force.
    fn m(&self) -> u32;

    /// Total epochs spent under the degraded (stale-feedback) policy.
    fn degraded_epochs(&self) -> u64;

    /// A typed point-in-time view of the governor's state machine for the
    /// trace layer and watchdog diagnostics. Pure.
    fn snapshot(&self) -> MonitorSnapshot;

    /// Stable mechanism label for reports and provenance hashing.
    fn label(&self) -> &'static str;
}

/// Which [`Governor`] implementation a system runs (the source-side half
/// of the mechanism selection carried by `soc::SystemConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GovernorKind {
    /// The paper's multiplicative SAT feedback loop ([`SystemMonitor`]).
    #[default]
    Sat,
    /// LMS prediction-driven rate adaptation
    /// ([`crate::lms::LmsGovernor`], Srinivasan & Gangadharan's LMS-AR).
    LmsAr,
}

impl GovernorKind {
    /// Stable lowercase label used in config names and provenance hashes.
    pub fn label(self) -> &'static str {
        match self {
            GovernorKind::Sat => "sat",
            GovernorKind::LmsAr => "lms-ar",
        }
    }

    /// Builds a fresh governor of this kind from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`MonitorConfig::validate`]; configurations
    /// are produced by code, not end users, so a bad one is a bug.
    pub fn build(self, cfg: MonitorConfig) -> Box<dyn Governor> {
        match self {
            GovernorKind::Sat => Box::new(SystemMonitor::new(cfg)),
            GovernorKind::LmsAr => Box::new(crate::lms::LmsGovernor::new(cfg)),
        }
    }
}

/// The distributed governor's shared state machine.
///
/// All governors in a system produce identical `M` sequences from identical
/// inputs (the paper relies on this to avoid inter-governor communication);
/// [`tests::lockstep_replicas_agree`] verifies it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemMonitor {
    cfg: MonitorConfig,
    m: u32,
    dm: u32,
    /// Consecutive epochs with an unchanged rate direction (the paper's E).
    e: u32,
    rate_dir: RateDir,
    delta_dir: DeltaDir,
    epochs: u64,
    /// Consecutive epochs without a fresh SAT sample (fail-safe state).
    stale_epochs: u32,
    /// Total epochs spent in the degraded policy (observability).
    degraded_epochs: u64,
}

impl SystemMonitor {
    /// Creates a monitor in its initial state.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`MonitorConfig::validate`]; configurations are
    /// produced by code, not end users, so a bad one is a bug.
    pub fn new(cfg: MonitorConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid MonitorConfig: {e}");
        }
        Self {
            cfg,
            m: cfg.m_init,
            dm: cfg.dm_min,
            e: 0,
            rate_dir: RateDir::Up,
            delta_dir: DeltaDir::Down,
            epochs: 0,
            stale_epochs: 0,
            degraded_epochs: 0,
        }
    }

    /// Advances one epoch given the saturation signal observed during the
    /// epoch that just ended, returning the new multiplier `M`.
    ///
    /// `Some(sat)` is a fresh broadcast and drives the paper's
    /// multiplicative feedback loop. `None` means the SAT broadcast was
    /// lost this epoch: for up to `staleness_k` consecutive stale epochs
    /// the monitor **holds its last rate** (`M`, `δM`, and `E` are
    /// untouched); beyond the window it enters the *degraded policy* and
    /// decays the goal rate toward a conservative floor — `M` grows
    /// multiplicatively (`M += M/4 + 1` per epoch) up to
    /// `degraded_m`, and the step state resets so the loop re-converges
    /// gently once the signal returns. Returns the multiplier in force.
    pub fn on_epoch(&mut self, sat: Option<bool>) -> u32 {
        match sat {
            Some(s) => self.on_fresh_sat(s),
            None => {
                self.epochs += 1;
                self.stale_epochs = self.stale_epochs.saturating_add(1);
                if self.stale_epochs > self.cfg.staleness_k {
                    // Degraded: no information means overcommit is the
                    // dangerous direction, so throttle toward the floor.
                    self.degraded_epochs += 1;
                    if self.m < self.cfg.degraded_m {
                        let step = (self.m / 4).saturating_add(1);
                        self.m = self.m.saturating_add(step).min(self.cfg.degraded_m);
                    }
                    self.dm = self.cfg.dm_min;
                    self.e = 0;
                    self.delta_dir = DeltaDir::Down;
                }
                self.m
            }
        }
    }

    /// The fresh-sample half of the feedback loop (Tables I/II).
    fn on_fresh_sat(&mut self, sat: bool) -> u32 {
        self.stale_epochs = 0;
        self.epochs += 1;
        let new_dir = if sat { RateDir::Down } else { RateDir::Up };

        if new_dir == self.rate_dir {
            self.e = self.e.saturating_add(1);
            if self.e >= self.cfg.inertia {
                // Steady signal past the inertia window: accelerate
                // exponentially (shift left).
                self.dm = (self.dm * 2).min(self.cfg.dm_max);
                self.delta_dir = DeltaDir::Up;
            } else {
                // Still inside the inertia window after a recent flip:
                // keep settling so the loop damps into the noise band
                // around the operating point.
                self.dm = (self.dm / 2).max(self.cfg.dm_min);
                self.delta_dir = DeltaDir::Down;
            }
        } else {
            // Direction flip: the loop is hovering near the operating
            // point — settle quickly (shift right by two).
            self.e = 1;
            self.dm = (self.dm / 4).max(self.cfg.dm_min);
            self.delta_dir = DeltaDir::Down;
        }
        self.rate_dir = new_dir;

        // M moves opposite to the goal rate.
        if sat {
            self.m = self.m.saturating_add(self.dm).min(self.cfg.m_max);
        } else {
            self.m = self.m.saturating_sub(self.dm).max(self.cfg.m_min);
        }
        self.m
    }

    /// Consecutive epochs without a fresh SAT sample.
    pub fn stale_epochs(&self) -> u32 {
        self.stale_epochs
    }

    /// True while the fail-safe degraded policy is active (the staleness
    /// window has been exceeded).
    pub fn is_degraded(&self) -> bool {
        self.stale_epochs > self.cfg.staleness_k
    }

    /// Total epochs spent under the degraded policy.
    pub fn degraded_epochs(&self) -> u64 {
        self.degraded_epochs
    }

    /// Current multiplier.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Current step magnitude δM.
    pub fn delta_m(&self) -> u32 {
        self.dm
    }

    /// Consecutive epochs without a rate-direction switch.
    pub fn steady_epochs(&self) -> u32 {
        self.e
    }

    /// Phase: current rate and δM directions (Table I's "Phase").
    pub fn phase(&self) -> (RateDir, DeltaDir) {
        (self.rate_dir, self.delta_dir)
    }

    /// Total epochs processed.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The configuration the monitor was built with.
    pub fn config(&self) -> MonitorConfig {
        self.cfg
    }

    /// A point-in-time view of the monitor's state machine for
    /// observability (trace records, figure dumps). Pure.
    pub fn snapshot(&self) -> MonitorSnapshot {
        MonitorSnapshot {
            m: self.m,
            delta_m: self.dm,
            steady_epochs: self.e,
            rate_dir: self.rate_dir,
            delta_dir: self.delta_dir,
            epochs: self.epochs,
            stale_epochs: self.stale_epochs,
            degraded: self.is_degraded(),
        }
    }
}

impl Governor for SystemMonitor {
    fn on_epoch(&mut self, sat: Option<bool>) -> u32 {
        SystemMonitor::on_epoch(self, sat)
    }

    fn m(&self) -> u32 {
        SystemMonitor::m(self)
    }

    fn degraded_epochs(&self) -> u64 {
        SystemMonitor::degraded_epochs(self)
    }

    fn snapshot(&self) -> MonitorSnapshot {
        SystemMonitor::snapshot(self)
    }

    fn label(&self) -> &'static str {
        GovernorKind::Sat.label()
    }
}

/// A point-in-time view of one [`SystemMonitor`] (observability; see
/// [`SystemMonitor::snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitorSnapshot {
    /// Current multiplier `M`.
    pub m: u32,
    /// Current step magnitude `δM`.
    pub delta_m: u32,
    /// Consecutive epochs without a rate-direction switch (`E`).
    pub steady_epochs: u32,
    /// Current goal-rate direction.
    pub rate_dir: RateDir,
    /// Direction `δM` moved in the last epoch.
    pub delta_dir: DeltaDir,
    /// Total epochs processed.
    pub epochs: u64,
    /// Consecutive epochs without a fresh SAT sample.
    pub stale_epochs: u32,
    /// True while the fail-safe degraded policy is active.
    pub degraded: bool,
}

/// Stride scale used by the governor's rate computation: pass
/// [`crate::qos::ShareTable::scaled_stride`] with this scale. The
/// highest-weight class gets stride 64, which together with the default
/// `F` of 4096 gives sub-cycle rate granularity per unit of `M`.
pub const GOVERNOR_STRIDE_SCALE: u64 = 64;

/// Translates the system-wide multiplier into class-specific request
/// periods (Eqs. 3–4).
///
/// `class_period = (M × stride) / F` (Eq. 3) and `source_period =
/// class_period × threads` (Eq. 4), distributing a class's allocation
/// evenly over its active CPUs. The division by the fixed-point scale
/// factor `F` is applied **after** the threads multiply so a unit step of
/// `M` changes the enforced per-source period by `stride × threads / F`
/// cycles — fractional rate control, exactly the role Eq. 3 gives `F`.
///
/// The paper quotes `F = 16` for its stride magnitudes; with
/// [`GOVERNOR_STRIDE_SCALE`]-normalized strides the equivalent default is
/// 4096 (see DESIGN.md §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateGenerator {
    /// The constant scale factor `F`. Larger values converge more slowly;
    /// smaller values can oscillate (§III-B2).
    pub f_scale: u64,
}

impl Default for RateGenerator {
    fn default() -> Self {
        // Chosen so typical saturation operating points land at M in the
        // low thousands: large relative to δM's bounds (stable) yet fine-
        // grained (one step of M moves a 16-thread period by 1/64 cycle).
        Self { f_scale: 65_536 }
    }
}

impl RateGenerator {
    /// Eq. 3: the class-wide goal period in cycles for multiplier `m`.
    /// May round to zero for aggregate periods below one cycle; the
    /// per-source period from [`RateGenerator::source_period`] is the
    /// enforced quantity.
    pub fn class_period(&self, m: u32, stride: Stride) -> Cycle {
        (u64::from(m) * stride.get()) / self.f_scale
    }

    /// Eq. 4: the per-source period in cycles, scaling the class period by
    /// the number of CPUs actively executing the class (division by `F`
    /// applied last for precision).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero — an idle class has no sources to pace.
    pub fn source_period(&self, m: u32, stride: Stride, threads: u32) -> Cycle {
        assert!(threads > 0, "source_period requires at least one active thread");
        (u64::from(m) * stride.get() * Cycle::from(threads)) / self.f_scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::{QosId, ShareTable};

    fn cfg() -> MonitorConfig {
        MonitorConfig::default()
    }

    #[test]
    fn m_rises_on_saturation_falls_on_headroom() {
        let mut mon = SystemMonitor::new(cfg());
        let m0 = mon.m();
        let m1 = mon.on_epoch(Some(true));
        assert!(m1 > m0, "SAT=1 must raise M (throttle)");
        let m2 = mon.on_epoch(Some(false));
        assert!(m2 < m1, "SAT=0 must lower M (drive traffic)");
    }

    #[test]
    fn m_clamped_to_bounds() {
        let mut mon = SystemMonitor::new(cfg());
        // Enough epochs to traverse [m_init, m_max] at dm_max per epoch.
        let climb = (2 * cfg().m_max / cfg().dm_max) as usize;
        for _ in 0..climb {
            mon.on_epoch(Some(true));
            assert!(mon.m() <= cfg().m_max);
        }
        assert_eq!(mon.m(), cfg().m_max);
        for _ in 0..climb {
            mon.on_epoch(Some(false));
            assert!(mon.m() >= cfg().m_min);
        }
        assert_eq!(mon.m(), cfg().m_min);
    }

    #[test]
    fn delta_shrinks_on_noise() {
        let mut mon = SystemMonitor::new(cfg());
        // Grow δM with a long low-SAT run first.
        for _ in 0..20 {
            mon.on_epoch(Some(false));
        }
        let grown = mon.delta_m();
        assert!(grown > cfg().dm_min);
        // Alternating signal must collapse δM to the minimum.
        for _ in 0..20 {
            mon.on_epoch(Some(true));
            mon.on_epoch(Some(false));
        }
        assert_eq!(mon.delta_m(), cfg().dm_min);
    }

    #[test]
    fn delta_grows_only_after_inertia() {
        let mut mon = SystemMonitor::new(cfg());
        mon.on_epoch(Some(true)); // reset low_run, δM at min
        let base = mon.delta_m();
        mon.on_epoch(Some(false));
        assert_eq!(mon.delta_m(), base, "1 low epoch < inertia, δM must hold");
        mon.on_epoch(Some(false));
        assert_eq!(mon.delta_m(), base, "2 low epochs < inertia, δM must hold");
        mon.on_epoch(Some(false));
        assert!(mon.delta_m() > base, "3rd consecutive low epoch grows δM");
    }

    #[test]
    fn delta_growth_is_exponential() {
        let mut mon = SystemMonitor::new(cfg());
        for _ in 0..cfg().inertia {
            mon.on_epoch(Some(false));
        }
        let d0 = mon.delta_m();
        mon.on_epoch(Some(false));
        assert_eq!(mon.delta_m(), (d0 * 2).min(cfg().dm_max));
    }

    #[test]
    fn delta_clamped_to_max() {
        let mut mon = SystemMonitor::new(cfg());
        for _ in 0..1000 {
            mon.on_epoch(Some(false));
        }
        assert_eq!(mon.delta_m(), cfg().dm_max);
    }

    #[test]
    fn steady_counter_resets_on_direction_flip() {
        let mut mon = SystemMonitor::new(cfg());
        mon.on_epoch(Some(false));
        mon.on_epoch(Some(false));
        let e_before = mon.steady_epochs();
        assert!(e_before >= 2);
        mon.on_epoch(Some(true));
        assert_eq!(mon.steady_epochs(), 1, "flip starts a new 1-epoch run");
        mon.on_epoch(Some(true));
        assert_eq!(mon.steady_epochs(), 2);
    }

    #[test]
    fn phase_reflects_directions() {
        let mut mon = SystemMonitor::new(cfg());
        mon.on_epoch(Some(true));
        assert_eq!(mon.phase(), (RateDir::Down, DeltaDir::Down));
        for _ in 0..cfg().inertia {
            mon.on_epoch(Some(false));
        }
        assert_eq!(mon.phase(), (RateDir::Up, DeltaDir::Up));
    }

    #[test]
    fn lockstep_replicas_agree() {
        // The distributed-correctness claim: N monitors fed the same inputs
        // produce identical M at every epoch.
        let mut replicas: Vec<SystemMonitor> = (0..32).map(|_| SystemMonitor::new(cfg())).collect();
        let pattern = [true, false, false, true, false, false, false, true];
        for (i, &sat) in pattern.iter().cycle().take(500).enumerate() {
            let ms: Vec<u32> = replicas.iter_mut().map(|r| r.on_epoch(Some(sat))).collect();
            assert!(ms.windows(2).all(|w| w[0] == w[1]), "diverged at epoch {i}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid MonitorConfig")]
    fn invalid_config_panics() {
        let bad = MonitorConfig { m_min: 10, m_max: 5, ..MonitorConfig::default() };
        let _ = SystemMonitor::new(bad);
    }

    #[test]
    fn config_validation_is_typed_and_matchable() {
        let c = MonitorConfig { m_min: 0, ..MonitorConfig::default() };
        assert_eq!(c.validate(), Err(MonitorConfigError::ZeroMMin));
        let c = MonitorConfig { dm_min: 0, ..MonitorConfig::default() };
        assert_eq!(c.validate(), Err(MonitorConfigError::BadDeltaBounds));
        let mut c = MonitorConfig::default();
        c.m_init = c.m_max + 1;
        assert_eq!(c.validate(), Err(MonitorConfigError::MInitOutOfRange));
        let c = MonitorConfig { m_min: 10, m_max: 5, ..MonitorConfig::default() };
        assert_eq!(c.validate(), Err(MonitorConfigError::InvertedMBounds));
        assert!(MonitorConfig::default().validate().is_ok());
        // Display keeps the field name so the panic text stays debuggable.
        assert!(MonitorConfigError::ZeroMMin.to_string().contains("m_min"));
        assert!(MonitorConfigError::BadDeltaBounds.to_string().contains("dm_min"));
        assert!(MonitorConfigError::MInitOutOfRange.to_string().contains("m_init"));
    }

    #[test]
    fn trait_object_path_matches_the_concrete_monitor_exactly() {
        // Dispatch through `dyn Governor` (the way `soc::System` drives
        // governors) must be bit-identical to concrete calls.
        let mut a = SystemMonitor::new(cfg());
        let mut b: Box<dyn Governor> = GovernorKind::Sat.build(cfg());
        let pattern = [Some(true), Some(false), None, Some(true), Some(true), None];
        for &sat in pattern.iter().cycle().take(300) {
            assert_eq!(a.on_epoch(sat), b.on_epoch(sat));
        }
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(Governor::m(&a), b.m());
        assert_eq!(b.label(), "sat");
        assert_eq!(a.degraded_epochs(), b.degraded_epochs());
    }

    #[test]
    fn staleness_holds_last_rate_within_the_window() {
        let mut mon = SystemMonitor::new(cfg());
        for _ in 0..10 {
            mon.on_epoch(Some(true));
        }
        let held_m = mon.m();
        let held_dm = mon.delta_m();
        for k in 1..=cfg().staleness_k {
            assert_eq!(mon.on_epoch(None), held_m, "epoch {k}: hold");
            assert_eq!(mon.delta_m(), held_dm);
            assert!(!mon.is_degraded());
            assert_eq!(mon.stale_epochs(), k);
        }
    }

    #[test]
    fn staleness_beyond_k_decays_toward_the_conservative_floor() {
        let mut mon = SystemMonitor::new(cfg());
        let m0 = mon.m();
        for _ in 0..cfg().staleness_k {
            mon.on_epoch(None);
        }
        assert_eq!(mon.m(), m0, "still holding at exactly K stale epochs");
        let mut prev = mon.m();
        for _ in 0..60 {
            let m = mon.on_epoch(None);
            assert!(m >= prev, "degraded decay is monotone toward the floor");
            assert!(m <= cfg().degraded_m);
            prev = m;
        }
        assert!(mon.is_degraded());
        assert_eq!(mon.m(), cfg().degraded_m, "decay converges to degraded_m");
        assert!(mon.degraded_epochs() > 0);
        let snap = mon.snapshot();
        assert!(snap.degraded);
        assert_eq!(snap.stale_epochs, mon.stale_epochs());
    }

    #[test]
    fn degraded_monitor_above_the_floor_holds_not_drops() {
        // A monitor already throttling harder than the floor must not
        // *increase* its rate on no information.
        let high =
            MonitorConfig { m_init: 1 << 20, degraded_m: 1 << 16, ..MonitorConfig::default() };
        let mut mon = SystemMonitor::new(high);
        for _ in 0..high.staleness_k + 10 {
            mon.on_epoch(None);
        }
        assert_eq!(mon.m(), 1 << 20, "degraded policy never lowers M");
    }

    #[test]
    fn fresh_sample_ends_staleness_and_resumes_the_loop() {
        let mut mon = SystemMonitor::new(cfg());
        for _ in 0..cfg().staleness_k + 5 {
            mon.on_epoch(None);
        }
        assert!(mon.is_degraded());
        let m_degraded = mon.m();
        mon.on_epoch(Some(false));
        assert_eq!(mon.stale_epochs(), 0);
        assert!(!mon.is_degraded());
        assert!(mon.m() < m_degraded, "headroom sample lowers M again");
        assert_eq!(mon.delta_m(), cfg().dm_min, "loop re-converges gently");
    }

    #[test]
    fn staleness_config_is_validated() {
        let c = MonitorConfig { staleness_k: 0, ..MonitorConfig::default() };
        assert_eq!(c.validate(), Err(MonitorConfigError::ZeroStalenessWindow));
        let c = MonitorConfig { degraded_m: 0, ..MonitorConfig::default() };
        assert_eq!(c.validate(), Err(MonitorConfigError::DegradedMOutOfRange));
        let mut c = MonitorConfig::default();
        c.degraded_m = c.m_max + 1;
        assert_eq!(c.validate(), Err(MonitorConfigError::DegradedMOutOfRange));
        assert!(MonitorConfigError::ZeroStalenessWindow.to_string().contains("staleness_k"));
        assert!(MonitorConfigError::DegradedMOutOfRange.to_string().contains("degraded_m"));
    }

    #[test]
    fn periods_proportional_to_strides() {
        // The proportional-share invariant (Eq. 5): for any M, per-source
        // periods are in stride ratio, hence rates are in weight ratio.
        let shares = ShareTable::from_weights(&[4, 1]).unwrap();
        let rg = RateGenerator::default();
        let s0 = shares.scaled_stride(QosId::new(0), GOVERNOR_STRIDE_SCALE);
        let s1 = shares.scaled_stride(QosId::new(1), GOVERNOR_STRIDE_SCALE);
        // Use multipliers large enough that integer truncation of the
        // period is negligible relative to the ratio.
        for m in [8192u32, 100_000, 1 << 20] {
            let p0 = rg.source_period(m, s0, 16);
            let p1 = rg.source_period(m, s1, 16);
            let ratio = p1 as f64 / p0 as f64;
            assert!((ratio - 4.0).abs() < 0.05, "m={m}: p0={p0} p1={p1}");
        }
    }

    #[test]
    fn source_period_scales_by_threads() {
        let shares = ShareTable::from_weights(&[2, 1]).unwrap();
        let rg = RateGenerator::default();
        let s = shares.scaled_stride(QosId::new(0), GOVERNOR_STRIDE_SCALE);
        // Division-last keeps the threads scaling exact.
        assert_eq!(rg.source_period(4096, s, 4), 4 * rg.source_period(4096, s, 1));
    }

    #[test]
    fn unit_m_step_is_subcycle() {
        // The role of F: one step of M moves a 16-thread source period by
        // less than one cycle, so rates are finely controllable.
        let shares = ShareTable::from_weights(&[1]).unwrap();
        let rg = RateGenerator::default();
        let s = shares.scaled_stride(QosId::new(0), GOVERNOR_STRIDE_SCALE);
        let p = rg.source_period(1000, s, 16);
        let p_next = rg.source_period(1001, s, 16);
        assert!(p_next - p <= 1, "step {} too coarse", p_next - p);
    }

    #[test]
    #[should_panic(expected = "at least one active thread")]
    fn zero_threads_panics() {
        let shares = ShareTable::from_weights(&[1]).unwrap();
        let _ = RateGenerator::default().source_period(10, shares.stride(QosId::new(0)), 0);
    }
}
