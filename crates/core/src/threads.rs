//! Tracking of active CPUs per QoS class (§V-B).
//!
//! PABST's proportional shares are set per class, but the source pacers
//! throttle individual CPUs, so the governors scale the class stride by
//! the number of CPUs actively executing the class (Eq. 4). The paper
//! assumes hardware maintains these counts in a memory-mapped register
//! updated whenever a CPU's `QoSID` register changes, with updates
//! broadcast to the class's CPUs (similar to ARM TLB-invalidate
//! broadcasts). [`ActiveThreads`] models that registry.

use crate::qos::{QosId, MAX_CLASSES};

/// Per-class active-CPU counts, updated as software reprograms each CPU's
/// `QoSID` register.
///
/// # Examples
///
/// ```
/// use pabst_core::threads::ActiveThreads;
/// use pabst_core::qos::QosId;
///
/// let mut t = ActiveThreads::new(4);
/// t.set_qosid(0, QosId::new(1));
/// t.set_qosid(1, QosId::new(1));
/// assert_eq!(t.count(QosId::new(1)), 2);
/// assert_eq!(t.count(QosId::new(0)), 2); // cpus 2 and 3 still default
/// ```
#[derive(Debug, Clone)]
pub struct ActiveThreads {
    qosid: Vec<QosId>,
    counts: [u32; MAX_CLASSES],
    /// Bumped on every change — stands in for the update broadcast, letting
    /// governors detect that their cached `threads_c` went stale.
    generation: u64,
}

impl ActiveThreads {
    /// Creates a registry for `cpus` CPUs, all initially in class 0.
    ///
    /// # Panics
    ///
    /// Panics if `cpus` is zero.
    pub fn new(cpus: usize) -> Self {
        assert!(cpus > 0, "at least one CPU required");
        let mut counts = [0u32; MAX_CLASSES];
        counts[0] = cpus as u32;
        Self { qosid: vec![QosId::new(0); cpus], counts, generation: 0 }
    }

    /// Number of CPUs tracked.
    pub fn cpus(&self) -> usize {
        self.qosid.len()
    }

    /// Reprograms `cpu`'s `QoSID` register to `class`, updating both
    /// classes' counts. A no-op write does not bump the generation.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn set_qosid(&mut self, cpu: usize, class: QosId) {
        let old = self.qosid[cpu];
        if old == class {
            return;
        }
        self.counts[old.index()] -= 1;
        self.counts[class.index()] += 1;
        self.qosid[cpu] = class;
        self.generation += 1;
    }

    /// The class `cpu` currently runs.
    pub fn qosid(&self, cpu: usize) -> QosId {
        self.qosid[cpu]
    }

    /// Active CPUs in `class` (Eq. 4's `threads_c`).
    pub fn count(&self, class: QosId) -> u32 {
        self.counts[class.index()]
    }

    /// Monotone change counter (the broadcast stand-in).
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_follow_reassignment() {
        let mut t = ActiveThreads::new(8);
        assert_eq!(t.count(QosId::new(0)), 8);
        for cpu in 0..3 {
            t.set_qosid(cpu, QosId::new(2));
        }
        assert_eq!(t.count(QosId::new(0)), 5);
        assert_eq!(t.count(QosId::new(2)), 3);
        t.set_qosid(0, QosId::new(0));
        assert_eq!(t.count(QosId::new(2)), 2);
    }

    #[test]
    fn totals_are_conserved() {
        let mut t = ActiveThreads::new(16);
        for cpu in 0..16 {
            t.set_qosid(cpu, QosId::new((cpu % 4) as u8));
        }
        let total: u32 = (0..MAX_CLASSES).map(|c| t.count(QosId::new(c as u8))).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn generation_bumps_only_on_change() {
        let mut t = ActiveThreads::new(2);
        let g0 = t.generation();
        t.set_qosid(0, QosId::new(0)); // no-op
        assert_eq!(t.generation(), g0);
        t.set_qosid(0, QosId::new(1));
        assert_eq!(t.generation(), g0 + 1);
    }

    #[test]
    fn qosid_readback() {
        let mut t = ActiveThreads::new(2);
        t.set_qosid(1, QosId::new(3));
        assert_eq!(t.qosid(1), QosId::new(3));
        assert_eq!(t.qosid(0), QosId::new(0));
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn zero_cpus_panics() {
        let _ = ActiveThreads::new(0);
    }
}
