//! The pacer: per-source enforcement of the governor's request period
//! (§III-B3).
//!
//! The pacer tracks two timestamps, `C_next` (the next cycle the cache may
//! issue a request) and `C_now` (the current cycle). A request may issue
//! when `C_next <= C_now`; each issue advances `C_next` by the source
//! period. Idleness builds *credit* — `C_next` falls behind `C_now` — so
//! bursts proceed unthrottled, but credit is bounded: `C_next` is never
//! allowed more than `burst × period` cycles behind `C_now` (the paper's
//! `N = 16` requests of burst).
//!
//! Two accounting corrections keep the L2-side pacing aligned with actual
//! DRAM bandwidth ("Accounting for Cache Filtering"):
//!
//! * a request that turned out to *hit* in the shared L3 never reached
//!   memory, so its charge is refunded ([`Pacer::on_shared_hit`]);
//! * a demand fill that forced a dirty L3 eviction consumed extra write
//!   bandwidth, so one additional charge is applied
//!   ([`Pacer::on_writeback`]).
//!
//! Both settlements take the amount *charged at issue time* (the caller
//! records it, see `soc`'s tile bookkeeping): the governor may have
//! reprogrammed the period between issue and completion, and settling
//! with the current period would refund or charge the wrong amount.

use pabst_simkit::Cycle;

/// Per-source request-rate enforcement with bounded burst credit.
///
/// # Examples
///
/// ```
/// use pabst_core::pacer::Pacer;
///
/// let mut p = Pacer::new(100);
/// assert!(p.try_issue(0));       // allowed: C_next starts at C_now
/// assert!(!p.try_issue(50));     // throttled: C_next is now 100
/// assert!(p.try_issue(100));     // period elapsed
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pacer {
    /// Next cycle a request may issue.
    c_next: Cycle,
    /// Current per-request period in cycles (0 = unthrottled).
    period: Cycle,
    /// Maximum requests' worth of credit accumulable during idleness.
    burst: u64,
    issued: u64,
    throttled: u64,
}

/// Default burst window: up to 16 requests proceed unthrottled after
/// underutilization, per the paper's evaluation (`N = stride × 16`).
pub const DEFAULT_BURST: u64 = 16;

impl Pacer {
    /// Creates a pacer with the given initial period and the paper's
    /// default burst window of 16 requests.
    pub fn new(period: Cycle) -> Self {
        Self::with_burst(period, DEFAULT_BURST)
    }

    /// Creates a pacer with an explicit burst window (in requests).
    ///
    /// # Panics
    ///
    /// Panics if `burst` is zero; a zero window would forbid the very first
    /// request.
    pub fn with_burst(period: Cycle, burst: u64) -> Self {
        assert!(burst > 0, "burst window must allow at least one request");
        Self { c_next: 0, period, burst, issued: 0, throttled: 0 }
    }

    /// The currently enforced period.
    pub fn period(&self) -> Cycle {
        self.period
    }

    /// Updates the enforced period at an epoch boundary.
    ///
    /// Also re-clamps outstanding credit to the *new* burst bound so a
    /// period increase cannot legitimize a stale pile of credit.
    pub fn set_period(&mut self, period: Cycle, now: Cycle) {
        self.period = period;
        self.clamp_credit(now);
    }

    /// True when a request may issue at cycle `now` (without issuing).
    pub fn may_issue(&self, now: Cycle) -> bool {
        self.period == 0 || self.c_next <= now
    }

    /// Attempts to issue a request at cycle `now`. On success the charge
    /// `C_next += period` is applied and `true` is returned; otherwise the
    /// request is NACKed (`false`) and a throttle event is counted.
    pub fn try_issue(&mut self, now: Cycle) -> bool {
        self.clamp_credit(now);
        if self.may_issue(now) {
            // Charge from max(C_next, clamped floor); if deeply in credit,
            // charges accumulate from the (clamped) past.
            self.c_next = self.c_next.saturating_add(self.period);
            self.issued += 1;
            true
        } else {
            self.throttled += 1;
            false
        }
    }

    /// Refunds `charged` cycles: the request was serviced by the shared
    /// cache and never consumed memory bandwidth. `charged` is the amount
    /// applied when the request issued (the period *then*, not now), and
    /// the refund is re-clamped so it cannot mint credit beyond the burst
    /// window.
    pub fn on_shared_hit(&mut self, charged: Cycle, now: Cycle) {
        self.c_next = self.c_next.saturating_sub(charged);
        self.clamp_credit(now);
    }

    /// Charges `charged` extra cycles: the request's fill evicted a dirty
    /// shared-cache line, generating a memory write on this class's
    /// behalf. `charged` is the issue-time charge; pushing `C_next`
    /// further into the future needs no clamp.
    pub fn on_writeback(&mut self, charged: Cycle) {
        self.c_next = self.c_next.saturating_add(charged);
    }

    /// Fault-injection hook (the `credit-leak` kind of
    /// `pabst_simkit::fault`): drains `cycles` of accumulated credit by
    /// pushing `C_next` that far into the future. Behaves like an
    /// unearned writeback charge — the source pays for bandwidth it never
    /// consumed — so the leak is bounded only by how often the fault
    /// plan fires, never by the burst window.
    pub fn leak_credit(&mut self, cycles: Cycle) {
        self.c_next = self.c_next.saturating_add(cycles);
    }

    /// A read-only view of the pacer for observability: current period,
    /// clamped credit at `now`, the credit ceiling, and the issue/NACK
    /// counters. Does not mutate the pacer (the clamp is applied to the
    /// reported value only).
    pub fn snapshot(&self, now: Cycle) -> PacerSnapshot {
        PacerSnapshot {
            period: self.period,
            credit: self.credit_at(now).min(self.burst_window()),
            burst_window: self.burst_window(),
            issued: self.issued,
            throttled: self.throttled,
        }
    }

    /// The earliest cycle at which [`Pacer::try_issue`] can succeed: `0`
    /// when unthrottled (period zero), otherwise `C_next`. A value less
    /// than or equal to the current cycle means "right now". This is the
    /// pacer's contribution to a fast-forward horizon: while the head of
    /// a tile's injection queue is NACKed, nothing about the pacer
    /// changes until this cycle except the per-cycle throttle counter,
    /// which the skip path accrues via [`Pacer::note_throttled`].
    pub fn next_issue_at(&self) -> Cycle {
        if self.period == 0 {
            0
        } else {
            self.c_next
        }
    }

    /// Batch-accrues `n` throttle events without consulting the clock —
    /// exactly what `n` consecutive NACKing [`Pacer::try_issue`] calls
    /// would have recorded. Only valid over a window in which every one
    /// of those calls would have NACKed (i.e. the window ends before
    /// [`Pacer::next_issue_at`]); while throttled, the lazy credit clamp
    /// is a no-op, so the counter is the pacer's only per-cycle state.
    pub fn note_throttled(&mut self, n: u64) {
        self.throttled += n;
    }

    /// Requests issued (admitted) so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Requests NACKed so far.
    pub fn throttled(&self) -> u64 {
        self.throttled
    }

    /// Cycles of accumulated credit at `now` (how far `C_next` trails
    /// `C_now`), after clamping.
    pub fn credit(&mut self, now: Cycle) -> Cycle {
        self.clamp_credit(now);
        now.saturating_sub(self.c_next)
    }

    /// Cycles `C_next` currently trails `now`, *without* applying the lazy
    /// clamp — the raw view the invariant sanitizer inspects right after
    /// an epoch-boundary reprogramming (which clamps).
    pub fn credit_at(&self, now: Cycle) -> Cycle {
        now.saturating_sub(self.c_next)
    }

    /// The credit ceiling in cycles, `(burst - 1) × period`: the largest
    /// clamped credit [`Pacer::clamp_credit`] may leave behind.
    pub fn burst_window(&self) -> Cycle {
        (self.burst - 1).saturating_mul(self.period)
    }

    /// Enforces the bounded-credit rule: `C_next >= now - (burst-1) × period`,
    /// so that exactly `burst` back-to-back requests can issue after long
    /// idleness (the request at the window boundary itself is the burst's
    /// final member).
    fn clamp_credit(&mut self, now: Cycle) {
        let window = (self.burst - 1).saturating_mul(self.period);
        let floor = now.saturating_sub(window);
        if self.c_next < floor {
            self.c_next = floor;
        }
    }
}

/// Point-in-time view of one pacer, as reported by [`Pacer::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacerSnapshot {
    /// Currently enforced per-request period in cycles (0 = unthrottled).
    pub period: Cycle,
    /// Accumulated credit in cycles, clamped to the burst window.
    pub credit: Cycle,
    /// The credit ceiling, `(burst - 1) × period`.
    pub burst_window: Cycle,
    /// Requests admitted so far.
    pub issued: u64,
    /// Requests NACKed so far.
    pub throttled: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_request_always_allowed() {
        let mut p = Pacer::new(1000);
        assert!(p.try_issue(0));
    }

    #[test]
    fn enforces_average_period() {
        let mut p = Pacer::new(10);
        let mut issued = 0;
        for now in 0..1000 {
            if p.try_issue(now) {
                issued += 1;
            }
        }
        // 1000 cycles / period 10 = 100 requests, plus up to `burst` initial credit.
        assert!(issued <= 100 + DEFAULT_BURST as usize as u64);
        assert!(issued >= 100, "got {issued}");
    }

    #[test]
    fn zero_period_is_unthrottled() {
        let mut p = Pacer::new(0);
        for now in 0..100 {
            assert!(p.try_issue(now));
        }
        assert_eq!(p.issued(), 100);
        assert_eq!(p.throttled(), 0);
    }

    #[test]
    fn idle_builds_bounded_credit() {
        let mut p = Pacer::with_burst(10, 4);
        assert!(p.try_issue(0));
        // Long idle: credit must cap at (burst-1)*period = 30 cycles.
        assert_eq!(p.credit(1_000_000), 30);
        // Burst of exactly `burst` requests proceeds, then throttled.
        let now = 1_000_000;
        for _ in 0..4 {
            assert!(p.try_issue(now));
        }
        assert!(!p.try_issue(now), "5th back-to-back request must be NACKed");
    }

    #[test]
    fn burst_credit_respects_period() {
        let mut p = Pacer::with_burst(100, 2);
        let _ = p.try_issue(0);
        // At cycle 10_000, floor = 10_000 - (2-1)*100.
        assert_eq!(p.credit(10_000), 100);
    }

    #[test]
    fn shared_hit_refunds_charge() {
        let mut p = Pacer::new(100);
        assert!(p.try_issue(0)); // c_next = 100
        assert!(!p.try_issue(1));
        p.on_shared_hit(100, 1); // refund the issue-time charge: c_next back to 0
        assert!(p.try_issue(1));
    }

    #[test]
    fn writeback_adds_charge() {
        let mut p = Pacer::new(100);
        assert!(p.try_issue(0)); // c_next = 100
        p.on_writeback(100); // c_next = 200
        assert!(!p.try_issue(150));
        assert!(p.try_issue(200));
    }

    #[test]
    fn settlement_uses_issue_time_charge_across_reprogramming() {
        // Issue at period 100, then the governor reprograms to 10 before
        // the response returns. The refund must be the 100 charged at
        // issue, not 10 — and must not mint credit past the window.
        let mut p = Pacer::with_burst(100, 2);
        assert!(p.try_issue(0)); // c_next = 100, charged 100
        p.set_period(10, 0);
        p.on_shared_hit(100, 0);
        assert!(p.credit_at(0) <= p.burst_window(), "refund clamped to window");

        // Writeback side: charge recorded at issue (100) lands in full
        // even though the current period is 10.
        let mut q = Pacer::with_burst(100, 2);
        assert!(q.try_issue(0)); // c_next = 100, charged 100
        q.set_period(10, 0);
        q.on_writeback(100); // c_next = 200
        assert!(!q.try_issue(150));
        assert!(q.try_issue(200));
    }

    #[test]
    fn snapshot_reports_clamped_credit_without_mutation() {
        let mut p = Pacer::with_burst(10, 4);
        assert!(p.try_issue(0));
        let before = p.clone();
        let snap = p.snapshot(1_000_000);
        assert_eq!(snap.credit, p.burst_window(), "long idle reads as full window");
        assert_eq!(snap.period, 10);
        assert_eq!(snap.burst_window, 30);
        assert_eq!(snap.issued, 1);
        assert_eq!(snap.throttled, 0);
        assert_eq!(p, before, "snapshot must not clamp the pacer itself");
    }

    #[test]
    fn throttle_counter_counts_nacks() {
        let mut p = Pacer::new(50);
        let _ = p.try_issue(0);
        for now in 1..50 {
            assert!(!p.try_issue(now));
        }
        assert_eq!(p.throttled(), 49);
        assert_eq!(p.issued(), 1);
    }

    #[test]
    fn batched_throttles_match_naive_nack_loop() {
        // A throttled window stepped naively and one fast-forwarded with
        // note_throttled must leave bit-identical pacers.
        let mut naive = Pacer::new(50);
        let mut skipped = Pacer::new(50);
        assert!(naive.try_issue(0));
        assert!(skipped.try_issue(0));
        assert_eq!(skipped.next_issue_at(), 50);
        for now in 1..50 {
            assert!(!naive.try_issue(now));
        }
        skipped.note_throttled(49);
        assert_eq!(naive, skipped);
        assert!(naive.try_issue(50));
        assert!(skipped.try_issue(50));
        assert_eq!(naive, skipped);
    }

    #[test]
    fn next_issue_at_is_zero_when_unthrottled() {
        let mut p = Pacer::new(0);
        assert_eq!(p.next_issue_at(), 0);
        let _ = p.try_issue(100);
        assert_eq!(p.next_issue_at(), 0);
    }

    #[test]
    fn set_period_takes_effect_and_reclamps() {
        let mut p = Pacer::with_burst(1000, 2);
        let _ = p.try_issue(0); // c_next = 1000
                                // Shrink period drastically; stale credit floor must follow new window.
        p.set_period(10, 500);
        // c_next was 1000; floor is 500-20=480, so c_next stays 1000: still throttled.
        assert!(!p.try_issue(500));
        assert!(p.try_issue(1000));
    }

    #[test]
    fn leak_credit_pushes_the_issue_horizon_out() {
        let mut p = Pacer::new(100);
        assert!(p.try_issue(0)); // c_next = 100
        p.leak_credit(250); // c_next = 350
        assert!(!p.try_issue(100));
        assert!(!p.try_issue(349));
        assert!(p.try_issue(350));
    }

    #[test]
    fn rate_ratio_matches_period_ratio() {
        // Two pacers with 3:1 period ratio admit requests in 1:3 ratio when
        // both are continuously backlogged.
        let mut fast = Pacer::new(10);
        let mut slow = Pacer::new(30);
        let (mut nf, mut ns) = (0u64, 0u64);
        for now in 0..30_000 {
            if fast.try_issue(now) {
                nf += 1;
            }
            if slow.try_issue(now) {
                ns += 1;
            }
        }
        let ratio = nf as f64 / ns as f64;
        assert!((ratio - 3.0).abs() < 0.1, "ratio={ratio}");
    }

    #[test]
    #[should_panic(expected = "at least one request")]
    fn zero_burst_panics() {
        let _ = Pacer::with_burst(10, 0);
    }
}
