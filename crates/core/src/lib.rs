//! The PABST bandwidth QoS mechanism (Hower, Cain & Waldspurger, HPCA 2017).
//!
//! PABST — *Proportionally Allocated Bandwidth at the Source and Target* —
//! partitions memory bandwidth among QoS classes using two cooperating
//! hardware components:
//!
//! * **Source regulation** — a [`governor::SystemMonitor`] feedback loop
//!   computes a system-wide multiplier `M` from a binary memory-controller
//!   saturation signal each epoch; a [`governor::RateGenerator`] scales `M`
//!   by a class's [`qos::Stride`] into a per-source request period; and a
//!   [`pacer::Pacer`] at each private L2 enforces that period, with credit
//!   for bursts and corrections for shared-cache hits and writebacks.
//!   The governor seam is the object-safe [`governor::Governor`] trait;
//!   [`lms::LmsGovernor`] is a prediction-driven alternative (LMS-AR).
//! * **Target regulation** — a [`arbiter::VirtualClocks`] earliest-virtual-
//!   deadline arbiter at each memory controller prioritizes queued reads of
//!   classes that are behind their proportional share, with a bounded slack
//!   so idleness cannot bank unlimited credit.
//!
//! The saturation signal itself comes from a [`satmon::SatMonitor`] that
//! averages front-end read-queue occupancy over each epoch.
//!
//! This crate is *simulator-agnostic*: it contains only the mechanism
//! logic, driven by plain integer inputs, so it can be embedded in any
//! timing model (the `pabst-soc` crate embeds it in a 32-core tiled SoC).
//!
//! # Quick start
//!
//! ```
//! use pabst_core::qos::{QosId, ShareTable};
//! use pabst_core::governor::{
//!     SystemMonitor, MonitorConfig, RateGenerator, GOVERNOR_STRIDE_SCALE,
//! };
//! use pabst_core::pacer::Pacer;
//!
//! // Two classes with a 3:1 bandwidth split.
//! let shares = ShareTable::from_weights(&[3, 1])?;
//! let mut monitor = SystemMonitor::new(MonitorConfig::default());
//! let rategen = RateGenerator::default();
//!
//! // One epoch elapses and the memory controllers were saturated:
//! let m = monitor.on_epoch(Some(true));
//! let class0 = QosId::new(0);
//! let stride = shares.scaled_stride(class0, GOVERNOR_STRIDE_SCALE);
//! let period = rategen.source_period(m, stride, 1);
//! let mut pacer = Pacer::new(period);
//! assert!(pacer.try_issue(0)); // first request always free
//! # Ok::<(), pabst_core::qos::ShareError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod governor;
pub mod lms;
pub mod pacer;
pub mod qos;
pub mod satmon;
pub mod threads;

pub use pabst_simkit::Cycle;
