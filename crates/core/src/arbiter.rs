//! The memory-controller priority arbiter (§III-C2): earliest-virtual-
//! deadline-first selection driven by per-class virtual clocks.
//!
//! Each QoS class has a virtual clock that advances by the class *stride*
//! for every accepted request, so a high-weight (small-stride) class's
//! clock advances slowly and its requests carry earlier deadlines. A
//! request entering the controller is stamped with the class's current
//! virtual time; the arbiter then services the *ready* read with the
//! earliest stamp. To prevent an idle class banking unbounded virtual
//! credit, a stamp is capped at no more than `slack` (default 128) virtual
//! ticks behind the most recent deadline the arbiter picked; when the cap
//! binds, the class clock is rewritten to the capped value.
//!
//! Differences from Nesbit et al.'s FQM that the paper calls out are
//! honoured here: true per-request stride charging (not scaled expected
//! access time), a single flat charge per access, and application of the
//! EDF rule in both the front-end and back-end queues (the embedding in
//! `pabst-dram` does the latter).

use crate::qos::{QosId, Stride, MAX_CLASSES};

/// Default slack: how many virtual ticks behind the last picked deadline a
/// new stamp may start (paper's example value).
pub const DEFAULT_SLACK: u64 = 128;

/// Stride scale used by the arbiter's virtual clocks: the highest-weight
/// class advances its clock by this many virtual ticks per request, so the
/// paper's slack of 128 corresponds to roughly eight of its requests.
pub const ARBITER_STRIDE_SCALE: u64 = 16;

/// A virtual deadline stamped onto a request when it enters the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtualDeadline(pub u64);

/// Per-class virtual clocks with slack-bounded credit.
///
/// # Examples
///
/// ```
/// use pabst_core::arbiter::VirtualClocks;
/// use pabst_core::qos::{QosId, ShareTable};
///
/// let shares = ShareTable::from_weights(&[3, 1])?;
/// let mut vc = VirtualClocks::new(&shares, 128);
/// let hi = QosId::new(0);
/// let lo = QosId::new(1);
/// // The high-share class's deadlines advance 3x slower, so after one
/// // accepted request each, the high-share class's next stamp is earlier.
/// let (_, _) = (vc.stamp(hi), vc.stamp(lo));
/// assert!(vc.stamp(hi) < vc.stamp(lo));
/// # Ok::<(), pabst_core::qos::ShareError>(())
/// ```
#[derive(Debug, Clone)]
pub struct VirtualClocks {
    clocks: [u64; MAX_CLASSES],
    strides: [u64; MAX_CLASSES],
    classes: usize,
    slack: u64,
    last_picked: u64,
    accepted: [u64; MAX_CLASSES],
    picked: [u64; MAX_CLASSES],
}

impl VirtualClocks {
    /// Creates clocks for the classes of `shares` with the given slack cap
    /// (virtual ticks). Strides are normalized with
    /// [`ARBITER_STRIDE_SCALE`] so the slack bound is meaningful.
    pub fn new(shares: &crate::qos::ShareTable, slack: u64) -> Self {
        let mut strides = [1u64; MAX_CLASSES];
        for (id, _) in shares.iter() {
            strides[id.index()] = shares.scaled_stride(id, ARBITER_STRIDE_SCALE).get();
        }
        Self {
            clocks: [0; MAX_CLASSES],
            strides,
            classes: shares.classes(),
            slack,
            last_picked: 0,
            accepted: [0; MAX_CLASSES],
            picked: [0; MAX_CLASSES],
        }
    }

    /// Updates the stride of one class (software reprogramming a share).
    pub fn set_stride(&mut self, id: QosId, stride: Stride) {
        self.strides[id.index()] = stride.get();
    }

    /// Stamps a newly accepted request from `id`: returns its virtual
    /// deadline and advances the class clock by the class stride.
    ///
    /// Applies the slack cap: the stamp may start at most `slack` virtual
    /// ticks behind the last deadline the arbiter picked; a capped value is
    /// also written back into the class clock.
    pub fn stamp(&mut self, id: QosId) -> VirtualDeadline {
        let i = id.index();
        debug_assert!(i < self.classes, "stamp for unknown class");
        let floor = self.last_picked.saturating_sub(self.slack);
        if self.clocks[i] < floor {
            self.clocks[i] = floor;
        }
        let deadline = self.clocks[i];
        self.clocks[i] = self.clocks[i].saturating_add(self.strides[i]);
        self.accepted[i] += 1;
        VirtualDeadline(deadline)
    }

    /// Records that the arbiter serviced a request with deadline `d` from
    /// class `id`, updating the slack reference point.
    pub fn on_picked(&mut self, id: QosId, d: VirtualDeadline) {
        if d.0 > self.last_picked {
            self.last_picked = d.0;
        }
        self.picked[id.index()] += 1;
    }

    /// Stamps a request *without* advancing the class clock — the FQM-style
    /// variant (Nesbit et al.) the paper contrasts with PABST's flat
    /// per-request charge: the clock is advanced later by
    /// [`VirtualClocks::charge`] with the access's actual cost.
    pub fn stamp_deferred(&mut self, id: QosId) -> VirtualDeadline {
        let i = id.index();
        debug_assert!(i < self.classes, "stamp for unknown class");
        let floor = self.last_picked.saturating_sub(self.slack);
        if self.clocks[i] < floor {
            self.clocks[i] = floor;
        }
        self.accepted[i] += 1;
        VirtualDeadline(self.clocks[i])
    }

    /// Advances `id`'s clock by `cost_units` strides — FQM's
    /// charge-by-service-time (e.g. 1 unit for a row hit, more for a
    /// conflict). Pairs with [`VirtualClocks::stamp_deferred`].
    pub fn charge(&mut self, id: QosId, cost_units: u64) {
        let i = id.index();
        self.clocks[i] = self.clocks[i].saturating_add(self.strides[i].saturating_mul(cost_units));
    }

    /// Selects, among `candidates` of `(QosId, VirtualDeadline)`, the index
    /// of the entry with the earliest deadline (FIFO order breaks ties).
    /// Returns `None` when `candidates` is empty.
    pub fn pick_earliest<I>(candidates: I) -> Option<usize>
    where
        I: IntoIterator<Item = VirtualDeadline>,
    {
        candidates.into_iter().enumerate().min_by_key(|&(i, d)| (d, i)).map(|(i, _)| i)
    }

    /// Current virtual time of `id`.
    pub fn clock(&self, id: QosId) -> u64 {
        self.clocks[id.index()]
    }

    /// Total requests stamped for `id`.
    pub fn accepted(&self, id: QosId) -> u64 {
        self.accepted[id.index()]
    }

    /// Total requests serviced for `id`.
    pub fn picked_count(&self, id: QosId) -> u64 {
        self.picked[id.index()]
    }

    /// The slack cap in virtual ticks.
    pub fn slack(&self) -> u64 {
        self.slack
    }

    /// Number of classes these clocks were built for.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The most recent serviced deadline (slack reference point).
    pub fn last_picked(&self) -> u64 {
        self.last_picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::ShareTable;

    fn clocks(weights: &[u32], slack: u64) -> VirtualClocks {
        VirtualClocks::new(&ShareTable::from_weights(weights).unwrap(), slack)
    }

    #[test]
    fn deadlines_monotonic_per_class() {
        let mut vc = clocks(&[2, 1], 1_000_000);
        let id = QosId::new(0);
        let mut last = vc.stamp(id);
        for _ in 0..100 {
            let d = vc.stamp(id);
            assert!(d > last);
            last = d;
        }
    }

    #[test]
    fn high_weight_class_gets_earlier_deadlines() {
        let mut vc = clocks(&[4, 1], u64::MAX);
        let hi = QosId::new(0);
        let lo = QosId::new(1);
        // After equal accept counts, the high-weight clock trails 4x.
        for _ in 0..8 {
            let _ = vc.stamp(hi);
            let _ = vc.stamp(lo);
        }
        assert_eq!(vc.clock(lo), 4 * vc.clock(hi));
    }

    #[test]
    fn slack_cap_binds_idle_class() {
        let mut vc = clocks(&[1, 1], 100);
        let busy = QosId::new(0);
        let idle = QosId::new(1);
        // Busy class runs far ahead and the arbiter services it.
        for _ in 0..50 {
            let d = vc.stamp(busy);
            vc.on_picked(busy, d);
        }
        let last = vc.last_picked();
        assert!(last > 100);
        // Idle class wakes: its stamp is capped at last - slack, not 0.
        let d = vc.stamp(idle);
        assert_eq!(d.0, last - 100);
        // And its clock was rewritten past the cap.
        assert!(vc.clock(idle) > 0);
    }

    #[test]
    fn slack_cap_does_not_penalize_current_class() {
        let mut vc = clocks(&[1], 10);
        let id = QosId::new(0);
        let d0 = vc.stamp(id);
        assert_eq!(d0.0, 0);
    }

    #[test]
    fn pick_earliest_selects_minimum_fifo_ties() {
        let picks = vec![VirtualDeadline(5), VirtualDeadline(2), VirtualDeadline(2)];
        assert_eq!(VirtualClocks::pick_earliest(picks), Some(1));
        assert_eq!(VirtualClocks::pick_earliest(Vec::<VirtualDeadline>::new()), None);
    }

    #[test]
    fn backlogged_service_ratio_tracks_weights() {
        // Model both classes always having a request queued: the EDF rule
        // must service them in ~3:1.
        let mut vc = clocks(&[3, 1], 1_000_000);
        let a = QosId::new(0);
        let b = QosId::new(1);
        // Queue of one pending request per class, re-stamped after service.
        let mut pending = [(a, vc.stamp(a)), (b, vc.stamp(b))];
        let mut served = [0u64; 2];
        for _ in 0..4000 {
            let idx = VirtualClocks::pick_earliest(pending.iter().map(|&(_, d)| d)).unwrap();
            let (id, d) = pending[idx];
            vc.on_picked(id, d);
            served[id.index()] += 1;
            pending[idx] = (id, vc.stamp(id));
        }
        let ratio = served[0] as f64 / served[1] as f64;
        assert!((ratio - 3.0).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn set_stride_reprograms_share() {
        // Software quadruples class 1's share: its (scaled) stride drops to
        // a quarter and its clock now advances 4x slower.
        let mut vc = clocks(&[1, 1], u64::MAX);
        vc.set_stride(QosId::new(1), Stride::from_raw(ARBITER_STRIDE_SCALE / 4));
        let _ = vc.stamp(QosId::new(0));
        let _ = vc.stamp(QosId::new(1));
        assert!(vc.clock(QosId::new(1)) < vc.clock(QosId::new(0)));
    }

    #[test]
    fn counters_track_accept_and_pick() {
        let mut vc = clocks(&[1], 100);
        let id = QosId::new(0);
        let d = vc.stamp(id);
        assert_eq!(vc.accepted(id), 1);
        assert_eq!(vc.picked_count(id), 0);
        vc.on_picked(id, d);
        assert_eq!(vc.picked_count(id), 1);
    }
}

#[cfg(test)]
mod fqm_tests {
    use super::*;
    use crate::qos::ShareTable;

    #[test]
    fn deferred_stamp_does_not_advance() {
        let shares = ShareTable::from_weights(&[1]).unwrap();
        let mut vc = VirtualClocks::new(&shares, 128);
        let id = QosId::new(0);
        let d0 = vc.stamp_deferred(id);
        let d1 = vc.stamp_deferred(id);
        assert_eq!(d0, d1, "deferred stamps share the clock until charged");
        vc.charge(id, 1);
        let d2 = vc.stamp_deferred(id);
        assert!(d2 > d1);
    }

    #[test]
    fn charge_scales_with_cost() {
        let shares = ShareTable::from_weights(&[1, 1]).unwrap();
        let mut vc = VirtualClocks::new(&shares, u64::MAX);
        vc.charge(QosId::new(0), 1);
        vc.charge(QosId::new(1), 3);
        assert_eq!(3 * vc.clock(QosId::new(0)), vc.clock(QosId::new(1)));
    }

    #[test]
    fn deferred_stamp_still_respects_slack_floor() {
        let shares = ShareTable::from_weights(&[1, 1]).unwrap();
        let mut vc = VirtualClocks::new(&shares, 50);
        let busy = QosId::new(0);
        for _ in 0..20 {
            let d = vc.stamp(busy);
            vc.on_picked(busy, d);
        }
        let idle = QosId::new(1);
        let d = vc.stamp_deferred(idle);
        assert_eq!(d.0, vc.last_picked() - 50);
    }
}
