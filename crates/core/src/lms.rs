//! LMS prediction-driven source governor (LMS-AR).
//!
//! An alternative to the paper's multiplicative SAT feedback
//! ([`crate::governor::SystemMonitor`]): a least-mean-squares adaptive
//! filter predicts the next epoch's saturation probability from the
//! recent observation history, and the rate multiplier `M` moves
//! **proportionally to the predicted overshoot** of a half-saturated
//! setpoint instead of by a direction-driven step ladder. This follows
//! Srinivasan & Gangadharan's LMS-based adaptive bandwidth-regulation
//! scheme (LMS-AR, PAPERS.md): regulation decisions come from a
//! prediction of demand, not from the most recent sample alone, so the
//! loop anticipates periodic congestion instead of reacting one epoch
//! late.
//!
//! All arithmetic is fixed-point integer ([`ONE`] = Q8 scale): the
//! governor sits on the simulated datapath (reachable from
//! `System::advance`), where the workspace bans floating point. The
//! fail-safe staleness policy — hold for `staleness_k` epochs, then decay
//! `M` toward the conservative `degraded_m` floor — matches the SAT
//! monitor's exactly, so mechanism comparisons isolate the *prediction*
//! difference, not the fault handling.

use crate::governor::{DeltaDir, Governor, GovernorKind, MonitorConfig, MonitorSnapshot, RateDir};

/// Number of past epochs the predictor filters over.
const TAPS: usize = 4;

/// Fixed-point unit (Q8): a saturated epoch observes as `ONE`, an
/// unsaturated one as 0, and filter weights live on the same scale.
const ONE: i64 = 256;

/// The regulation setpoint: the loop steers the predicted saturation
/// probability toward one half (`ONE / 2`), the same operating point the
/// SAT monitor's hover-at-the-threshold behaviour converges to.
const SETPOINT: i64 = ONE / 2;

/// LMS adaptation rate: weight updates are scaled by `2^-MU_SHIFT`
/// relative to the raw gradient. Small enough for stability over the
/// {0, ONE} observation alphabet, large enough to track a workload phase
/// change within a few epochs.
const MU_SHIFT: u32 = 6;

/// Proportional-gain divisor: a full-scale prediction error moves `M` by
/// at most `M / GAIN_DIV` in one epoch, bounding overshoot the way the
/// SAT monitor's `dm_max` clamp does.
const GAIN_DIV: i64 = 8;

/// Magnitude clamp for filter weights (`±4·ONE`), warding off integer
/// drift under adversarial observation sequences.
const W_CLAMP: i64 = 4 * ONE;

/// The LMS-AR governor: an adaptive linear predictor over the saturation
/// history driving proportional rate control.
///
/// Like every [`Governor`], it is deterministic: replicas fed identical
/// observation sequences produce identical `M` sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LmsGovernor {
    cfg: MonitorConfig,
    m: u32,
    /// Filter weights, Q8.
    w: [i64; TAPS],
    /// Observation history, Q8; `x[0]` is the most recent epoch.
    x: [i64; TAPS],
    /// |ΔM| applied in the last epoch (snapshot's `delta_m`).
    last_step: u32,
    rate_dir: RateDir,
    delta_dir: DeltaDir,
    /// Consecutive epochs with an unchanged rate direction.
    e: u32,
    epochs: u64,
    stale_epochs: u32,
    degraded_epochs: u64,
}

impl LmsGovernor {
    /// Creates a governor in its initial state: `M = m_init`, uniform
    /// filter weights (the predictor starts as a moving average), and an
    /// all-headroom history.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`MonitorConfig::validate`]; configurations
    /// are produced by code, not end users, so a bad one is a bug.
    pub fn new(cfg: MonitorConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid MonitorConfig: {e}");
        }
        Self {
            cfg,
            m: cfg.m_init,
            w: [ONE / TAPS as i64; TAPS],
            x: [0; TAPS],
            last_step: 0,
            rate_dir: RateDir::Up,
            delta_dir: DeltaDir::Down,
            e: 0,
            epochs: 0,
            stale_epochs: 0,
            degraded_epochs: 0,
        }
    }

    /// The filter's current output: predicted next-epoch saturation in
    /// Q8, clamped to `[0, ONE]`.
    fn predict(&self) -> i64 {
        let raw: i64 = self.w.iter().zip(&self.x).map(|(&w, &x)| w * x).sum::<i64>() / ONE;
        raw.clamp(0, ONE)
    }

    /// One fresh observation: LMS weight update, history shift, then a
    /// proportional rate move against the forecast.
    fn on_fresh_sat(&mut self, sat: bool) -> u32 {
        self.stale_epochs = 0;
        self.epochs += 1;
        let obs = if sat { ONE } else { 0 };

        // LMS: e = d - w·x, w += μ·e·x (all Q8, gradient scaled 2^-MU_SHIFT).
        let err = obs - self.predict();
        for (w, &x) in self.w.iter_mut().zip(&self.x) {
            *w = (*w + (err * x) / (ONE << MU_SHIFT)).clamp(-W_CLAMP, W_CLAMP);
        }

        // Shift the new observation in and forecast the next epoch.
        self.x.rotate_right(1);
        self.x[0] = obs;
        let forecast = self.predict();

        // Proportional control: move M toward the setpoint's rate, at
        // most M/GAIN_DIV per epoch, at least one unit when off-target.
        let rel = forecast - SETPOINT;
        let step = ((i64::from(self.m) * rel.abs()) / (SETPOINT * GAIN_DIV)).max(1) as u32;
        let new_dir = if rel > 0 { RateDir::Down } else { RateDir::Up };
        if rel > 0 {
            self.m = self.m.saturating_add(step).min(self.cfg.m_max);
        } else if rel < 0 {
            self.m = self.m.saturating_sub(step).max(self.cfg.m_min);
        }
        let applied = if rel == 0 { 0 } else { step };
        self.delta_dir = if applied > self.last_step { DeltaDir::Up } else { DeltaDir::Down };
        self.last_step = applied;
        self.e = if new_dir == self.rate_dir { self.e.saturating_add(1) } else { 1 };
        self.rate_dir = new_dir;
        self.m
    }

    /// Consecutive epochs without a fresh observation.
    pub fn stale_epochs(&self) -> u32 {
        self.stale_epochs
    }

    /// True while the fail-safe degraded policy is active.
    pub fn is_degraded(&self) -> bool {
        self.stale_epochs > self.cfg.staleness_k
    }

    /// The configuration the governor was built with.
    pub fn config(&self) -> MonitorConfig {
        self.cfg
    }
}

impl Governor for LmsGovernor {
    fn on_epoch(&mut self, sat: Option<bool>) -> u32 {
        match sat {
            Some(s) => self.on_fresh_sat(s),
            None => {
                // The same fail-safe as the SAT monitor: hold inside the
                // staleness window, then decay toward the conservative
                // floor — lost feedback must not differ across mechanisms.
                self.epochs += 1;
                self.stale_epochs = self.stale_epochs.saturating_add(1);
                if self.stale_epochs > self.cfg.staleness_k {
                    self.degraded_epochs += 1;
                    if self.m < self.cfg.degraded_m {
                        let step = (self.m / 4).saturating_add(1);
                        self.m = self.m.saturating_add(step).min(self.cfg.degraded_m);
                    }
                    self.last_step = 0;
                    self.e = 0;
                    self.delta_dir = DeltaDir::Down;
                }
                self.m
            }
        }
    }

    fn m(&self) -> u32 {
        self.m
    }

    fn degraded_epochs(&self) -> u64 {
        self.degraded_epochs
    }

    fn snapshot(&self) -> MonitorSnapshot {
        MonitorSnapshot {
            m: self.m,
            delta_m: self.last_step,
            steady_epochs: self.e,
            rate_dir: self.rate_dir,
            delta_dir: self.delta_dir,
            epochs: self.epochs,
            stale_epochs: self.stale_epochs,
            degraded: self.is_degraded(),
        }
    }

    fn label(&self) -> &'static str {
        GovernorKind::LmsAr.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MonitorConfig {
        MonitorConfig::default()
    }

    #[test]
    fn sustained_saturation_throttles_to_the_ceiling() {
        let mut g = LmsGovernor::new(cfg());
        for _ in 0..200 {
            g.on_epoch(Some(true));
        }
        assert_eq!(Governor::m(&g), cfg().m_max, "predicted saturation must max out M");
    }

    #[test]
    fn sustained_headroom_releases_to_the_floor() {
        let mut g = LmsGovernor::new(cfg());
        for _ in 0..400 {
            g.on_epoch(Some(false));
        }
        assert_eq!(Governor::m(&g), cfg().m_min, "predicted headroom must min out M");
    }

    #[test]
    fn step_is_proportional_not_fixed() {
        // At a large M, one saturated-forecast epoch moves M by far more
        // than the SAT monitor's dm_max — the mechanism difference the
        // zoo exists to compare.
        let big = MonitorConfig { m_init: 1 << 20, ..cfg() };
        let mut g = LmsGovernor::new(big);
        for _ in 0..8 {
            g.on_epoch(Some(true));
        }
        let before = Governor::m(&g);
        let after = g.on_epoch(Some(true));
        assert!(
            after - before > cfg().dm_max,
            "proportional step {} must exceed the SAT ladder's clamp",
            after - before
        );
    }

    #[test]
    fn lockstep_replicas_agree() {
        let mut replicas: Vec<LmsGovernor> = (0..16).map(|_| LmsGovernor::new(cfg())).collect();
        let pattern = [Some(true), Some(false), None, Some(false), Some(true), Some(true)];
        for (i, &sat) in pattern.iter().cycle().take(500).enumerate() {
            let ms: Vec<u32> = replicas.iter_mut().map(|r| r.on_epoch(sat)).collect();
            assert!(ms.windows(2).all(|w| w[0] == w[1]), "diverged at epoch {i}");
        }
    }

    #[test]
    fn staleness_holds_then_decays_to_the_floor() {
        let mut g = LmsGovernor::new(cfg());
        for _ in 0..10 {
            g.on_epoch(Some(false));
        }
        let held = Governor::m(&g);
        for k in 1..=cfg().staleness_k {
            assert_eq!(g.on_epoch(None), held, "epoch {k}: hold");
            assert!(!g.is_degraded());
        }
        let mut prev = Governor::m(&g);
        for _ in 0..60 {
            let m = g.on_epoch(None);
            assert!(m >= prev, "degraded decay is monotone");
            prev = m;
        }
        assert!(g.is_degraded());
        assert_eq!(Governor::m(&g), cfg().degraded_m);
        assert!(g.degraded_epochs() > 0);
        assert!(g.snapshot().degraded);
    }

    #[test]
    fn fresh_sample_ends_staleness() {
        let mut g = LmsGovernor::new(cfg());
        for _ in 0..cfg().staleness_k + 5 {
            g.on_epoch(None);
        }
        assert!(g.is_degraded());
        g.on_epoch(Some(false));
        assert!(!g.is_degraded());
        assert_eq!(g.stale_epochs(), 0);
    }

    #[test]
    fn snapshot_reflects_state_and_label_is_stable() {
        let mut g = LmsGovernor::new(cfg());
        g.on_epoch(Some(true));
        let s = g.snapshot();
        assert_eq!(s.m, Governor::m(&g));
        assert_eq!(s.epochs, 1);
        assert_eq!(g.label(), "lms-ar");
        assert_eq!(g.config(), cfg());
    }

    #[test]
    #[should_panic(expected = "invalid MonitorConfig")]
    fn invalid_config_panics() {
        let bad = MonitorConfig { m_min: 10, m_max: 5, ..MonitorConfig::default() };
        let _ = LmsGovernor::new(bad);
    }

    #[test]
    fn kind_builds_the_right_governor() {
        let g = GovernorKind::LmsAr.build(cfg());
        assert_eq!(g.label(), "lms-ar");
        assert_eq!(g.m(), cfg().m_init);
    }
}
