//! Deterministic, plan-scoped fault injection.
//!
//! PABST's control loop assumes a healthy SAT broadcast, epoch
//! synchronizer, and memory-controller service path. A resilience study
//! perturbs exactly those assumptions — but perturbation must not cost
//! reproducibility: a fault campaign that cannot be replayed bit-exactly
//! cannot be debugged. This module is therefore the **only** sanctioned
//! source of injected nondeterminism in the simulation crates (the
//! `fault-rng` simlint rule enforces it): every injection decision is a
//! pure function of a [`FaultSpec`]'s own seed and the epoch being
//! asked about, so the same [`FaultPlan`] produces the same faults at
//! any `--jobs` value, in any query order, on any platform.
//!
//! Like epoch trace records, a plan serializes to dependency-free JSONL
//! ([`FaultPlan::to_jsonl`] / [`FaultPlan::parse`]): one flat object per
//! spec, integers and a kind label only, so plans round-trip exactly and
//! can be attached to failure reports for one-command repro.
//!
//! # Examples
//!
//! ```
//! use pabst_simkit::fault::{FaultKind, FaultPlan, FaultSpec};
//!
//! let mut plan = FaultPlan::new();
//! plan.push(FaultSpec {
//!     kind: FaultKind::SatDrop,
//!     target: 0,
//!     from_epoch: 10,
//!     until_epoch: 20,
//!     prob_ppm: 500_000, // 50%
//!     magnitude: 0,
//!     seed: 7,
//! });
//! assert!(!plan.is_inert());
//! assert_eq!(FaultPlan::parse(&plan.to_jsonl()), Ok(plan.clone()));
//! // Decisions are reproducible: ask twice, get the same answer.
//! for epoch in 0..30 {
//!     let a = plan.fires(FaultKind::SatDrop, 0, epoch);
//!     let b = plan.fires(FaultKind::SatDrop, 0, epoch);
//!     assert_eq!(a, b);
//!     if !(10..=20).contains(&epoch) {
//!         assert!(!a, "faults stay inside their epoch window");
//!     }
//! }
//! ```

use std::fmt::Write as _;

use crate::rng::SimRng;

/// Probability scale: `prob_ppm` is parts per million, so `1_000_000`
/// means "fires every epoch in the window" and `0` means never.
pub const PPM_SCALE: u64 = 1_000_000;

/// What gets broken. The `target` field of a [`FaultSpec`] names the
/// component instance; its meaning is per-kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// The SAT broadcast from memory controller `target` is lost for the
    /// epoch: the governor sees *no* sample (staleness path).
    SatDrop,
    /// The SAT broadcast from MC `target` arrives `magnitude` epochs
    /// late: the governor sees a stale value instead of the current one.
    SatDelay,
    /// The SAT bit from MC `target` arrives inverted.
    SatCorrupt,
    /// Tile `target` misses the epoch-boundary synchronization pulse:
    /// its pacer keeps the previous epoch's period.
    EpochSkew,
    /// Memory controller `target` stops servicing requests for the
    /// epoch (queues still accept; nothing completes).
    McStall,
    /// Tile `target`'s pacer leaks `magnitude` cycles of credit at the
    /// epoch boundary (its `C_next` is pushed into the future).
    CreditLeak,
}

impl FaultKind {
    /// Every kind, in serialization-label order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::SatDrop,
        FaultKind::SatDelay,
        FaultKind::SatCorrupt,
        FaultKind::EpochSkew,
        FaultKind::McStall,
        FaultKind::CreditLeak,
    ];

    /// The stable serialization label (used in JSONL and diagnostics).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::SatDrop => "sat-drop",
            FaultKind::SatDelay => "sat-delay",
            FaultKind::SatCorrupt => "sat-corrupt",
            FaultKind::EpochSkew => "epoch-skew",
            FaultKind::McStall => "mc-stall",
            FaultKind::CreditLeak => "credit-leak",
        }
    }

    /// Parses a serialization label back into a kind.
    pub fn from_label(label: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.label() == label)
    }

    /// A small per-kind constant folded into the decision stream seed so
    /// two specs differing only in kind draw independent streams.
    fn code(self) -> u64 {
        match self {
            FaultKind::SatDrop => 1,
            FaultKind::SatDelay => 2,
            FaultKind::SatCorrupt => 3,
            FaultKind::EpochSkew => 4,
            FaultKind::McStall => 5,
            FaultKind::CreditLeak => 6,
        }
    }
}

/// One injection rule: a kind, a component instance, an inclusive epoch
/// window, a firing probability, a kind-specific magnitude, and the seed
/// its decision stream derives from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// What to break.
    pub kind: FaultKind,
    /// Which instance (MC index or tile index, per-kind; see
    /// [`FaultKind`]).
    pub target: u64,
    /// First epoch (inclusive) the spec may fire in.
    pub from_epoch: u64,
    /// Last epoch (inclusive) the spec may fire in.
    pub until_epoch: u64,
    /// Firing probability per in-window epoch, in parts per million.
    pub prob_ppm: u64,
    /// Kind-specific strength (delay epochs, leaked credit cycles);
    /// zero for kinds that ignore it.
    pub magnitude: u64,
    /// Seed of this spec's decision stream. Two specs with different
    /// seeds fire independently even when otherwise identical.
    pub seed: u64,
}

impl FaultSpec {
    /// True when this spec could ever fire: nonzero probability and a
    /// non-empty epoch window.
    pub fn can_fire(&self) -> bool {
        self.prob_ppm > 0 && self.from_epoch <= self.until_epoch
    }

    /// Whether this spec fires at `epoch`.
    ///
    /// The decision is a pure function of `(seed, kind, target, epoch)`
    /// — one stateless SplitMix64 draw — so callers may ask in any
    /// order, any number of times, from any thread, and always get the
    /// same answer. No draw happens at all outside the window or at
    /// probability zero, so an inert spec perturbs nothing.
    pub fn fires(&self, epoch: u64) -> bool {
        if self.prob_ppm == 0 || epoch < self.from_epoch || epoch > self.until_epoch {
            return false;
        }
        if self.prob_ppm >= PPM_SCALE {
            return true;
        }
        let stream = self
            .seed
            .wrapping_add(self.kind.code().wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(self.target.wrapping_mul(0xD134_2543_DE82_EF95))
            .wrapping_add(epoch.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        let mut rng = SimRng::seed_from_u64(stream);
        // Lemire reduction to [0, PPM_SCALE): integer-exact on every host.
        let draw = ((u128::from(rng.next_u64()) * u128::from(PPM_SCALE)) >> 64) as u64;
        draw < self.prob_ppm
    }

    /// Serializes the spec as one flat JSON object (no trailing newline),
    /// keys in declaration order so equal specs serialize identically.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push('{');
        let _ = write!(s, "\"kind\":\"{}\"", self.kind.label());
        let _ = write!(s, ",\"target\":{}", self.target);
        let _ = write!(s, ",\"from_epoch\":{}", self.from_epoch);
        let _ = write!(s, ",\"until_epoch\":{}", self.until_epoch);
        let _ = write!(s, ",\"prob_ppm\":{}", self.prob_ppm);
        let _ = write!(s, ",\"magnitude\":{}", self.magnitude);
        let _ = write!(s, ",\"seed\":{}", self.seed);
        s.push('}');
        s
    }
}

/// An ordered list of [`FaultSpec`]s — the unit a whole run is
/// parameterized by.
///
/// An empty or all-zero-probability plan is *inert*: attaching it to a
/// system changes nothing, byte for byte (the resilience acceptance
/// criterion). [`FaultPlan::fires`] answers "does any spec of this kind
/// covering this target fire at this epoch"; [`FaultPlan::magnitude`]
/// retrieves the firing spec's strength.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty (inert) plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a spec. Order is preserved (it is the serialization
    /// order, and the first matching spec wins magnitude lookups).
    pub fn push(&mut self, spec: FaultSpec) {
        self.specs.push(spec);
    }

    /// The specs, in insertion order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// True when no spec can ever fire: the plan is a structural no-op.
    pub fn is_inert(&self) -> bool {
        self.specs.iter().all(|s| !s.can_fire())
    }

    /// Whether any spec of `kind` targeting `target` fires at `epoch`.
    pub fn fires(&self, kind: FaultKind, target: u64, epoch: u64) -> bool {
        self.specs.iter().any(|s| s.kind == kind && s.target == target && s.fires(epoch))
    }

    /// The magnitude of the first spec of `kind` targeting `target` that
    /// fires at `epoch`, or `None` when nothing fires.
    pub fn magnitude(&self, kind: FaultKind, target: u64, epoch: u64) -> Option<u64> {
        self.specs
            .iter()
            .find(|s| s.kind == kind && s.target == target && s.fires(epoch))
            .map(|s| s.magnitude)
    }

    /// Serializes the plan as JSONL: one spec per line, each line
    /// `\n`-terminated. An empty plan serializes to the empty string.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.specs {
            out.push_str(&s.to_json());
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL plan back (blank lines are skipped), accepting
    /// keys in any order. Keys absent from a line default to zero —
    /// except `kind`, which is mandatory.
    ///
    /// # Errors
    ///
    /// Returns [`FaultParseError`] (with line number and byte offset) on
    /// any syntax violation, unknown key or kind label, or a spec whose
    /// probability exceeds [`PPM_SCALE`].
    pub fn parse(text: &str) -> Result<FaultPlan, FaultParseError> {
        let mut plan = FaultPlan::new();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            plan.push(parse_spec_line(line).map_err(|mut e| {
                e.line = idx + 1;
                e
            })?);
        }
        Ok(plan)
    }

    /// FNV-1a digest of the plan's canonical JSONL serialization — a
    /// stable provenance fingerprint carried by watchdog snapshots and
    /// campaign failure records so any failure line names the exact
    /// plan that produced it. The empty plan digests to the FNV offset
    /// basis.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for b in self.to_jsonl().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
}

/// Why a fault-plan line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError {
    /// 1-based line number within the plan text.
    pub line: usize,
    /// Byte offset into the line where parsing stopped.
    pub offset: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fault plan line {}, byte {}: {}", self.line, self.offset, self.message)
    }
}

impl std::error::Error for FaultParseError {}

/// Parses one spec object. Line numbers are filled in by the caller.
fn parse_spec_line(line: &str) -> Result<FaultSpec, FaultParseError> {
    let mut cur = Cursor { s: line.as_bytes(), pos: 0 };
    let mut kind: Option<FaultKind> = None;
    let mut spec = FaultSpec {
        kind: FaultKind::SatDrop, // placeholder until `kind` is seen
        target: 0,
        from_epoch: 0,
        until_epoch: 0,
        prob_ppm: 0,
        magnitude: 0,
        seed: 0,
    };
    cur.skip_ws();
    cur.eat(b'{')?;
    cur.skip_ws();
    if cur.peek() == Some(b'}') {
        cur.pos += 1;
    } else {
        loop {
            let key = cur.parse_key()?;
            cur.skip_ws();
            cur.eat(b':')?;
            cur.skip_ws();
            match key {
                "kind" => {
                    let label_at = cur.pos;
                    let label = cur.parse_string()?;
                    kind = Some(FaultKind::from_label(label).ok_or_else(|| FaultParseError {
                        line: 0,
                        offset: label_at,
                        message: format!("unknown fault kind {label:?}"),
                    })?);
                }
                "target" => spec.target = cur.parse_field(key)?,
                "from_epoch" => spec.from_epoch = cur.parse_field(key)?,
                "until_epoch" => spec.until_epoch = cur.parse_field(key)?,
                "prob_ppm" => spec.prob_ppm = cur.parse_field(key)?,
                "magnitude" => spec.magnitude = cur.parse_field(key)?,
                "seed" => spec.seed = cur.parse_field(key)?,
                other => {
                    return Err(FaultParseError {
                        line: 0,
                        offset: cur.pos,
                        message: format!("unknown key {other:?}"),
                    })
                }
            }
            cur.skip_ws();
            match cur.bump() {
                Some(b',') => cur.skip_ws(),
                Some(b'}') => break,
                _ => return Err(cur.err("expected ',' or '}'")),
            }
        }
    }
    cur.skip_ws();
    if cur.pos != cur.s.len() {
        return Err(cur.err("trailing bytes after spec"));
    }
    match kind {
        Some(k) => spec.kind = k,
        None => return Err(cur.err("spec is missing the mandatory `kind` key")),
    }
    if spec.prob_ppm > PPM_SCALE {
        return Err(cur.err(&format!("prob_ppm {} exceeds {PPM_SCALE}", spec.prob_ppm)));
    }
    Ok(spec)
}

/// Byte cursor over one plan line (the trace-record grammar plus quoted
/// strings for the kind label).
struct Cursor<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: &str) -> FaultParseError {
        FaultParseError { line: 0, offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, want: u8) -> Result<(), FaultParseError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", char::from(want))))
        }
    }

    /// A double-quoted string; escapes are not part of the grammar
    /// (kind labels are plain ASCII identifiers).
    fn parse_string(&mut self) -> Result<&'a str, FaultParseError> {
        self.eat(b'"')?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'"' {
                let raw = &self.s[start..self.pos];
                self.pos += 1;
                return std::str::from_utf8(raw).map_err(|_| FaultParseError {
                    line: 0,
                    offset: start,
                    message: "string is not UTF-8".into(),
                });
            }
            if b == b'\\' {
                return Err(self.err("escapes are not part of the plan grammar"));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated string"))
    }

    fn parse_key(&mut self) -> Result<&'a str, FaultParseError> {
        self.parse_string()
    }

    fn parse_u64(&mut self) -> Result<u64, FaultParseError> {
        let start = self.pos;
        let mut v: u64 = 0;
        let mut any = false;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            let digit = u64::from(b - b'0');
            v = v.checked_mul(10).and_then(|v| v.checked_add(digit)).ok_or_else(|| {
                FaultParseError { line: 0, offset: start, message: "integer overflows u64".into() }
            })?;
            self.pos += 1;
            any = true;
        }
        if any {
            Ok(v)
        } else {
            Err(self.err("expected an unsigned integer"))
        }
    }

    /// [`Cursor::parse_u64`] for a named spec field: failures name the
    /// offending field, so a malformed plan line reports *what* was
    /// wrong, not just where.
    fn parse_field(&mut self, field: &str) -> Result<u64, FaultParseError> {
        self.parse_u64().map_err(|mut e| {
            e.message = format!("field {field:?}: {}", e.message);
            e
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: FaultKind, prob_ppm: u64) -> FaultSpec {
        FaultSpec {
            kind,
            target: 1,
            from_epoch: 5,
            until_epoch: 50,
            prob_ppm,
            magnitude: 3,
            seed: 42,
        }
    }

    #[test]
    fn labels_round_trip_for_every_kind() {
        for k in FaultKind::ALL {
            assert_eq!(FaultKind::from_label(k.label()), Some(k));
        }
        assert_eq!(FaultKind::from_label("made-up"), None);
    }

    #[test]
    fn json_round_trips_exactly() {
        let mut plan = FaultPlan::new();
        plan.push(spec(FaultKind::SatDrop, 250_000));
        plan.push(spec(FaultKind::McStall, PPM_SCALE));
        plan.push(FaultSpec { target: 0, seed: 9, ..spec(FaultKind::CreditLeak, 1) });
        assert_eq!(FaultPlan::parse(&plan.to_jsonl()), Ok(plan));
    }

    #[test]
    fn empty_plan_is_inert_and_serializes_empty() {
        let plan = FaultPlan::new();
        assert!(plan.is_inert());
        assert_eq!(plan.to_jsonl(), "");
        assert_eq!(FaultPlan::parse(""), Ok(plan));
    }

    #[test]
    fn zero_probability_plan_is_inert() {
        let mut plan = FaultPlan::new();
        plan.push(spec(FaultKind::SatDrop, 0));
        plan.push(FaultSpec { from_epoch: 9, until_epoch: 3, ..spec(FaultKind::McStall, 1) });
        assert!(plan.is_inert(), "empty window and zero probability both inert");
        for e in 0..100 {
            assert!(!plan.fires(FaultKind::SatDrop, 1, e));
            assert!(!plan.fires(FaultKind::McStall, 1, e));
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_spec_and_epoch() {
        let s = spec(FaultKind::SatDelay, 300_000);
        let forward: Vec<bool> = (0..100).map(|e| s.fires(e)).collect();
        let backward: Vec<bool> = (0..100).rev().map(|e| s.fires(e)).collect();
        let backward_reversed: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward_reversed, "query order must not matter");
        assert!(forward.iter().any(|&f| f), "30% over 46 epochs fires sometime");
    }

    #[test]
    fn window_and_extreme_probabilities_are_exact() {
        let always = spec(FaultKind::McStall, PPM_SCALE);
        let never = spec(FaultKind::McStall, 0);
        for e in 0..100u64 {
            let in_window = (5..=50).contains(&e);
            assert_eq!(always.fires(e), in_window);
            assert!(!never.fires(e));
        }
    }

    #[test]
    fn distinct_seeds_and_kinds_draw_independent_streams() {
        let a = spec(FaultKind::SatDrop, 500_000);
        let b = FaultSpec { seed: 43, ..a };
        let c = FaultSpec { kind: FaultKind::SatCorrupt, ..a };
        let fa: Vec<bool> = (5..=50).map(|e| a.fires(e)).collect();
        let fb: Vec<bool> = (5..=50).map(|e| b.fires(e)).collect();
        let fc: Vec<bool> = (5..=50).map(|e| c.fires(e)).collect();
        assert_ne!(fa, fb, "seed decorrelates");
        assert_ne!(fa, fc, "kind decorrelates");
    }

    #[test]
    fn firing_rate_tracks_prob_ppm() {
        let s =
            FaultSpec { from_epoch: 0, until_epoch: 99_999, ..spec(FaultKind::SatDrop, 200_000) };
        let hits = (0..100_000).filter(|&e| s.fires(e)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.2).abs() < 0.01, "observed {frac}");
    }

    #[test]
    fn magnitude_comes_from_the_firing_spec() {
        let mut plan = FaultPlan::new();
        plan.push(FaultSpec { magnitude: 7, ..spec(FaultKind::CreditLeak, PPM_SCALE) });
        assert_eq!(plan.magnitude(FaultKind::CreditLeak, 1, 10), Some(7));
        assert_eq!(plan.magnitude(FaultKind::CreditLeak, 1, 2), None, "outside window");
        assert_eq!(plan.magnitude(FaultKind::CreditLeak, 2, 10), None, "other target");
        assert_eq!(plan.magnitude(FaultKind::McStall, 1, 10), None, "other kind");
    }

    #[test]
    fn parser_accepts_any_key_order_and_defaults_absent_keys() {
        let line = " { \"prob_ppm\" : 12 , \"kind\" : \"mc-stall\" } ";
        let plan = FaultPlan::parse(line).expect("reordered keys parse");
        assert_eq!(plan.specs().len(), 1);
        let s = plan.specs()[0];
        assert_eq!(s.kind, FaultKind::McStall);
        assert_eq!(s.prob_ppm, 12);
        assert_eq!(s.target, 0, "absent keys default");
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "{",
            "{}", // kind is mandatory
            "{\"kind\":\"sat-drop\",}",
            "{\"kind\":\"made-up\"}",
            "{\"kind\":\"sat-drop\",\"target\":}",
            "{\"kind\":\"sat-drop\",\"mystery\":1}",
            "{\"kind\":\"sat-drop\"} extra",
            "{\"kind\":\"sat-drop\",\"prob_ppm\":1000001}",
            "{\"kind\":\"sat-drop\",\"seed\":99999999999999999999999999}",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn parse_error_carries_line_number() {
        let text = "{\"kind\":\"sat-drop\"}\n{\"kind\":\"nope\"}\n";
        let err = FaultPlan::parse(text).expect_err("bad second line");
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn parse_error_names_the_offending_field() {
        for (bad, field) in [
            ("{\"kind\":\"sat-drop\",\"target\":}", "\"target\""),
            ("{\"kind\":\"sat-drop\",\"from_epoch\":x}", "\"from_epoch\""),
            ("{\"kind\":\"sat-drop\",\"until_epoch\":\"7\"}", "\"until_epoch\""),
            ("{\"kind\":\"sat-drop\",\"prob_ppm\":-1}", "\"prob_ppm\""),
            ("{\"kind\":\"sat-drop\",\"magnitude\":}", "\"magnitude\""),
            ("{\"kind\":\"sat-drop\",\"seed\":99999999999999999999999999}", "\"seed\""),
        ] {
            let err = FaultPlan::parse(bad).expect_err("must reject");
            assert!(err.message.contains(field), "{bad:?} -> {err}");
            assert_eq!(err.line, 1, "{bad:?}");
        }
        // Overflow keeps its cause alongside the field name.
        let err = FaultPlan::parse("{\"kind\":\"sat-drop\",\"seed\":99999999999999999999999999}")
            .expect_err("overflow");
        assert!(err.message.contains("overflows u64"), "{err}");
    }

    #[test]
    fn parse_error_line_and_field_compose_across_lines() {
        let text = "{\"kind\":\"sat-drop\"}\n\n{\"kind\":\"mc-stall\",\"magnitude\":oops}\n";
        let err = FaultPlan::parse(text).expect_err("bad third line");
        assert_eq!(err.line, 3);
        assert!(err.message.contains("\"magnitude\""), "{err}");
    }

    #[test]
    fn digest_is_stable_and_distinguishes_plans() {
        let empty = FaultPlan::new().digest();
        assert_eq!(empty, 0xcbf2_9ce4_8422_2325, "empty plan digests to the FNV offset basis");
        let mut a = FaultPlan::new();
        a.push(spec(FaultKind::SatDrop, 250_000));
        let mut b = FaultPlan::new();
        b.push(spec(FaultKind::SatDrop, 250_001));
        assert_eq!(a.digest(), a.clone().digest(), "deterministic");
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.digest(), empty);
        // The digest follows the canonical serialization: a parse
        // round-trip preserves it.
        let rt = FaultPlan::parse(&a.to_jsonl()).expect("round-trip");
        assert_eq!(rt.digest(), a.digest());
    }
}
