//! Debug-mode runtime invariant sanitizer.
//!
//! PABST's accounting is exact by construction — pacer credit is bounded
//! by the burst window, virtual deadlines only move forward, and every
//! request that enters a queue leaves it exactly once. Those invariants
//! are what make the paper's proportional-share claims trustworthy, so
//! the SoC epoch loop re-verifies them at every epoch boundary when
//! sanitizing is on.
//!
//! The sanitizer is active when the crate is built with
//! `debug_assertions` (every `cargo test`) or with the `sanitize` cargo
//! feature (release builds, CI). In plain release builds every check is
//! a no-op that the optimizer removes.
//!
//! The checks are deliberately generic (bounds, monotonicity,
//! conservation) so `pabst-simkit` stays dependency-free; the SoC layer
//! feeds it the domain quantities.
//!
//! # Examples
//!
//! ```
//! use pabst_simkit::sanitizer::Sanitizer;
//!
//! let mut s = Sanitizer::new();
//! s.check_le("pacer credit", 0, 90, 150); // fine: 90 <= 150
//! s.check_monotone("virtual clock", 0, 1, 10);
//! s.check_monotone("virtual clock", 0, 1, 10); // equal is fine
//! if s.enabled() {
//!     assert_eq!(s.checks_run(), 3);
//! }
//! ```

use std::collections::BTreeMap;

/// Per-epoch invariant checker. See the module docs for when it is live.
///
/// All checks panic with a `what[unit/lane]` diagnostic on violation, so a
/// failing invariant surfaces as a test failure at the epoch where the
/// drift began rather than as a silently wrong figure.
#[derive(Debug, Clone, Default)]
pub struct Sanitizer {
    /// Last observed value per (check name, unit, lane), for monotonicity.
    floors: BTreeMap<(&'static str, usize, usize), u64>,
    checks: u64,
}

impl Sanitizer {
    /// Creates a sanitizer with no recorded history.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when checks are live in this build (debug assertions or the
    /// `sanitize` feature).
    pub fn enabled(&self) -> bool {
        cfg!(any(debug_assertions, feature = "sanitize"))
    }

    /// Number of checks evaluated so far (0 when disabled).
    pub fn checks_run(&self) -> u64 {
        self.checks
    }

    /// Asserts `value <= bound`, e.g. pacer credit never exceeds the burst
    /// window. `unit` distinguishes instances (tile index, MC index).
    ///
    /// # Panics
    ///
    /// Panics when the bound is violated and the sanitizer is enabled.
    pub fn check_le(&mut self, what: &'static str, unit: usize, value: u64, bound: u64) {
        if !self.enabled() {
            return;
        }
        self.checks += 1;
        assert!(value <= bound, "sanitizer: {what}[{unit}] = {value} exceeds bound {bound}");
    }

    /// Asserts the series identified by `(what, unit, lane)` never
    /// decreases across calls, e.g. per-class virtual deadlines.
    ///
    /// # Panics
    ///
    /// Panics when the new value is below the previously observed one and
    /// the sanitizer is enabled.
    pub fn check_monotone(&mut self, what: &'static str, unit: usize, lane: usize, value: u64) {
        if !self.enabled() {
            return;
        }
        self.checks += 1;
        let floor = self.floors.entry((what, unit, lane)).or_insert(value);
        assert!(
            value >= *floor,
            "sanitizer: {what}[{unit}/{lane}] regressed from {floor} to {value}"
        );
        *floor = value;
    }

    /// Asserts flow conservation: `inflow == outflow + in_flight`, e.g.
    /// every request accepted by a memory controller either completed or
    /// is still queued.
    ///
    /// # Panics
    ///
    /// Panics when the books don't balance and the sanitizer is enabled.
    pub fn check_conserved(
        &mut self,
        what: &'static str,
        unit: usize,
        inflow: u64,
        outflow: u64,
        in_flight: u64,
    ) {
        if !self.enabled() {
            return;
        }
        self.checks += 1;
        assert!(
            inflow == outflow + in_flight,
            "sanitizer: {what}[{unit}] leaked: in={inflow} out={outflow} pending={in_flight}"
        );
    }

    /// Asserts `num <= den` so the ratio `num/den` is a valid fraction in
    /// `[0, 1]`, e.g. SAT duty cycle as saturated epochs over total epochs.
    ///
    /// # Panics
    ///
    /// Panics when `num > den` and the sanitizer is enabled.
    pub fn check_fraction(&mut self, what: &'static str, unit: usize, num: u64, den: u64) {
        if !self.enabled() {
            return;
        }
        self.checks += 1;
        assert!(num <= den, "sanitizer: {what}[{unit}] duty {num}/{den} outside [0, 1]");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests exercise the *enabled* paths; the test profile always
    // has debug_assertions on, so `enabled()` is true here.

    #[test]
    fn le_within_bound_passes() {
        let mut s = Sanitizer::new();
        s.check_le("credit", 3, 10, 10);
        assert_eq!(s.checks_run(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds bound")]
    fn le_violation_panics() {
        let mut s = Sanitizer::new();
        s.check_le("credit", 0, 11, 10);
    }

    #[test]
    fn monotone_accepts_nondecreasing() {
        let mut s = Sanitizer::new();
        for v in [1, 1, 2, 5, 5, 9] {
            s.check_monotone("clock", 0, 2, v);
        }
    }

    #[test]
    fn monotone_lanes_are_independent() {
        let mut s = Sanitizer::new();
        s.check_monotone("clock", 0, 0, 100);
        s.check_monotone("clock", 0, 1, 5); // different lane: fine
        s.check_monotone("clock", 1, 0, 5); // different unit: fine
    }

    #[test]
    #[should_panic(expected = "regressed")]
    fn monotone_regression_panics() {
        let mut s = Sanitizer::new();
        s.check_monotone("clock", 0, 0, 7);
        s.check_monotone("clock", 0, 0, 6);
    }

    #[test]
    fn conservation_balances() {
        let mut s = Sanitizer::new();
        s.check_conserved("mc requests", 0, 100, 90, 10);
    }

    #[test]
    #[should_panic(expected = "leaked")]
    fn conservation_leak_panics() {
        let mut s = Sanitizer::new();
        s.check_conserved("mc requests", 0, 100, 90, 9);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn fraction_above_one_panics() {
        let mut s = Sanitizer::new();
        s.check_fraction("sat duty", 0, 3, 2);
    }
}
