//! Measurement infrastructure: counters, streaming histograms and per-epoch
//! time series.
//!
//! Everything the paper reports — bandwidth shares (Figs. 1, 5–8), service
//! time distributions (Fig. 9), weighted slowdown (Figs. 10–11) and memory
//! efficiency (Fig. 12) — is derived from these primitives.

use crate::Cycle;

/// A monotonically increasing event counter with an epoch-delta facility.
///
/// # Examples
///
/// ```
/// use pabst_simkit::stats::Counter;
///
/// let mut c = Counter::default();
/// c.add(3);
/// c.add(4);
/// assert_eq!(c.total(), 7);
/// assert_eq!(c.take_delta(), 7);
/// c.add(1);
/// assert_eq!(c.take_delta(), 1);
/// assert_eq!(c.total(), 8);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    total: u64,
    last_mark: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter by one.
    pub fn inc(&mut self) {
        self.total += 1;
    }

    /// Adds `n` events.
    pub fn add(&mut self, n: u64) {
        self.total += n;
    }

    /// Total events since construction.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events since the previous call to `take_delta` (or construction), and
    /// marks the current total as the new baseline.
    pub fn take_delta(&mut self) -> u64 {
        let d = self.total - self.last_mark;
        self.last_mark = self.total;
        d
    }
}

/// Accumulates a per-epoch average of a sampled quantity (e.g. memory
/// controller read-queue occupancy, sampled every cycle).
#[derive(Debug, Clone, Copy, Default)]
pub struct EpochAverage {
    sum: u64,
    samples: u64,
}

impl EpochAverage {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn sample(&mut self, value: u64) {
        self.sum += value;
        self.samples += 1;
    }

    /// Records `n` samples of the same `value` in one call — exactly
    /// equivalent to calling [`EpochAverage::sample`] `n` times. This is
    /// the batch-accrual entry point for per-cycle accumulators during a
    /// fast-forward skip, where the sampled quantity is constant by
    /// construction (nothing changed state across the skipped window).
    pub fn sample_n(&mut self, value: u64, n: u64) {
        self.sum += value * n;
        self.samples += n;
    }

    /// Returns `(sum, samples)` recorded so far this epoch and resets for
    /// the next epoch. This is the integer form of
    /// [`EpochAverage::take_mean`], for decisions that must stay in the
    /// integer domain: a threshold test `mean > t` is exactly
    /// `sum > t * samples` with no float rounding in the loop.
    pub fn take_raw(&mut self) -> (u64, u64) {
        let raw = (self.sum, self.samples);
        self.sum = 0;
        self.samples = 0;
        raw
    }

    /// Returns the mean of samples recorded so far this epoch, or 0.0 when
    /// no samples were recorded, then resets for the next epoch.
    /// Reporting-only; mechanism decisions use [`EpochAverage::take_raw`].
    pub fn take_mean(&mut self) -> f64 {
        let (sum, samples) = self.take_raw();
        if samples == 0 {
            0.0
        } else {
            sum as f64 / samples as f64
        }
    }

    /// Number of samples recorded this epoch so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// A latency/service-time histogram backed by an exact reservoir of raw
/// values.
///
/// Stores every recorded value (the experiments record at most a few
/// thousand transactions), so percentile queries are exact — there is no
/// bucketing and therefore no bucketing error.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    values: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.values.push(value);
        self.sorted = false;
    }

    /// Number of recorded values.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        Some(self.values.iter().sum::<u64>() as f64 / self.values.len() as f64)
    }

    /// Exact percentile (0.0 ..= 100.0) using nearest-rank, or `None` when
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=100.0`.
    pub fn percentile(&mut self, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "percentile must be within 0..=100");
        if self.values.is_empty() {
            return None;
        }
        if !self.sorted {
            self.values.sort_unstable();
            self.sorted = true;
        }
        let n = self.values.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        Some(self.values[rank.saturating_sub(1).min(n - 1)])
    }

    /// Largest recorded value, or `None` when empty.
    pub fn max(&self) -> Option<u64> {
        self.values.iter().copied().max()
    }
}

/// A per-epoch time series of one quantity per QoS class, used for the
/// bandwidth-over-time plots (Figs. 5, 6, 8).
#[derive(Debug, Clone)]
pub struct ClassSeries {
    classes: usize,
    /// `points[e][c]` = value of class `c` during epoch `e`.
    points: Vec<Vec<f64>>,
    epoch_cycles: Cycle,
}

impl ClassSeries {
    /// Creates an empty series for `classes` QoS classes with epochs of
    /// `epoch_cycles` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is zero.
    pub fn new(classes: usize, epoch_cycles: Cycle) -> Self {
        assert!(classes > 0, "need at least one class");
        Self { classes, points: Vec::new(), epoch_cycles }
    }

    /// Appends one epoch's values (one per class).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the class count.
    // simlint: allow(taint-float): figure-series storage; values are stored verbatim and never read back by the mechanism
    pub fn push_epoch(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.classes, "one value per class required");
        self.points.push(values.to_vec());
    }

    /// Number of recorded epochs.
    pub fn epochs(&self) -> usize {
        self.points.len()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Epoch length in cycles.
    pub fn epoch_cycles(&self) -> Cycle {
        self.epoch_cycles
    }

    /// Values for epoch `e` (one per class).
    // simlint: allow(taint-float): read-only figure-series access; plots and sanitizer assertions only
    pub fn epoch(&self, e: usize) -> &[f64] {
        &self.points[e]
    }

    /// Mean of class `c` over epochs `from_epoch..` (an out-of-range start
    /// yields an empty window and a mean of `0.0`).
    pub fn mean_over(&self, c: usize, from_epoch: usize) -> f64 {
        let pts: Vec<f64> = self.points.iter().skip(from_epoch).map(|v| v[c]).collect();
        if pts.is_empty() {
            return 0.0;
        }
        pts.iter().sum::<f64>() / pts.len() as f64
    }

    /// Sum across classes for epoch `e`.
    pub fn epoch_total(&self, e: usize) -> f64 {
        self.points[e].iter().sum()
    }
}

/// Observed vs. target share comparison used for the allocation-error bars
/// of Figs. 1 and 7.
///
/// `targets` and `observed` are same-length slices of per-class values in
/// any consistent unit (weights and bytes both work — only ratios matter).
/// Returns the maximum relative share error across classes, in percent.
///
/// # Examples
///
/// ```
/// // Target 3:1, observed 1:1 -> high-share class got 50% instead of 75%:
/// // error = |0.5 - 0.75| / 0.75 = 33.3%.
/// let err = pabst_simkit::stats::allocation_error_pct(&[3.0, 1.0], &[1.0, 1.0]);
/// assert!((err - 100.0).abs() < 0.5); // low-share class: |0.5-0.25|/0.25 = 100%
/// ```
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or sum to zero.
pub fn allocation_error_pct(targets: &[f64], observed: &[f64]) -> f64 {
    assert_eq!(targets.len(), observed.len(), "one observation per target");
    assert!(!targets.is_empty(), "need at least one class");
    let tsum: f64 = targets.iter().sum();
    let osum: f64 = observed.iter().sum();
    assert!(tsum > 0.0 && osum > 0.0, "shares must sum to a positive value");
    targets
        .iter()
        .zip(observed)
        .map(|(t, o)| {
            let ts = t / tsum;
            let os = o / osum;
            ((os - ts).abs() / ts) * 100.0
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_delta_resets_baseline() {
        let mut c = Counter::new();
        c.inc();
        c.inc();
        assert_eq!(c.take_delta(), 2);
        assert_eq!(c.take_delta(), 0);
        c.add(5);
        assert_eq!(c.take_delta(), 5);
        assert_eq!(c.total(), 7);
    }

    #[test]
    fn epoch_average_means_and_resets() {
        let mut a = EpochAverage::new();
        a.sample(2);
        a.sample(4);
        assert_eq!(a.samples(), 2);
        assert_eq!(a.take_mean(), 3.0);
        assert_eq!(a.take_mean(), 0.0); // empty epoch
    }

    #[test]
    fn epoch_average_sample_n_matches_repeated_sample() {
        let mut batched = EpochAverage::new();
        let mut looped = EpochAverage::new();
        batched.sample(5);
        batched.sample_n(3, 7);
        looped.sample(5);
        for _ in 0..7 {
            looped.sample(3);
        }
        assert_eq!(batched.samples(), looped.samples());
        assert_eq!(batched.take_mean(), looped.take_mean());
    }

    #[test]
    fn histogram_percentiles_exact() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(50.0), Some(50));
        assert_eq!(h.percentile(99.0), Some(99));
        assert_eq!(h.percentile(100.0), Some(100));
        assert_eq!(h.mean(), Some(50.5));
        assert_eq!(h.max(), Some(100));
    }

    #[test]
    fn histogram_empty_returns_none() {
        let mut h = Histogram::new();
        assert!(h.percentile(50.0).is_none());
        assert!(h.mean().is_none());
        assert!(h.is_empty());
    }

    #[test]
    fn histogram_single_value() {
        let mut h = Histogram::new();
        h.record(42);
        assert_eq!(h.percentile(0.0), Some(42));
        assert_eq!(h.percentile(50.0), Some(42));
        assert_eq!(h.percentile(100.0), Some(42));
    }

    #[test]
    fn class_series_means() {
        let mut s = ClassSeries::new(2, 1000);
        s.push_epoch(&[1.0, 3.0]);
        s.push_epoch(&[2.0, 4.0]);
        s.push_epoch(&[3.0, 5.0]);
        assert_eq!(s.epochs(), 3);
        assert_eq!(s.mean_over(0, 1), 2.5);
        assert_eq!(s.mean_over(1, 0), 4.0);
        assert_eq!(s.epoch_total(0), 4.0);
    }

    #[test]
    fn allocation_error_zero_when_exact() {
        let err = allocation_error_pct(&[3.0, 1.0], &[75.0, 25.0]);
        assert!(err < 1e-9);
    }

    #[test]
    fn allocation_error_symmetric_units() {
        // Units don't matter, only ratios.
        let a = allocation_error_pct(&[7.0, 3.0], &[70.0, 30.0]);
        assert!(a < 1e-9);
        let b = allocation_error_pct(&[7.0, 3.0], &[0.6, 0.4]);
        assert!(b > 0.0);
    }

    #[test]
    #[should_panic(expected = "one observation per target")]
    fn allocation_error_length_mismatch_panics() {
        let _ = allocation_error_pct(&[1.0], &[1.0, 2.0]);
    }
}
