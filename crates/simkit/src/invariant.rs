//! Always-on runtime invariant checker: conservation, bound, and
//! liveness laws evaluated at epoch boundaries.
//!
//! The [`crate::sanitizer::Sanitizer`] is a debug-build tripwire: it
//! panics on the first violated law and compiles to no-ops in release
//! builds. Chaos campaigns need the opposite trade: the laws must hold
//! in `--release` (where campaigns actually run), and a violation must
//! be *recorded* — typed, with a component snapshot — rather than abort
//! the sweep, so the campaign driver can classify the cell and hand the
//! fault plan to the shrinker. [`InvariantChecker`] is that recorder.
//!
//! Design constraints, in order:
//!
//! 1. **Deterministic and read-only.** The checker observes simulator
//!    state and mutates only its own bookkeeping; a system run with
//!    checking enabled is byte-identical to one without. Integer
//!    arithmetic only — it sits on the hot epoch path of
//!    `System::advance`, which must stay float- and entropy-free.
//! 2. **Cheap.** All checks run once per epoch (tens of thousands of
//!    cycles), never per cycle. Violation snapshots are built lazily —
//!    the `detail` closure runs only when the law actually fails.
//! 3. **Bounded.** At most [`MAX_RECORDED`] violations keep their full
//!    snapshot; beyond that only the total count grows, so a
//!    pathological cell cannot balloon memory.
//!
//! The laws fall into four families (see [`InvariantLaw`]): value
//! conservation (credits charged = settled + outstanding; requests
//! accepted = serviced + queued), upper bounds (queue occupancy vs.
//! capacity, pacer credit vs. burst window, the DPQ worst-case service
//! bound), monotonicity (per-class virtual clocks never run backwards),
//! and liveness (a component with queued work must deliver bytes within
//! a configured number of epochs — the watchdog generalized to
//! per-component forward-progress windows that report instead of
//! panicking).

use std::collections::BTreeMap;
use std::fmt;

/// Full-snapshot cap: violations past this count are tallied but not
/// stored, keeping a worst-case cell's memory bounded.
pub const MAX_RECORDED: usize = 64;

/// Knobs for the runtime invariant checker, carried by the system
/// config so campaign runs and golden runs can differ.
///
/// The struct is deliberately **not** part of the mechanism hash:
/// checking is observation, not mechanism, and enabling it must leave
/// every golden byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvariantConfig {
    /// Master switch. On by default — the checker is cheap enough to
    /// run everywhere, and goldens stay byte-identical because it only
    /// reads state.
    pub enabled: bool,
    /// Promote the DPQ worst-case service bound (and any other
    /// release-gated bound checks) from `debug_assert!` to counted
    /// release-mode checks. Off by default: golden runs skip the
    /// per-grant promise bookkeeping; chaos campaigns switch it on.
    pub bound_checks: bool,
    /// Per-component forward-progress window, in epochs. A component
    /// with pending work that delivers zero bytes for more than this
    /// many consecutive epochs raises a liveness violation. `0`
    /// disables the liveness family (the default — idle-heavy golden
    /// workloads legitimately sit still for long stretches).
    pub liveness_epochs: u64,
}

impl Default for InvariantConfig {
    fn default() -> Self {
        Self { enabled: true, bound_checks: false, liveness_epochs: 0 }
    }
}

/// The family a violated law belongs to; campaign reports group by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum InvariantLaw {
    /// A conserved quantity leaked or was double-counted
    /// (credited != settled + outstanding).
    Conservation,
    /// A value exceeded its configured or promised ceiling.
    Bound,
    /// A monotone counter ran backwards.
    Monotonicity,
    /// A component with queued work made no forward progress within
    /// its window.
    Liveness,
}

impl InvariantLaw {
    /// Stable lowercase label used in reports and logs.
    pub fn label(self) -> &'static str {
        match self {
            InvariantLaw::Conservation => "conservation",
            InvariantLaw::Bound => "bound",
            InvariantLaw::Monotonicity => "monotonicity",
            InvariantLaw::Liveness => "liveness",
        }
    }
}

/// One violated law, with enough context to reproduce and diagnose it:
/// which law, which component, when, and a lazily-built component
/// snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Law family.
    pub law: InvariantLaw,
    /// Law name, e.g. `"mc requests"` or `"pacer credit"`.
    pub name: &'static str,
    /// Component index the law was evaluated for (pacer/MC/monitor
    /// slot; 0 for system-wide laws).
    pub unit: usize,
    /// Epoch at which the violation was observed.
    pub epoch: u64,
    /// Cycle at which the violation was observed.
    pub cycle: u64,
    /// The offending value.
    pub observed: u64,
    /// The value the law required (ceiling, conserved total, or prior
    /// floor).
    pub limit: u64,
    /// Component snapshot text captured at violation time.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant [{}] {}[{}] violated at epoch {} cycle {}: observed {} vs limit {}",
            self.law.label(),
            self.name,
            self.unit,
            self.epoch,
            self.cycle,
            self.observed,
            self.limit
        )?;
        if !self.detail.is_empty() {
            write!(f, " ({})", self.detail)?;
        }
        Ok(())
    }
}

/// Everything a run's invariant checking produced: how many laws were
/// evaluated, how many failed, and the first [`MAX_RECORDED`] failures
/// in full.
#[derive(Debug, Clone, Default)]
pub struct InvariantReport {
    checks: u64,
    total: u64,
    violations: Vec<InvariantViolation>,
}

impl InvariantReport {
    /// Number of law evaluations performed.
    pub fn checks_run(&self) -> u64 {
        self.checks
    }

    /// Total violations observed, including ones past the snapshot cap.
    pub fn total_violations(&self) -> u64 {
        self.total
    }

    /// The recorded violations (at most [`MAX_RECORDED`]), in
    /// observation order.
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// True when every evaluated law held.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }
}

/// Epoch-boundary law evaluator. The owner calls [`begin_epoch`] once
/// per boundary, then the `check_*` family for each law; results
/// accumulate in the [`InvariantReport`].
///
/// [`begin_epoch`]: InvariantChecker::begin_epoch
#[derive(Debug, Clone, Default)]
pub struct InvariantChecker {
    cfg: InvariantConfig,
    epoch: u64,
    cycle: u64,
    /// Monotone floors keyed by (law name, unit, lane).
    floors: BTreeMap<(&'static str, usize, usize), u64>,
    /// Consecutive no-progress epochs keyed by (law name, unit).
    stalls: BTreeMap<(&'static str, usize), u64>,
    /// Last-seen totals for never-increasing counters, keyed by
    /// (law name, unit).
    totals: BTreeMap<(&'static str, usize), u64>,
    report: InvariantReport,
}

impl InvariantChecker {
    /// A checker honoring `cfg` (a disabled checker evaluates nothing).
    pub fn new(cfg: InvariantConfig) -> Self {
        Self { cfg, ..Self::default() }
    }

    /// Whether any law will be evaluated at all.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The configuration this checker was built with.
    pub fn config(&self) -> InvariantConfig {
        self.cfg
    }

    /// Stamps the epoch/cycle every subsequent violation this boundary
    /// is attributed to.
    pub fn begin_epoch(&mut self, epoch: u64, cycle: u64) {
        self.epoch = epoch;
        self.cycle = cycle;
    }

    /// The accumulated report.
    pub fn report(&self) -> &InvariantReport {
        &self.report
    }

    fn record(
        &mut self,
        law: InvariantLaw,
        name: &'static str,
        unit: usize,
        observed: u64,
        limit: u64,
        detail: impl FnOnce() -> String,
    ) {
        self.report.total += 1;
        if self.report.violations.len() < MAX_RECORDED {
            self.report.violations.push(InvariantViolation {
                law,
                name,
                unit,
                epoch: self.epoch,
                cycle: self.cycle,
                observed,
                limit,
                detail: detail(),
            });
        }
    }

    /// Bound law: `value <= limit`.
    pub fn check_le(
        &mut self,
        name: &'static str,
        unit: usize,
        value: u64,
        limit: u64,
        detail: impl FnOnce() -> String,
    ) {
        if !self.cfg.enabled {
            return;
        }
        self.report.checks += 1;
        if value > limit {
            self.record(InvariantLaw::Bound, name, unit, value, limit, detail);
        }
    }

    /// Monotonicity law: per (unit, lane), `value` never decreases
    /// across epochs.
    pub fn check_monotone(
        &mut self,
        name: &'static str,
        unit: usize,
        lane: usize,
        value: u64,
        detail: impl FnOnce() -> String,
    ) {
        if !self.cfg.enabled {
            return;
        }
        self.report.checks += 1;
        let floor = self.floors.entry((name, unit, lane)).or_insert(0);
        if value < *floor {
            let limit = *floor;
            self.record(InvariantLaw::Monotonicity, name, unit, value, limit, detail);
        } else {
            *floor = value;
        }
    }

    /// Conservation law: `credited == settled + outstanding`
    /// (saturating, so a broken counter cannot panic the checker).
    pub fn check_conserved(
        &mut self,
        name: &'static str,
        unit: usize,
        credited: u64,
        settled: u64,
        outstanding: u64,
        detail: impl FnOnce() -> String,
    ) {
        if !self.cfg.enabled {
            return;
        }
        self.report.checks += 1;
        let accounted = settled.saturating_add(outstanding);
        if credited != accounted {
            self.record(InvariantLaw::Conservation, name, unit, credited, accounted, detail);
        }
    }

    /// Bound law over a cumulative violation counter owned by a
    /// component (e.g. the DPQ arbiter's promise misses): any growth
    /// since the previous epoch is a violation here, carrying the
    /// component's own count forward into the report.
    pub fn check_counter_still(
        &mut self,
        name: &'static str,
        unit: usize,
        total: u64,
        detail: impl FnOnce() -> String,
    ) {
        if !self.cfg.enabled {
            return;
        }
        self.report.checks += 1;
        let prev = self.totals.entry((name, unit)).or_insert(0);
        if total > *prev {
            let limit = *prev;
            *self.totals.entry((name, unit)).or_insert(0) = total;
            self.record(InvariantLaw::Bound, name, unit, total, limit, detail);
        }
    }

    /// Liveness law: a unit reporting `has_work` without
    /// `made_progress` for more than `cfg.liveness_epochs` consecutive
    /// epochs is wedged. Disabled when the configured window is 0.
    pub fn check_progress(
        &mut self,
        name: &'static str,
        unit: usize,
        made_progress: bool,
        has_work: bool,
        detail: impl FnOnce() -> String,
    ) {
        if !self.cfg.enabled || self.cfg.liveness_epochs == 0 {
            return;
        }
        self.report.checks += 1;
        let stalled = self.stalls.entry((name, unit)).or_insert(0);
        if made_progress || !has_work {
            *stalled = 0;
            return;
        }
        *stalled += 1;
        if *stalled > self.cfg.liveness_epochs {
            let observed = *stalled;
            let limit = self.cfg.liveness_epochs;
            // Reset so a permanently wedged unit reports once per
            // window, not once per epoch — keeps the report readable
            // and the total proportional to how long the wedge lasted.
            *self.stalls.entry((name, unit)).or_insert(0) = 0;
            self.record(InvariantLaw::Liveness, name, unit, observed, limit, detail);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chk(liveness: u64) -> InvariantChecker {
        InvariantChecker::new(InvariantConfig {
            enabled: true,
            bound_checks: true,
            liveness_epochs: liveness,
        })
    }

    #[test]
    fn disabled_checker_evaluates_nothing() {
        let mut c =
            InvariantChecker::new(InvariantConfig { enabled: false, ..InvariantConfig::default() });
        c.check_le("x", 0, 10, 1, String::new);
        c.check_conserved("x", 0, 3, 1, 1, String::new);
        assert_eq!(c.report().checks_run(), 0);
        assert!(c.report().is_clean());
    }

    #[test]
    fn bound_and_conservation_record_typed_violations() {
        let mut c = chk(0);
        c.begin_epoch(7, 140_000);
        c.check_le("queue depth", 2, 65, 64, || "cap 64".to_string());
        c.check_conserved("mc requests", 1, 10, 4, 5, || "pending 5".to_string());
        c.check_conserved("mc requests", 0, 10, 4, 6, String::new);
        let r = c.report();
        assert_eq!(r.checks_run(), 3);
        assert_eq!(r.total_violations(), 2);
        let v = &r.violations()[0];
        assert_eq!(v.law, InvariantLaw::Bound);
        assert_eq!((v.name, v.unit, v.epoch, v.cycle), ("queue depth", 2, 7, 140_000));
        assert_eq!((v.observed, v.limit), (65, 64));
        assert_eq!(r.violations()[1].law, InvariantLaw::Conservation);
        assert_eq!(r.violations()[1].limit, 9, "settled + outstanding");
    }

    #[test]
    fn monotone_tracks_per_lane_floors() {
        let mut c = chk(0);
        c.check_monotone("vclock", 0, 0, 5, String::new);
        c.check_monotone("vclock", 0, 1, 9, String::new);
        c.check_monotone("vclock", 0, 0, 5, String::new);
        c.check_monotone("vclock", 0, 0, 4, String::new);
        c.check_monotone("vclock", 0, 1, 10, String::new);
        let r = c.report();
        assert_eq!(r.total_violations(), 1);
        assert_eq!((r.violations()[0].observed, r.violations()[0].limit), (4, 5));
    }

    #[test]
    fn counter_still_flags_growth_once_per_step() {
        let mut c = chk(0);
        c.check_counter_still("dpq bound", 0, 0, String::new);
        c.check_counter_still("dpq bound", 0, 0, String::new);
        c.check_counter_still("dpq bound", 0, 2, String::new);
        c.check_counter_still("dpq bound", 0, 2, String::new);
        c.check_counter_still("dpq bound", 0, 3, String::new);
        let r = c.report();
        assert_eq!(r.total_violations(), 2);
        assert_eq!((r.violations()[0].observed, r.violations()[0].limit), (2, 0));
        assert_eq!((r.violations()[1].observed, r.violations()[1].limit), (3, 2));
    }

    #[test]
    fn liveness_fires_after_window_and_resets_on_progress() {
        let mut c = chk(3);
        for epoch in 0..3 {
            c.begin_epoch(epoch, epoch * 1000);
            c.check_progress("mc bytes", 0, false, true, String::new);
        }
        assert!(c.report().is_clean(), "within the window");
        c.begin_epoch(3, 3000);
        c.check_progress("mc bytes", 0, false, true, String::new);
        assert_eq!(c.report().total_violations(), 1);
        assert_eq!(c.report().violations()[0].law, InvariantLaw::Liveness);
        // Progress (or an empty queue) resets the stall counter.
        c.check_progress("mc bytes", 0, true, true, String::new);
        for _ in 0..3 {
            c.check_progress("mc bytes", 0, false, true, String::new);
        }
        assert_eq!(c.report().total_violations(), 1, "window restarts after progress");
    }

    #[test]
    fn liveness_window_zero_disables_the_family() {
        let mut c = chk(0);
        for _ in 0..100 {
            c.check_progress("mc bytes", 0, false, true, String::new);
        }
        assert_eq!(c.report().checks_run(), 0);
        assert!(c.report().is_clean());
    }

    #[test]
    fn snapshot_recording_is_capped_but_counting_is_not() {
        let mut c = chk(0);
        for i in 0..(MAX_RECORDED as u64 + 10) {
            c.check_le("cap", 0, i + 1, 0, || format!("snap {i}"));
        }
        let r = c.report();
        assert_eq!(r.total_violations(), MAX_RECORDED as u64 + 10);
        assert_eq!(r.violations().len(), MAX_RECORDED);
    }

    #[test]
    fn violation_display_names_law_component_and_values() {
        let mut c = chk(0);
        c.begin_epoch(4, 80_000);
        c.check_le("pacer credit", 3, 900, 512, || "period=16".to_string());
        let text = c.report().violations()[0].to_string();
        assert!(text.contains("[bound] pacer credit[3]"), "{text}");
        assert!(text.contains("epoch 4 cycle 80000"), "{text}");
        assert!(text.contains("observed 900 vs limit 512"), "{text}");
        assert!(text.contains("period=16"), "{text}");
    }

    #[test]
    fn detail_closure_runs_only_on_violation() {
        let mut c = chk(0);
        c.check_le("cheap", 0, 1, 2, || unreachable!("law holds; snapshot must not build"));
        assert!(c.report().is_clean());
    }
}
