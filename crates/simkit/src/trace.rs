//! Epoch-structured observability: one typed record per epoch, pluggable
//! sinks, and a dependency-free JSONL serialization.
//!
//! The paper's evaluation reads everything off per-epoch signals — the
//! multiplier `M`, its step `δM`, the wired-OR SAT bit, per-class
//! delivered bytes, per-tile throttle counts — so the simulator emits
//! exactly one [`EpochRecord`] per epoch boundary to whatever sinks are
//! attached. Records are integers and booleans only: the serializer must
//! round-trip bit-exactly and stay deterministic across platforms, so
//! floating point is banned here (the `float-math` simlint rule covers
//! this file).
//!
//! Serialization is hand-rolled (the workspace has a zero-dependency
//! rule): [`EpochRecord::to_json`] writes one flat JSON object,
//! [`parse_line`] reads one back. The grammar is the subset the records
//! need — unsigned integers, `true`/`false`, and arrays of unsigned
//! integers — with keys accepted in any order.
//!
//! # Examples
//!
//! ```
//! use pabst_simkit::trace::{parse_line, EpochRecord};
//!
//! let rec = EpochRecord { epoch: 3, m: 2048, sat: true, ..EpochRecord::default() };
//! let line = rec.to_json();
//! assert_eq!(parse_line(&line), Ok(rec));
//! ```

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io;

/// One structured observation of the whole system at an epoch boundary.
///
/// Field order here is the serialization order of [`EpochRecord::to_json`].
/// All vectors are indexed the obvious way (`class_bytes` by QoS class,
/// `tile_throttles` by tile, the `mc_*` fields by memory controller).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EpochRecord {
    /// Zero-based index of the epoch that just ended.
    pub epoch: u64,
    /// Simulated cycle of the boundary.
    pub cycle: u64,
    /// Governor multiplier `M` after this epoch's update.
    pub m: u64,
    /// Governor step magnitude `δM` after this epoch's update.
    pub dm: u64,
    /// Consecutive epochs without a rate-direction switch (the paper's E).
    pub e: u64,
    /// Phase, rate half: `true` when the goal request rate is increasing.
    pub rate_up: bool,
    /// Phase, step half: `true` when `δM` grew this epoch.
    pub delta_up: bool,
    /// The wired-OR saturation bit observed for the epoch.
    pub sat: bool,
    /// Provenance hash of the mechanism selection (governor + target
    /// arbiter + regulation knobs) that produced this record, so merged
    /// trace files identify which mechanism pair each line ran under.
    /// Zero when the emitter predates or does not carry provenance.
    pub mechanism_hash: u64,
    /// Bytes delivered per QoS class during the epoch.
    pub class_bytes: Vec<u64>,
    /// Pacer NACKs per tile during the epoch (summed over the tile's
    /// pacers in the per-MC-regulation variant).
    pub tile_throttles: Vec<u64>,
    /// Read-queue depth per memory controller at the boundary.
    pub mc_read_depth: Vec<u64>,
    /// Write-queue depth per memory controller at the boundary.
    pub mc_write_depth: Vec<u64>,
    /// Total outstanding requests per memory controller at the boundary.
    pub mc_pending: Vec<u64>,
}

impl EpochRecord {
    /// Serializes the record as one flat JSON object (no trailing newline).
    ///
    /// Keys are emitted in declaration order, so equal records serialize
    /// to byte-identical lines — the determinism check diffs trace files
    /// directly.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        let _ = write!(s, "\"epoch\":{}", self.epoch);
        let _ = write!(s, ",\"cycle\":{}", self.cycle);
        let _ = write!(s, ",\"m\":{}", self.m);
        let _ = write!(s, ",\"dm\":{}", self.dm);
        let _ = write!(s, ",\"e\":{}", self.e);
        let _ = write!(s, ",\"rate_up\":{}", self.rate_up);
        let _ = write!(s, ",\"delta_up\":{}", self.delta_up);
        let _ = write!(s, ",\"sat\":{}", self.sat);
        let _ = write!(s, ",\"mechanism_hash\":{}", self.mechanism_hash);
        write_u64_array(&mut s, "class_bytes", &self.class_bytes);
        write_u64_array(&mut s, "tile_throttles", &self.tile_throttles);
        write_u64_array(&mut s, "mc_read_depth", &self.mc_read_depth);
        write_u64_array(&mut s, "mc_write_depth", &self.mc_write_depth);
        write_u64_array(&mut s, "mc_pending", &self.mc_pending);
        s.push('}');
        s
    }
}

fn write_u64_array(s: &mut String, key: &str, vals: &[u64]) {
    let _ = write!(s, ",\"{key}\":[");
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{v}");
    }
    s.push(']');
}

/// Why a trace line failed to parse, with the byte offset of the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// Byte offset into the line where parsing stopped.
    pub offset: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for TraceParseError {}

/// Parses one JSONL trace line back into an [`EpochRecord`].
///
/// Accepts the grammar [`EpochRecord::to_json`] emits — a flat object of
/// unsigned integers, booleans, and arrays of unsigned integers — with
/// keys in any order and optional ASCII whitespace between tokens. Keys
/// absent from the line keep their [`Default`] value; unknown keys are an
/// error.
///
/// # Errors
///
/// Returns [`TraceParseError`] on any syntax violation, unknown key, or
/// type mismatch, pointing at the offending byte.
pub fn parse_line(line: &str) -> Result<EpochRecord, TraceParseError> {
    let mut cur = Cursor { s: line.as_bytes(), pos: 0 };
    let mut rec = EpochRecord::default();
    cur.skip_ws();
    cur.eat(b'{')?;
    cur.skip_ws();
    if cur.peek() == Some(b'}') {
        cur.pos += 1;
    } else {
        loop {
            let key = cur.parse_key()?;
            cur.skip_ws();
            cur.eat(b':')?;
            cur.skip_ws();
            match key {
                "epoch" => rec.epoch = cur.parse_u64()?,
                "cycle" => rec.cycle = cur.parse_u64()?,
                "m" => rec.m = cur.parse_u64()?,
                "dm" => rec.dm = cur.parse_u64()?,
                "e" => rec.e = cur.parse_u64()?,
                "rate_up" => rec.rate_up = cur.parse_bool()?,
                "delta_up" => rec.delta_up = cur.parse_bool()?,
                "sat" => rec.sat = cur.parse_bool()?,
                "mechanism_hash" => rec.mechanism_hash = cur.parse_u64()?,
                "class_bytes" => rec.class_bytes = cur.parse_u64_array()?,
                "tile_throttles" => rec.tile_throttles = cur.parse_u64_array()?,
                "mc_read_depth" => rec.mc_read_depth = cur.parse_u64_array()?,
                "mc_write_depth" => rec.mc_write_depth = cur.parse_u64_array()?,
                "mc_pending" => rec.mc_pending = cur.parse_u64_array()?,
                other => {
                    return Err(TraceParseError {
                        offset: cur.pos,
                        message: format!("unknown key {other:?}"),
                    })
                }
            }
            cur.skip_ws();
            match cur.bump() {
                Some(b',') => cur.skip_ws(),
                Some(b'}') => break,
                _ => return Err(cur.err("expected ',' or '}'")),
            }
        }
    }
    cur.skip_ws();
    if cur.pos != cur.s.len() {
        return Err(cur.err("trailing bytes after record"));
    }
    Ok(rec)
}

/// Byte cursor over one trace line.
struct Cursor<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: &str) -> TraceParseError {
        TraceParseError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, want: u8) -> Result<(), TraceParseError> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", char::from(want))))
        }
    }

    /// A double-quoted key. Keys are ASCII identifiers; escapes are not
    /// part of the grammar.
    fn parse_key(&mut self) -> Result<&'a str, TraceParseError> {
        self.eat(b'"')?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'"' {
                let key = &self.s[start..self.pos];
                self.pos += 1;
                return std::str::from_utf8(key).map_err(|_| TraceParseError {
                    offset: start,
                    message: "key is not UTF-8".into(),
                });
            }
            if b == b'\\' {
                return Err(self.err("escapes are not part of the trace grammar"));
            }
            self.pos += 1;
        }
        Err(self.err("unterminated key"))
    }

    fn parse_u64(&mut self) -> Result<u64, TraceParseError> {
        let start = self.pos;
        let mut v: u64 = 0;
        let mut any = false;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            let digit = u64::from(b - b'0');
            v = v.checked_mul(10).and_then(|v| v.checked_add(digit)).ok_or_else(|| {
                TraceParseError { offset: start, message: "integer overflows u64".into() }
            })?;
            self.pos += 1;
            any = true;
        }
        if any {
            Ok(v)
        } else {
            Err(self.err("expected an unsigned integer"))
        }
    }

    fn parse_bool(&mut self) -> Result<bool, TraceParseError> {
        for (lit, val) in [(&b"true"[..], true), (&b"false"[..], false)] {
            if self.s[self.pos..].starts_with(lit) {
                self.pos += lit.len();
                return Ok(val);
            }
        }
        Err(self.err("expected 'true' or 'false'"))
    }

    fn parse_u64_array(&mut self) -> Result<Vec<u64>, TraceParseError> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            self.skip_ws();
            out.push(self.parse_u64()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(out),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

/// A consumer of epoch records.
///
/// Sinks are attached to the system before a run and receive every
/// subsequent boundary record. `Debug` is required so systems holding
/// boxed sinks stay debuggable.
pub trait TraceSink: std::fmt::Debug {
    /// Consumes one epoch record.
    fn record(&mut self, rec: &EpochRecord);
}

/// An in-memory ring of the most recent records (always-on tracing with a
/// bounded footprint).
#[derive(Debug, Clone)]
pub struct RingSink {
    cap: usize,
    buf: VecDeque<EpochRecord>,
}

impl RingSink {
    /// Creates a ring keeping the last `cap` records.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero — a ring that can hold nothing records
    /// nothing.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be at least one record");
        Self { cap, buf: VecDeque::with_capacity(cap) }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &EpochRecord> {
        self.buf.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, rec: &EpochRecord) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(rec.clone());
    }
}

/// A sink writing one JSON object per line to any [`io::Write`].
///
/// Write errors cannot propagate through the infallible [`TraceSink`]
/// interface, so the sink latches the first failure and drops all
/// subsequent records; check [`JsonlSink::had_error`] after the run.
pub struct JsonlSink<W: io::Write> {
    out: W,
    failed: bool,
}

impl<W: io::Write> JsonlSink<W> {
    /// Wraps a writer. Callers wanting buffering supply a
    /// [`io::BufWriter`]; its `Drop` flushes when the sink is released.
    pub fn new(out: W) -> Self {
        Self { out, failed: false }
    }

    /// True once any write has failed (later records were discarded).
    pub fn had_error(&self) -> bool {
        self.failed
    }

    /// Unwraps the underlying writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: io::Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, rec: &EpochRecord) {
        if self.failed {
            return;
        }
        if writeln!(self.out, "{}", rec.to_json()).is_err() {
            self.failed = true;
        }
    }
}

impl<W: io::Write> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").field("failed", &self.failed).finish_non_exhaustive()
    }
}

/// A sink accumulating JSONL text in a shared in-memory buffer.
///
/// The parallel sweep harness runs many systems concurrently and must
/// merge their traces in submission order, byte-identical to a serial
/// run; each run therefore records into its own `MemSink` and the
/// harness concatenates the buffers afterwards. Clones share one buffer,
/// so the caller keeps a handle while the system owns the attached sink.
#[derive(Debug, Clone, Default)]
pub struct MemSink {
    buf: std::sync::Arc<std::sync::Mutex<String>>,
}

impl MemSink {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated JSONL text (one record per line).
    ///
    /// A poisoned lock cannot corrupt the plain `String` inside, so the
    /// buffer is recovered rather than propagating the panic.
    pub fn contents(&self) -> String {
        match self.buf.lock() {
            Ok(g) => g.clone(),
            Err(p) => p.into_inner().clone(),
        }
    }

    /// Takes the accumulated text, leaving the buffer empty.
    pub fn take(&self) -> String {
        match self.buf.lock() {
            Ok(mut g) => std::mem::take(&mut *g),
            Err(p) => std::mem::take(&mut *p.into_inner()),
        }
    }
}

impl TraceSink for MemSink {
    fn record(&mut self, rec: &EpochRecord) {
        let mut g = match self.buf.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        g.push_str(&rec.to_json());
        g.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EpochRecord {
        EpochRecord {
            epoch: 41,
            cycle: 840_000,
            m: 2048,
            dm: 16,
            e: 5,
            rate_up: true,
            delta_up: false,
            sat: true,
            mechanism_hash: 0x51ab_90de,
            class_bytes: vec![123_456, 0, 64],
            tile_throttles: vec![9, 0, 0, 17],
            mc_read_depth: vec![3],
            mc_write_depth: vec![0],
            mc_pending: vec![12],
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let rec = sample();
        assert_eq!(parse_line(&rec.to_json()), Ok(rec));
    }

    #[test]
    fn default_round_trips_with_empty_arrays() {
        let rec = EpochRecord::default();
        let line = rec.to_json();
        assert!(line.contains("\"class_bytes\":[]"), "{line}");
        assert_eq!(parse_line(&line), Ok(rec));
    }

    #[test]
    fn equal_records_serialize_identically() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn parser_accepts_any_key_order_and_whitespace() {
        let line = " { \"sat\" : true , \"m\" : 7 , \"class_bytes\" : [ 1 , 2 ] } ";
        let rec = parse_line(line).expect("reordered keys parse");
        assert!(rec.sat);
        assert_eq!(rec.m, 7);
        assert_eq!(rec.class_bytes, vec![1, 2]);
        assert_eq!(rec.epoch, 0, "absent keys default");
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        for bad in [
            "",
            "{",
            "{\"epoch\":}",
            "{\"epoch\":1,}",
            "{\"epoch\":true}",
            "{\"sat\":2}",
            "{\"mystery\":1}",
            "{\"class_bytes\":[1,]}",
            "{\"epoch\":1} extra",
            "{\"epoch\":99999999999999999999999999}",
        ] {
            assert!(parse_line(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn parse_error_reports_offset() {
        let err = parse_line("{\"epoch\":x}").expect_err("bad value");
        assert_eq!(err.offset, 9);
        assert!(err.to_string().contains("byte 9"), "{err}");
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let mut ring = RingSink::new(2);
        assert!(ring.is_empty());
        for i in 0..5u64 {
            ring.record(&EpochRecord { epoch: i, ..EpochRecord::default() });
        }
        assert_eq!(ring.len(), 2);
        let epochs: Vec<u64> = ring.records().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![3, 4]);
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn zero_capacity_ring_panics() {
        let _ = RingSink::new(0);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&sample());
        sink.record(&EpochRecord::default());
        assert!(!sink.had_error());
        let text = String::from_utf8(sink.into_inner()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(parse_line(lines[0]), Ok(sample()));
        assert_eq!(parse_line(lines[1]), Ok(EpochRecord::default()));
    }

    #[test]
    fn mem_sink_clones_share_one_buffer() {
        let handle = MemSink::new();
        let mut attached = handle.clone();
        attached.record(&sample());
        attached.record(&EpochRecord::default());
        let text = handle.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(parse_line(lines[0]), Ok(sample()));
        assert_eq!(handle.take(), text, "take drains what contents saw");
        assert!(handle.contents().is_empty(), "take leaves the buffer empty");
    }

    #[test]
    fn jsonl_sink_latches_write_errors() {
        /// A writer that always fails.
        struct Broken;
        impl io::Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("broken pipe"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Broken);
        sink.record(&sample());
        assert!(sink.had_error());
        sink.record(&sample()); // silently dropped, no panic
        assert!(sink.had_error());
    }
}
