//! Min-combining of component event horizons for quiescence-aware
//! cycle skipping.
//!
//! Every stateful component exposes `next_event(now) -> Option<Cycle>`:
//! the earliest cycle at which stepping it *might* change observable
//! state, or `None` when it schedules no event of its own (it can only
//! be woken by another component acting first). The system-level skip
//! loop min-combines those answers with a [`Horizon`]; if the combined
//! horizon lies strictly in the future, every cycle before it is
//! provably dead and can be jumped over in one step.
//!
//! The contract is deliberately one-sided: a component may report an
//! event *earlier* than anything actually happens (the system then just
//! steps normally through a few quiet cycles, exactly as naive stepping
//! would), but it must never report one *later* — skipping over a real
//! state change is the only way to break the byte-identical-output
//! guarantee. See `docs/PERFORMANCE.md` for the full contract.
//!
//! # Examples
//!
//! ```
//! use pabst_simkit::horizon::Horizon;
//!
//! let mut h = Horizon::new();
//! h.add(120);
//! h.merge(None); // an idle component contributes nothing
//! h.merge(Some(80));
//! assert_eq!(h.get(), Some(80));
//! assert!(Horizon::new().get().is_none(), "no events at all");
//! ```

use crate::Cycle;

/// Accumulates the minimum over a set of optional event times.
///
/// `None` inputs (components with no self-scheduled event) are
/// ignored; an all-`None` combination yields `None`, meaning the
/// machine is fully quiescent until external input — the caller may
/// skip as far as its own bound (e.g. the next epoch boundary).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Horizon(Option<Cycle>);

impl Horizon {
    /// An empty horizon: no events known yet.
    pub fn new() -> Self {
        Self(None)
    }

    /// Folds in a known event time.
    pub fn add(&mut self, at: Cycle) {
        self.0 = Some(match self.0 {
            Some(cur) => cur.min(at),
            None => at,
        });
    }

    /// Folds in an optional event time; `None` leaves the horizon as is.
    pub fn merge(&mut self, at: Option<Cycle>) {
        if let Some(at) = at {
            self.add(at);
        }
    }

    /// The earliest event folded in so far, or `None` when every input
    /// was `None`.
    pub fn get(&self) -> Option<Cycle> {
        self.0
    }

    /// Folds in an optional event time and reports whether it is already
    /// due (`at <= now`) — the short-circuit every system-level
    /// min-combine performs: a component with a due event forces a naive
    /// step this cycle, so there is no point folding further inputs.
    ///
    /// A due event is *not* folded into the horizon; the caller is
    /// expected to stop combining and step.
    pub fn merge_due(&mut self, at: Option<Cycle>, now: Cycle) -> bool {
        match at {
            Some(at) if at <= now => true,
            other => {
                self.merge(other);
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_horizon_is_none() {
        assert_eq!(Horizon::new().get(), None);
        assert_eq!(Horizon::default().get(), None);
    }

    #[test]
    fn add_takes_minimum() {
        let mut h = Horizon::new();
        h.add(50);
        h.add(30);
        h.add(90);
        assert_eq!(h.get(), Some(30));
    }

    #[test]
    fn merge_ignores_none() {
        let mut h = Horizon::new();
        h.merge(None);
        assert_eq!(h.get(), None);
        h.merge(Some(7));
        h.merge(None);
        assert_eq!(h.get(), Some(7));
        h.merge(Some(3));
        assert_eq!(h.get(), Some(3));
    }

    #[test]
    fn merge_due_short_circuits_on_due_events() {
        let mut h = Horizon::new();
        assert!(!h.merge_due(None, 10), "no event is never due");
        assert!(!h.merge_due(Some(15), 10), "future events fold in");
        assert_eq!(h.get(), Some(15));
        assert!(h.merge_due(Some(10), 10), "an event at now is due");
        assert!(h.merge_due(Some(3), 10), "a past event is due");
        assert_eq!(h.get(), Some(15), "due events are not folded");
    }
}
