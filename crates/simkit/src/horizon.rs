//! Min-combining of component event horizons for quiescence-aware
//! cycle skipping.
//!
//! Every stateful component exposes `next_event(now) -> Option<Cycle>`:
//! the earliest cycle at which stepping it *might* change observable
//! state, or `None` when it schedules no event of its own (it can only
//! be woken by another component acting first). The system-level skip
//! loop min-combines those answers with a [`Horizon`]; if the combined
//! horizon lies strictly in the future, every cycle before it is
//! provably dead and can be jumped over in one step.
//!
//! The contract is deliberately one-sided: a component may report an
//! event *earlier* than anything actually happens (the system then just
//! steps normally through a few quiet cycles, exactly as naive stepping
//! would), but it must never report one *later* — skipping over a real
//! state change is the only way to break the byte-identical-output
//! guarantee. See `docs/PERFORMANCE.md` for the full contract.
//!
//! # Examples
//!
//! ```
//! use pabst_simkit::horizon::Horizon;
//!
//! let mut h = Horizon::new();
//! h.add(120);
//! h.merge(None); // an idle component contributes nothing
//! h.merge(Some(80));
//! assert_eq!(h.get(), Some(80));
//! assert!(Horizon::new().get().is_none(), "no events at all");
//! ```

use crate::Cycle;

/// Accumulates the minimum over a set of optional event times.
///
/// `None` inputs (components with no self-scheduled event) are
/// ignored; an all-`None` combination yields `None`, meaning the
/// machine is fully quiescent until external input — the caller may
/// skip as far as its own bound (e.g. the next epoch boundary).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Horizon(Option<Cycle>);

impl Horizon {
    /// An empty horizon: no events known yet.
    pub fn new() -> Self {
        Self(None)
    }

    /// Folds in a known event time.
    pub fn add(&mut self, at: Cycle) {
        self.0 = Some(match self.0 {
            Some(cur) => cur.min(at),
            None => at,
        });
    }

    /// Folds in an optional event time; `None` leaves the horizon as is.
    pub fn merge(&mut self, at: Option<Cycle>) {
        if let Some(at) = at {
            self.add(at);
        }
    }

    /// The earliest event folded in so far, or `None` when every input
    /// was `None`.
    pub fn get(&self) -> Option<Cycle> {
        self.0
    }

    /// Folds in an optional event time and reports whether it is already
    /// due (`at <= now`) — the short-circuit every system-level
    /// min-combine performs: a component with a due event forces a naive
    /// step this cycle, so there is no point folding further inputs.
    ///
    /// A due event is *not* folded into the horizon; the caller is
    /// expected to stop combining and step.
    pub fn merge_due(&mut self, at: Option<Cycle>, now: Cycle) -> bool {
        match at {
            Some(at) if at <= now => true,
            other => {
                self.merge(other);
                false
            }
        }
    }
}

/// Sentinel for "no self-scheduled wake": a parked domain carrying this
/// wake time can only be unparked by an explicit wake edge.
pub const NO_WAKE: Cycle = Cycle::MAX;

/// Park/unpark bookkeeping for a set of skip domains, with a memoized
/// earliest-wake answer.
///
/// A *parked* domain is one the scheduler has proven inert: its cached
/// `next_event` answer (`wake_at`) lies in the future (or is [`NO_WAKE`]),
/// so the step loop stops visiting it. The cache is dirty-flagged by
/// construction — it is only ever written at park time and discarded at
/// unpark time, and every mutation that could invalidate it (an external
/// message, an epoch boundary, the domain's own due wake) must route
/// through an unpark. `owed_from` records the first cycle whose
/// per-cycle bookkeeping the domain still owes; [`DomainHorizon::unpark`]
/// returns the owed cycle count so the caller can batch-accrue it
/// through the domain's `accrue_skip` path.
///
/// `min_wake` memoizes the minimum `wake_at` over parked domains as a
/// *lower bound*: parking folds the new wake in eagerly, unparking
/// leaves it stale-low (conservative — the caller rescans and finds
/// nothing due, then calls [`DomainHorizon::recompute_min`]). A stale
/// bound can only cause an extra scan, never a missed wake.
#[derive(Debug, Clone)]
pub struct DomainHorizon {
    wake_at: Vec<Cycle>,
    owed_from: Vec<Cycle>,
    parked: usize,
    min_wake: Cycle,
}

impl DomainHorizon {
    /// A set of `n` domains, all initially resident (not parked).
    pub fn new(n: usize) -> Self {
        Self {
            wake_at: vec![NO_WAKE; n],
            owed_from: vec![NO_WAKE; n],
            parked: 0,
            min_wake: NO_WAKE,
        }
    }

    /// Number of domains tracked.
    pub fn len(&self) -> usize {
        self.wake_at.len()
    }

    /// True when no domains are tracked.
    pub fn is_empty(&self) -> bool {
        self.wake_at.is_empty()
    }

    /// True when domain `k` is currently parked.
    pub fn is_parked(&self, k: usize) -> bool {
        self.owed_from[k] != NO_WAKE
    }

    /// Number of currently parked domains.
    pub fn parked_count(&self) -> usize {
        self.parked
    }

    /// Parks domain `k`: its per-cycle bookkeeping is owed from
    /// `owed_from` onward, and its cached next event is `wake_at`
    /// (`None` = no self-scheduled wake, only an external edge can
    /// unpark it). Parking an already-parked domain is a bug.
    pub fn park(&mut self, k: usize, owed_from: Cycle, wake_at: Option<Cycle>) {
        debug_assert!(!self.is_parked(k), "double park of domain {k}");
        debug_assert!(owed_from != NO_WAKE, "owed_from is a real cycle");
        let wake = wake_at.unwrap_or(NO_WAKE);
        self.wake_at[k] = wake;
        self.owed_from[k] = owed_from;
        self.parked += 1;
        self.min_wake = self.min_wake.min(wake);
    }

    /// Unparks domain `k`, returning the number of owed bookkeeping
    /// cycles in `[owed_from, through)`. A no-op returning 0 when `k`
    /// is not parked, so wake edges need not pre-check.
    pub fn unpark(&mut self, k: usize, through: Cycle) -> u64 {
        if !self.is_parked(k) {
            return 0;
        }
        let owed = through.saturating_sub(self.owed_from[k]);
        self.wake_at[k] = NO_WAKE;
        self.owed_from[k] = NO_WAKE;
        self.parked -= 1;
        owed
    }

    /// Cached wake time of parked domain `k` ([`NO_WAKE`] when it has no
    /// self-scheduled event, or when `k` is not parked).
    pub fn wake_at(&self, k: usize) -> Cycle {
        self.wake_at[k]
    }

    /// True when some parked domain *might* have a due wake
    /// (`wake_at <= now`). Based on the memoized lower bound, so it may
    /// answer `true` spuriously after unparks; callers rescan, wake
    /// whatever is really due, then call
    /// [`DomainHorizon::recompute_min`] to tighten the bound.
    pub fn maybe_due(&self, now: Cycle) -> bool {
        self.parked > 0 && self.min_wake <= now
    }

    /// Recomputes the memoized minimum wake over parked domains. Call
    /// after a due-scan; correctness never depends on this (the bound
    /// is only ever stale-*low*), only probe cost does.
    pub fn recompute_min(&mut self) {
        self.min_wake = if self.parked == 0 {
            NO_WAKE
        } else {
            self.wake_at.iter().copied().min().unwrap_or(NO_WAKE)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_horizon_is_none() {
        assert_eq!(Horizon::new().get(), None);
        assert_eq!(Horizon::default().get(), None);
    }

    #[test]
    fn add_takes_minimum() {
        let mut h = Horizon::new();
        h.add(50);
        h.add(30);
        h.add(90);
        assert_eq!(h.get(), Some(30));
    }

    #[test]
    fn merge_ignores_none() {
        let mut h = Horizon::new();
        h.merge(None);
        assert_eq!(h.get(), None);
        h.merge(Some(7));
        h.merge(None);
        assert_eq!(h.get(), Some(7));
        h.merge(Some(3));
        assert_eq!(h.get(), Some(3));
    }

    #[test]
    fn merge_due_short_circuits_on_due_events() {
        let mut h = Horizon::new();
        assert!(!h.merge_due(None, 10), "no event is never due");
        assert!(!h.merge_due(Some(15), 10), "future events fold in");
        assert_eq!(h.get(), Some(15));
        assert!(h.merge_due(Some(10), 10), "an event at now is due");
        assert!(h.merge_due(Some(3), 10), "a past event is due");
        assert_eq!(h.get(), Some(15), "due events are not folded");
    }

    #[test]
    fn domain_park_unpark_owed_cycles() {
        let mut d = DomainHorizon::new(4);
        assert_eq!(d.parked_count(), 0);
        assert!(!d.is_parked(2));

        d.park(2, 10, Some(50));
        assert!(d.is_parked(2));
        assert_eq!(d.wake_at(2), 50);
        assert_eq!(d.parked_count(), 1);

        // Owed covers [owed_from, through): cycles 10..37.
        assert_eq!(d.unpark(2, 37), 27);
        assert!(!d.is_parked(2));
        assert_eq!(d.parked_count(), 0);

        // Unparking a resident domain is a free no-op.
        assert_eq!(d.unpark(2, 99), 0);

        // A NO_WAKE park only wakes via explicit edges; owed still counts.
        d.park(0, 100, None);
        assert_eq!(d.wake_at(0), NO_WAKE);
        d.recompute_min();
        assert!(!d.maybe_due(u64::MAX - 1), "NO_WAKE never reads as due");
        assert_eq!(d.unpark(0, 100), 0, "immediate wake owes nothing");
    }

    #[test]
    fn domain_maybe_due_is_a_conservative_bound() {
        let mut d = DomainHorizon::new(3);
        d.park(0, 0, Some(20));
        d.park(1, 0, Some(80));
        assert!(!d.maybe_due(19));
        assert!(d.maybe_due(20));

        // Unpark the min holder: the bound goes stale-low — spurious
        // `true` is allowed, `false` while something is due is not.
        d.unpark(0, 20);
        assert!(d.maybe_due(20), "stale-low bound is conservative");
        d.recompute_min();
        assert!(!d.maybe_due(20), "recompute tightens the bound");
        assert!(d.maybe_due(80));
    }

    /// The memoization contract, exercised by a seeded op sequence: the
    /// dirty-flagged cache (`maybe_due` / `wake_at`) must answer
    /// identically to fresh recomputation over a naive reference model
    /// at every step.
    #[test]
    fn domain_memo_matches_fresh_recompute_under_seeded_sequences() {
        const N: usize = 8;
        for seed in [3u64, 0x9e3779b9, 0xdeadbeef] {
            let mut rng = seed;
            let mut next = move || {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                rng >> 33
            };

            let mut d = DomainHorizon::new(N);
            // Reference model: parked[k] = Some((owed_from, wake_at)).
            let mut reference: Vec<Option<(Cycle, Cycle)>> = vec![None; N];
            let mut now: Cycle = 0;

            for _ in 0..2000 {
                let k = (next() as usize) % N;
                match next() % 4 {
                    0 => {
                        // Park a resident domain at a future/no wake.
                        if reference[k].is_none() {
                            let wake = match next() % 3 {
                                0 => None,
                                _ => Some(now + 1 + next() % 64),
                            };
                            d.park(k, now, wake);
                            reference[k] = Some((now, wake.unwrap_or(NO_WAKE)));
                        }
                    }
                    1 => {
                        // Wake edge: unpark through `now`.
                        let owed = d.unpark(k, now);
                        let expect =
                            reference[k].take().map_or(0, |(from, _)| now.saturating_sub(from));
                        assert_eq!(owed, expect, "owed cycles diverged (seed {seed})");
                    }
                    2 => now += next() % 16,
                    _ => d.recompute_min(),
                }

                // Fresh recomputation over the reference model.
                for (k, slot) in reference.iter().enumerate() {
                    let fresh = slot.map_or(NO_WAKE, |(_, wake)| wake);
                    assert_eq!(d.is_parked(k), slot.is_some(), "park state diverged (seed {seed})");
                    if slot.is_some() {
                        assert_eq!(d.wake_at(k), fresh, "cached wake diverged (seed {seed})");
                    }
                }
                let fresh_due = reference.iter().flatten().any(|&(_, wake)| wake <= now);
                if fresh_due {
                    assert!(d.maybe_due(now), "memo missed a due wake (seed {seed})");
                }
                d.recompute_min();
                assert_eq!(
                    d.maybe_due(now),
                    fresh_due,
                    "recomputed memo diverged from fresh answer (seed {seed})"
                );
            }
        }
    }
}
