//! A small, deterministic, explicitly seeded pseudo-random number
//! generator for workload generation.
//!
//! The simulator must be bit-reproducible across runs and platforms
//! (the paper's evaluation depends on replaying identical cycle-level
//! traces), so nothing in the workspace may draw entropy from the
//! environment. [`SimRng`] is a SplitMix64 generator: 64 bits of state,
//! full period, passes BigCrush for the workload-generation purposes we
//! put it to, and — crucially — its output is a pure function of the
//! seed.
//!
//! # Examples
//!
//! ```
//! use pabst_simkit::rng::SimRng;
//!
//! let mut a = SimRng::seed_from_u64(7);
//! let mut b = SimRng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.gen_range(0..10);
//! assert!(x < 10);
//! ```

use core::ops::Range;

/// Deterministic SplitMix64 generator, seeded explicitly.
///
/// The API intentionally mirrors the subset of `rand::Rng` the workload
/// generators used, so call sites read identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator whose entire output stream is determined by
    /// `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea & Flood, OOPSLA'14): one additive state
        // update plus an avalanche mix, so equal seeds give equal streams
        // on every platform.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `range` via Lemire's widening-multiply reduction
    /// (bias below 2^-64 for the span sizes used here, and branch-free so
    /// the cycle cost is constant).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range called with empty range");
        let span = range.end - range.start;
        let hi = (u128::from(self.next_u64()) * u128::from(span)) >> 64;
        range.start + hi as u64
    }

    /// Bernoulli draw: true with probability `p`.
    ///
    /// `p` is clamped to `[0, 1]`; the comparison uses the top 53 bits of
    /// one output word, so a given seed yields the same decisions on every
    /// platform.
    // simlint: allow(taint-float): IEEE-754 compare of exact dyadic rationals — one multiply and one `<` on values with ≤53 significant bits is bit-reproducible on every platform
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53 uniformly distributed mantissa bits in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn known_answer_splitmix64() {
        // Reference values from the canonical SplitMix64 with seed 0.
        let mut r = SimRng::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SimRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.gen_range(10..17);
            assert!((10..17).contains(&v));
        }
    }

    #[test]
    fn gen_range_covers_small_span() {
        let mut r = SimRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.gen_range(0..4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_empty_panics() {
        let mut r = SimRng::seed_from_u64(0);
        let _ = r.gen_range(5..5);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SimRng::seed_from_u64(11);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SimRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "observed {frac}");
    }
}
