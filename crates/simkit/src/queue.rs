//! Finite FIFOs with explicit backpressure and latency.
//!
//! Every buffering structure in the modelled SoC is finite: L2/L3 MSHRs,
//! memory-controller ingress FIFOs and front-end queues, and the per-bank
//! back-end queues. Backpressure through these queues is *the* reason
//! target-only bandwidth regulation fails when the system is oversubscribed
//! (PABST §I, Fig. 1), so the queues make fullness explicit: `push` returns
//! the item back to the caller when there is no room.

use std::collections::VecDeque;

use crate::Cycle;

/// A finite FIFO. `push` fails (returning the item) when the queue is full.
///
/// # Examples
///
/// ```
/// use pabst_simkit::queue::BoundedQueue;
///
/// let mut q = BoundedQueue::new(1);
/// assert_eq!(q.push(7), Ok(()));
/// assert_eq!(q.push(8), Err(8)); // full: backpressure
/// assert_eq!(q.pop(), Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates an empty queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero; a zero-capacity queue can never accept
    /// an item and always indicates a configuration bug.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be non-zero");
        Self { items: VecDeque::with_capacity(capacity), capacity }
    }

    /// Appends `item`, or returns it back when the queue is full.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` when the queue is at capacity, handing the item
    /// back so the producer can hold it and retry (backpressure).
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            Err(item)
        } else {
            self.items.push_back(item);
            Ok(())
        }
    }

    /// Removes and returns the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Returns a reference to the oldest item without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when `push` would fail.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// The maximum number of items the queue can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Free slots remaining.
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Iterates over queued items from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Mutably iterates over queued items from oldest to newest.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.items.iter_mut()
    }

    /// Removes and returns the item at `index` (0 = oldest).
    ///
    /// Used by schedulers (e.g. the PABST priority arbiter) that service
    /// queues out of order.
    pub fn remove(&mut self, index: usize) -> Option<T> {
        self.items.remove(index)
    }

    /// Removes and returns the first item matching `pred`, scanning from the
    /// oldest entry.
    pub fn pop_where(&mut self, pred: impl FnMut(&T) -> bool) -> Option<T> {
        let idx = self.items.iter().position(pred)?;
        self.items.remove(idx)
    }
}

/// A FIFO whose entries become visible a fixed number of cycles after they
/// are pushed. Models fixed-latency pipelined paths such as network hops and
/// cache array lookups.
///
/// An entry pushed at cycle `c` with latency `L` is poppable from cycle
/// `c + L` onward. The queue preserves push order and is unbounded — use it
/// for paths whose buffering is modelled elsewhere (the finite structure at
/// the far end applies the backpressure).
///
/// # Examples
///
/// ```
/// use pabst_simkit::queue::DelayQueue;
///
/// let mut link: DelayQueue<u32> = DelayQueue::new(5);
/// link.push(100, 1);
/// link.push(101, 2);
/// assert_eq!(link.pop_ready(104), None);
/// assert_eq!(link.pop_ready(105), Some(1));
/// assert_eq!(link.pop_ready(105), None); // 2 not ready until 106
/// assert_eq!(link.pop_ready(106), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct DelayQueue<T> {
    latency: Cycle,
    items: VecDeque<(Cycle, T)>, // (ready_at, item)
}

impl<T> DelayQueue<T> {
    /// Creates a queue whose entries become visible `latency` cycles after
    /// being pushed.
    pub fn new(latency: Cycle) -> Self {
        Self { latency, items: VecDeque::new() }
    }

    /// The fixed latency applied to every entry.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Pushes `item` at cycle `now`; it becomes poppable at `now + latency`.
    pub fn push(&mut self, now: Cycle, item: T) {
        let ready = now + self.latency;
        debug_assert!(
            self.items.back().is_none_or(|(r, _)| *r <= ready),
            "DelayQueue pushes must be in non-decreasing time order"
        );
        self.items.push_back((ready, item));
    }

    /// Pops the oldest entry if it is ready at cycle `now`.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        match self.items.front() {
            Some((ready, _)) if *ready <= now => self.items.pop_front().map(|(_, t)| t),
            _ => None,
        }
    }

    /// Peeks at the oldest entry if it is ready at cycle `now`.
    pub fn peek_ready(&self, now: Cycle) -> Option<&T> {
        match self.items.front() {
            Some((ready, item)) if *ready <= now => Some(item),
            _ => None,
        }
    }

    /// Number of in-flight entries (ready or not).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no entries are in flight.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Cycle at which the oldest in-flight entry becomes visible, or
    /// `None` when the queue is empty. Entries are pushed in program
    /// order with a fixed latency, so ready times are non-decreasing and
    /// the front entry is always the earliest — this is the queue's
    /// contribution to a fast-forward horizon.
    pub fn next_ready(&self) -> Option<Cycle> {
        self.items.front().map(|(ready, _)| *ready)
    }
}

/// A delay queue whose entries may carry *different* latencies — the
/// distance-dependent network paths of a modelled topology, where a hop
/// count per (source, destination) pair replaces [`DelayQueue`]'s single
/// fixed latency.
///
/// Entries are delivered in (ready_at, push order) — a stable min-heap on
/// the ready cycle, so two entries becoming ready on the same cycle pop in
/// the order they were pushed. With a uniform latency this reproduces
/// [`DelayQueue`]'s FIFO pop order exactly, which is what keeps the
/// uniform-topology defaults byte-identical to the fixed-latency model
/// they replace.
///
/// # Examples
///
/// ```
/// use pabst_simkit::queue::VarDelayQueue;
///
/// let mut net: VarDelayQueue<&str> = VarDelayQueue::new();
/// net.push(105, "far");  // pushed first, arrives later
/// net.push(102, "near"); // pushed second, arrives sooner
/// assert_eq!(net.next_ready(), Some(102));
/// assert_eq!(net.pop_ready(104), Some("near"));
/// assert_eq!(net.pop_ready(104), None);
/// assert_eq!(net.pop_ready(105), Some("far"));
/// ```
#[derive(Debug, Clone)]
pub struct VarDelayQueue<T> {
    heap: std::collections::BinaryHeap<VarEntry<T>>,
    seq: u64,
}

/// Heap entry ordered min-first on (ready, seq). Only the key fields take
/// part in comparisons, so the payload needs no `Ord`.
#[derive(Debug, Clone)]
struct VarEntry<T> {
    ready: Cycle,
    seq: u64,
    item: T,
}

impl<T> PartialEq for VarEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.ready, self.seq) == (other.ready, other.seq)
    }
}
impl<T> Eq for VarEntry<T> {}
impl<T> PartialOrd for VarEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for VarEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest entry
        // (lowest ready, then lowest seq) on top.
        (other.ready, other.seq).cmp(&(self.ready, self.seq))
    }
}

impl<T> VarDelayQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self { heap: std::collections::BinaryHeap::new(), seq: 0 }
    }

    /// Enqueues `item` for delivery at cycle `ready` (absolute, not a
    /// latency — the caller owns the distance model).
    pub fn push(&mut self, ready: Cycle, item: T) {
        self.heap.push(VarEntry { ready, seq: self.seq, item });
        self.seq += 1;
    }

    /// Pops the earliest entry whose ready cycle is `<= now`; ties pop in
    /// push order.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        if self.heap.peek().is_some_and(|e| e.ready <= now) {
            self.heap.pop().map(|e| e.item)
        } else {
            None
        }
    }

    /// Number of in-flight entries (ready or not).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entries are in flight.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Cycle at which the earliest in-flight entry becomes deliverable
    /// (its horizon contribution), or `None` when empty.
    pub fn next_ready(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.ready)
    }
}

impl<T> Default for VarDelayQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_fifo_order() {
        let mut q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert!(q.is_full());
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn bounded_queue_backpressure_returns_item() {
        let mut q = BoundedQueue::new(2);
        q.push("a").unwrap();
        q.push("b").unwrap();
        assert_eq!(q.push("c"), Err("c"));
        q.pop();
        assert_eq!(q.push("c"), Ok(()));
    }

    #[test]
    fn bounded_queue_free_and_capacity_track_len() {
        let mut q = BoundedQueue::new(3);
        assert_eq!(q.free(), 3);
        q.push(1).unwrap();
        assert_eq!(q.free(), 2);
        assert_eq!(q.capacity(), 3);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn bounded_queue_remove_middle() {
        let mut q = BoundedQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.remove(2), Some(2));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn bounded_queue_pop_where_scans_oldest_first() {
        let mut q = BoundedQueue::new(4);
        q.push(10).unwrap();
        q.push(21).unwrap();
        q.push(31).unwrap();
        assert_eq!(q.pop_where(|v| v % 10 == 1), Some(21));
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn bounded_queue_zero_capacity_panics() {
        let _ = BoundedQueue::<u8>::new(0);
    }

    #[test]
    fn delay_queue_respects_latency() {
        let mut q = DelayQueue::new(10);
        q.push(0, 'x');
        for now in 0..10 {
            assert_eq!(q.pop_ready(now), None);
        }
        assert_eq!(q.pop_ready(10), Some('x'));
    }

    #[test]
    fn delay_queue_zero_latency_ready_same_cycle() {
        let mut q = DelayQueue::new(0);
        q.push(5, 1u8);
        assert_eq!(q.pop_ready(5), Some(1));
    }

    #[test]
    fn delay_queue_next_ready_tracks_front_entry() {
        let mut q = DelayQueue::new(4);
        assert_eq!(q.next_ready(), None);
        q.push(10, 'a');
        q.push(12, 'b');
        assert_eq!(q.next_ready(), Some(14));
        assert_eq!(q.pop_ready(14), Some('a'));
        assert_eq!(q.next_ready(), Some(16));
        assert_eq!(q.pop_ready(16), Some('b'));
        assert_eq!(q.next_ready(), None);
    }

    #[test]
    fn delay_queue_preserves_order_and_peek() {
        let mut q = DelayQueue::new(2);
        q.push(0, 1);
        q.push(0, 2);
        q.push(1, 3);
        assert_eq!(q.peek_ready(2), Some(&1));
        assert_eq!(q.pop_ready(2), Some(1));
        assert_eq!(q.pop_ready(2), Some(2));
        assert_eq!(q.pop_ready(2), None);
        assert_eq!(q.pop_ready(3), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn var_delay_queue_delivers_in_ready_order() {
        let mut q = VarDelayQueue::new();
        q.push(30, 'c');
        q.push(10, 'a');
        q.push(20, 'b');
        assert_eq!(q.next_ready(), Some(10));
        assert_eq!(q.pop_ready(9), None);
        assert_eq!(q.pop_ready(25), Some('a'));
        assert_eq!(q.pop_ready(25), Some('b'));
        assert_eq!(q.pop_ready(25), None);
        assert_eq!(q.next_ready(), Some(30));
        assert_eq!(q.pop_ready(30), Some('c'));
        assert!(q.is_empty());
    }

    #[test]
    fn var_delay_queue_ties_break_by_push_order() {
        let mut q = VarDelayQueue::new();
        for i in 0..100u32 {
            q.push(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop_ready(7), Some(i), "equal-ready entries must pop FIFO");
        }
    }

    #[test]
    fn var_delay_queue_with_uniform_latency_matches_delay_queue() {
        // The byte-compatibility claim in miniature: identical push/pop
        // sequences through a fixed-latency DelayQueue and a VarDelayQueue
        // given the same uniform latency produce identical pop streams.
        let mut fixed = DelayQueue::new(8);
        let mut var = VarDelayQueue::new();
        let mut popped = (Vec::new(), Vec::new());
        for now in 0..200u64 {
            if now % 3 == 0 {
                fixed.push(now, now);
                var.push(now + 8, now);
            }
            while let Some(v) = fixed.pop_ready(now) {
                popped.0.push((now, v));
            }
            while let Some(v) = var.pop_ready(now) {
                popped.1.push((now, v));
            }
            assert_eq!(fixed.next_ready(), var.next_ready(), "horizons agree at {now}");
        }
        assert_eq!(popped.0, popped.1);
    }
}
