//! Cycle-stepped simulation utilities shared by every crate in the PABST
//! reproduction.
//!
//! The simulator is deterministic and single-threaded: a system struct owns
//! its components and a `step()` method advances simulated time one cycle at
//! a time. This crate provides the small, well-tested building blocks those
//! components are made of:
//!
//! * [`Cycle`] — the simulated time unit (one CPU clock at 2 GHz by
//!   convention, so 10 µs = 20 000 cycles).
//! * [`queue::BoundedQueue`] — a finite FIFO with explicit backpressure.
//! * [`queue::DelayQueue`] — a FIFO whose entries become visible only after
//!   a fixed latency, used to model pipelined paths (network hops, cache
//!   lookup latencies).
//! * [`stats`] — counters, windowed rates, streaming histograms and
//!   per-epoch time series used to produce every figure in the paper.
//! * [`rng::SimRng`] — a deterministic, explicitly seeded SplitMix64
//!   generator, the only randomness source allowed in the simulator.
//! * [`fault`] — deterministic fault-injection plans: seed-reproducible
//!   injection decisions (SAT drop/delay/corrupt, epoch skew, MC stall,
//!   credit leak) with a JSONL-serializable schema.
//! * [`sanitizer::Sanitizer`] — debug-mode runtime invariant checks
//!   (credit caps, deadline monotonicity, queue conservation) wired into
//!   the SoC epoch loop.
//! * [`invariant::InvariantChecker`] — the release-mode counterpart: an
//!   always-deterministic epoch-boundary law evaluator (conservation,
//!   bounds, monotonicity, liveness) that records typed
//!   [`invariant::InvariantViolation`]s instead of panicking, feeding
//!   chaos-campaign outcome classification (docs/RESILIENCE.md).
//! * [`trace`] — epoch-structured observability: typed per-epoch records,
//!   pluggable sinks (in-memory ring, JSONL writer), and a dependency-free
//!   integer-only serializer.
//! * [`horizon::Horizon`] — min-combining of per-component `next_event`
//!   answers, the primitive behind quiescence-aware cycle skipping
//!   (docs/PERFORMANCE.md).
//!
//! # Examples
//!
//! ```
//! use pabst_simkit::queue::DelayQueue;
//!
//! let mut q: DelayQueue<&'static str> = DelayQueue::new(3);
//! q.push(10, "hello");
//! assert_eq!(q.pop_ready(12), None); // not visible until cycle 13
//! assert_eq!(q.pop_ready(13), Some("hello"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod horizon;
pub mod invariant;
pub mod queue;
pub mod rng;
pub mod sanitizer;
pub mod stats;
pub mod trace;

/// Simulated time, measured in CPU clock cycles.
///
/// By convention the simulated CPU clock is 2 GHz, so one cycle is 0.5 ns
/// and the paper's 10 µs epoch is 20 000 cycles.
pub type Cycle = u64;

/// Number of bytes in a cache line / DRAM burst throughout the model.
pub const LINE_BYTES: u64 = 64;

/// Converts a byte count over a cycle count into GB/s assuming a 2 GHz clock.
///
/// # Examples
///
/// ```
/// // 64 bytes every 7 cycles at 2 GHz is ~18.3 GB/s.
/// let gbps = pabst_simkit::bytes_per_cycle_to_gbps(64.0 / 7.0);
/// assert!((gbps - 18.28).abs() < 0.1);
/// ```
pub fn bytes_per_cycle_to_gbps(bytes_per_cycle: f64) -> f64 {
    bytes_per_cycle * 2.0 // 2e9 cycles/s * B/cycle = 2e9 B/s = 2 GB/s per B/cycle
}
