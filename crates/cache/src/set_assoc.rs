//! A set-associative cache with LRU replacement and way-based QoS
//! partitioning.
//!
//! The same structure models the private L1D/L2 (no partitioning) and the
//! shared L3 (exclusive way partitions per QoS class, as the paper's
//! experiments configure, §IV-A). Partitioning follows the Intel-CAT
//! convention: *lookups* see every way (so a line is still hit after a
//! repartition), but *allocations* for a class may only victimize ways in
//! the class's mask.

use pabst_core::qos::{QosId, MAX_CLASSES};

use crate::addr::LineAddr;

/// A bitmask of allowed allocation ways for one QoS class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WayMask(pub u64);

impl WayMask {
    /// A mask allowing every way of a `ways`-way cache.
    pub fn all(ways: usize) -> Self {
        assert!(ways <= 64, "at most 64 ways supported");
        if ways == 64 {
            Self(u64::MAX)
        } else {
            Self((1u64 << ways) - 1)
        }
    }

    /// A contiguous mask covering `count` ways starting at `first`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds 64 ways or `count` is zero.
    pub fn range(first: usize, count: usize) -> Self {
        assert!(count > 0, "a partition must contain at least one way");
        assert!(first + count <= 64, "way range exceeds 64");
        let ones = if count == 64 { u64::MAX } else { (1u64 << count) - 1 };
        Self(ones << first)
    }

    /// True when way `w` is allowed.
    pub fn allows(self, w: usize) -> bool {
        (self.0 >> w) & 1 == 1
    }

    /// Number of allowed ways.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }
}

/// Geometry of a [`SetAssocCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// Builds geometry for a cache of `bytes` capacity with `ways`
    /// associativity and 64-byte lines.
    ///
    /// # Panics
    ///
    /// Panics if the parameters don't produce a power-of-two, non-zero set
    /// count, or `ways` is 0 or > 64.
    pub fn with_capacity(bytes: u64, ways: usize) -> Self {
        assert!(ways > 0 && ways <= 64, "ways must be in 1..=64");
        let lines = bytes / pabst_simkit::LINE_BYTES;
        let sets = (lines / ways as u64) as usize;
        assert!(sets > 0 && sets.is_power_of_two(), "sets must be a power of two, got {sets}");
        Self { sets, ways }
    }

    /// Total capacity in bytes.
    pub fn bytes(&self) -> u64 {
        (self.sets * self.ways) as u64 * pabst_simkit::LINE_BYTES
    }
}

/// A line evicted by a fill: who owned it and whether it was dirty (dirty
/// evictions from the L3 become memory writebacks, which PABST charges to
/// the demand class that caused them — §III-B3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted line.
    pub line: LineAddr,
    /// The QoS class that allocated the line.
    pub owner: QosId,
    /// True when the line held modified data (requires a writeback).
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    owner: QosId,
    /// Last-touch stamp for LRU (global monotone counter).
    lru: u64,
}

impl Way {
    fn empty() -> Self {
        Self { tag: 0, valid: false, dirty: false, owner: QosId::new(0), lru: 0 }
    }
}

/// A set-associative, write-back, write-allocate cache with LRU
/// replacement and optional per-class way partitioning.
///
/// Purely functional state: lookups and fills mutate tags/LRU but carry no
/// timing; latency is applied by the caller.
///
/// # Examples
///
/// ```
/// use pabst_cache::{CacheConfig, SetAssocCache, LineAddr};
/// use pabst_core::qos::QosId;
///
/// let mut c = SetAssocCache::new(CacheConfig { sets: 2, ways: 2 });
/// let q = QosId::new(0);
/// let line = LineAddr::new(4);
/// assert!(!c.probe(line));             // cold miss
/// assert_eq!(c.fill(line, q, false), None);
/// assert!(c.probe(line));              // now hits
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    /// All ways of all sets in one flat allocation (`sets * ways` long,
    /// set-major): one indirection per lookup instead of two, and
    /// adjacent ways share cache lines of the *host* machine.
    ways: Vec<Way>,
    masks: [WayMask; MAX_CLASSES],
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates an empty cache; all classes may initially allocate anywhere.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.sets.is_power_of_two() && cfg.sets > 0, "sets must be a power of two");
        assert!(cfg.ways > 0 && cfg.ways <= 64, "ways must be in 1..=64");
        Self {
            cfg,
            ways: vec![Way::empty(); cfg.sets * cfg.ways],
            masks: [WayMask::all(cfg.ways); MAX_CLASSES],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The ways of the set holding `line`, as one contiguous slice.
    fn set(&self, si: usize) -> &[Way] {
        &self.ways[si * self.cfg.ways..(si + 1) * self.cfg.ways]
    }

    /// Mutable form of [`SetAssocCache::set`].
    fn set_mut(&mut self, si: usize) -> &mut [Way] {
        &mut self.ways[si * self.cfg.ways..(si + 1) * self.cfg.ways]
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Restricts allocations by `class` to the ways in `mask` (CAT-style).
    ///
    /// # Panics
    ///
    /// Panics if the mask selects no way inside the cache's associativity.
    pub fn set_partition(&mut self, class: QosId, mask: WayMask) {
        let in_range = mask.0 & WayMask::all(self.cfg.ways).0;
        assert!(in_range != 0, "partition mask selects no valid way");
        self.masks[class.index()] = WayMask(in_range);
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.get() as usize) & (self.cfg.sets - 1)
    }

    fn tag(&self, line: LineAddr) -> u64 {
        line.get() >> self.cfg.sets.trailing_zeros()
    }

    /// Looks up `line`; on a hit the LRU stamp is refreshed. Returns whether
    /// the line is present.
    pub fn probe(&mut self, line: LineAddr) -> bool {
        self.tick += 1;
        let (si, tag) = (self.set_index(line), self.tag(line));
        let tick = self.tick;
        if let Some(w) = self.set_mut(si).iter_mut().find(|w| w.valid && w.tag == tag) {
            w.lru = tick;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Looks up `line` and marks it dirty on a hit (a store). Returns
    /// whether the line was present.
    pub fn probe_write(&mut self, line: LineAddr) -> bool {
        let hit = self.probe(line);
        if hit {
            let (si, tag) = (self.set_index(line), self.tag(line));
            if let Some(w) = self.set_mut(si).iter_mut().find(|w| w.valid && w.tag == tag) {
                w.dirty = true;
            }
        }
        hit
    }

    /// True when `line` is present, without touching LRU or hit counters.
    pub fn contains(&self, line: LineAddr) -> bool {
        let (si, tag) = (self.set_index(line), self.tag(line));
        self.set(si).iter().any(|w| w.valid && w.tag == tag)
    }

    /// Installs `line` on behalf of `class` (write-allocate when `dirty`),
    /// returning the victim if a valid line was displaced.
    ///
    /// The victim is the LRU line among the ways `class` may allocate into;
    /// invalid ways in the class's partition are used first. If the line is
    /// already present, its dirty bit is OR-ed and no eviction occurs.
    pub fn fill(&mut self, line: LineAddr, class: QosId, dirty: bool) -> Option<Evicted> {
        self.tick += 1;
        let (si, tag) = (self.set_index(line), self.tag(line));
        let tick = self.tick;

        // Already present (e.g. a racing fill): refresh, merge dirty.
        if let Some(w) = self.set_mut(si).iter_mut().find(|w| w.valid && w.tag == tag) {
            w.lru = tick;
            w.dirty |= dirty;
            return None;
        }

        let mask = self.masks[class.index()];
        let shift = self.cfg.sets.trailing_zeros();
        let set = self.set_mut(si);

        // Prefer an invalid way within the partition.
        let slot = set
            .iter()
            .enumerate()
            .filter(|&(i, w)| mask.allows(i) && !w.valid)
            .map(|(i, _)| i)
            .next()
            .or_else(|| {
                // LRU among the partition's valid ways.
                set.iter()
                    .enumerate()
                    .filter(|&(i, _)| mask.allows(i))
                    .min_by_key(|&(_, w)| w.lru)
                    .map(|(i, _)| i)
            })
            .expect("partition mask guarantees at least one way");

        let victim = &mut set[slot];
        let evicted = if victim.valid {
            Some(Evicted {
                line: LineAddr::new((victim.tag << shift) | si as u64),
                owner: victim.owner,
                dirty: victim.dirty,
            })
        } else {
            None
        };
        *victim = Way { tag, valid: true, dirty, owner: class, lru: tick };
        evicted
    }

    /// Removes `line` if present, returning its eviction record.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<Evicted> {
        let (si, tag) = (self.set_index(line), self.tag(line));
        let sets_shift = self.cfg.sets.trailing_zeros();
        let w = self.set_mut(si).iter_mut().find(|w| w.valid && w.tag == tag)?;
        w.valid = false;
        Some(Evicted {
            line: LineAddr::new((w.tag << sets_shift) | si as u64),
            owner: w.owner,
            dirty: w.dirty,
        })
    }

    /// Demand hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Valid lines currently held by `class` (occupancy monitoring, §II-B).
    pub fn occupancy(&self, class: QosId) -> usize {
        self.ways.iter().filter(|w| w.valid && w.owner == class).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        SetAssocCache::new(CacheConfig { sets: 4, ways: 2 })
    }

    fn q(i: u8) -> QosId {
        QosId::new(i)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        let l = LineAddr::new(3);
        assert!(!c.probe(l));
        c.fill(l, q(0), false);
        assert!(c.probe(l));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Set 0 holds lines 0, 4, 8... (sets=4).
        c.fill(LineAddr::new(0), q(0), false);
        c.fill(LineAddr::new(4), q(0), false);
        // Touch 0 so 4 is LRU.
        assert!(c.probe(LineAddr::new(0)));
        let ev = c.fill(LineAddr::new(8), q(0), false).expect("must evict");
        assert_eq!(ev.line, LineAddr::new(4));
        assert!(c.contains(LineAddr::new(0)));
        assert!(!c.contains(LineAddr::new(4)));
    }

    #[test]
    fn eviction_reports_owner_and_dirty() {
        let mut c = small();
        c.fill(LineAddr::new(0), q(1), true);
        c.fill(LineAddr::new(4), q(0), false);
        let ev = c.fill(LineAddr::new(8), q(0), false).unwrap();
        assert_eq!(ev.owner, q(1));
        assert!(ev.dirty);
        assert_eq!(ev.line, LineAddr::new(0));
    }

    #[test]
    fn refill_merges_dirty_without_eviction() {
        let mut c = small();
        c.fill(LineAddr::new(0), q(0), false);
        assert_eq!(c.fill(LineAddr::new(0), q(0), true), None);
        let ev = c.invalidate(LineAddr::new(0)).unwrap();
        assert!(ev.dirty);
    }

    #[test]
    fn probe_write_sets_dirty() {
        let mut c = small();
        c.fill(LineAddr::new(0), q(0), false);
        assert!(c.probe_write(LineAddr::new(0)));
        assert!(c.invalidate(LineAddr::new(0)).unwrap().dirty);
    }

    #[test]
    fn partitions_isolate_allocations() {
        let mut c = SetAssocCache::new(CacheConfig { sets: 2, ways: 4 });
        c.set_partition(q(0), WayMask::range(0, 2));
        c.set_partition(q(1), WayMask::range(2, 2));
        // Class 0 thrashes its 2 ways of set 0 (lines 0,2,4,... map to set 0).
        for i in 0..16 {
            c.fill(LineAddr::new(i * 2), q(0), false);
        }
        // Class 1's lines in the other ways must be untouched.
        c.fill(LineAddr::new(100), q(1), false); // set 0
        c.fill(LineAddr::new(102), q(1), false); // set 0
        for i in 16..32 {
            let ev = c.fill(LineAddr::new(i * 2), q(0), false);
            if let Some(ev) = ev {
                assert_eq!(ev.owner, q(0), "class 0 may only evict its own partition");
            }
        }
        assert!(c.contains(LineAddr::new(100)));
        assert!(c.contains(LineAddr::new(102)));
    }

    #[test]
    fn lookup_hits_outside_own_partition() {
        // CAT semantics: partitioning restricts allocation, not lookup.
        let mut c = SetAssocCache::new(CacheConfig { sets: 2, ways: 4 });
        c.fill(LineAddr::new(0), q(1), false); // lands in some way
        c.set_partition(q(0), WayMask::range(0, 1));
        // Class-agnostic probe still hits regardless of which partition.
        assert!(c.probe(LineAddr::new(0)));
    }

    #[test]
    fn occupancy_counts_per_class() {
        let mut c = SetAssocCache::new(CacheConfig { sets: 4, ways: 4 });
        c.set_partition(q(0), WayMask::range(0, 2));
        c.set_partition(q(1), WayMask::range(2, 2));
        for i in 0..4 {
            c.fill(LineAddr::new(i), q(0), false);
            c.fill(LineAddr::new(i + 64), q(1), false);
        }
        assert_eq!(c.occupancy(q(0)), 4);
        assert_eq!(c.occupancy(q(1)), 4);
    }

    #[test]
    fn capacity_config_round_trip() {
        let cfg = CacheConfig::with_capacity(256 * 1024, 8);
        assert_eq!(cfg.bytes(), 256 * 1024);
        assert_eq!(cfg.sets, 512);
    }

    #[test]
    #[should_panic(expected = "no valid way")]
    fn out_of_range_partition_panics() {
        let mut c = small();
        c.set_partition(q(0), WayMask(0b100)); // cache has 2 ways
    }

    #[test]
    fn way_mask_helpers() {
        assert_eq!(WayMask::all(4).0, 0b1111);
        assert_eq!(WayMask::range(2, 2).0, 0b1100);
        assert!(WayMask::range(1, 3).allows(3));
        assert!(!WayMask::range(1, 3).allows(0));
        assert_eq!(WayMask::all(64).count(), 64);
    }

    #[test]
    fn invalidate_absent_returns_none() {
        let mut c = small();
        assert_eq!(c.invalidate(LineAddr::new(9)), None);
    }

    #[test]
    fn eviction_line_reconstruction_exact() {
        // The reconstructed victim address must be the original line.
        let mut c = SetAssocCache::new(CacheConfig { sets: 8, ways: 1 });
        let line = LineAddr::new(0b1011_0101);
        c.fill(line, q(0), false);
        let ev = c.fill(LineAddr::new(0b1111_0101), q(0), false).unwrap();
        assert_eq!(ev.line, line);
    }
}
