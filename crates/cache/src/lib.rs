//! Cache-hierarchy substrate for the PABST reproduction.
//!
//! Provides the functional (state-holding) pieces of the modelled cache
//! hierarchy; all *timing* lives in the `pabst-soc` wiring:
//!
//! * [`addr`] — physical addresses, cache-line granularity, interleaving
//!   helpers for memory controllers.
//! * [`set_assoc`] — a set-associative cache with LRU replacement and
//!   way-based capacity partitioning per QoS class, modelling both the
//!   private L1/L2 caches and the shared L3 with Intel-CAT-style exclusive
//!   partitions (the paper's baseline assumption, §II-B).
//! * [`mshr`] — Miss Status Holding Registers: finite miss tracking with
//!   primary/secondary merge. MSHR exhaustion is the backpressure that
//!   stalls cores when the memory system saturates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod mshr;
pub mod set_assoc;

pub use addr::{Addr, LineAddr};
pub use mshr::{MshrOutcome, MshrTable};
pub use set_assoc::{CacheConfig, Evicted, SetAssocCache, WayMask};
