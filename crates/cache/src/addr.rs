//! Physical addresses and cache-line granularity.

use std::fmt;

use pabst_simkit::LINE_BYTES;

/// Log2 of the cache-line / DRAM-burst size (64 B lines).
pub const LINE_SHIFT: u32 = 6;

/// A byte-granularity physical address.
///
/// # Examples
///
/// ```
/// use pabst_cache::addr::{Addr, LineAddr};
///
/// let a = Addr::new(0x1234);
/// assert_eq!(a.line(), LineAddr::new(0x48));
/// assert_eq!(a.line().base(), Addr::new(0x1200));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates a byte address.
    pub const fn new(a: u64) -> Self {
        Self(a)
    }

    /// The raw byte address.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The cache line containing this address.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(a: u64) -> Self {
        Self(a)
    }
}

/// A cache-line-granularity address (byte address divided by 64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a line number.
    pub const fn new(n: u64) -> Self {
        Self(n)
    }

    /// The raw line number.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The first byte address of this line.
    pub const fn base(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }

    /// Bytes transferred when this line moves (always the line size).
    pub const fn bytes(self) -> u64 {
        LINE_BYTES
    }

    /// Uniform interleave of lines across `n` targets (memory controllers):
    /// the paper assumes a uniform address hash that evenly distributes
    /// requests to the controllers (§III-C1).
    ///
    /// Mixes upper bits into the selection so strided streams also spread
    /// evenly.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn interleave(self, n: usize) -> usize {
        assert!(n > 0, "cannot interleave across zero targets");
        // Simple xor-fold hash: robust to power-of-two strides.
        let x = self.0 ^ (self.0 >> 7) ^ (self.0 >> 17);
        (x % n as u64) as usize
    }

    /// Deeper-folded interleave for wide channel counts (16+ targets).
    ///
    /// The single xor-fold in [`LineAddr::interleave`] stops mixing above
    /// bit 17: a stream whose stride (or region base offset) only varies
    /// bits ≥ ~21 collapses onto a handful of channels — at 16 targets a
    /// 2^21-line stride lands *every* request on one controller. That skew
    /// is invisible at the paper's 4 controllers but would corrupt the SAT
    /// signal of a 16-MC scale run, so mesh-scale topologies select this
    /// variant (see `pabst_soc::config::ChannelMap`). It folds the hash a
    /// second time from the top of the word before reducing.
    ///
    /// Deliberately a *separate* function: the second fold changes the
    /// line→channel mapping at every `n`, and the committed goldens pin
    /// the legacy mapping for the 2- and 4-controller configs.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn interleave_spread(self, n: usize) -> usize {
        assert!(n > 0, "cannot interleave across zero targets");
        let x = self.0 ^ (self.0 >> 7) ^ (self.0 >> 17);
        let x = x ^ (x >> 23) ^ (x >> 41);
        (x % n as u64) as usize
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_mapping_round_trips() {
        let a = Addr::new(0xdead_beef);
        assert_eq!(a.line().base().get(), 0xdead_beef & !0x3f);
        assert_eq!(LineAddr::new(5).base().line(), LineAddr::new(5));
    }

    #[test]
    fn same_line_for_all_bytes_within() {
        let base = Addr::new(0x1000);
        for off in 0..64 {
            assert_eq!(Addr::new(base.get() + off).line(), base.line());
        }
        assert_ne!(Addr::new(base.get() + 64).line(), base.line());
    }

    #[test]
    fn interleave_covers_all_targets_evenly() {
        // Sequential lines (streaming) must spread across 4 MCs within a few
        // percent of uniform.
        let n = 4;
        let mut counts = vec![0u64; n];
        for i in 0..40_000u64 {
            counts[LineAddr::new(i).interleave(n)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "uneven interleave: {counts:?}");
        }
    }

    #[test]
    fn interleave_even_for_strided_streams() {
        // A 128-byte-stride stream touches every other line; distribution
        // must still be even (the stream microbenchmark's pattern).
        let n = 4;
        let mut counts = vec![0u64; n];
        for i in (0..80_000u64).step_by(2) {
            counts[LineAddr::new(i).interleave(n)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "uneven: {counts:?}");
        }
    }

    /// Counts how line addresses `base + i*stride` distribute over `n`
    /// channels, returning the worst relative deviation from uniform.
    fn worst_skew(hash: impl Fn(LineAddr, usize) -> usize, n: usize, stride: u64) -> f64 {
        let samples = 48_000u64;
        let mut counts = vec![0u64; n];
        for i in 0..samples {
            counts[hash(LineAddr::new(i * stride), n)] += 1;
        }
        let ideal = samples as f64 / n as f64;
        counts.iter().map(|&c| (c as f64 - ideal).abs() / ideal).fold(0.0, f64::max)
    }

    #[test]
    fn interleave_even_at_non_power_of_two_and_wide_counts() {
        // The scale-experiment audit: realistic strides (unit through page)
        // must stay near-uniform at 3, 6, and 16 channels — for both the
        // legacy hash (still the 2-/4-MC default) and the spread variant
        // the mesh configs use.
        for n in [3usize, 6, 16] {
            for stride in [1u64, 2, 3, 7, 64, 1024, 4096] {
                let legacy = worst_skew(LineAddr::interleave, n, stride);
                let spread = worst_skew(LineAddr::interleave_spread, n, stride);
                assert!(legacy < 0.10, "legacy skew {legacy:.3} at n={n} stride={stride}");
                assert!(spread < 0.10, "spread skew {spread:.3} at n={n} stride={stride}");
            }
        }
    }

    #[test]
    fn spread_interleave_fixes_giant_stride_collapse() {
        // The bug the audit found: the single xor-fold stops mixing above
        // bit 17, so a 2^21-line stride (address bits ≥ 21 only) collapses
        // onto one channel at n=16 and two at n=6. The double fold keeps
        // those streams uniform; the legacy hash is pinned as *broken*
        // here so the failure mode stays documented.
        for n in [6usize, 16] {
            let stride = 1u64 << 21;
            let legacy = worst_skew(LineAddr::interleave, n, stride);
            let spread = worst_skew(LineAddr::interleave_spread, n, stride);
            assert!(legacy > 0.9, "legacy hash unexpectedly even at n={n}: {legacy:.3}");
            assert!(spread < 0.10, "spread skew {spread:.3} at n={n} stride=2^21");
        }
    }

    #[test]
    fn legacy_interleave_mapping_is_pinned() {
        // The committed goldens depend on the exact legacy line→channel
        // mapping at 1/2/4 controllers; any change to `interleave` must
        // fail here before it silently rewrites every figure.
        let probes: [(u64, usize, usize); 7] = [
            (0, 4, 0),
            (1, 4, 1),
            (7, 4, 3),
            (129, 4, 0),
            (0xdead_beef, 4, 0),
            (0xdead_beef, 2, 0),
            (12_345_678, 1, 0),
        ];
        for (line, n, want) in probes {
            assert_eq!(LineAddr::new(line).interleave(n), want, "line {line} n {n}");
        }
    }

    #[test]
    #[should_panic(expected = "zero targets")]
    fn interleave_zero_panics() {
        let _ = LineAddr::new(1).interleave(0);
    }

    #[test]
    #[should_panic(expected = "zero targets")]
    fn interleave_spread_zero_panics() {
        let _ = LineAddr::new(1).interleave_spread(0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::new(0x40).to_string(), "0x40");
        assert_eq!(LineAddr::new(0x40).to_string(), "line:0x40");
    }
}
