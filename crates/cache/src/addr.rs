//! Physical addresses and cache-line granularity.

use std::fmt;

use pabst_simkit::LINE_BYTES;

/// Log2 of the cache-line / DRAM-burst size (64 B lines).
pub const LINE_SHIFT: u32 = 6;

/// A byte-granularity physical address.
///
/// # Examples
///
/// ```
/// use pabst_cache::addr::{Addr, LineAddr};
///
/// let a = Addr::new(0x1234);
/// assert_eq!(a.line(), LineAddr::new(0x48));
/// assert_eq!(a.line().base(), Addr::new(0x1200));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates a byte address.
    pub const fn new(a: u64) -> Self {
        Self(a)
    }

    /// The raw byte address.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The cache line containing this address.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(a: u64) -> Self {
        Self(a)
    }
}

/// A cache-line-granularity address (byte address divided by 64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a line number.
    pub const fn new(n: u64) -> Self {
        Self(n)
    }

    /// The raw line number.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The first byte address of this line.
    pub const fn base(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }

    /// Bytes transferred when this line moves (always the line size).
    pub const fn bytes(self) -> u64 {
        LINE_BYTES
    }

    /// Uniform interleave of lines across `n` targets (memory controllers):
    /// the paper assumes a uniform address hash that evenly distributes
    /// requests to the controllers (§III-C1).
    ///
    /// Mixes upper bits into the selection so strided streams also spread
    /// evenly.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn interleave(self, n: usize) -> usize {
        assert!(n > 0, "cannot interleave across zero targets");
        // Simple xor-fold hash: robust to power-of-two strides.
        let x = self.0 ^ (self.0 >> 7) ^ (self.0 >> 17);
        (x % n as u64) as usize
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_mapping_round_trips() {
        let a = Addr::new(0xdead_beef);
        assert_eq!(a.line().base().get(), 0xdead_beef & !0x3f);
        assert_eq!(LineAddr::new(5).base().line(), LineAddr::new(5));
    }

    #[test]
    fn same_line_for_all_bytes_within() {
        let base = Addr::new(0x1000);
        for off in 0..64 {
            assert_eq!(Addr::new(base.get() + off).line(), base.line());
        }
        assert_ne!(Addr::new(base.get() + 64).line(), base.line());
    }

    #[test]
    fn interleave_covers_all_targets_evenly() {
        // Sequential lines (streaming) must spread across 4 MCs within a few
        // percent of uniform.
        let n = 4;
        let mut counts = vec![0u64; n];
        for i in 0..40_000u64 {
            counts[LineAddr::new(i).interleave(n)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "uneven interleave: {counts:?}");
        }
    }

    #[test]
    fn interleave_even_for_strided_streams() {
        // A 128-byte-stride stream touches every other line; distribution
        // must still be even (the stream microbenchmark's pattern).
        let n = 4;
        let mut counts = vec![0u64; n];
        for i in (0..80_000u64).step_by(2) {
            counts[LineAddr::new(i).interleave(n)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "uneven: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "zero targets")]
    fn interleave_zero_panics() {
        let _ = LineAddr::new(1).interleave(0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::new(0x40).to_string(), "0x40");
        assert_eq!(LineAddr::new(0x40).to_string(), "line:0x40");
    }
}
