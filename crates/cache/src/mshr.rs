//! Miss Status Holding Registers (MSHRs).
//!
//! A finite table tracking outstanding misses. A miss to a line already
//! being fetched merges as a *secondary* miss (no new memory request); a
//! miss with no free entry is refused, stalling the requester. MSHR
//! exhaustion at the L2 is what ultimately stalls a core when the memory
//! system backs up — the queuing-outside-the-target effect central to the
//! paper's Fig. 1(b).

use crate::addr::LineAddr;

/// Result of attempting to allocate an MSHR for a miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// First miss to the line: a memory request must be issued downstream.
    Primary,
    /// The line is already in flight: the waiter was merged.
    Secondary,
    /// No free entry (and no existing entry for the line): caller must
    /// retry later.
    Full,
}

/// A finite MSHR table with per-line waiter lists.
///
/// `W` is the caller's waiter token (e.g. a core-side load id).
///
/// # Examples
///
/// ```
/// use pabst_cache::{MshrTable, MshrOutcome, LineAddr};
///
/// let mut m: MshrTable<u32> = MshrTable::new(2);
/// let l = LineAddr::new(7);
/// assert_eq!(m.alloc(l, 1), MshrOutcome::Primary);
/// assert_eq!(m.alloc(l, 2), MshrOutcome::Secondary);
/// assert_eq!(m.complete(l), vec![1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct MshrTable<W> {
    /// In-flight entries in a flat insertion-ordered table. The table is
    /// small (hardware MSHR counts), so linear tag search beats a tree or
    /// hash both in host-cache behavior and in allocation traffic; all
    /// lookups are by exact line, so the ordering is never observable —
    /// the determinism requirement (simlint L1) holds trivially.
    entries: Vec<(LineAddr, Vec<W>)>,
    capacity: usize,
    peak: usize,
    /// Recycled waiter lists: completing a miss returns its `Vec` here so
    /// steady-state allocation/release performs no heap traffic.
    pool: Vec<Vec<W>>,
}

impl<W> MshrTable<W> {
    /// Creates a table with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be non-zero");
        Self { entries: Vec::with_capacity(capacity), capacity, peak: 0, pool: Vec::new() }
    }

    /// Attempts to register a miss on `line` for `waiter`.
    pub fn alloc(&mut self, line: LineAddr, waiter: W) -> MshrOutcome {
        if let Some((_, waiters)) = self.entries.iter_mut().find(|(l, _)| *l == line) {
            waiters.push(waiter);
            return MshrOutcome::Secondary;
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        let mut waiters = self.pool.pop().unwrap_or_default();
        waiters.push(waiter);
        self.entries.push((line, waiters));
        self.peak = self.peak.max(self.entries.len());
        MshrOutcome::Primary
    }

    /// Completes the miss on `line`, appending all merged waiters to
    /// `out` (none when no entry existed) and recycling the entry's
    /// storage. The allocation-free form production fill paths use.
    pub fn complete_into(&mut self, line: LineAddr, out: &mut Vec<W>) {
        let Some(i) = self.entries.iter().position(|(l, _)| *l == line) else { return };
        let (_, mut waiters) = self.entries.swap_remove(i);
        out.append(&mut waiters);
        self.pool.push(waiters);
    }

    /// Completes the miss on `line`, releasing the entry and returning all
    /// merged waiters (empty when no entry existed). Allocating
    /// convenience wrapper over [`MshrTable::complete_into`].
    pub fn complete(&mut self, line: LineAddr) -> Vec<W> {
        let mut out = Vec::new();
        self.complete_into(line, &mut out);
        out
    }

    /// True when `line` has an in-flight entry.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.entries.iter().any(|(l, _)| *l == line)
    }

    /// Outstanding primary misses.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no misses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when a new primary miss would be refused.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Table capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Highest simultaneous occupancy observed.
    pub fn peak(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn primary_then_secondary_then_complete() {
        let mut m: MshrTable<&str> = MshrTable::new(4);
        assert_eq!(m.alloc(l(1), "a"), MshrOutcome::Primary);
        assert_eq!(m.alloc(l(1), "b"), MshrOutcome::Secondary);
        assert_eq!(m.len(), 1);
        assert_eq!(m.complete(l(1)), vec!["a", "b"]);
        assert!(m.is_empty());
    }

    #[test]
    fn full_refuses_new_lines_but_merges_existing() {
        let mut m: MshrTable<u8> = MshrTable::new(1);
        assert_eq!(m.alloc(l(1), 0), MshrOutcome::Primary);
        assert_eq!(m.alloc(l(2), 1), MshrOutcome::Full);
        // Secondary to the existing line still merges even when full.
        assert_eq!(m.alloc(l(1), 2), MshrOutcome::Secondary);
        m.complete(l(1));
        assert_eq!(m.alloc(l(2), 3), MshrOutcome::Primary);
    }

    #[test]
    fn complete_without_entry_is_empty() {
        let mut m: MshrTable<u8> = MshrTable::new(2);
        assert!(m.complete(l(9)).is_empty());
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut m: MshrTable<u8> = MshrTable::new(3);
        m.alloc(l(1), 0);
        m.alloc(l(2), 0);
        m.complete(l(1));
        m.alloc(l(3), 0);
        assert_eq!(m.peak(), 2);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _: MshrTable<u8> = MshrTable::new(0);
    }
}
