//! Property tests: the set-associative cache against a reference model,
//! and partition isolation invariants.

use pabst_cache::{CacheConfig, LineAddr, MshrOutcome, MshrTable, SetAssocCache, WayMask};
use pabst_core::qos::QosId;
use proptest::prelude::*;

/// A trivially correct LRU set-associative reference: per set, a Vec kept
/// in recency order.
struct RefCache {
    sets: usize,
    ways: usize,
    data: Vec<Vec<u64>>, // most recent last
}

impl RefCache {
    fn new(sets: usize, ways: usize) -> Self {
        Self { sets, ways, data: vec![Vec::new(); sets] }
    }

    fn access(&mut self, line: u64) -> bool {
        let si = (line as usize) % self.sets;
        let set = &mut self.data[si];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            let t = set.remove(pos);
            set.push(t);
            true
        } else {
            if set.len() == self.ways {
                set.remove(0);
            }
            set.push(line);
            false
        }
    }
}

proptest! {
    /// probe+fill behaves exactly like the reference LRU on arbitrary
    /// access streams (single class, no partitioning).
    #[test]
    fn lru_matches_reference(accesses in proptest::collection::vec(0u64..64, 1..500)) {
        let mut c = SetAssocCache::new(CacheConfig { sets: 4, ways: 4 });
        let mut r = RefCache::new(4, 4);
        let q = QosId::new(0);
        for a in accesses {
            let line = LineAddr::new(a);
            let model_hit = r.access(a);
            let dut_hit = c.probe(line);
            if !dut_hit {
                c.fill(line, q, false);
            }
            prop_assert_eq!(dut_hit, model_hit, "divergence at line {}", a);
        }
    }

    /// With exclusive partitions, a class's fills never evict another
    /// class's lines.
    #[test]
    fn partitions_never_cross_evict(accesses in proptest::collection::vec((0u64..256, 0u8..2), 1..500)) {
        let mut c = SetAssocCache::new(CacheConfig { sets: 8, ways: 8 });
        c.set_partition(QosId::new(0), WayMask::range(0, 4));
        c.set_partition(QosId::new(1), WayMask::range(4, 4));
        for (a, cls) in accesses {
            let class = QosId::new(cls);
            // Give classes disjoint address spaces, as the experiments do.
            let line = LineAddr::new(a + u64::from(cls) * (1 << 20));
            if !c.probe(line) {
                if let Some(ev) = c.fill(line, class, false) {
                    prop_assert_eq!(ev.owner, class, "cross-partition eviction");
                }
            }
        }
    }

    /// A cache never holds more lines for a class than its partition allows
    /// (ways * sets).
    #[test]
    fn occupancy_bounded_by_partition(accesses in proptest::collection::vec(0u64..1024, 1..600)) {
        let mut c = SetAssocCache::new(CacheConfig { sets: 4, ways: 8 });
        let q0 = QosId::new(0);
        c.set_partition(q0, WayMask::range(0, 2));
        for a in accesses {
            let line = LineAddr::new(a);
            if !c.probe(line) {
                c.fill(line, q0, false);
            }
            prop_assert!(c.occupancy(q0) <= 2 * 4);
        }
    }

    /// MSHR: waiters are returned exactly once, in merge order, and
    /// occupancy never exceeds capacity.
    #[test]
    fn mshr_waiters_conserved(ops in proptest::collection::vec((0u64..8, any::<bool>()), 1..300)) {
        let mut m: MshrTable<u64> = MshrTable::new(4);
        let mut next_waiter = 0u64;
        let mut outstanding: std::collections::HashSet<u64> = Default::default();
        for (line, is_alloc) in ops {
            let line = LineAddr::new(line);
            if is_alloc {
                match m.alloc(line, next_waiter) {
                    MshrOutcome::Primary | MshrOutcome::Secondary => {
                        outstanding.insert(next_waiter);
                        next_waiter += 1;
                    }
                    MshrOutcome::Full => {}
                }
            } else {
                for w in m.complete(line) {
                    prop_assert!(outstanding.remove(&w), "waiter {} returned twice", w);
                }
            }
            prop_assert!(m.len() <= m.capacity());
        }
        // Drain: every allocated waiter comes back exactly once.
        for l in 0..8 {
            for w in m.complete(LineAddr::new(l)) {
                prop_assert!(outstanding.remove(&w));
            }
        }
        prop_assert!(outstanding.is_empty(), "lost waiters: {:?}", outstanding);
    }
}
