//! Property-style tests: the set-associative cache against a reference
//! model, and partition isolation invariants.
//!
//! Each property runs over a deterministic seeded sweep of randomized
//! access streams; a failure message carries the sweep seed, which
//! replays the exact case.

use std::collections::BTreeSet;

use pabst_cache::{CacheConfig, LineAddr, MshrOutcome, MshrTable, SetAssocCache, WayMask};
use pabst_core::qos::QosId;
use pabst_simkit::rng::SimRng;

/// A trivially correct LRU set-associative reference: per set, a Vec kept
/// in recency order.
struct RefCache {
    sets: usize,
    ways: usize,
    data: Vec<Vec<u64>>, // most recent last
}

impl RefCache {
    fn new(sets: usize, ways: usize) -> Self {
        Self { sets, ways, data: vec![Vec::new(); sets] }
    }

    fn access(&mut self, line: u64) -> bool {
        let si = (line as usize) % self.sets;
        let set = &mut self.data[si];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            let t = set.remove(pos);
            set.push(t);
            true
        } else {
            if set.len() == self.ways {
                set.remove(0);
            }
            set.push(line);
            false
        }
    }
}

/// probe+fill behaves exactly like the reference LRU on arbitrary access
/// streams (single class, no partitioning).
#[test]
fn lru_matches_reference() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x1c6e);
        let mut c = SetAssocCache::new(CacheConfig { sets: 4, ways: 4 });
        let mut r = RefCache::new(4, 4);
        let q = QosId::new(0);
        let accesses = 1 + rng.gen_range(0..500);
        for _ in 0..accesses {
            let a = rng.gen_range(0..64);
            let line = LineAddr::new(a);
            let model_hit = r.access(a);
            let dut_hit = c.probe(line);
            if !dut_hit {
                c.fill(line, q, false);
            }
            assert_eq!(dut_hit, model_hit, "seed {seed}: divergence at line {a}");
        }
    }
}

/// With exclusive partitions, a class's fills never evict another class's
/// lines.
#[test]
fn partitions_never_cross_evict() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x9a57);
        let mut c = SetAssocCache::new(CacheConfig { sets: 8, ways: 8 });
        c.set_partition(QosId::new(0), WayMask::range(0, 4));
        c.set_partition(QosId::new(1), WayMask::range(4, 4));
        let accesses = 1 + rng.gen_range(0..500);
        for _ in 0..accesses {
            let a = rng.gen_range(0..256);
            let cls = rng.gen_range(0..2) as u8;
            let class = QosId::new(cls);
            // Give classes disjoint address spaces, as the experiments do.
            let line = LineAddr::new(a + u64::from(cls) * (1 << 20));
            if !c.probe(line) {
                if let Some(ev) = c.fill(line, class, false) {
                    assert_eq!(ev.owner, class, "seed {seed}: cross-partition eviction");
                }
            }
        }
    }
}

/// A cache never holds more lines for a class than its partition allows
/// (ways * sets).
#[test]
fn occupancy_bounded_by_partition() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x0cc0);
        let mut c = SetAssocCache::new(CacheConfig { sets: 4, ways: 8 });
        let q0 = QosId::new(0);
        c.set_partition(q0, WayMask::range(0, 2));
        let accesses = 1 + rng.gen_range(0..600);
        for _ in 0..accesses {
            let line = LineAddr::new(rng.gen_range(0..1024));
            if !c.probe(line) {
                c.fill(line, q0, false);
            }
            assert!(c.occupancy(q0) <= 2 * 4, "seed {seed}: partition overflow");
        }
    }
}

/// MSHR: waiters are returned exactly once, in merge order, and occupancy
/// never exceeds capacity.
#[test]
fn mshr_waiters_conserved() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x35a8);
        let mut m: MshrTable<u64> = MshrTable::new(4);
        let mut next_waiter = 0u64;
        let mut outstanding: BTreeSet<u64> = BTreeSet::new();
        let ops = 1 + rng.gen_range(0..300);
        for _ in 0..ops {
            let line = LineAddr::new(rng.gen_range(0..8));
            if rng.gen_bool(0.5) {
                match m.alloc(line, next_waiter) {
                    MshrOutcome::Primary | MshrOutcome::Secondary => {
                        outstanding.insert(next_waiter);
                        next_waiter += 1;
                    }
                    MshrOutcome::Full => {}
                }
            } else {
                for w in m.complete(line) {
                    assert!(outstanding.remove(&w), "seed {seed}: waiter {w} returned twice");
                }
            }
            assert!(m.len() <= m.capacity(), "seed {seed}: MSHR overflow");
        }
        // Drain: every allocated waiter comes back exactly once.
        for l in 0..8 {
            for w in m.complete(LineAddr::new(l)) {
                assert!(outstanding.remove(&w), "seed {seed}: waiter {w} returned twice");
            }
        }
        assert!(outstanding.is_empty(), "seed {seed}: lost waiters: {outstanding:?}");
    }
}
