//! Streaming microbenchmarks (the paper's `stream`).
//!
//! A hand-optimized loop that walks an array at a 128-byte stride with
//! fully independent loads (or stores), so performance is limited only by
//! available bandwidth (§IV-A).

use pabst_cpu::{LoadId, Op, Workload};

use crate::region::Region;

/// The bandwidth-bound streamer: independent accesses every other cache
/// line (128-byte stride), wrapping over its region forever.
///
/// # Examples
///
/// ```
/// use pabst_workloads::{Region, StreamGen};
/// use pabst_cpu::{Op, Workload};
///
/// let mut s = StreamGen::reads(Region::new(0, 1024), 0);
/// // Ops alternate a small compute gap and an independent load.
/// let kinds: Vec<bool> = (0..4).map(|_| matches!(s.next_op(), Op::Load { .. })).collect();
/// assert_eq!(kinds.iter().filter(|&&k| k).count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct StreamGen {
    region: Region,
    /// Lines skipped per access (2 = the paper's 128-byte stride).
    stride_lines: u64,
    write: bool,
    /// ALU instructions between accesses (loop overhead).
    compute: u32,
    next: u64,
    load_seq: u64,
    emit_access: bool,
    name: String,
}

impl StreamGen {
    /// A read streamer over `region`; `id_salt` disambiguates load ids
    /// across cores sharing one address space.
    pub fn reads(region: Region, id_salt: u64) -> Self {
        Self::new(region, false, id_salt)
    }

    /// A write streamer over `region`.
    pub fn writes(region: Region, id_salt: u64) -> Self {
        Self::new(region, true, id_salt)
    }

    fn new(region: Region, write: bool, id_salt: u64) -> Self {
        Self {
            region,
            stride_lines: 2,
            write,
            compute: 2,
            next: 0,
            load_seq: id_salt << 40,
            emit_access: false,
            name: if write { "write-stream".into() } else { "read-stream".into() },
        }
    }

    /// Overrides the compute gap between accesses.
    pub fn with_compute(mut self, insts: u32) -> Self {
        self.compute = insts;
        self
    }
}

impl Workload for StreamGen {
    fn next_op(&mut self) -> Op {
        self.emit_access = !self.emit_access;
        if !self.emit_access {
            return Op::Compute(self.compute);
        }
        let addr = self.region.line_addr(self.next * self.stride_lines);
        self.next += 1;
        if self.write {
            Op::Store { addr }
        } else {
            self.load_seq += 1;
            Op::Load { addr, id: LoadId(self.load_seq), dep: None }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Phase of the periodic streamer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Streaming the full (memory-resident) region.
    Memory,
    /// Streaming a small cache-resident prefix: no DRAM traffic once warm.
    CacheResident,
}

/// A streamer that alternates between a memory-resident phase and a
/// cache-resident phase — the Fig. 6 workload that exercises work
/// conservation.
///
/// Phase lengths are separate access counts because the two phases run at
/// wildly different rates: cache-resident accesses complete orders of
/// magnitude faster than paced DRAM accesses.
#[derive(Debug, Clone)]
pub struct PeriodicStreamGen {
    inner: StreamGen,
    full: Region,
    resident: Region,
    phase: Phase,
    mem_accesses: u64,
    resident_accesses: u64,
    accesses_in_phase: u64,
}

impl PeriodicStreamGen {
    /// Creates the periodic streamer: streams `region` for `mem_accesses`
    /// accesses, then `region.prefix(resident_lines)` for
    /// `resident_accesses` accesses, forever.
    ///
    /// # Panics
    ///
    /// Panics if either phase length is zero or `resident_lines` doesn't
    /// fit the region.
    pub fn new(
        region: Region,
        resident_lines: u64,
        mem_accesses: u64,
        resident_accesses: u64,
        id_salt: u64,
    ) -> Self {
        assert!(mem_accesses > 0 && resident_accesses > 0, "phases must contain accesses");
        let resident = region.prefix(resident_lines);
        Self {
            inner: StreamGen::reads(region, id_salt),
            full: region,
            resident,
            phase: Phase::Memory,
            mem_accesses,
            resident_accesses,
            accesses_in_phase: 0,
        }
    }

    /// The phase the generator is currently in (true = memory-resident).
    pub fn in_memory_phase(&self) -> bool {
        self.phase == Phase::Memory
    }
}

impl Workload for PeriodicStreamGen {
    fn next_op(&mut self) -> Op {
        let op = self.inner.next_op();
        if matches!(op, Op::Load { .. } | Op::Store { .. }) {
            self.accesses_in_phase += 1;
            let limit = match self.phase {
                Phase::Memory => self.mem_accesses,
                Phase::CacheResident => self.resident_accesses,
            };
            if self.accesses_in_phase >= limit {
                self.accesses_in_phase = 0;
                self.phase = match self.phase {
                    Phase::Memory => Phase::CacheResident,
                    Phase::CacheResident => Phase::Memory,
                };
                self.inner.region = match self.phase {
                    Phase::Memory => self.full,
                    Phase::CacheResident => self.resident,
                };
                self.inner.next = 0;
            }
        }
        op
    }

    fn name(&self) -> &str {
        "periodic-stream"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pabst_cache::Addr;

    fn collect_addrs(w: &mut dyn Workload, n: usize) -> Vec<Addr> {
        let mut out = Vec::new();
        while out.len() < n {
            match w.next_op() {
                Op::Load { addr, .. } | Op::Store { addr } => out.push(addr),
                _ => {}
            }
        }
        out
    }

    #[test]
    fn stride_is_128_bytes() {
        let mut s = StreamGen::reads(Region::new(0, 1 << 20), 0);
        let a = collect_addrs(&mut s, 3);
        assert_eq!(a[1].get() - a[0].get(), 128);
        assert_eq!(a[2].get() - a[1].get(), 128);
    }

    #[test]
    fn loads_are_independent_and_unique() {
        let mut s = StreamGen::reads(Region::new(0, 64), 0);
        for _ in 0..100 {
            if let Op::Load { dep, .. } = s.next_op() {
                assert!(dep.is_none());
            }
        }
    }

    #[test]
    fn write_variant_emits_stores() {
        let mut s = StreamGen::writes(Region::new(0, 64), 0);
        let mut stores = 0;
        for _ in 0..100 {
            if matches!(s.next_op(), Op::Store { .. }) {
                stores += 1;
            }
        }
        assert!(stores >= 40);
    }

    #[test]
    fn wraps_within_region() {
        let r = Region::new(1 << 20, 8);
        let mut s = StreamGen::reads(r, 0);
        for a in collect_addrs(&mut s, 50) {
            assert!(a.get() >= r.base().get());
            assert!(a.get() < r.base().get() + r.bytes());
        }
    }

    #[test]
    fn load_ids_unique_across_salts() {
        let mut a = StreamGen::reads(Region::new(0, 64), 1);
        let mut b = StreamGen::reads(Region::new(0, 64), 2);
        let id_of = |w: &mut StreamGen| loop {
            if let Op::Load { id, .. } = w.next_op() {
                return id;
            }
        };
        assert_ne!(id_of(&mut a), id_of(&mut b));
    }

    #[test]
    fn periodic_switches_phases() {
        let r = Region::new(0, 1 << 16);
        let mut p = PeriodicStreamGen::new(r, 64, 10, 10, 0);
        assert!(p.in_memory_phase());
        let _ = collect_addrs(&mut p, 10);
        assert!(!p.in_memory_phase(), "after 10 accesses, cache-resident");
        // Cache-resident phase touches only the 64-line prefix.
        for a in collect_addrs(&mut p, 9) {
            assert!(a.get() < 64 * 64);
        }
        let _ = collect_addrs(&mut p, 1);
        assert!(p.in_memory_phase(), "back to memory phase");
    }

    #[test]
    fn asymmetric_phase_lengths() {
        let r = Region::new(0, 1 << 16);
        let mut p = PeriodicStreamGen::new(r, 64, 3, 7, 0);
        let _ = collect_addrs(&mut p, 3);
        assert!(!p.in_memory_phase());
        let _ = collect_addrs(&mut p, 6);
        assert!(!p.in_memory_phase(), "resident phase lasts 7 accesses");
        let _ = collect_addrs(&mut p, 1);
        assert!(p.in_memory_phase());
    }

    #[test]
    #[should_panic(expected = "phases must contain accesses")]
    fn zero_phase_panics() {
        let _ = PeriodicStreamGen::new(Region::new(0, 128), 8, 0, 5, 0);
    }
}

/// A streamer whose every access targets a single memory controller
/// (skewed traffic): used to evaluate the per-MC governor variant of
/// §III-C1, where a global wired-OR saturation signal over-throttles the
/// channels the skewed class is *not* using.
#[derive(Debug, Clone)]
pub struct SkewedStreamGen {
    region: Region,
    target_mc: usize,
    n_mcs: usize,
    cursor: u64,
    load_seq: u64,
    emit_access: bool,
}

impl SkewedStreamGen {
    /// Creates a read streamer over `region` that touches only lines homed
    /// on `target_mc` of `n_mcs` controllers.
    ///
    /// # Panics
    ///
    /// Panics if `target_mc >= n_mcs` or the region is too small to
    /// contain any line mapping to the target controller.
    pub fn new(region: Region, target_mc: usize, n_mcs: usize, id_salt: u64) -> Self {
        assert!(target_mc < n_mcs, "target controller out of range");
        let probe = (0..region.lines().min(4 * n_mcs as u64))
            .any(|i| region.line_addr(i).line().interleave(n_mcs) == target_mc);
        assert!(probe, "region contains no line homed on the target controller");
        Self { region, target_mc, n_mcs, cursor: 0, load_seq: id_salt << 40, emit_access: false }
    }
}

impl Workload for SkewedStreamGen {
    fn next_op(&mut self) -> Op {
        self.emit_access = !self.emit_access;
        if !self.emit_access {
            return Op::Compute(2);
        }
        // Advance to the next line homed on the target controller.
        loop {
            let addr = self.region.line_addr(self.cursor);
            self.cursor += 1;
            if addr.line().interleave(self.n_mcs) == self.target_mc {
                self.load_seq += 1;
                return Op::Load { addr, id: LoadId(self.load_seq), dep: None };
            }
        }
    }

    fn name(&self) -> &str {
        "skewed-stream"
    }
}

#[cfg(test)]
mod skew_tests {
    use super::*;

    #[test]
    fn all_accesses_home_on_target_mc() {
        let mut g = SkewedStreamGen::new(Region::new(0, 1 << 14), 2, 4, 0);
        let mut seen = 0;
        while seen < 200 {
            if let Op::Load { addr, .. } = g.next_op() {
                assert_eq!(addr.line().interleave(4), 2);
                seen += 1;
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_panics() {
        let _ = SkewedStreamGen::new(Region::new(0, 64), 4, 4, 0);
    }
}
