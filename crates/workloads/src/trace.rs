//! Trace recording and replay.
//!
//! The paper drives its model from QEMU-captured instruction streams; the
//! equivalent facility here is an in-memory op trace: wrap any generator
//! in a [`Recorder`] to capture a window of its stream, then [`TraceGen`]
//! replays it deterministically (optionally in a loop). Useful for
//! repeatable A/B experiments where even generator RNG drift is unwanted,
//! and for constructing hand-crafted micro-traces in tests.

use pabst_cpu::{Op, Workload};

/// Records the ops produced by an inner workload while passing them
/// through unchanged.
///
/// # Examples
///
/// ```
/// use pabst_workloads::{Region, StreamGen};
/// use pabst_workloads::trace::{Recorder, TraceGen};
/// use pabst_cpu::Workload;
///
/// let mut rec = Recorder::new(StreamGen::reads(Region::new(0, 64), 0));
/// for _ in 0..10 { rec.next_op(); }
/// let trace = rec.into_trace();
/// let mut replay = TraceGen::looping(trace);
/// let _ = replay.next_op(); // identical stream, forever
/// ```
#[derive(Debug)]
pub struct Recorder<W> {
    inner: W,
    recorded: Vec<Op>,
}

impl<W: Workload> Recorder<W> {
    /// Wraps `inner`, recording every op it produces.
    pub fn new(inner: W) -> Self {
        Self { inner, recorded: Vec::new() }
    }

    /// Ops captured so far.
    pub fn recorded(&self) -> &[Op] {
        &self.recorded
    }

    /// Finishes recording, returning the captured trace.
    pub fn into_trace(self) -> Vec<Op> {
        self.recorded
    }
}

impl<W: Workload> Workload for Recorder<W> {
    fn next_op(&mut self) -> Op {
        let op = self.inner.next_op();
        self.recorded.push(op);
        op
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Replays a recorded op trace, either once (then idles on `Compute`) or
/// in an endless loop.
///
/// Looped replay re-tags load ids with a per-iteration offset so dynamic
/// loads stay unique and dependences still resolve within an iteration.
#[derive(Debug, Clone)]
pub struct TraceGen {
    ops: Vec<Op>,
    pos: usize,
    looping: bool,
    iteration: u64,
}

impl TraceGen {
    /// Replays `ops` once, then emits idle compute forever.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn once(ops: Vec<Op>) -> Self {
        assert!(!ops.is_empty(), "a trace must contain at least one op");
        Self { ops, pos: 0, looping: false, iteration: 0 }
    }

    /// Replays `ops` in an endless loop.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn looping(ops: Vec<Op>) -> Self {
        assert!(!ops.is_empty(), "a trace must contain at least one op");
        Self { ops, pos: 0, looping: true, iteration: 0 }
    }

    /// Length of one trace iteration.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the trace holds no ops (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    fn retag(&self, op: Op) -> Op {
        // Offset load ids per iteration so replayed ids stay unique.
        let offset = self.iteration << 48;
        match op {
            Op::Load { addr, id, dep } => Op::Load {
                addr,
                id: pabst_cpu::LoadId(id.0 | offset),
                dep: dep.map(|d| pabst_cpu::LoadId(d.0 | offset)),
            },
            other => other,
        }
    }
}

impl Workload for TraceGen {
    fn next_op(&mut self) -> Op {
        if self.pos >= self.ops.len() {
            if self.looping {
                self.pos = 0;
                self.iteration += 1;
            } else {
                return Op::Compute(64);
            }
        }
        let op = self.retag(self.ops[self.pos]);
        self.pos += 1;
        op
    }

    fn name(&self) -> &str {
        "trace-replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region;
    use crate::stream::StreamGen;
    use pabst_cpu::LoadId;

    #[test]
    fn recorder_captures_exactly_what_it_yields() {
        let mut rec = Recorder::new(StreamGen::reads(Region::new(0, 64), 0));
        let yielded: Vec<Op> = (0..20).map(|_| rec.next_op()).collect();
        assert_eq!(rec.recorded(), &yielded[..]);
        assert_eq!(rec.name(), "read-stream");
    }

    #[test]
    fn replay_matches_recording() {
        let mut rec = Recorder::new(StreamGen::reads(Region::new(0, 64), 0));
        for _ in 0..16 {
            rec.next_op();
        }
        let trace = rec.into_trace();
        let mut replay = TraceGen::once(trace.clone());
        let replayed: Vec<Op> = (0..16).map(|_| replay.next_op()).collect();
        assert_eq!(replayed, trace);
    }

    #[test]
    fn once_idles_after_trace() {
        let mut g = TraceGen::once(vec![Op::Compute(1)]);
        let _ = g.next_op();
        assert!(matches!(g.next_op(), Op::Compute(64)));
        assert!(matches!(g.next_op(), Op::Compute(64)));
    }

    #[test]
    fn looping_retags_load_ids_per_iteration() {
        let trace = vec![Op::Load { addr: pabst_cache::Addr::new(0), id: LoadId(7), dep: None }];
        let mut g = TraceGen::looping(trace);
        let first = g.next_op();
        let second = g.next_op();
        let (id1, id2) = match (first, second) {
            (Op::Load { id: a, .. }, Op::Load { id: b, .. }) => (a, b),
            other => panic!("expected loads, got {other:?}"),
        };
        assert_ne!(id1, id2, "replayed ids must stay unique");
    }

    #[test]
    fn looping_preserves_intra_iteration_deps() {
        let trace = vec![
            Op::Load { addr: pabst_cache::Addr::new(0), id: LoadId(1), dep: None },
            Op::Load { addr: pabst_cache::Addr::new(64), id: LoadId(2), dep: Some(LoadId(1)) },
        ];
        let mut g = TraceGen::looping(trace);
        let _ = g.next_op();
        let _ = g.next_op();
        // Second iteration: dep must reference the retagged first load.
        let a = g.next_op();
        let b = g.next_op();
        match (a, b) {
            (Op::Load { id, .. }, Op::Load { dep: Some(d), .. }) => assert_eq!(d, id),
            other => panic!("expected dependent pair, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn empty_trace_panics() {
        let _ = TraceGen::once(vec![]);
    }
}
