//! Workload generators for the PABST reproduction.
//!
//! These replace the paper's QEMU functional front-end and its benchmark
//! suite with deterministic synthetic generators whose *memory request
//! shape* — dependence structure, memory-level parallelism, intensity,
//! working-set size and write fraction — matches the workloads the paper
//! evaluates (§IV-A and DESIGN.md §2):
//!
//! * [`stream::StreamGen`] — the bandwidth-bound microbenchmark: streams
//!   through an array at a 128-byte stride with fully independent accesses.
//! * [`chaser::ChaserGen`] — the latency-bound microbenchmark: four
//!   concurrent random pointer chases per CPU.
//! * [`stream::PeriodicStreamGen`] — alternates memory-resident and
//!   cache-resident phases (drives Fig. 6, work conservation).
//! * [`spec::SpecProxyGen`] — parameterized proxies for the eight SPEC
//!   CPU2006 workloads the paper runs.
//! * [`memcached::MemcachedGen`] — a closed-loop transaction server proxy
//!   with per-transaction service-time markers (drives Fig. 9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaser;
pub mod memcached;
pub mod region;
pub mod spec;
pub mod stream;
pub mod trace;

pub use chaser::ChaserGen;
pub use memcached::MemcachedGen;
pub use region::Region;
pub use spec::{SpecProxyGen, SpecWorkload, ALL_SPEC};
pub use stream::{PeriodicStreamGen, SkewedStreamGen, StreamGen};
pub use trace::{Recorder, TraceGen};
