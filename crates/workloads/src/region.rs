//! Address regions assigned to workload instances.
//!
//! Every workload instance operates within a private [`Region`] of the
//! physical address space, assigned by the SoC builder. Disjoint regions
//! are how the experiments isolate classes in the (way-partitioned) caches
//! while still contending for memory bandwidth.

use pabst_cache::Addr;
use pabst_simkit::LINE_BYTES;

/// A contiguous, line-aligned slice of the physical address space.
///
/// # Examples
///
/// ```
/// use pabst_workloads::Region;
///
/// let r = Region::new(1 << 30, 4096);
/// assert_eq!(r.lines(), 4096);
/// assert_eq!(r.line_addr(0).get() % 64, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: u64,
    lines: u64,
}

impl Region {
    /// Creates a region of `lines` cache lines starting at byte `base`
    /// (aligned down to a line boundary).
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero.
    pub fn new(base: u64, lines: u64) -> Self {
        assert!(lines > 0, "region must contain at least one line");
        Self { base: base & !(LINE_BYTES - 1), lines }
    }

    /// Creates a region sized in bytes (rounded up to whole lines).
    pub fn with_bytes(base: u64, bytes: u64) -> Self {
        Self::new(base, bytes.div_ceil(LINE_BYTES))
    }

    /// Number of lines in the region.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.lines * LINE_BYTES
    }

    /// The byte address of line `i % lines` (wraps).
    pub fn line_addr(&self, i: u64) -> Addr {
        Addr::new(self.base + (i % self.lines) * LINE_BYTES)
    }

    /// The first byte address.
    pub fn base(&self) -> Addr {
        Addr::new(self.base)
    }

    /// Splits off the first `lines` lines as a sub-region (for phased
    /// workloads that shrink their working set).
    ///
    /// # Panics
    ///
    /// Panics if `lines` exceeds the region size or is zero.
    pub fn prefix(&self, lines: u64) -> Region {
        assert!(lines > 0 && lines <= self.lines, "prefix out of range");
        Region { base: self.base, lines }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_wrap() {
        let r = Region::new(100, 4); // base aligns down to 64
        assert_eq!(r.base().get(), 64);
        assert_eq!(r.line_addr(0).get(), 64);
        assert_eq!(r.line_addr(4).get(), 64, "wraps at region size");
        assert_eq!(r.line_addr(5).get(), 128);
    }

    #[test]
    fn bytes_round_up() {
        let r = Region::with_bytes(0, 100);
        assert_eq!(r.lines(), 2);
        assert_eq!(r.bytes(), 128);
    }

    #[test]
    fn prefix_shrinks() {
        let r = Region::new(0, 100);
        let p = r.prefix(10);
        assert_eq!(p.lines(), 10);
        assert_eq!(p.base(), r.base());
    }

    #[test]
    #[should_panic(expected = "prefix out of range")]
    fn prefix_too_large_panics() {
        let _ = Region::new(0, 4).prefix(5);
    }
}
