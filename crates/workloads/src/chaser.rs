//! The latency-bound microbenchmark (the paper's `chaser`).
//!
//! Performs four independent random pointer chases per CPU: each chase is
//! a chain of loads whose address depends on the previous load's value, so
//! a single chain cannot overlap its own misses. Four chains together
//! sustain up to four concurrent memory requests, making the benchmark
//! sensitive to both memory latency and (when many threads run) bandwidth
//! (§IV-A).

use pabst_cpu::{LoadId, Op, Workload};
use pabst_simkit::rng::SimRng;

use crate::region::Region;

/// Four (configurable) interleaved dependent pointer chases over a region.
///
/// # Examples
///
/// ```
/// use pabst_workloads::{ChaserGen, Region};
/// use pabst_cpu::{Op, Workload};
///
/// let mut c = ChaserGen::new(Region::new(0, 1 << 16), 4, 1234);
/// // Every load depends on the previous load of its chain.
/// let mut saw_dep = false;
/// for _ in 0..32 {
///     if let Op::Load { dep, .. } = c.next_op() {
///         saw_dep |= dep.is_some();
///     }
/// }
/// assert!(saw_dep);
/// ```
#[derive(Debug, Clone)]
pub struct ChaserGen {
    region: Region,
    rng: SimRng,
    /// Last load id per chain.
    chains: Vec<Option<LoadId>>,
    next_chain: usize,
    load_seq: u64,
    /// ALU instructions between loads (address computation).
    compute: u32,
    emit_load: bool,
}

impl ChaserGen {
    /// Creates a chaser with `chains` concurrent pointer chases (the paper
    /// uses four) over `region`, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `chains` is zero.
    pub fn new(region: Region, chains: usize, seed: u64) -> Self {
        assert!(chains > 0, "need at least one chain");
        Self {
            region,
            rng: SimRng::seed_from_u64(seed),
            chains: vec![None; chains],
            next_chain: 0,
            load_seq: seed << 40,
            compute: 2,
            emit_load: false,
        }
    }
}

impl Workload for ChaserGen {
    fn next_op(&mut self) -> Op {
        self.emit_load = !self.emit_load;
        if !self.emit_load {
            return Op::Compute(self.compute);
        }
        let chain = self.next_chain;
        self.next_chain = (self.next_chain + 1) % self.chains.len();
        let line = self.rng.gen_range(0..self.region.lines());
        let addr = self.region.line_addr(line);
        self.load_seq += 1;
        let id = LoadId(self.load_seq);
        let dep = self.chains[chain];
        self.chains[chain] = Some(id);
        Op::Load { addr, id, dep }
    }

    fn name(&self) -> &str {
        "chaser"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_form_dependence_chains() {
        let mut c = ChaserGen::new(Region::new(0, 1 << 12), 2, 7);
        let mut loads = Vec::new();
        while loads.len() < 6 {
            if let Op::Load { id, dep, .. } = c.next_op() {
                loads.push((id, dep));
            }
        }
        // First load of each chain has no dep; later ones chain within
        // their own chain: load[2k].dep == id of load[2k-2].
        assert_eq!(loads[0].1, None);
        assert_eq!(loads[1].1, None);
        assert_eq!(loads[2].1, Some(loads[0].0));
        assert_eq!(loads[3].1, Some(loads[1].0));
        assert_eq!(loads[4].1, Some(loads[2].0));
    }

    #[test]
    fn addresses_stay_in_region() {
        let r = Region::new(1 << 30, 256);
        let mut c = ChaserGen::new(r, 4, 1);
        for _ in 0..200 {
            if let Op::Load { addr, .. } = c.next_op() {
                assert!(addr.get() >= r.base().get());
                assert!(addr.get() < r.base().get() + r.bytes());
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ops = |seed| {
            let mut c = ChaserGen::new(Region::new(0, 1 << 10), 4, seed);
            (0..50).map(|_| c.next_op()).collect::<Vec<_>>()
        };
        assert_eq!(ops(5), ops(5));
        assert_ne!(ops(5), ops(6));
    }

    #[test]
    #[should_panic(expected = "at least one chain")]
    fn zero_chains_panics() {
        let _ = ChaserGen::new(Region::new(0, 16), 0, 0);
    }
}
