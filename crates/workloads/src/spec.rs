//! SPEC CPU2006 workload proxies.
//!
//! The paper uses the eight SPEC workloads that can saturate memory
//! bandwidth on 32 cores (§IV-A), as a proxy for data-center applications.
//! We cannot run SPEC binaries inside this substrate, so each workload is
//! modelled as a parameterized generator matching its published memory
//! behaviour along the axes the evaluation actually distinguishes:
//!
//! * **intensity** — ALU instructions between cache-line accesses,
//! * **dependent fraction** — how pointer-chasing (latency-bound) it is,
//! * **write fraction** — stores vs. loads,
//! * **working set** — whether it thrashes its L3 partition.
//!
//! Parameter choices and the bandwidth/latency classification follow the
//! paper's own descriptions (libquantum/lbm bandwidth-bound;
//! mcf/omnetpp/sphinx3 latency-sensitive; the rest mixed). See DESIGN.md
//! §2 for the substitution rationale.

use pabst_cpu::{LoadId, Op, Workload};
use pabst_simkit::rng::SimRng;

use crate::region::Region;

/// The eight paper-evaluated SPEC CPU2006 workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum SpecWorkload {
    GemsFdtd,
    Lbm,
    Libquantum,
    Mcf,
    Milc,
    Omnetpp,
    Soplex,
    Sphinx3,
}

/// All eight, in the paper's reporting order.
pub const ALL_SPEC: [SpecWorkload; 8] = [
    SpecWorkload::GemsFdtd,
    SpecWorkload::Lbm,
    SpecWorkload::Libquantum,
    SpecWorkload::Mcf,
    SpecWorkload::Milc,
    SpecWorkload::Omnetpp,
    SpecWorkload::Soplex,
    SpecWorkload::Sphinx3,
];

/// Behavioural parameters of one proxy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecParams {
    /// ALU instructions between memory accesses.
    pub intensity: u32,
    /// Probability an access depends on the previous load (pointer walk).
    pub dep_frac: f64,
    /// Probability an access is a store.
    pub write_frac: f64,
    /// Working-set size in cache lines.
    pub wset_lines: u64,
    /// Fraction of accesses that stream sequentially (row-buffer friendly)
    /// rather than landing at random.
    pub seq_frac: f64,
}

impl SpecWorkload {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SpecWorkload::GemsFdtd => "GemsFDTD",
            SpecWorkload::Lbm => "lbm",
            SpecWorkload::Libquantum => "libquantum",
            SpecWorkload::Mcf => "mcf",
            SpecWorkload::Milc => "milc",
            SpecWorkload::Omnetpp => "omnetpp",
            SpecWorkload::Soplex => "soplex",
            SpecWorkload::Sphinx3 => "sphinx3",
        }
    }

    /// The proxy's behavioural parameters (see module docs).
    // simlint: allow(taint-float): compile-time behavioural constants; every fraction is consumed through SimRng::gen_bool's bit-reproducible compare
    pub fn params(self) -> SpecParams {
        // wset_lines: 1 MiB = 16384 lines. All exceed a 1-2 MiB L3
        // partition so they generate steady DRAM traffic.
        match self {
            SpecWorkload::GemsFdtd => SpecParams {
                intensity: 10,
                dep_frac: 0.10,
                write_frac: 0.30,
                wset_lines: 12 << 14,
                seq_frac: 0.80,
            },
            SpecWorkload::Lbm => SpecParams {
                intensity: 8,
                dep_frac: 0.05,
                write_frac: 0.45,
                wset_lines: 16 << 14,
                seq_frac: 0.90,
            },
            SpecWorkload::Libquantum => SpecParams {
                intensity: 6,
                dep_frac: 0.00,
                write_frac: 0.25,
                wset_lines: 16 << 14,
                seq_frac: 0.95,
            },
            SpecWorkload::Mcf => SpecParams {
                intensity: 7,
                dep_frac: 0.65,
                write_frac: 0.10,
                wset_lines: 24 << 14,
                seq_frac: 0.10,
            },
            SpecWorkload::Milc => SpecParams {
                intensity: 12,
                dep_frac: 0.25,
                write_frac: 0.30,
                wset_lines: 10 << 14,
                seq_frac: 0.60,
            },
            SpecWorkload::Omnetpp => SpecParams {
                intensity: 14,
                dep_frac: 0.55,
                write_frac: 0.20,
                wset_lines: 8 << 14,
                seq_frac: 0.15,
            },
            SpecWorkload::Soplex => SpecParams {
                intensity: 12,
                dep_frac: 0.35,
                write_frac: 0.20,
                wset_lines: 10 << 14,
                seq_frac: 0.50,
            },
            SpecWorkload::Sphinx3 => SpecParams {
                intensity: 16,
                dep_frac: 0.50,
                write_frac: 0.05,
                wset_lines: 6 << 14,
                seq_frac: 0.30,
            },
        }
    }

    /// True for the workloads the paper calls latency-limited (high
    /// dependent-load fraction).
    pub fn latency_sensitive(self) -> bool {
        self.params().dep_frac >= 0.5
    }
}

/// A running proxy instance bound to an address region.
#[derive(Debug, Clone)]
pub struct SpecProxyGen {
    which: SpecWorkload,
    params: SpecParams,
    region: Region,
    rng: SimRng,
    load_seq: u64,
    last_load: Option<LoadId>,
    seq_cursor: u64,
    emit_access: bool,
}

impl SpecProxyGen {
    /// Instantiates `which` over `region` (the region bounds the working
    /// set; the proxy uses `min(region, wset)` lines), deterministically
    /// seeded.
    pub fn new(which: SpecWorkload, region: Region, seed: u64) -> Self {
        let params = which.params();
        let lines = params.wset_lines.min(region.lines());
        Self {
            which,
            params,
            region: region.prefix(lines),
            rng: SimRng::seed_from_u64(seed ^ 0x5bec),
            load_seq: seed << 40,
            last_load: None,
            seq_cursor: 0,
            emit_access: false,
        }
    }

    /// Which SPEC workload this proxies.
    pub fn workload(&self) -> SpecWorkload {
        self.which
    }
}

impl Workload for SpecProxyGen {
    fn next_op(&mut self) -> Op {
        self.emit_access = !self.emit_access;
        if !self.emit_access {
            return Op::Compute(self.params.intensity);
        }
        // Pick the address: sequential run or random.
        let line = if self.rng.gen_bool(self.params.seq_frac) {
            self.seq_cursor += 2; // 128-byte stride like a vectorized sweep
            self.seq_cursor
        } else {
            self.rng.gen_range(0..self.region.lines())
        };
        let addr = self.region.line_addr(line);
        if self.rng.gen_bool(self.params.write_frac) {
            return Op::Store { addr };
        }
        self.load_seq += 1;
        let id = LoadId(self.load_seq);
        let dep = if self.rng.gen_bool(self.params.dep_frac) { self.last_load } else { None };
        self.last_load = Some(id);
        Op::Load { addr, id, dep }
    }

    fn name(&self) -> &str {
        self.which.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Region {
        Region::new(0, 1 << 20)
    }

    #[test]
    fn all_eight_have_distinct_names() {
        let mut names: Vec<&str> = ALL_SPEC.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn latency_classification_matches_paper() {
        assert!(SpecWorkload::Mcf.latency_sensitive());
        assert!(SpecWorkload::Sphinx3.latency_sensitive());
        assert!(SpecWorkload::Omnetpp.latency_sensitive());
        assert!(!SpecWorkload::Libquantum.latency_sensitive());
        assert!(!SpecWorkload::Lbm.latency_sensitive());
    }

    #[test]
    fn dependence_fraction_is_respected() {
        let mut g = SpecProxyGen::new(SpecWorkload::Mcf, region(), 3);
        let (mut dep, mut indep) = (0u32, 0u32);
        for _ in 0..4000 {
            if let Op::Load { dep: d, .. } = g.next_op() {
                if d.is_some() {
                    dep += 1;
                } else {
                    indep += 1;
                }
            }
        }
        let frac = f64::from(dep) / f64::from(dep + indep);
        assert!((frac - 0.65).abs() < 0.05, "mcf dep fraction {frac}");
    }

    #[test]
    fn write_fraction_is_respected() {
        let mut g = SpecProxyGen::new(SpecWorkload::Lbm, region(), 3);
        let (mut st, mut total) = (0u32, 0u32);
        for _ in 0..8000 {
            match g.next_op() {
                Op::Store { .. } => {
                    st += 1;
                    total += 1;
                }
                Op::Load { .. } => total += 1,
                _ => {}
            }
        }
        let frac = f64::from(st) / f64::from(total);
        assert!((frac - 0.45).abs() < 0.05, "lbm write fraction {frac}");
    }

    #[test]
    fn working_set_respects_region_bound() {
        let small = Region::new(0, 128);
        let mut g = SpecProxyGen::new(SpecWorkload::Libquantum, small, 1);
        for _ in 0..500 {
            match g.next_op() {
                Op::Load { addr, .. } | Op::Store { addr } => {
                    assert!(addr.get() < 128 * 64);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut g = SpecProxyGen::new(SpecWorkload::Soplex, region(), seed);
            (0..64).map(|_| g.next_op()).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
