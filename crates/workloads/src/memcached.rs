//! A memcached server proxy (drives Fig. 9).
//!
//! Models the memory behaviour of one memcached server thread processing a
//! closed-loop stream of GET transactions: each transaction walks a hash
//! bucket (a short dependent-load chain), reads the value (a few
//! independent lines), and does protocol/compute work. A [`pabst_cpu::Op::Marker`]
//! retires at each transaction boundary so the SoC can compute exact
//! per-transaction service times.

use pabst_cpu::{LoadId, Op, Workload};
use pabst_simkit::rng::SimRng;

use crate::region::Region;

/// Shape of one GET transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnShape {
    /// Dependent loads in the hash-bucket walk.
    pub chain_len: u32,
    /// Independent value-read lines.
    pub value_lines: u32,
    /// Protocol parse/format compute, instructions per transaction.
    pub compute: u32,
}

impl Default for TxnShape {
    fn default() -> Self {
        Self { chain_len: 3, value_lines: 2, compute: 150 }
    }
}

/// The server-thread generator: an endless closed-loop sequence of GET
/// transactions over a large item heap.
///
/// # Examples
///
/// ```
/// use pabst_workloads::{MemcachedGen, Region};
/// use pabst_cpu::{Op, Workload};
///
/// let mut m = MemcachedGen::new(Region::new(0, 1 << 18), 42);
/// let mut markers = 0;
/// for _ in 0..100 {
///     if matches!(m.next_op(), Op::Marker(_)) { markers += 1; }
/// }
/// assert!(markers >= 2, "transactions delimited by markers");
/// ```
#[derive(Debug, Clone)]
pub struct MemcachedGen {
    region: Region,
    shape: TxnShape,
    rng: SimRng,
    load_seq: u64,
    txn: u64,
    /// Remaining ops of the current transaction, emitted back-to-front.
    queue: Vec<Op>,
}

impl MemcachedGen {
    /// Creates a server over an item heap `region` with the default
    /// transaction shape.
    pub fn new(region: Region, seed: u64) -> Self {
        Self::with_shape(region, TxnShape::default(), seed)
    }

    /// Creates a server with an explicit transaction shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape has no memory accesses at all.
    pub fn with_shape(region: Region, shape: TxnShape, seed: u64) -> Self {
        assert!(shape.chain_len + shape.value_lines > 0, "a transaction must access memory");
        Self {
            region,
            shape,
            rng: SimRng::seed_from_u64(seed ^ 0x3e3c),
            load_seq: seed << 40,
            txn: 0,
            queue: Vec::new(),
        }
    }

    /// Transactions generated so far.
    pub fn transactions(&self) -> u64 {
        self.txn
    }

    fn fill_txn(&mut self) {
        // Built in reverse (emitted via pop): marker last.
        self.queue.push(Op::Marker(self.txn));
        self.queue.push(Op::Compute(self.shape.compute / 2));
        // Value read: independent lines.
        for _ in 0..self.shape.value_lines {
            let line = self.rng.gen_range(0..self.region.lines());
            self.load_seq += 1;
            self.queue.push(Op::Load {
                addr: self.region.line_addr(line),
                id: LoadId(self.load_seq),
                dep: None,
            });
        }
        // Hash-bucket walk: dependent chain.
        let mut prev: Option<LoadId> = None;
        let mut chain = Vec::new();
        for _ in 0..self.shape.chain_len {
            let line = self.rng.gen_range(0..self.region.lines());
            self.load_seq += 1;
            let id = LoadId(self.load_seq);
            chain.push(Op::Load { addr: self.region.line_addr(line), id, dep: prev });
            prev = Some(id);
        }
        // Reverse so the chain head is emitted first.
        for op in chain.into_iter().rev() {
            self.queue.push(op);
        }
        self.queue.push(Op::Compute(self.shape.compute / 2));
        self.txn += 1;
    }
}

impl Workload for MemcachedGen {
    fn next_op(&mut self) -> Op {
        if self.queue.is_empty() {
            self.fill_txn();
        }
        self.queue.pop().expect("transaction just filled")
    }

    fn name(&self) -> &str {
        "memcached"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transaction_structure_chain_then_values_then_marker() {
        let mut m = MemcachedGen::with_shape(
            Region::new(0, 1 << 12),
            TxnShape { chain_len: 2, value_lines: 1, compute: 10 },
            1,
        );
        let ops: Vec<Op> = (0..6).map(|_| m.next_op()).collect();
        assert!(matches!(ops[0], Op::Compute(5)));
        let (id0, dep0) = match ops[1] {
            Op::Load { id, dep, .. } => (id, dep),
            other => panic!("expected chain head, got {other:?}"),
        };
        assert_eq!(dep0, None);
        match ops[2] {
            Op::Load { dep, .. } => assert_eq!(dep, Some(id0), "chain link"),
            other => panic!("expected chain link, got {other:?}"),
        }
        match ops[3] {
            Op::Load { dep, .. } => assert_eq!(dep, None, "value read independent"),
            other => panic!("expected value read, got {other:?}"),
        }
        assert!(matches!(ops[4], Op::Compute(5)));
        assert!(matches!(ops[5], Op::Marker(0)));
    }

    #[test]
    fn marker_tags_increment_per_transaction() {
        let mut m = MemcachedGen::new(Region::new(0, 1 << 12), 9);
        let mut tags = Vec::new();
        for _ in 0..200 {
            if let Op::Marker(t) = m.next_op() {
                tags.push(t);
            }
        }
        assert!(tags.len() >= 2);
        for (i, t) in tags.iter().enumerate() {
            assert_eq!(*t, i as u64);
        }
    }

    #[test]
    fn addresses_in_region() {
        let r = Region::new(1 << 32, 1 << 10);
        let mut m = MemcachedGen::new(r, 2);
        for _ in 0..300 {
            if let Op::Load { addr, .. } = m.next_op() {
                assert!(addr.get() >= r.base().get());
                assert!(addr.get() < r.base().get() + r.bytes());
            }
        }
    }

    #[test]
    #[should_panic(expected = "must access memory")]
    fn empty_shape_panics() {
        let _ = MemcachedGen::with_shape(
            Region::new(0, 16),
            TxnShape { chain_len: 0, value_lines: 0, compute: 10 },
            0,
        );
    }
}
