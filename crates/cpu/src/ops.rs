//! The abstract instruction stream a core executes.
//!
//! Workload generators emit [`Op`]s; the core model executes them with real
//! dependence and structural constraints. Addresses and dependences are the
//! only workload properties that matter to the memory system, so this
//! replaces the paper's QEMU functional front-end (see DESIGN.md §2).

use pabst_cache::Addr;

/// Identifies one dynamic load so later loads can depend on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoadId(pub u64);

/// One unit of abstract work emitted by a workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `n` independent single-cycle ALU instructions (aggregated).
    Compute(u32),
    /// A load from `addr`. If `dep` is set, the load's address depends on
    /// the value of an earlier load and cannot issue until that load
    /// completes (a pointer chase).
    Load {
        /// Byte address accessed.
        addr: Addr,
        /// Generator-assigned identity of this load.
        id: LoadId,
        /// Earlier load this one's address depends on, if any.
        dep: Option<LoadId>,
    },
    /// A store to `addr`. Stores retire from a store buffer once issued to
    /// the cache (write-allocate); they never stall retirement on the fill.
    Store {
        /// Byte address written.
        addr: Addr,
    },
    /// A zero-cost marker that reports its tag and retirement cycle, used
    /// to timestamp transaction boundaries (memcached service times).
    Marker(u64),
}

impl Op {
    /// The number of program instructions this op represents.
    pub fn insts(&self) -> u32 {
        match self {
            Op::Compute(n) => *n,
            Op::Load { .. } | Op::Store { .. } => 1,
            Op::Marker(_) => 0,
        }
    }
}

/// An infinite abstract instruction stream.
///
/// Implementations are deterministic given their construction parameters
/// and seed; the core pulls ops one at a time as ROB space frees up.
pub trait Workload {
    /// Produces the next op in program order.
    fn next_op(&mut self) -> Op;

    /// Human-readable workload name (for reports).
    fn name(&self) -> &str;
}

/// Boxed workload, the form the SoC stores per core.
pub type BoxedWorkload = Box<dyn Workload>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_inst_counts() {
        assert_eq!(Op::Compute(7).insts(), 7);
        assert_eq!(Op::Load { addr: Addr::new(0), id: LoadId(0), dep: None }.insts(), 1);
        assert_eq!(Op::Store { addr: Addr::new(0) }.insts(), 1);
        assert_eq!(Op::Marker(3).insts(), 0);
    }
}
