//! Cycle-approximate out-of-order CPU model.
//!
//! Mirrors the paper's methodology (§IV-A): an out-of-order but
//! non-speculative core with perfect branch prediction and perfect memory
//! disambiguation, but *real* register/address dependences and structural
//! hazards — a finite re-order buffer (ROB), dispatch/retire width, and a
//! bounded number of outstanding loads. This gives high fidelity on
//! workloads bottlenecked by the memory system, which is all the
//! evaluation measures.
//!
//! A [`ops::Workload`] generator supplies an infinite abstract instruction
//! stream; the [`core_model::OooCore`] executes it against a memory port
//! supplied by the SoC wiring.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod core_model;
pub mod ops;

pub use core_model::{Access, CoreConfig, CoreStats, MemPort, OooCore};
pub use ops::{LoadId, Op, Workload};
