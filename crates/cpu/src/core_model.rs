//! The out-of-order core: finite ROB, dispatch/retire width, dependent
//! loads, bounded memory-level parallelism.
//!
//! Implementation notes: load state lives inline in the ROB entries
//! (indexed by a stable sequence number), and an *attention list* tracks
//! only the entries that still need issue work, so the per-cycle cost is
//! proportional to actionable work, not ROB size — the simulator spends
//! most of its time here.

use std::collections::{BTreeMap, VecDeque};

use pabst_cache::LineAddr;
use pabst_simkit::Cycle;

use crate::ops::{LoadId, Op, Workload};

/// Result of offering a memory access to the hierarchy this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Served by a cache with a known latency: data ready at `now + lat`.
    Hit(u64),
    /// Missed; a fill will be delivered later via [`OooCore::on_fill`].
    Miss,
    /// No resource available (MSHR full, port busy): retry next cycle.
    Stall,
}

/// The memory hierarchy as seen by one core. Implemented by the SoC
/// wiring (L1 → L2 → pacer → network → …).
pub trait MemPort {
    /// Offers a load/store of `line` tagged `id`. Stores use the same path
    /// (write-allocate RFO).
    fn access(&mut self, now: Cycle, line: LineAddr, store: bool, id: LoadId) -> Access;
}

/// Core structural parameters (paper Table III class of machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Re-order buffer capacity in instructions.
    pub rob: u32,
    /// Dispatch and retire width, instructions per cycle.
    pub width: u32,
    /// Maximum loads outstanding to the memory system (LSQ/L1-MSHR bound).
    pub max_outstanding: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self { rob: 192, width: 4, max_outstanding: 16 }
    }
}

/// Retirement-side statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreStats {
    /// Instructions retired.
    pub retired: u64,
    /// Loads issued to the memory port.
    pub loads: u64,
    /// Stores issued to the memory port.
    pub stores: u64,
    /// Cycles the core could not dispatch because the ROB was full.
    pub rob_full_cycles: u64,
}

impl CoreStats {
    /// Instructions per cycle over `cycles`.
    pub fn ipc(&self, cycles: Cycle) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.retired as f64 / cycles as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoadState {
    /// Waiting for its address dependence (the producer load) to resolve.
    WaitDep(LoadId),
    /// Address known; not yet accepted by the memory port.
    Ready,
    /// In the memory system.
    Issued,
    /// Data available from cycle `.0`.
    Done(Cycle),
}

#[derive(Debug)]
enum Entry {
    /// Aggregated ALU work: `left` instructions still to retire.
    Insts {
        left: u32,
    },
    Load {
        id: LoadId,
        line: LineAddr,
        state: LoadState,
    },
    /// A store waiting to be accepted by the port (`issued` false) or
    /// retired (`issued` true).
    Store {
        line: LineAddr,
        issued: bool,
    },
    Marker {
        tag: u64,
    },
}

/// A cycle-approximate out-of-order core.
///
/// Call [`OooCore::step`] once per cycle with the memory port; deliver
/// fills with [`OooCore::on_fill`]; read transaction timestamps with
/// [`OooCore::take_markers`].
#[derive(Debug)]
pub struct OooCore {
    cfg: CoreConfig,
    rob: VecDeque<Entry>,
    /// Sequence number of `rob[0]`; entry `seq` lives at `seq - head_seq`.
    head_seq: u64,
    rob_insts: u32,
    /// Load id → entry sequence number, for fills and dependence checks.
    /// A BTreeMap so any iteration is id-ordered, never hasher-ordered
    /// (simlint L1: simulation state must be deterministic).
    load_pos: BTreeMap<LoadId, u64>,
    /// Entry seqs that still need issue-stage work.
    attention: Vec<u64>,
    /// Recycled backing storage for the issue stage's kept-entry list, so
    /// the per-cycle filter does not allocate (the simulator spends most
    /// of its time here).
    attention_scratch: Vec<u64>,
    /// Unissued stores currently on the attention list. Stores are the
    /// only entries that can issue while `outstanding` is at its bound, so
    /// this lets the issue stage stop scanning the moment neither loads
    /// nor stores can make progress.
    attention_stores: usize,
    outstanding: usize,
    stats: CoreStats,
    markers: Vec<(u64, Cycle)>,
    /// Dispatch carry-over: an op that did not fit this cycle.
    pending_op: Option<Op>,
}

impl OooCore {
    /// Creates an idle core.
    ///
    /// # Panics
    ///
    /// Panics when any structural parameter is zero.
    pub fn new(cfg: CoreConfig) -> Self {
        assert!(cfg.rob > 0 && cfg.width > 0 && cfg.max_outstanding > 0, "zero-sized core");
        Self {
            cfg,
            rob: VecDeque::new(),
            head_seq: 0,
            rob_insts: 0,
            load_pos: BTreeMap::new(),
            attention: Vec::new(),
            attention_scratch: Vec::new(),
            attention_stores: 0,
            outstanding: 0,
            stats: CoreStats::default(),
            markers: Vec::new(),
            pending_op: None,
        }
    }

    /// Advances one cycle: retire → issue → dispatch.
    pub fn step(&mut self, now: Cycle, workload: &mut dyn Workload, port: &mut dyn MemPort) {
        self.retire(now);
        self.issue(now, port);
        self.dispatch(now, workload);
    }

    /// Delivers the fill for a previously missed load.
    pub fn on_fill(&mut self, now: Cycle, id: LoadId) {
        if let Some(&seq) = self.load_pos.get(&id) {
            if let Some(Entry::Load { state, .. }) = self.entry_mut(seq) {
                debug_assert_eq!(*state, LoadState::Issued, "fill for unissued load");
                *state = LoadState::Done(now);
            }
        }
    }

    /// Core statistics.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Drains recorded `(marker_tag, retire_cycle)` pairs.
    pub fn take_markers(&mut self) -> Vec<(u64, Cycle)> {
        std::mem::take(&mut self.markers)
    }

    /// True when markers are waiting to be drained; lets the caller skip
    /// [`OooCore::take_markers`] on the (overwhelmingly common) empty case.
    pub fn has_markers(&self) -> bool {
        !self.markers.is_empty()
    }

    /// Loads currently outstanding in the memory system.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Releases an outstanding-load slot; the SoC calls this when a miss
    /// completes (paired with [`OooCore::on_fill`]).
    pub fn release_slot(&mut self) {
        debug_assert!(self.outstanding > 0, "slot release without outstanding load");
        self.outstanding = self.outstanding.saturating_sub(1);
    }

    /// Earliest cycle at which stepping this core could change observable
    /// state, or `None` when the core is wedged on external input (an
    /// outstanding miss that only [`OooCore::on_fill`] can resolve).
    ///
    /// The answer follows the horizon contract (`docs/PERFORMANCE.md`):
    /// it may be conservative (report `now` when a step would in fact be
    /// a no-op) but never optimistic. Each pipeline stage is inspected
    /// with the same predicates [`OooCore::step`] uses:
    ///
    /// * dispatch acts every cycle unless a carried-over op still does
    ///   not fit the ROB (and the blocked cycle itself is observable —
    ///   see [`OooCore::accrue_skip`]);
    /// * retire acts when the head is retirable now, and schedules a
    ///   timed wake when the head load's data has a known arrival cycle;
    /// * issue acts when any attention-list entry could issue or resolve
    ///   a dependence now, with timed wakes for producers whose data
    ///   arrival is already scheduled.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        use pabst_simkit::horizon::Horizon;

        // Undrained markers: the SoC reads them every stepped cycle, so
        // they must be handed over before any window is skipped.
        if !self.markers.is_empty() {
            return Some(now);
        }
        // Dispatch: with no carried-over op the next workload op is
        // consumed (a mutation even if it then fails to fit); a carried
        // op that fits dispatches immediately.
        match &self.pending_op {
            None => return Some(now),
            Some(op) => {
                if self.rob_insts + op.insts() <= self.cfg.rob {
                    return Some(now);
                }
            }
        }
        let mut h = Horizon::new();
        // Retire: only the head can block, and only a head load with a
        // scheduled completion contributes a timed wake.
        match self.rob.front() {
            None | Some(Entry::Store { issued: false, .. }) => {}
            Some(Entry::Insts { .. } | Entry::Marker { .. }) => return Some(now),
            Some(Entry::Store { issued: true, .. }) => return Some(now),
            Some(Entry::Load { state: LoadState::Done(at), .. }) => {
                if *at <= now {
                    return Some(now);
                }
                h.add(*at);
            }
            Some(Entry::Load { .. }) => {}
        }
        // Issue: mirror the issue stage's own early-exit — when loads
        // are MLP-bound and no store is pending, the whole list is inert.
        let mlp_bound = self.outstanding >= self.cfg.max_outstanding && self.attention_stores == 0;
        if !self.attention.is_empty() && !mlp_bound {
            for &seq in &self.attention {
                let Some(idx) = seq.checked_sub(self.head_seq) else { return Some(now) };
                let Some(entry) = self.rob.get(idx as usize) else { return Some(now) };
                match entry {
                    Entry::Load { state, .. } => match state {
                        LoadState::WaitDep(dep) => match self.load_pos.get(dep) {
                            // Producer already retired: resolving the
                            // dependence is itself a state change.
                            None => return Some(now),
                            Some(&pseq) => {
                                let pidx = (pseq - self.head_seq) as usize;
                                match self.rob.get(pidx) {
                                    Some(Entry::Load { state: LoadState::Done(at), .. }) => {
                                        if *at <= now {
                                            return Some(now);
                                        }
                                        h.add(*at);
                                    }
                                    // Producer still in flight: it (or
                                    // the memory system) owns the wake.
                                    Some(Entry::Load { .. }) => {}
                                    _ => return Some(now),
                                }
                            }
                        },
                        LoadState::Ready => {
                            if self.outstanding < self.cfg.max_outstanding {
                                // The port access could hit, miss or
                                // stall — all of them mutate something.
                                return Some(now);
                            }
                        }
                        // Issued/Done entries leave the attention list
                        // when they transition; seeing one here means an
                        // assumption broke — refuse to skip over it.
                        LoadState::Issued | LoadState::Done(_) => return Some(now),
                    },
                    Entry::Store { issued, .. } => {
                        if !*issued {
                            return Some(now);
                        }
                    }
                    _ => return Some(now),
                }
            }
        }
        h.get()
    }

    /// Accounts for `cycles` skipped quiescent cycles: a quiescent core
    /// by construction has a carried-over op that does not fit the ROB
    /// ([`OooCore::next_event`] returns `now` otherwise), and naive
    /// stepping would have charged one `rob_full_cycles` per cycle.
    pub fn accrue_skip(&mut self, cycles: u64) {
        debug_assert!(
            self.pending_op.is_some(),
            "skip accrual on a core whose dispatch is not blocked"
        );
        self.stats.rob_full_cycles += cycles;
    }

    fn entry_mut(&mut self, seq: u64) -> Option<&mut Entry> {
        let idx = seq.checked_sub(self.head_seq)? as usize;
        self.rob.get_mut(idx)
    }

    fn retire(&mut self, now: Cycle) {
        let mut budget = self.cfg.width;
        while budget > 0 {
            let Some(head) = self.rob.front_mut() else { break };
            match head {
                Entry::Insts { left } => {
                    let n = (*left).min(budget);
                    *left -= n;
                    budget -= n;
                    self.rob_insts -= n;
                    self.stats.retired += u64::from(n);
                    if *left != 0 {
                        break;
                    }
                }
                Entry::Load { id, state, .. } => {
                    if !matches!(state, LoadState::Done(at) if *at <= now) {
                        break;
                    }
                    self.load_pos.remove(id);
                    self.rob_insts -= 1;
                    self.stats.retired += 1;
                    budget -= 1;
                }
                Entry::Store { issued, .. } => {
                    if !*issued {
                        break;
                    }
                    self.rob_insts -= 1;
                    self.stats.retired += 1;
                    budget -= 1;
                }
                Entry::Marker { tag } => {
                    // Markers are free: don't consume retire bandwidth.
                    self.markers.push((*tag, now));
                }
            }
            self.rob.pop_front();
            self.head_seq += 1;
        }
    }

    fn issue(&mut self, now: Cycle, port: &mut dyn MemPort) {
        if self.attention.is_empty() {
            return;
        }
        let mut issued_this_cycle = 0u32;
        let mut kept = std::mem::take(&mut self.attention_scratch);
        kept.clear();
        let attention = std::mem::take(&mut self.attention);
        for (pos, &seq) in attention.iter().enumerate() {
            if issued_this_cycle >= 2
                || (self.outstanding >= self.cfg.max_outstanding && self.attention_stores == 0)
            {
                // No further entry can issue this cycle: the per-cycle cap
                // is exhausted, or loads are MLP-bound and no store is
                // pending anywhere on the list. Nothing in the tail can
                // change observable state (a resolvable WaitDep is
                // indistinguishable from Ready until it can issue), so
                // keep it wholesale.
                kept.extend_from_slice(&attention[pos..]);
                break;
            }
            let Some(idx) = seq.checked_sub(self.head_seq) else { continue };
            let Some(entry) = self.rob.get_mut(idx as usize) else { continue };
            match entry {
                Entry::Load { id, line, state } => {
                    let (id, line) = (*id, *line);
                    // Resolve dependence: the producer is done when its
                    // entry says so, or it already retired.
                    if let LoadState::WaitDep(dep) = *state {
                        let dep_done = match self.load_pos.get(&dep).copied() {
                            None => true,
                            Some(pseq) => {
                                let pidx = (pseq - self.head_seq) as usize;
                                matches!(
                                    self.rob.get(pidx),
                                    Some(Entry::Load { state: LoadState::Done(at), .. })
                                        if *at <= now
                                )
                            }
                        };
                        if dep_done {
                            if let Some(Entry::Load { state, .. }) = self.rob.get_mut(idx as usize)
                            {
                                *state = LoadState::Ready;
                            }
                        } else {
                            kept.push(seq);
                            continue;
                        }
                    }
                    // Try to issue a Ready load.
                    if issued_this_cycle < 2 && self.outstanding < self.cfg.max_outstanding {
                        match port.access(now, line, false, id) {
                            Access::Hit(lat) => {
                                if let Some(Entry::Load { state, .. }) =
                                    self.rob.get_mut(idx as usize)
                                {
                                    *state = LoadState::Done(now + lat);
                                }
                                self.stats.loads += 1;
                                issued_this_cycle += 1;
                            }
                            Access::Miss => {
                                if let Some(Entry::Load { state, .. }) =
                                    self.rob.get_mut(idx as usize)
                                {
                                    *state = LoadState::Issued;
                                }
                                self.outstanding += 1;
                                self.stats.loads += 1;
                                issued_this_cycle += 1;
                            }
                            Access::Stall => kept.push(seq),
                        }
                    } else {
                        kept.push(seq);
                    }
                }
                Entry::Store { line, issued } => {
                    debug_assert!(!*issued, "issued stores leave the attention list");
                    if issued_this_cycle < 2 {
                        match port.access(now, *line, true, LoadId(u64::MAX)) {
                            Access::Hit(_) | Access::Miss => {
                                // Store-buffer semantics: retire on issue;
                                // the hierarchy's MSHRs bound the fill.
                                *issued = true;
                                self.stats.stores += 1;
                                self.attention_stores -= 1;
                                issued_this_cycle += 1;
                            }
                            Access::Stall => kept.push(seq),
                        }
                    } else {
                        kept.push(seq);
                    }
                }
                _ => {}
            }
        }
        self.attention = kept;
        // Recycle the drained list's capacity for the next cycle's `kept`.
        let mut drained = attention;
        drained.clear();
        self.attention_scratch = drained;
    }

    fn dispatch(&mut self, _now: Cycle, workload: &mut dyn Workload) {
        let mut budget = self.cfg.width;
        while budget > 0 {
            let op = match self.pending_op.take() {
                Some(op) => op,
                None => workload.next_op(),
            };
            if self.rob_insts + op.insts() > self.cfg.rob {
                self.pending_op = Some(op);
                self.stats.rob_full_cycles += 1;
                break;
            }
            let seq = self.head_seq + self.rob.len() as u64;
            match op {
                Op::Compute(n) => {
                    if n > 0 {
                        self.rob.push_back(Entry::Insts { left: n });
                        self.rob_insts += n;
                    }
                    // Dispatching n instructions costs n slots of width
                    // (overflow beyond this cycle's budget is forgiven — a
                    // half-cycle approximation).
                    budget = budget.saturating_sub(n.max(1));
                }
                Op::Load { addr, id, dep } => {
                    let state = match dep {
                        Some(d) if self.load_pos.contains_key(&d) => LoadState::WaitDep(d),
                        _ => LoadState::Ready,
                    };
                    self.load_pos.insert(id, seq);
                    self.rob.push_back(Entry::Load { id, line: addr.line(), state });
                    self.rob_insts += 1;
                    self.attention.push(seq);
                    budget -= 1;
                }
                Op::Store { addr } => {
                    self.rob.push_back(Entry::Store { line: addr.line(), issued: false });
                    self.rob_insts += 1;
                    self.attention.push(seq);
                    self.attention_stores += 1;
                    budget -= 1;
                }
                Op::Marker(tag) => {
                    self.rob.push_back(Entry::Marker { tag });
                    // Free.
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pabst_cache::Addr;

    /// Memory that always hits with a fixed latency.
    struct FlatMem(u64);
    impl MemPort for FlatMem {
        fn access(&mut self, _n: Cycle, _l: LineAddr, _s: bool, _i: LoadId) -> Access {
            Access::Hit(self.0)
        }
    }

    /// Memory that always misses; fills must be delivered manually.
    #[derive(Default)]
    struct MissMem {
        issued: Vec<LoadId>,
    }
    impl MemPort for MissMem {
        fn access(&mut self, _n: Cycle, _l: LineAddr, store: bool, id: LoadId) -> Access {
            if !store {
                self.issued.push(id);
            }
            Access::Miss
        }
    }

    struct ComputeOnly;
    impl Workload for ComputeOnly {
        fn next_op(&mut self) -> Op {
            Op::Compute(4)
        }
        fn name(&self) -> &str {
            "compute-only"
        }
    }

    /// Independent loads every `gap` instructions.
    struct LoadEvery {
        gap: u32,
        next: u64,
        emitted_load: bool,
    }
    impl Workload for LoadEvery {
        fn next_op(&mut self) -> Op {
            self.emitted_load = !self.emitted_load;
            if self.emitted_load {
                Op::Compute(self.gap)
            } else {
                self.next += 1;
                Op::Load { addr: Addr::new(self.next * 64), id: LoadId(self.next), dep: None }
            }
        }
        fn name(&self) -> &str {
            "load-every"
        }
    }

    /// A single dependent chain: each load depends on the previous.
    struct Chain {
        next: u64,
    }
    impl Workload for Chain {
        fn next_op(&mut self) -> Op {
            self.next += 1;
            Op::Load {
                addr: Addr::new(self.next * 64),
                id: LoadId(self.next),
                dep: if self.next > 1 { Some(LoadId(self.next - 1)) } else { None },
            }
        }
        fn name(&self) -> &str {
            "chain"
        }
    }

    #[test]
    fn compute_only_hits_full_width_ipc() {
        let mut core = OooCore::new(CoreConfig::default());
        let mut mem = FlatMem(1);
        let mut wl = ComputeOnly;
        for now in 0..1000 {
            core.step(now, &mut wl, &mut mem);
        }
        let ipc = core.stats().ipc(1000);
        assert!(ipc > 3.5, "compute-bound IPC should approach width 4, got {ipc}");
    }

    #[test]
    fn independent_loads_overlap_misses() {
        // MLP: many misses in flight at once.
        let mut core = OooCore::new(CoreConfig::default());
        let mut mem = MissMem::default();
        let mut wl = LoadEvery { gap: 4, next: 0, emitted_load: false };
        for now in 0..50 {
            core.step(now, &mut wl, &mut mem);
        }
        assert!(
            core.outstanding() >= 8,
            "independent loads must overlap, outstanding={}",
            core.outstanding()
        );
    }

    #[test]
    fn outstanding_bounded_by_config() {
        let cfg = CoreConfig { max_outstanding: 3, ..CoreConfig::default() };
        let mut core = OooCore::new(cfg);
        let mut mem = MissMem::default();
        let mut wl = LoadEvery { gap: 0, next: 0, emitted_load: false };
        for now in 0..200 {
            core.step(now, &mut wl, &mut mem);
            assert!(core.outstanding() <= 3);
        }
        assert_eq!(core.outstanding(), 3);
    }

    #[test]
    fn dependent_chain_serializes() {
        // A pure pointer chase has exactly one outstanding miss at a time.
        let mut core = OooCore::new(CoreConfig::default());
        let mut mem = MissMem::default();
        let mut wl = Chain { next: 0 };
        for now in 0..100u64 {
            core.step(now, &mut wl, &mut mem);
            assert!(core.outstanding() <= 1, "chain must not overlap misses");
            // Complete any outstanding load after 10 cycles.
            if now % 10 == 0 {
                for id in std::mem::take(&mut mem.issued) {
                    core.on_fill(now, id);
                    core.release_slot();
                }
            }
        }
        assert!(core.stats().loads >= 5, "chain must make forward progress");
    }

    #[test]
    fn rob_fills_and_stalls_dispatch() {
        // All-miss loads with no fills: the ROB must fill and dispatch stop.
        let mut core = OooCore::new(CoreConfig { rob: 32, ..CoreConfig::default() });
        let mut mem = MissMem::default();
        let mut wl = LoadEvery { gap: 1, next: 0, emitted_load: false };
        for now in 0..200 {
            core.step(now, &mut wl, &mut mem);
        }
        assert!(core.stats().rob_full_cycles > 0);
        // Only the compute ops ahead of the first (never-filled) load can
        // retire; everything after is stuck behind it.
        assert!(
            core.stats().retired <= 2,
            "retirement must stall behind the unfilled load, retired={}",
            core.stats().retired
        );
    }

    #[test]
    fn fills_unblock_retirement_in_order() {
        let mut core = OooCore::new(CoreConfig::default());
        let mut mem = MissMem::default();
        let mut wl = LoadEvery { gap: 2, next: 0, emitted_load: false };
        for now in 0..20 {
            core.step(now, &mut wl, &mut mem);
        }
        let before = core.stats().retired;
        // Fill everything issued so far.
        for id in std::mem::take(&mut mem.issued) {
            core.on_fill(20, id);
            core.release_slot();
        }
        for now in 21..60 {
            core.step(now, &mut wl, &mut mem);
        }
        assert!(core.stats().retired > before + 10);
    }

    #[test]
    fn markers_record_retire_cycle() {
        struct Marked {
            sent: bool,
        }
        impl Workload for Marked {
            fn next_op(&mut self) -> Op {
                if !self.sent {
                    self.sent = true;
                    Op::Marker(42)
                } else {
                    Op::Compute(4)
                }
            }
            fn name(&self) -> &str {
                "marked"
            }
        }
        let mut core = OooCore::new(CoreConfig::default());
        let mut mem = FlatMem(1);
        let mut wl = Marked { sent: false };
        for now in 0..10 {
            core.step(now, &mut wl, &mut mem);
        }
        let markers = core.take_markers();
        assert_eq!(markers.len(), 1);
        assert_eq!(markers[0].0, 42);
        assert!(core.take_markers().is_empty(), "markers drain once");
    }

    #[test]
    fn stores_retire_without_fill() {
        struct Stores {
            n: u64,
        }
        impl Workload for Stores {
            fn next_op(&mut self) -> Op {
                self.n += 1;
                Op::Store { addr: Addr::new(self.n * 64) }
            }
            fn name(&self) -> &str {
                "stores"
            }
        }
        let mut core = OooCore::new(CoreConfig::default());
        let mut mem = MissMem::default(); // all stores miss
        let mut wl = Stores { n: 0 };
        for now in 0..100 {
            core.step(now, &mut wl, &mut mem);
        }
        assert!(core.stats().retired > 50, "stores must stream through the store buffer");
    }

    #[test]
    fn hit_latency_delays_retirement() {
        let mut slow_mem = FlatMem(50);
        let mut fast_mem = FlatMem(1);
        let mk = || OooCore::new(CoreConfig { max_outstanding: 1, ..CoreConfig::default() });
        let mut slow = mk();
        let mut fast = mk();
        let mut wl1 = Chain { next: 0 };
        let mut wl2 = Chain { next: 0 };
        for now in 0..2000 {
            slow.step(now, &mut wl1, &mut slow_mem);
            fast.step(now, &mut wl2, &mut fast_mem);
        }
        assert!(fast.stats().retired > 3 * slow.stats().retired);
    }

    #[test]
    fn stalled_accesses_are_retried_until_accepted() {
        /// Stalls the first `n` attempts, then hits.
        struct Flaky {
            stalls_left: u32,
        }
        impl MemPort for Flaky {
            fn access(&mut self, _n: Cycle, _l: LineAddr, _s: bool, _i: LoadId) -> Access {
                if self.stalls_left > 0 {
                    self.stalls_left -= 1;
                    Access::Stall
                } else {
                    Access::Hit(1)
                }
            }
        }
        let mut core = OooCore::new(CoreConfig::default());
        let mut mem = Flaky { stalls_left: 10 };
        let mut wl = Chain { next: 0 };
        for now in 0..50 {
            core.step(now, &mut wl, &mut mem);
        }
        assert!(core.stats().loads >= 1, "load must eventually issue after stalls");
        assert!(core.stats().retired >= 1);
    }

    #[test]
    #[should_panic(expected = "zero-sized core")]
    fn zero_config_panics() {
        let _ = OooCore::new(CoreConfig { rob: 0, ..CoreConfig::default() });
    }

    #[test]
    fn next_event_is_now_when_dispatch_can_progress() {
        // An idle core still consumes the workload every cycle.
        let core = OooCore::new(CoreConfig::default());
        assert_eq!(core.next_event(5), Some(5));
    }

    #[test]
    fn wedged_core_reports_no_event_and_accrues_stall_cycles() {
        // All-miss loads, never filled: the core wedges with a full ROB
        // and only an external fill could wake it.
        let mk = || {
            (
                OooCore::new(CoreConfig { rob: 32, ..CoreConfig::default() }),
                MissMem::default(),
                LoadEvery { gap: 1, next: 0, emitted_load: false },
            )
        };
        let (mut skip, mut smem, mut swl) = mk();
        let (mut naive, mut nmem, mut nwl) = mk();
        for now in 0..200 {
            skip.step(now, &mut swl, &mut smem);
            naive.step(now, &mut nwl, &mut nmem);
        }
        assert_eq!(skip.next_event(200), None, "a wedged core schedules nothing");
        // Naive steps the dead window cycle by cycle; the other core
        // accrues the whole window in one call.
        for now in 200..500 {
            naive.step(now, &mut nwl, &mut nmem);
        }
        skip.accrue_skip(300);
        assert_eq!(skip.stats().rob_full_cycles, naive.stats().rob_full_cycles);
        assert_eq!(skip.stats().retired, naive.stats().retired);
        assert_eq!(skip.stats().loads, naive.stats().loads);
        assert_eq!(skip.outstanding(), naive.outstanding());
    }

    #[test]
    fn next_event_wakes_exactly_at_head_load_completion() {
        // A tiny ROB full of chained loads against a slow flat memory:
        // after the head load issues (cycle 1, latency 50) nothing can
        // happen until its data arrives at cycle 51.
        let cfg = CoreConfig { rob: 4, width: 4, max_outstanding: 1 };
        let mut skip = OooCore::new(cfg);
        let mut naive = OooCore::new(cfg);
        let (mut swl, mut nwl) = (Chain { next: 0 }, Chain { next: 0 });
        let (mut smem, mut nmem) = (FlatMem(50), FlatMem(50));
        for now in 0..3 {
            skip.step(now, &mut swl, &mut smem);
            naive.step(now, &mut nwl, &mut nmem);
        }
        assert_eq!(skip.next_event(3), Some(51));
        for now in 3..51 {
            naive.step(now, &mut nwl, &mut nmem);
        }
        skip.accrue_skip(51 - 3);
        for now in 51..120 {
            skip.step(now, &mut swl, &mut smem);
            naive.step(now, &mut nwl, &mut nmem);
        }
        assert_eq!(skip.stats().retired, naive.stats().retired);
        assert_eq!(skip.stats().rob_full_cycles, naive.stats().rob_full_cycles);
        assert_eq!(skip.stats().loads, naive.stats().loads);
    }

    #[test]
    fn undrained_markers_pin_the_horizon_to_now() {
        struct Marked {
            sent: bool,
        }
        impl Workload for Marked {
            fn next_op(&mut self) -> Op {
                if !self.sent {
                    self.sent = true;
                    Op::Marker(7)
                } else {
                    Op::Load { addr: Addr::new(64), id: LoadId(1), dep: None }
                }
            }
            fn name(&self) -> &str {
                "marked"
            }
        }
        let mut core = OooCore::new(CoreConfig { rob: 1, width: 1, max_outstanding: 1 });
        let mut mem = MissMem::default();
        let mut wl = Marked { sent: false };
        for now in 0..5 {
            core.step(now, &mut wl, &mut mem);
        }
        assert!(core.has_markers());
        assert_eq!(core.next_event(5), Some(5), "markers must drain before a skip");
        let _ = core.take_markers();
        // With markers drained the core is wedged on its unfilled load.
        assert_eq!(core.next_event(5), None);
    }
}
