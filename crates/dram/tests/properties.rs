//! Property tests for the memory controller: conservation, latency floors
//! and accounting invariants under random request streams.

use pabst_cache::LineAddr;
use pabst_core::qos::{QosId, ShareTable};
use pabst_dram::{ArbiterMode, DramConfig, MemController, MemReq};
use proptest::prelude::*;

fn drive(
    mode: ArbiterMode,
    reqs: &[(u64, u8, bool)],
    max_cycles: u64,
) -> (u64, u64, MemController) {
    let shares = ShareTable::from_weights(&[3, 1]).unwrap();
    let mut mc = MemController::new(DramConfig::default(), mode, &shares, 128);
    let mut pushed = 0u64;
    let mut completed = 0u64;
    let mut it = reqs.iter();
    let mut now = 0u64;
    let mut pending_req: Option<MemReq> = None;
    loop {
        // Offer one request per cycle until the stream is exhausted.
        if pending_req.is_none() {
            pending_req = it.next().map(|&(line, class, wr)| MemReq {
                line: LineAddr::new(line),
                class: QosId::new(class % 2),
                is_write: wr,
                token: line,
            });
        }
        if let Some(req) = pending_req.take() {
            match mc.push(req) {
                Ok(()) => pushed += 1,
                Err(r) => pending_req = Some(r),
            }
        }
        completed += mc.step(now).len() as u64;
        now += 1;
        if pending_req.is_none() && it.len() == 0 && mc.pending() == 0 {
            break;
        }
        if now >= max_cycles {
            break;
        }
    }
    (pushed, completed, mc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every accepted request completes exactly once, in every mode.
    #[test]
    fn requests_conserved(reqs in proptest::collection::vec(
        (0u64..100_000, 0u8..2, any::<bool>()), 1..120)) {
        for mode in [ArbiterMode::Fcfs, ArbiterMode::Edf, ArbiterMode::Fqm] {
            let (pushed, completed, mc) = drive(mode, &reqs, 2_000_000);
            prop_assert_eq!(pushed, completed, "mode {:?}", mode);
            prop_assert_eq!(mc.pending(), 0);
        }
    }

    /// Byte accounting: per-class bytes sum to 64 x completions.
    #[test]
    fn bytes_accounted(reqs in proptest::collection::vec(
        (0u64..100_000, 0u8..2, any::<bool>()), 1..100)) {
        let (_, completed, mc) = drive(ArbiterMode::Edf, &reqs, 2_000_000);
        let bytes: u64 = mc.stats().bytes.iter().sum();
        prop_assert_eq!(bytes, completed * 64);
    }

    /// No read ever completes faster than the raw access pipeline
    /// (activation + CAS + burst on an idle bank).
    #[test]
    fn latency_floor(reqs in proptest::collection::vec(
        (0u64..100_000, 0u8..2), 1..60)) {
        let reads: Vec<(u64, u8, bool)> =
            reqs.into_iter().map(|(l, c)| (l, c, false)).collect();
        let (_, _, mc) = drive(ArbiterMode::Fcfs, &reads, 2_000_000);
        let cfg = DramConfig::default();
        let floor = (cfg.t_rcd + cfg.t_cl + cfg.t_burst) as f64;
        for class in 0..2u8 {
            if let Some(lat) = mc.stats().mean_read_latency(QosId::new(class)) {
                prop_assert!(lat >= floor, "class {class}: {lat} < {floor}");
            }
        }
    }

    /// Row-hit rate is a valid fraction and sequential streams beat random
    /// ones on it.
    #[test]
    fn row_hit_rate_sane(seed in 0u64..1000) {
        let seq: Vec<(u64, u8, bool)> = (0..80).map(|i| (i, 0u8, false)).collect();
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let rnd: Vec<(u64, u8, bool)> = (0..80)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 20, 0u8, false)
            })
            .collect();
        let (_, _, mc_seq) = drive(ArbiterMode::Fcfs, &seq, 2_000_000);
        let (_, _, mc_rnd) = drive(ArbiterMode::Fcfs, &rnd, 2_000_000);
        let (hs, hr) = (mc_seq.stats().row_hit_rate(), mc_rnd.stats().row_hit_rate());
        prop_assert!((0.0..=1.0).contains(&hs));
        prop_assert!((0.0..=1.0).contains(&hr));
        prop_assert!(hs >= hr, "sequential {hs} < random {hr}");
    }
}
