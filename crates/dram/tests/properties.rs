//! Property-style tests for the memory controller: conservation, latency
//! floors and accounting invariants under random request streams.
//!
//! Each property runs over a deterministic seeded sweep of randomized
//! request streams; a failure message carries the sweep seed, which
//! replays the exact case.

use pabst_cache::LineAddr;
use pabst_core::qos::{QosId, ShareTable};
use pabst_dram::{ArbiterMode, DramConfig, MemController, MemReq};
use pabst_simkit::rng::SimRng;

fn drive(
    mode: ArbiterMode,
    reqs: &[(u64, u8, bool)],
    max_cycles: u64,
) -> (u64, u64, MemController) {
    let shares = ShareTable::from_weights(&[3, 1]).expect("weights are nonzero");
    let mut mc = MemController::new(DramConfig::default(), mode, &shares, 128);
    let mut pushed = 0u64;
    let mut completed = 0u64;
    let mut it = reqs.iter();
    let mut now = 0u64;
    let mut pending_req: Option<MemReq> = None;
    let mut done = Vec::new();
    loop {
        // Offer one request per cycle until the stream is exhausted.
        if pending_req.is_none() {
            pending_req = it.next().map(|&(line, class, wr)| MemReq {
                line: LineAddr::new(line),
                class: QosId::new(class % 2),
                is_write: wr,
                token: line,
            });
        }
        if let Some(req) = pending_req.take() {
            match mc.push(req) {
                Ok(()) => pushed += 1,
                Err(r) => pending_req = Some(r),
            }
        }
        done.clear();
        mc.step_into(now, &mut done);
        completed += done.len() as u64;
        now += 1;
        if pending_req.is_none() && it.len() == 0 && mc.pending() == 0 {
            break;
        }
        if now >= max_cycles {
            break;
        }
    }
    (pushed, completed, mc)
}

/// A random request stream: (line, class, is_write) triples.
fn random_reqs(rng: &mut SimRng, max_len: u64, writes: bool) -> Vec<(u64, u8, bool)> {
    let len = 1 + rng.gen_range(0..max_len);
    (0..len)
        .map(|_| {
            (rng.gen_range(0..100_000), rng.gen_range(0..2) as u8, writes && rng.gen_bool(0.5))
        })
        .collect()
}

/// Every accepted request completes exactly once, in every mode.
#[test]
fn requests_conserved() {
    for seed in 0..24u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xd3a0);
        let reqs = random_reqs(&mut rng, 120, true);
        for mode in ArbiterMode::ALL {
            let (pushed, completed, mc) = drive(mode, &reqs, 2_000_000);
            assert_eq!(pushed, completed, "seed {seed}: mode {mode:?}");
            assert_eq!(mc.pending(), 0, "seed {seed}: mode {mode:?} left residue");
        }
    }
}

/// The DPQ arbiter's worst-case service bound holds in situ: random
/// mixed request streams through the full controller (bank timing,
/// row-hit bypass, write drains, aged-entry backstop) never trip the
/// debug-asserted promise. This property only has teeth in debug builds,
/// where `cargo test` runs it.
#[test]
fn dpq_service_bound_holds_in_controller() {
    for seed in 0..24u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xd6a0);
        let reqs = random_reqs(&mut rng, 200, true);
        let (pushed, completed, mc) = drive(ArbiterMode::Dpq, &reqs, 2_000_000);
        assert_eq!(pushed, completed, "seed {seed}: DPQ lost requests");
        assert_eq!(mc.pending(), 0, "seed {seed}: DPQ left residue");
    }
}

/// Per-class virtual clocks are monotone through the trait seam for
/// every deadline-carrying mechanism (the epoch sanitizer relies on
/// this).
#[test]
fn zoo_clocks_monotone() {
    for mode in ArbiterMode::ALL {
        let shares = ShareTable::from_weights(&[3, 1]).expect("weights are nonzero");
        let mut mc = MemController::new(DramConfig::default(), mode, &shares, 128);
        let mut rng = SimRng::seed_from_u64(0x60c5);
        let mut last = [0u64; 2];
        let mut done = Vec::new();
        for now in 0..20_000u64 {
            if mc.can_accept() {
                let _ = mc.push(MemReq {
                    line: LineAddr::new(rng.gen_range(0..1 << 30)),
                    class: QosId::new(rng.gen_range(0..2) as u8),
                    is_write: rng.gen_bool(0.2),
                    token: now,
                });
            }
            done.clear();
            mc.step_into(now, &mut done);
            for (c, l) in last.iter_mut().enumerate() {
                let v = mc.virtual_clock(QosId::new(c as u8));
                assert!(v >= *l, "{mode:?}: clock of class {c} regressed {l} -> {v}");
                *l = v;
            }
        }
    }
}

/// The per-bank and DPQ mechanisms still deliver differentiated service
/// to a backlogged high-share class (weaker than EDF's ratio tracking,
/// but the zoo's point is that they are not priority-blind).
#[test]
fn zoo_mechanisms_differentiate_service() {
    for mode in [ArbiterMode::PerBank, ArbiterMode::Dpq] {
        let shares = ShareTable::from_weights(&[3, 1]).expect("weights are nonzero");
        let mut mc = MemController::new(DramConfig::default(), mode, &shares, 128);
        let cfg = DramConfig::default();
        let row_stride = cfg.lines_per_row * cfg.banks as u64; // bank 0, next row
        let mut served = [0u64; 2];
        let mut to_issue = [12usize; 2];
        let mut next_row = [0u64, 1 << 20];
        let mut done = Vec::new();
        for now in 0..200_000u64 {
            let first = (now % 2) as usize;
            for c in [first, 1 - first] {
                while to_issue[c] > 0 {
                    let req = MemReq {
                        line: LineAddr::new(next_row[c] * row_stride),
                        class: QosId::new(c as u8),
                        is_write: false,
                        token: c as u64,
                    };
                    if mc.push(req).is_err() {
                        break;
                    }
                    next_row[c] += 1;
                    to_issue[c] -= 1;
                }
            }
            done.clear();
            mc.step_into(now, &mut done);
            for d in &done {
                served[d.class.index()] += 1;
                to_issue[d.class.index()] += 1;
            }
        }
        let ratio = served[0] as f64 / served[1] as f64;
        assert!(
            ratio > 1.5,
            "{mode:?}: high-share class must be favored, got ratio {ratio} ({served:?})"
        );
    }
}

/// Byte accounting: per-class bytes sum to 64 x completions.
#[test]
fn bytes_accounted() {
    for seed in 0..24u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xb17e);
        let reqs = random_reqs(&mut rng, 100, true);
        let (_, completed, mc) = drive(ArbiterMode::Edf, &reqs, 2_000_000);
        let bytes: u64 = mc.stats().bytes.iter().sum();
        assert_eq!(bytes, completed * 64, "seed {seed}");
    }
}

/// No read ever completes faster than the raw access pipeline
/// (activation + CAS + burst on an idle bank).
#[test]
fn latency_floor() {
    for seed in 0..24u64 {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xf100);
        let reads = random_reqs(&mut rng, 60, false);
        let (_, _, mc) = drive(ArbiterMode::Fcfs, &reads, 2_000_000);
        let cfg = DramConfig::default();
        let floor = (cfg.t_rcd + cfg.t_cl + cfg.t_burst) as f64;
        for class in 0..2u8 {
            if let Some(lat) = mc.stats().mean_read_latency(QosId::new(class)) {
                assert!(lat >= floor, "seed {seed}: class {class}: {lat} < {floor}");
            }
        }
    }
}

/// Row-hit rate is a valid fraction and sequential streams beat random
/// ones on it.
#[test]
fn row_hit_rate_sane() {
    for seed in 0..32u64 {
        let seq: Vec<(u64, u8, bool)> = (0..80).map(|i| (i, 0u8, false)).collect();
        let mut rng = SimRng::seed_from_u64(seed ^ 0x2067);
        let rnd: Vec<(u64, u8, bool)> =
            (0..80).map(|_| (rng.gen_range(0..1 << 44), 0u8, false)).collect();
        let (_, _, mc_seq) = drive(ArbiterMode::Fcfs, &seq, 2_000_000);
        let (_, _, mc_rnd) = drive(ArbiterMode::Fcfs, &rnd, 2_000_000);
        let (hs, hr) = (mc_seq.stats().row_hit_rate(), mc_rnd.stats().row_hit_rate());
        assert!((0.0..=1.0).contains(&hs), "seed {seed}: seq rate {hs}");
        assert!((0.0..=1.0).contains(&hr), "seed {seed}: rnd rate {hr}");
        assert!(hs >= hr, "seed {seed}: sequential {hs} < random {hr}");
    }
}
