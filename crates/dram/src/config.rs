//! DRAM timing and queue-geometry configuration.
//!
//! All timings are in CPU cycles at the simulated 2 GHz clock (0.5 ns per
//! cycle), so e.g. `t_rcd = 28` models 14 ns. Defaults approximate one
//! DDR4-2400 channel per controller: a 64-byte burst occupies the data bus
//! for ~7 CPU cycles (≈18.3 GB/s per channel, ≈73 GB/s across the four
//! controllers of the 32-core system).

/// Timing and geometry of one memory controller + DRAM channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Banks per channel.
    pub banks: usize,
    /// Cache lines per DRAM row (row size / 64 B).
    pub lines_per_row: u64,
    /// ACT-to-column command delay (row activation), CPU cycles.
    pub t_rcd: u64,
    /// Column access (CAS) latency, CPU cycles.
    pub t_cl: u64,
    /// Precharge latency, CPU cycles.
    pub t_rp: u64,
    /// Data-bus occupancy of one 64 B burst, CPU cycles.
    pub t_burst: u64,
    /// Bus turnaround penalty when switching between reads and writes.
    pub t_turnaround: u64,
    /// Ingress FIFO capacity (network → controller port).
    pub ingress_cap: usize,
    /// Front-end read queue capacity (the paper stresses commodity
    /// controllers hold an order of magnitude fewer requests than a large
    /// system has outstanding).
    pub read_q_cap: usize,
    /// Front-end write queue capacity.
    pub write_q_cap: usize,
    /// Write-drain high watermark: start draining writes when the write
    /// queue reaches this depth.
    pub wr_high: usize,
    /// Write-drain low watermark: stop draining when it falls to this.
    pub wr_low: usize,
    /// Frequency divisor: multiplies every latency (models down-clocked
    /// DDR, used by the Fig. 11 static-allocation baseline).
    pub freq_div: u64,
    /// Data-buffer entries: completed column accesses whose bursts await
    /// the bus. Banks run ahead of the bus only this far; the bus
    /// scheduler then picks among the buffered bursts by priority, so the
    /// buffer bounds how much work is in flight without creating a
    /// priority-blind reservation chain.
    pub data_buf_cap: usize,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            banks: 16,
            lines_per_row: 32, // 2 KiB rows
            t_rcd: 28,
            t_cl: 28,
            t_rp: 28,
            t_burst: 7,
            t_turnaround: 12,
            // A small ingress port: the priority-blind window in front of
            // the arbiter stays shallow.
            ingress_cap: 4,
            // Commodity-sized 32-entry front-end read queue: "an order of
            // magnitude smaller" than a large system's outstanding
            // requests (SI). A single 16-core streaming class (256
            // outstanding) already exceeds the four controllers' combined
            // queueing, which is exactly what breaks target-only
            // regulation under flood (Fig. 1b) while the per-source-fair
            // network keeps a latency-bound class's few requests flowing
            // (Fig. 1d).
            read_q_cap: 32,
            write_q_cap: 32,
            wr_high: 24,
            wr_low: 8,
            freq_div: 1,
            // Enough buffered bursts to keep the bus gapless while bank
            // pipelines cycle (~1 row cycle / burst time).
            data_buf_cap: 12,
        }
    }
}

impl DramConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.banks == 0 || !self.banks.is_power_of_two() {
            return Err("banks must be a non-zero power of two".into());
        }
        if self.lines_per_row == 0 || !self.lines_per_row.is_power_of_two() {
            return Err("lines_per_row must be a non-zero power of two".into());
        }
        if self.t_burst == 0 {
            return Err("t_burst must be non-zero".into());
        }
        if self.freq_div == 0 {
            return Err("freq_div must be non-zero".into());
        }
        if self.wr_low >= self.wr_high || self.wr_high > self.write_q_cap {
            return Err("require wr_low < wr_high <= write_q_cap".into());
        }
        if self.data_buf_cap == 0 {
            return Err("data_buf_cap must be non-zero".into());
        }
        if self.ingress_cap == 0 || self.read_q_cap == 0 || self.write_q_cap == 0 {
            return Err("queue capacities must be non-zero".into());
        }
        Ok(())
    }

    /// Effective (frequency-scaled) timing values.
    pub(crate) fn eff(&self, t: u64) -> u64 {
        t * self.freq_div
    }

    /// Theoretical peak bandwidth in bytes per CPU cycle.
    pub fn peak_bytes_per_cycle(&self) -> f64 {
        pabst_simkit::LINE_BYTES as f64 / self.eff(self.t_burst) as f64
    }

    /// Returns a copy with all latencies scaled by `div` (down-clocked
    /// DRAM, Fig. 11 baseline).
    pub fn down_clocked(mut self, div: u64) -> Self {
        assert!(div > 0, "divisor must be non-zero");
        self.freq_div = div;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert_eq!(DramConfig::default().validate(), Ok(()));
    }

    #[test]
    fn peak_bandwidth_matches_burst() {
        let c = DramConfig::default();
        assert!((c.peak_bytes_per_cycle() - 64.0 / 7.0).abs() < 1e-9);
        let slow = c.down_clocked(4);
        assert!((slow.peak_bytes_per_cycle() - 64.0 / 28.0).abs() < 1e-9);
    }

    #[test]
    fn validation_catches_bad_geometry() {
        let c = DramConfig { banks: 3, ..DramConfig::default() };
        assert!(c.validate().is_err());
        let mut c = DramConfig::default();
        c.wr_high = c.wr_low;
        assert!(c.validate().is_err());
        let c = DramConfig { t_burst: 0, ..DramConfig::default() };
        assert!(c.validate().is_err());
        let c = DramConfig { freq_div: 0, ..DramConfig::default() };
        assert!(c.validate().is_err());
    }
}
