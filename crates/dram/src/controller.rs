//! The memory controller: ingress FIFO, split front-end read/write queues,
//! back-end bank scheduling, a per-burst bus scheduler, and the saturation
//! monitor.
//!
//! ## Structure (paper §III-C)
//!
//! ```text
//! network ─► ingress FIFO ─► front-end { read Q | write Q }
//!                                        │  back-end: per-bank ACT/CAS pipelines
//!                                        ▼
//!                              data buffer ─► bus scheduler ─► data bus
//! ```
//!
//! * The **back-end** issues bank accesses straight from the front-end
//!   queues: every ready bank nominates its local winner — row hits first,
//!   then priority order (earliest virtual deadline in
//!   [`ArbiterMode::Edf`]/[`ArbiterMode::Fqm`], oldest in
//!   [`ArbiterMode::Fcfs`]), with the row-hit bypass streak bounded so
//!   hits cannot starve a prioritized row miss — and the globally
//!   highest-priority nomination wins a data-buffer slot.
//! * The **bus scheduler** assigns each data-bus burst to the highest-
//!   priority *ready* access in the data buffer. This is the second place
//!   the paper applies deadline order, and it is what lets a prioritized
//!   class's data jump every other bank's completed access instead of
//!   waiting in a priority-blind reservation chain.
//! * Writes are not prioritized: they drain in batches between the
//!   high/low watermarks (bus turnaround applied on direction switches)
//!   and opportunistically when no read is pending.
//!
//! ## Simplifications (documented deviations)
//!
//! * Rows stay open until a conflicting access (lazy close) rather than a
//!   strict closed page; with row-hit-first selection this is standard
//!   FR-FCFS and produces the same scheduling trade-offs the paper
//!   discusses (row hits vs. priority).
//! * No read-around-write forwarding from the write queue; the evaluated
//!   workloads never re-read recently written lines quickly.

use pabst_cache::LineAddr;
use pabst_core::arbiter::VirtualDeadline;
use pabst_core::qos::{QosId, ShareTable, MAX_CLASSES};
use pabst_core::satmon::SatMonitor;
use pabst_simkit::queue::BoundedQueue;
use pabst_simkit::{Cycle, LINE_BYTES};

use crate::arbiter::{ArbiterMode, TargetArbiter};
use crate::config::DramConfig;

/// A request presented to the controller's ingress port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReq {
    /// Target cache line.
    pub line: LineAddr,
    /// Originating QoS class.
    pub class: QosId,
    /// True for a writeback, false for a demand read.
    pub is_write: bool,
    /// Opaque caller token returned in the [`Completion`] (routes responses
    /// back through the cache hierarchy).
    pub token: u64,
}

/// A finished access, reported at the cycle its data burst completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request's caller token.
    pub token: u64,
    /// Originating class (for accounting).
    pub class: QosId,
    /// Whether this was a write.
    pub is_write: bool,
    /// The accessed line.
    pub line: LineAddr,
}

#[derive(Debug, Clone, Copy)]
struct QueuedReq {
    req: MemReq,
    deadline: VirtualDeadline,
    seq: u64,
    enq_at: Cycle,
    /// Bank index of `req.line`, decoded once at acceptance. The issue
    /// stage and the horizon scan visit every queued entry per cycle, and
    /// the address-decode divisions dominate that walk if recomputed.
    bank: u32,
    /// Row index of `req.line`, decoded once at acceptance.
    row: u64,
}

#[derive(Debug)]
struct Bank {
    open_row: Option<u64>,
    /// Earliest cycle the bank may start its next column/row command.
    rdy: Cycle,
    /// Consecutive times a row hit bypassed the priority-order winner.
    hit_streak: u32,
}

/// Aggregate controller statistics.
#[derive(Debug, Clone, Default)]
pub struct McStats {
    /// Total bytes transferred per class (reads + writes it caused).
    pub bytes: [u64; MAX_CLASSES],
    /// Bytes per class since the last epoch snapshot.
    epoch_marks: [u64; MAX_CLASSES],
    /// Completed reads.
    pub reads: u64,
    /// Completed writes.
    pub writes: u64,
    /// Data-bus busy cycles (burst occupancy only).
    pub bus_busy: u64,
    /// Row-hit accesses.
    pub row_hits: u64,
    /// Row-miss (activate) accesses.
    pub row_misses: u64,
    /// Sum of read latencies (queue entry to data completion) per class.
    pub read_lat_sum: [u64; MAX_CLASSES],
    /// Completed reads per class (denominator for the mean latency).
    pub read_lat_n: [u64; MAX_CLASSES],
}

impl McStats {
    /// Bytes per class since the previous call (per-epoch bandwidth).
    pub fn take_epoch_bytes(&mut self) -> [u64; MAX_CLASSES] {
        let mut out = [0u64; MAX_CLASSES];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.bytes[i] - self.epoch_marks[i];
            self.epoch_marks[i] = self.bytes[i];
        }
        out
    }

    /// Mean in-controller read latency of `class` in cycles, or `None`
    /// when it completed no reads.
    pub fn mean_read_latency(&self, class: QosId) -> Option<f64> {
        let n = self.read_lat_n[class.index()];
        if n == 0 {
            None
        } else {
            Some(self.read_lat_sum[class.index()] as f64 / n as f64)
        }
    }

    /// Row-hit rate over completed accesses, or 0 when none.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

/// A point-in-time view of one [`MemController`]'s queues and priority
/// arbiter (observability; see [`MemController::snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct McSnapshot {
    /// Entries in the front-end read queue.
    pub read_q_depth: u64,
    /// Entries in the front-end write queue.
    pub write_q_depth: u64,
    /// Entries waiting in the ingress FIFO.
    pub ingress_depth: u64,
    /// Outstanding work anywhere in the controller.
    pub pending: u64,
    /// Requests accepted at the ingress so far.
    pub accepted: u64,
    /// Requests refused at the ingress so far.
    pub ingress_rejects: u64,
    /// Per-class virtual-clock values of the priority arbiter.
    pub virtual_clocks: Vec<u64>,
}

/// Per-bank scratch used by one back-end selection pass: the aged entry
/// (starvation guard), else the priority winner and the first-ready (row
/// hit) winner. Stored on the controller so the per-cycle pass reuses one
/// allocation.
#[derive(Debug, Clone, Copy, Default)]
struct BankScratch {
    aged: Option<(usize, Cycle)>,
    prio: Option<(usize, (VirtualDeadline, u64))>,
    fr: Option<(usize, (VirtualDeadline, u64))>,
}

/// A completed column access whose data burst awaits the bus.
#[derive(Debug, Clone, Copy)]
struct PendingBurst {
    e: QueuedReq,
    /// Cycle the data can first appear on the bus.
    ready_at: Cycle,
    /// FQM service-cost units (1 row hit, 2 closed row, 3 conflict).
    cost: u64,
}

/// One memory controller with a single DRAM channel.
#[derive(Debug)]
pub struct MemController {
    cfg: DramConfig,
    ingress: BoundedQueue<MemReq>,
    read_q: BoundedQueue<QueuedReq>,
    write_q: BoundedQueue<QueuedReq>,
    banks: Vec<Bank>,
    arbiter: Box<dyn TargetArbiter>,
    satmon: SatMonitor,
    /// Column accesses whose data awaits a bus slot.
    awaiting_bus: Vec<PendingBurst>,
    /// Scheduled bursts waiting for their data to finish transferring.
    inflight: Vec<(QueuedReq, Cycle)>,
    bus_free_at: Cycle,
    last_dir_write: bool,
    draining_writes: bool,
    seq: u64,
    stats: McStats,
    /// Requests rejected at the ingress (upstream must retry): visibility
    /// into backpressure.
    ingress_rejects: u64,
    /// Requests accepted at the ingress (inflow side of the conservation
    /// invariant the sanitizer checks each epoch).
    accepted: u64,
    /// Max cycles a bank-queue entry may wait before overriding row-hit
    /// preference (starvation guard).
    age_cap: Cycle,
    /// Max consecutive row-hit bypasses of the priority-order winner.
    max_hit_streak: u32,
    /// Reused per-bank scratch for [`MemController::issue_one`]'s single
    /// pass over the front-end queue (avoids a per-cycle allocation).
    issue_scratch: Vec<BankScratch>,
}

impl MemController {
    /// Creates a controller.
    ///
    /// `shares` provides the per-class strides for the priority arbiter
    /// (ignored by priority-blind modes); `slack` is the arbiter's
    /// virtual-credit bound (the paper uses 128). `mode` selects the
    /// [`TargetArbiter`] implementation from the zoo.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails validation.
    pub fn new(cfg: DramConfig, mode: ArbiterMode, shares: &ShareTable, slack: u64) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid DramConfig: {e}");
        }
        let banks =
            (0..cfg.banks).map(|_| Bank { open_row: None, rdy: 0, hit_streak: 0 }).collect();
        Self {
            ingress: BoundedQueue::new(cfg.ingress_cap),
            read_q: BoundedQueue::new(cfg.read_q_cap),
            write_q: BoundedQueue::new(cfg.write_q_cap),
            banks,
            arbiter: mode.build(shares, slack, cfg.banks),
            satmon: SatMonitor::new(cfg.read_q_cap),
            awaiting_bus: Vec::new(),
            inflight: Vec::new(),
            bus_free_at: 0,
            last_dir_write: false,
            draining_writes: false,
            seq: 0,
            stats: McStats::default(),
            ingress_rejects: 0,
            accepted: 0,
            // Pure starvation backstop: priority inversion from row-hit
            // streaks is already bounded by `max_hit_streak`, so this only
            // catches pathological waits, far beyond any legitimate
            // low-share queueing delay.
            age_cap: 10_000,
            max_hit_streak: 3,
            issue_scratch: Vec::new(),
            cfg,
        }
    }

    /// Offers a request to the ingress port.
    ///
    /// # Errors
    ///
    /// Returns `Err(req)` when the ingress FIFO is full; the caller must
    /// hold the request and retry (backpressure into the cache hierarchy).
    pub fn push(&mut self, req: MemReq) -> Result<(), MemReq> {
        match self.ingress.push(req) {
            Ok(()) => {
                self.accepted += 1;
                Ok(())
            }
            Err(r) => {
                self.ingress_rejects += 1;
                Err(r)
            }
        }
    }

    /// True when the ingress port can accept a request this cycle.
    pub fn can_accept(&self) -> bool {
        !self.ingress.is_full()
    }

    /// Test-only convenience wrapper that allocates a fresh completion
    /// vector per cycle. Production callers use
    /// [`MemController::step_into`] with a reused buffer — the per-cycle
    /// allocation measurably costs throughput at simulation scale, which
    /// is why no public allocating form exists.
    #[cfg(test)]
    pub(crate) fn step_vec(&mut self, now: Cycle) -> Vec<Completion> {
        let mut out = Vec::new();
        self.step_into(now, &mut out);
        out
    }

    /// Advances the controller one cycle, appending accesses whose data
    /// burst completed this cycle to `out`.
    pub fn step_into(&mut self, now: Cycle, out: &mut Vec<Completion>) {
        self.satmon.sample(self.read_q.len());
        if self.pending() == 0 {
            // Idle fast path: no queued or in-flight work anywhere, so the
            // accept/issue/bus/collect stages below are all no-ops.
            return;
        }
        self.accept_from_ingress(now);
        self.update_drain_mode();
        self.back_end_issue(now);
        self.bus_schedule(now);
        self.collect_completions_into(now, out);
    }

    /// Computes this controller's SAT bit for the epoch that just ended and
    /// resets the occupancy average (§III-C1).
    pub fn take_epoch_sat(&mut self) -> bool {
        self.satmon.take_epoch_sat()
    }

    /// Earliest cycle at which stepping this controller could change
    /// observable state, or `None` when it holds no work at all.
    ///
    /// Follows the horizon contract (`docs/PERFORMANCE.md`): answers may
    /// be conservative (a step at the reported cycle can turn out to be
    /// a no-op, e.g. when write-drain mode picks a queue whose banks are
    /// all busy) but never late. Each pipeline stage contributes the
    /// cycle its own gating condition first opens:
    ///
    /// * ingress — a routable head is accepted the cycle it is stepped;
    ///   a blocked head unblocks only after a front-end queue drains,
    ///   which one of the bank/bus events below must precede;
    /// * back end — a queued request can issue once its bank's timing
    ///   holds (tRCD/tCAS/tRP) release, provided a data-buffer slot is
    ///   free;
    /// * bus — a burst can be booked once the booking window opens and
    ///   its data is ready;
    /// * completions — surface at their scheduled data-done cycle.
    ///
    /// The saturation monitor's per-cycle occupancy sample is *not* an
    /// event (it never changes queue state); skipped cycles accrue it in
    /// batch via [`MemController::accrue_skip`].
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        use pabst_simkit::horizon::Horizon;

        if self.pending() == 0 {
            return None;
        }
        let mut h = Horizon::new();
        if let Some(head) = self.ingress.peek() {
            let target_full =
                if head.is_write { self.write_q.is_full() } else { self.read_q.is_full() };
            if !target_full {
                return Some(now);
            }
        }
        if self.awaiting_bus.len() < self.cfg.data_buf_cap {
            // Both queues contribute regardless of the current drain
            // mode: conservative, never late.
            for e in self.read_q.iter().chain(self.write_q.iter()) {
                let rdy = self.banks[e.bank as usize].rdy;
                if rdy <= now {
                    return Some(now);
                }
                h.add(rdy);
            }
        }
        let t_burst = self.cfg.eff(self.cfg.t_burst);
        let book = self.bus_free_at.saturating_sub(t_burst);
        for p in &self.awaiting_bus {
            let c = if p.ready_at <= self.bus_free_at { book } else { p.ready_at };
            if c <= now {
                return Some(now);
            }
            h.add(c);
        }
        for &(_, done_at) in &self.inflight {
            if done_at <= now {
                return Some(now);
            }
            h.add(done_at);
        }
        // The arbiter seam's own horizon: an arbiter whose priorities can
        // change at a future cycle without a stamp or a pick reports it
        // here so the skip contract holds for every implementation.
        if let Some(at) = self.arbiter.next_event(now) {
            if at <= now {
                return Some(now);
            }
            h.add(at);
        }
        h.get()
    }

    /// Accounts for `cycles` skipped quiescent cycles: the saturation
    /// monitor samples the read-queue occupancy every stepped cycle, and
    /// the occupancy cannot have changed while the controller was not
    /// stepped, so the samples naive stepping would have taken are all
    /// equal to the current depth.
    pub fn accrue_skip(&mut self, cycles: u64) {
        self.satmon.sample_n(self.read_q.len(), cycles);
    }

    /// Controller statistics (mutable so callers can take epoch deltas).
    pub fn stats_mut(&mut self) -> &mut McStats {
        &mut self.stats
    }

    /// Controller statistics.
    pub fn stats(&self) -> &McStats {
        &self.stats
    }

    /// Requests refused at the ingress so far.
    pub fn ingress_rejects(&self) -> u64 {
        self.ingress_rejects
    }

    /// Requests accepted at the ingress so far. At any instant
    /// `accepted == completed reads + completed writes + pending()` — the
    /// conservation invariant the epoch sanitizer verifies.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Current virtual-clock value of `id`'s class in the priority
    /// arbiter. Monotonically nondecreasing (stamps advance it; the slack
    /// floor only ever raises it), which the epoch sanitizer verifies.
    pub fn virtual_clock(&self, id: QosId) -> u64 {
        self.arbiter.clock(id)
    }

    /// Stable label of the target arbiter behind the seam (provenance
    /// hashing, report tables).
    pub fn arbiter_name(&self) -> &'static str {
        self.arbiter.name()
    }

    /// Promotes the arbiter's debug-only bound assertions to counted
    /// release-mode checks (no-op for arbiters without promises).
    pub fn set_bound_checks(&mut self, on: bool) {
        self.arbiter.set_bound_checks(on);
    }

    /// Cumulative arbiter bound violations (e.g. DPQ worst-case service
    /// promises missed); read each epoch by the invariant checker.
    pub fn bound_violations(&self) -> u64 {
        self.arbiter.bound_violations()
    }

    /// Outstanding work anywhere in the controller (for drain loops in
    /// tests and at simulation end).
    pub fn pending(&self) -> usize {
        self.ingress.len()
            + self.read_q.len()
            + self.write_q.len()
            + self.awaiting_bus.len()
            + self.inflight.len()
    }

    /// The configuration this controller was built with.
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// A point-in-time view of the controller's queues and arbiter state
    /// for observability (trace records). Pure.
    pub fn snapshot(&self) -> McSnapshot {
        let n = self.arbiter.classes();
        let clocks = (0..n).map(|c| self.arbiter.clock(QosId::new(c as u8))).collect();
        McSnapshot {
            read_q_depth: self.read_q.len() as u64,
            write_q_depth: self.write_q.len() as u64,
            ingress_depth: self.ingress.len() as u64,
            pending: self.pending() as u64,
            accepted: self.accepted,
            ingress_rejects: self.ingress_rejects,
            virtual_clocks: clocks,
        }
    }

    /// Reprograms the per-class shares (software updating weights).
    pub fn set_shares(&mut self, shares: &ShareTable) {
        self.arbiter.set_shares(shares);
    }

    fn accept_from_ingress(&mut self, now: Cycle) {
        // Head-of-line: stop at the first request that cannot be routed.
        // This is deliberate — it is how requests "queue elsewhere in the
        // system" when the target is oversubscribed (Fig. 1b).
        while let Some(head) = self.ingress.peek() {
            let is_write = head.is_write;
            let target_full = if is_write { self.write_q.is_full() } else { self.read_q.is_full() };
            if target_full {
                break;
            }
            let req = self.ingress.pop().expect("peeked entry exists");
            self.seq += 1;
            let cols = req.line.get() / self.cfg.lines_per_row;
            let bank = (cols % self.cfg.banks as u64) as u32;
            let row = cols / self.cfg.banks as u64;
            // The arbiter stamps every accepted request; priority policy
            // (and whether writes carry any) lives behind the seam.
            let backlog = if is_write { self.write_q.len() } else { self.read_q.len() };
            let deadline = self.arbiter.stamp(req.class, is_write, self.seq, bank, backlog);
            let q = QueuedReq { req, deadline, seq: self.seq, enq_at: now, bank, row };
            let res = if is_write { self.write_q.push(q) } else { self.read_q.push(q) };
            debug_assert!(res.is_ok(), "fullness checked above");
        }
    }

    fn update_drain_mode(&mut self) {
        if self.write_q.len() >= self.cfg.wr_high {
            self.draining_writes = true;
        } else if self.write_q.len() <= self.cfg.wr_low {
            self.draining_writes = false;
        }
    }

    /// Issues bank accesses directly from the front-end queues (the
    /// paper's back-end): for each selection, every *ready* bank nominates
    /// its local winner — row hits first, then priority order, with the
    /// row-hit bypass streak bounded — and the globally highest-priority
    /// nomination wins the data-buffer slot. Writes are drained in batches
    /// between the watermarks and opportunistically when no read is
    /// pending.
    fn back_end_issue(&mut self, now: Cycle) {
        for _ in 0..2 {
            if self.awaiting_bus.len() >= self.cfg.data_buf_cap {
                break;
            }
            let use_writes =
                self.draining_writes || (self.read_q.is_empty() && !self.write_q.is_empty());
            if !self.issue_one(now, use_writes) {
                break;
            }
        }
    }

    /// Selects and issues one request from the chosen front-end queue.
    /// Returns whether anything issued.
    fn issue_one(&mut self, now: Cycle, from_writes: bool) -> bool {
        let q = if from_writes { &self.write_q } else { &self.read_q };
        if q.is_empty() {
            return false;
        }
        let banks = &self.banks;
        // Every queue entry whose bank is still timing-blocked is skipped
        // below; when no bank can start a command at all, the whole scan
        // is a guaranteed no-op, and checking the (few) banks is cheaper
        // than walking the (many) queued requests.
        if !banks.iter().any(|b| b.rdy <= now) {
            return false;
        }
        let deadlines = self.arbiter.uses_deadlines();
        let prio_key = |e: &QueuedReq| {
            if deadlines {
                (e.deadline, e.seq)
            } else {
                (VirtualDeadline(0), e.seq)
            }
        };

        // Per ready bank: the aged entry (starvation guard), else the
        // priority winner and the first-ready (row hit) winner — all
        // gathered in a single pass over the queue with per-bank scratch
        // (persistent across cycles, see `issue_scratch`).
        let scratch = &mut self.issue_scratch;
        scratch.clear();
        scratch.resize(banks.len(), BankScratch::default());
        for (i, e) in q.iter().enumerate() {
            let b = e.bank as usize;
            let bank = &banks[b];
            if bank.rdy > now {
                continue;
            }
            let sc = &mut scratch[b];
            if now.saturating_sub(e.enq_at) > self.age_cap
                && sc.aged.is_none_or(|(_, t)| e.enq_at < t)
            {
                sc.aged = Some((i, e.enq_at));
            }
            let key = prio_key(e);
            if sc.prio.is_none_or(|(_, k)| key < k) {
                sc.prio = Some((i, key));
            }
            if bank.open_row == Some(e.row) && sc.fr.is_none_or(|(_, k)| key < k) {
                sc.fr = Some((i, key));
            }
        }
        struct Nominee {
            idx: usize,
            bank: usize,
            bypass: bool,
            key: (VirtualDeadline, u64),
        }
        let mut win: Option<Nominee> = None;
        let consider = |n: Nominee, win: &mut Option<Nominee>| {
            if win.as_ref().is_none_or(|w| n.key < w.key) {
                *win = Some(n);
            }
        };
        for (b, sc) in scratch.iter().copied().enumerate() {
            if let Some((i, _)) = sc.aged {
                // Aged entries outrank everything (starvation backstop).
                consider(
                    Nominee { idx: i, bank: b, bypass: false, key: (VirtualDeadline(0), 0) },
                    &mut win,
                );
            } else if let Some((pi, pk)) = sc.prio {
                // Row hits may bypass the priority winner only a bounded
                // number of consecutive times (the fairness half of the
                // paper's fair FR-FCFS).
                match sc.fr {
                    Some((fi, fk)) if fi != pi && banks[b].hit_streak < self.max_hit_streak => {
                        consider(Nominee { idx: fi, bank: b, bypass: true, key: fk }, &mut win)
                    }
                    _ => consider(Nominee { idx: pi, bank: b, bypass: false, key: pk }, &mut win),
                }
            }
        }
        let Some(win) = win else {
            return false;
        };
        if win.bypass {
            self.banks[win.bank].hit_streak += 1;
        } else {
            self.banks[win.bank].hit_streak = 0;
        }
        let q = if from_writes { &mut self.write_q } else { &mut self.read_q };
        let e = q.remove(win.idx).expect("index valid");
        self.issue_to_bank(win.bank, e, now);
        true
    }

    /// Starts the bank-side access (precharge/activate/CAS pipeline). The
    /// data burst is handed to the bus scheduler once the column access
    /// completes.
    fn issue_to_bank(&mut self, b: usize, e: QueuedReq, now: Cycle) {
        let row = e.row;
        let bank = &mut self.banks[b];
        let (t_rcd, t_cl, t_rp, t_burst) = (
            self.cfg.eff(self.cfg.t_rcd),
            self.cfg.eff(self.cfg.t_cl),
            self.cfg.eff(self.cfg.t_rp),
            self.cfg.eff(self.cfg.t_burst),
        );

        let row_hit = bank.open_row == Some(row);
        let had_open_row = bank.open_row.is_some();
        let col_cmd = match bank.open_row {
            Some(r) if r == row => now.max(bank.rdy),
            Some(_) => now.max(bank.rdy) + t_rp + t_rcd,
            None => now.max(bank.rdy) + t_rcd,
        };
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }

        bank.open_row = Some(row);
        // Next column command may issue one burst time after this CAS.
        bank.rdy = col_cmd + t_burst;

        let cost = match (row_hit, had_open_row) {
            (true, _) => 1,
            (false, false) => 2,
            (false, true) => 3,
        };
        self.awaiting_bus.push(PendingBurst { e, ready_at: col_cmd + t_cl, cost });
    }

    /// The per-burst bus scheduler: each time the data bus approaches
    /// free, pick among *ready* bursts by priority — this is where the
    /// PABST arbiter actually reorders service, so a prioritized class's
    /// data jumps every other bank's completed access.
    fn bus_schedule(&mut self, now: Cycle) {
        let (t_burst, t_turn) =
            (self.cfg.eff(self.cfg.t_burst), self.cfg.eff(self.cfg.t_turnaround));
        // Book at most one burst ahead.
        if self.bus_free_at > now + t_burst {
            return;
        }
        let prefer_write = self.draining_writes;
        let deadlines = self.arbiter.uses_deadlines();
        let pick = self
            .awaiting_bus
            .iter()
            .enumerate()
            .filter(|(_, p)| p.ready_at <= self.bus_free_at.max(now))
            .min_by_key(|(_, p)| {
                let key =
                    if deadlines { (p.e.deadline, p.e.seq) } else { (VirtualDeadline(0), p.e.seq) };
                (p.e.req.is_write != prefer_write, key)
            })
            .map(|(i, _)| i);
        let Some(i) = pick else { return };
        let p = self.awaiting_bus.swap_remove(i);
        let bus_earliest = if p.e.req.is_write != self.last_dir_write {
            self.bus_free_at + t_turn
        } else {
            self.bus_free_at
        };
        let data_start = bus_earliest.max(p.ready_at).max(now);
        let data_done = data_start + t_burst;
        self.bus_free_at = data_done;
        self.last_dir_write = p.e.req.is_write;
        self.stats.bus_busy += t_burst;
        if !p.e.req.is_write {
            self.arbiter.on_picked(p.e.req.class, p.e.deadline, p.e.seq, p.e.bank, p.cost);
        }
        self.inflight.push((p.e, data_done));
    }

    fn collect_completions_into(&mut self, now: Cycle, done: &mut Vec<Completion>) {
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].1 <= now {
                let (e, _) = self.inflight.swap_remove(i);
                self.stats.bytes[e.req.class.index()] += LINE_BYTES;
                if e.req.is_write {
                    self.stats.writes += 1;
                } else {
                    self.stats.reads += 1;
                    self.stats.read_lat_sum[e.req.class.index()] += now.saturating_sub(e.enq_at);
                    self.stats.read_lat_n[e.req.class.index()] += 1;
                }
                done.push(Completion {
                    token: e.req.token,
                    class: e.req.class,
                    is_write: e.req.is_write,
                    line: e.req.line,
                });
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shares(weights: &[u32]) -> ShareTable {
        ShareTable::from_weights(weights).unwrap()
    }

    fn mc(mode: ArbiterMode, weights: &[u32]) -> MemController {
        MemController::new(DramConfig::default(), mode, &shares(weights), 128)
    }

    fn q(i: u8) -> QosId {
        QosId::new(i)
    }

    /// Drives the controller with an always-full offered load from one
    /// class, returning bytes completed over `cycles`.
    fn saturate_reads(mc: &mut MemController, cycles: u64) -> u64 {
        let mut line = 0u64;
        let mut bytes = 0;
        for now in 0..cycles {
            while mc.can_accept() {
                let ok = mc.push(MemReq {
                    line: LineAddr::new(line),
                    class: q(0),
                    is_write: false,
                    token: line,
                });
                if ok.is_err() {
                    break;
                }
                line += 1;
            }
            bytes += mc.step_vec(now).len() as u64 * LINE_BYTES;
        }
        bytes
    }

    #[test]
    fn sequential_reads_approach_peak_bandwidth() {
        let mut m = mc(ArbiterMode::Fcfs, &[1]);
        let cycles = 40_000;
        let bytes = saturate_reads(&mut m, cycles);
        let peak = m.config().peak_bytes_per_cycle() * cycles as f64;
        let eff = bytes as f64 / peak;
        assert!(eff > 0.85, "efficiency {eff} too low for streaming reads");
        assert!(m.stats().row_hit_rate() > 0.9, "stream should be mostly row hits");
    }

    #[test]
    fn bank_conflicts_are_much_slower_than_sequential() {
        let mut seq = mc(ArbiterMode::Fcfs, &[1]);
        let seq_bytes = saturate_reads(&mut seq, 20_000);

        // Every request to bank 0 but a different row: per-bank row cycling
        // serializes with no bank-level parallelism.
        let cfg = DramConfig::default();
        let stride_lines = cfg.lines_per_row * cfg.banks as u64; // same bank, next row
        let mut cnf = mc(ArbiterMode::Fcfs, &[1]);
        let mut i = 0u64;
        let mut bytes = 0;
        for now in 0..20_000u64 {
            while cnf.can_accept() {
                if cnf
                    .push(MemReq {
                        line: LineAddr::new(i * stride_lines),
                        class: q(0),
                        is_write: false,
                        token: i,
                    })
                    .is_err()
                {
                    break;
                }
                i += 1;
            }
            bytes += cnf.step_vec(now).len() as u64 * LINE_BYTES;
        }
        assert!(
            (bytes as f64) < 0.4 * seq_bytes as f64,
            "bank conflicts ({bytes}) must be far below sequential ({seq_bytes})"
        );
    }

    #[test]
    fn completions_conserve_requests() {
        let mut m = mc(ArbiterMode::Edf, &[1, 1]);
        let mut pushed = 0u64;
        let mut completed = 0u64;
        for now in 0..5_000u64 {
            if now < 1_000 && m.can_accept() {
                m.push(MemReq {
                    line: LineAddr::new(now * 17),
                    class: q((now % 2) as u8),
                    is_write: now % 3 == 0,
                    token: now,
                })
                .unwrap();
                pushed += 1;
            }
            completed += m.step_vec(now).len() as u64;
        }
        // Drain fully.
        let mut now = 5_000u64;
        while m.pending() > 0 {
            completed += m.step_vec(now).len() as u64;
            now += 1;
            assert!(now < 1_000_000, "controller failed to drain");
        }
        assert_eq!(pushed, completed);
    }

    /// Closed-loop driver: each class keeps a fixed number of requests
    /// outstanding (as finite MSHRs would), reissuing on completion.
    /// Returns per-class completed read counts.
    fn closed_loop(m: &mut MemController, tokens_per_class: usize, cycles: u64) -> [u64; 2] {
        let mut x = 0xdeadbeefu64;
        let mut served = [0u64; 2];
        let mut to_issue = [tokens_per_class; 2];
        for now in 0..cycles {
            let first = (now % 2) as usize;
            for c in [first, 1 - first] {
                while to_issue[c] > 0 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
                    let req = MemReq {
                        line: LineAddr::new((x >> 16) + (c as u64) * (1 << 40)),
                        class: q(c as u8),
                        is_write: false,
                        token: c as u64,
                    };
                    if m.push(req).is_err() {
                        break;
                    }
                    to_issue[c] -= 1;
                }
            }
            for done in m.step_vec(now) {
                served[done.class.index()] += 1;
                to_issue[done.class.index()] += 1;
            }
        }
        served
    }

    /// Closed-loop driver contending on a single bank, so the front-end
    /// arbiter has a real choice to make.
    fn closed_loop_one_bank(
        m: &mut MemController,
        tokens_per_class: usize,
        cycles: u64,
    ) -> [u64; 2] {
        let cfg = DramConfig::default();
        let row_stride = cfg.lines_per_row * cfg.banks as u64; // bank 0, next row
        let mut served = [0u64; 2];
        let mut to_issue = [tokens_per_class; 2];
        let mut next_row = [0u64, 1 << 20];
        for now in 0..cycles {
            let first = (now % 2) as usize;
            for c in [first, 1 - first] {
                while to_issue[c] > 0 {
                    let req = MemReq {
                        line: LineAddr::new(next_row[c] * row_stride),
                        class: q(c as u8),
                        is_write: false,
                        token: c as u64,
                    };
                    if m.push(req).is_err() {
                        break;
                    }
                    next_row[c] += 1;
                    to_issue[c] -= 1;
                }
            }
            for done in m.step_vec(now) {
                served[done.class.index()] += 1;
                to_issue[done.class.index()] += 1;
            }
        }
        served
    }

    #[test]
    fn edf_shares_service_between_backlogged_closed_loop_classes() {
        // Two classes, 3:1, each keeping 12 requests outstanding — few
        // enough that everything fits in the controller's queues (the
        // paper's condition for target regulation to work) — all contending
        // on one bank. Completed reads track the shares.
        let mut m = mc(ArbiterMode::Edf, &[3, 1]);
        let served = closed_loop_one_bank(&mut m, 12, 200_000);
        let ratio = served[0] as f64 / served[1] as f64;
        assert!((ratio - 3.0).abs() < 0.6, "EDF service ratio {ratio}, served {served:?}");
    }

    #[test]
    fn edf_lowers_latency_of_sparse_high_share_class() {
        // A latency-bound high-share class (one outstanding request at a
        // time) co-located with a flooding streamer: the priority arbiter's
        // job is to cut the sparse class's queueing delay (Fig. 1d).
        let run = |mode: ArbiterMode| -> f64 {
            let mut m = mc(mode, &[3, 1]);
            let mut x = 1u64;
            let mut stream_line = 0u64;
            let mut issued_at: Option<Cycle> = None;
            let mut lat_sum = 0u64;
            let mut lat_n = 0u64;
            for now in 0..60_000u64 {
                // Sparse class 0: issue one random read when idle.
                if issued_at.is_none() {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if m.push(MemReq {
                        line: LineAddr::new((x >> 16) | (1 << 41)),
                        class: q(0),
                        is_write: false,
                        token: 777,
                    })
                    .is_ok()
                    {
                        issued_at = Some(now);
                    }
                }
                // Streamer class 1 floods, spanning all banks (as many
                // concurrent streaming cores would).
                while m.can_accept() {
                    if m.push(MemReq {
                        line: LineAddr::new(stream_line * DramConfig::default().lines_per_row),
                        class: q(1),
                        is_write: false,
                        token: 0,
                    })
                    .is_err()
                    {
                        break;
                    }
                    stream_line += 1;
                }
                for done in m.step_vec(now) {
                    if done.token == 777 {
                        lat_sum += now - issued_at.expect("chaser was outstanding");
                        lat_n += 1;
                        issued_at = None;
                    }
                }
            }
            lat_sum as f64 / lat_n as f64
        };
        let fcfs = run(ArbiterMode::Fcfs);
        let edf = run(ArbiterMode::Edf);
        assert!(
            edf < 0.75 * fcfs,
            "EDF must cut sparse-class latency: edf={edf:.0} fcfs={fcfs:.0}"
        );
    }

    #[test]
    fn edf_cannot_partition_when_oversubscribed() {
        // The same classes with far more outstanding requests than the
        // controller can hold: admission (FCFS through the full ingress)
        // pins throughput near 1:1 regardless of the arbiter — the Fig. 1b
        // failure mode of target-only regulation.
        let mut m = mc(ArbiterMode::Edf, &[3, 1]);
        let served = closed_loop(&mut m, 256, 120_000);
        let ratio = served[0] as f64 / served[1] as f64;
        assert!(ratio < 2.0, "oversubscribed EDF should degrade toward 1:1, got {ratio}");
    }

    #[test]
    fn fcfs_ignores_shares() {
        let mut m = mc(ArbiterMode::Fcfs, &[3, 1]);
        let mut x = 7u64;
        let mut served = [0u64; 2];
        for now in 0..60_000u64 {
            let first = (now % 2) as u8;
            for c in [first, 1 - first] {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                let _ = m.push(MemReq {
                    line: LineAddr::new(x >> 16),
                    class: q(c),
                    is_write: false,
                    token: 0,
                });
            }
            for c in m.step_vec(now) {
                served[c.class.index()] += 1;
            }
        }
        let ratio = served[0] as f64 / served[1] as f64;
        assert!((ratio - 1.0).abs() < 0.2, "FCFS must serve ~1:1, got {ratio}");
    }

    #[test]
    fn saturation_signal_tracks_load() {
        let mut m = mc(ArbiterMode::Fcfs, &[1]);
        // Idle epoch: no saturation.
        for now in 0..2_000 {
            m.step_vec(now);
        }
        assert!(!m.take_epoch_sat());
        // Flooded epoch: saturated.
        let _ = saturate_reads(&mut m, 5_000);
        assert!(m.take_epoch_sat());
    }

    #[test]
    fn write_drain_services_writes_in_batches() {
        let mut m = mc(ArbiterMode::Fcfs, &[1]);
        // Fill write queue past the high watermark.
        let mut now = 0u64;
        let mut queued = 0;
        while queued < 30 {
            if m.push(MemReq {
                line: LineAddr::new(queued * 33),
                class: q(0),
                is_write: true,
                token: queued,
            })
            .is_ok()
            {
                queued += 1;
            }
            m.step_vec(now);
            now += 1;
        }
        let mut writes_done = 0;
        for _ in 0..20_000 {
            writes_done += m.step_vec(now).iter().filter(|c| c.is_write).count();
            now += 1;
        }
        assert_eq!(writes_done, 30, "all writes must eventually drain");
    }

    #[test]
    fn reads_prioritized_over_writes_below_watermark() {
        let mut m = mc(ArbiterMode::Fcfs, &[1]);
        // A few writes (below high watermark) + a read, offered together
        // (they fit the ingress port exactly): the read completes before
        // any write.
        for i in 0..3 {
            m.push(MemReq { line: LineAddr::new(1000 + i), class: q(0), is_write: true, token: i })
                .unwrap();
        }
        m.push(MemReq { line: LineAddr::new(1), class: q(0), is_write: false, token: 99 }).unwrap();
        let warm = 0;
        let mut first: Option<Completion> = None;
        let mut now = warm;
        while first.is_none() {
            let done = m.step_vec(now);
            first = done.into_iter().next();
            now += 1;
            assert!(now < 10_000);
        }
        let first = first.unwrap();
        assert!(!first.is_write, "read must complete first, got {first:?}");
    }

    #[test]
    fn ingress_backpressure_reported() {
        let mut m = mc(ArbiterMode::Fcfs, &[1]);
        let mut rejected = false;
        // Never stepping the controller: ingress must eventually refuse.
        for i in 0..1_000 {
            if m.push(MemReq { line: LineAddr::new(i), class: q(0), is_write: false, token: i })
                .is_err()
            {
                rejected = true;
                break;
            }
        }
        assert!(rejected);
        assert!(m.ingress_rejects() > 0);
        assert!(!m.can_accept());
    }

    #[test]
    fn down_clocked_dram_is_proportionally_slower() {
        let mut fast = mc(ArbiterMode::Fcfs, &[1]);
        let fast_bytes = saturate_reads(&mut fast, 30_000);
        let slow_cfg = DramConfig::default().down_clocked(4);
        let mut slow = MemController::new(slow_cfg, ArbiterMode::Fcfs, &shares(&[1]), 128);
        let slow_bytes = {
            let mut line = 0u64;
            let mut bytes = 0;
            for now in 0..30_000u64 {
                while slow.can_accept() {
                    if slow
                        .push(MemReq {
                            line: LineAddr::new(line),
                            class: q(0),
                            is_write: false,
                            token: line,
                        })
                        .is_err()
                    {
                        break;
                    }
                    line += 1;
                }
                bytes += slow.step_vec(now).len() as u64 * LINE_BYTES;
            }
            bytes
        };
        let ratio = fast_bytes as f64 / slow_bytes as f64;
        assert!((ratio - 4.0).abs() < 0.5, "expected ~4x, got {ratio}");
    }

    #[test]
    fn per_class_byte_accounting_sums_to_total() {
        let mut m = mc(ArbiterMode::Edf, &[2, 1]);
        let mut total = 0u64;
        for now in 0..10_000u64 {
            for c in 0..2u8 {
                let _ = m.push(MemReq {
                    line: LineAddr::new(now * 7 + u64::from(c) * (1 << 30)),
                    class: q(c),
                    is_write: false,
                    token: 0,
                });
            }
            total += m.step_vec(now).len() as u64 * LINE_BYTES;
        }
        let s = m.stats();
        assert_eq!(s.bytes.iter().sum::<u64>(), total);
    }

    #[test]
    fn epoch_bytes_delta_resets() {
        let mut m = mc(ArbiterMode::Fcfs, &[1]);
        let _ = saturate_reads(&mut m, 3_000);
        let first = m.stats_mut().take_epoch_bytes();
        assert!(first[0] > 0);
        let second = m.stats_mut().take_epoch_bytes();
        assert_eq!(second[0], 0, "delta must reset between epochs");
    }

    #[test]
    fn next_event_is_none_only_when_empty() {
        let mut m = mc(ArbiterMode::Edf, &[1]);
        assert_eq!(m.next_event(0), None, "empty controller has no events");
        m.push(MemReq { line: LineAddr::new(5), class: q(0), is_write: false, token: 1 }).unwrap();
        assert_eq!(m.next_event(0), Some(0), "a routable ingress head acts immediately");
    }

    #[test]
    fn next_event_equivalence_with_naive_stepping() {
        // Twin controllers on the same bursty request schedule: one steps
        // every cycle, the other only when its own horizon says the cycle
        // could matter, accruing the skipped occupancy samples in batch.
        // Every observable — completions (in order), stats, SAT bit,
        // snapshot — must be identical at the end.
        let mut naive = mc(ArbiterMode::Edf, &[3, 1]);
        let mut skip = mc(ArbiterMode::Edf, &[3, 1]);
        let mut out_n = Vec::new();
        let mut out_s = Vec::new();
        let (mut served_n, mut served_s) = (0u64, 0u64);
        let mut skipped = 0u64;
        for now in 0..40_000u64 {
            // A burst of mixed requests every 512 cycles leaves long idle
            // and long drain-tail windows between them.
            if now % 512 == 0 {
                for i in 0..6u64 {
                    let req = MemReq {
                        line: LineAddr::new((now + 1) * 131 + i * 3),
                        class: q((i % 2) as u8),
                        is_write: i % 5 == 0,
                        token: now + i,
                    };
                    assert_eq!(naive.push(req).is_ok(), skip.push(req).is_ok());
                }
            }
            out_n.clear();
            naive.step_into(now, &mut out_n);
            served_n += out_n.len() as u64;
            match skip.next_event(now) {
                Some(at) if at <= now => {
                    out_s.clear();
                    skip.step_into(now, &mut out_s);
                    served_s += out_s.len() as u64;
                    assert_eq!(out_s, out_n, "completions diverge at cycle {now}");
                }
                _ => {
                    // The horizon called this cycle dead: naive stepping
                    // must agree it produced nothing.
                    skip.accrue_skip(1);
                    skipped += 1;
                    assert!(out_n.is_empty(), "horizon missed an event at cycle {now}");
                }
            }
        }
        assert!(served_n > 0, "workload must complete something");
        assert!(skipped > 10_000, "bursty load must leave skippable gaps, got {skipped}");
        assert_eq!(served_n, served_s);
        assert_eq!(naive.take_epoch_sat(), skip.take_epoch_sat());
        assert_eq!(naive.snapshot(), skip.snapshot());
        assert_eq!(naive.stats().bytes, skip.stats().bytes);
        assert_eq!(naive.stats().reads, skip.stats().reads);
        assert_eq!(naive.stats().writes, skip.stats().writes);
    }

    #[test]
    fn aged_requests_beat_row_hits() {
        // A stream of row hits to bank 0 must not starve a row-miss to the
        // same bank beyond the age cap.
        let mut m = mc(ArbiterMode::Fcfs, &[1]);
        // The conflicting row-miss first (different row, same bank: same
        // col_group modulo banks).
        let other_row = DramConfig::default().lines_per_row * DramConfig::default().banks as u64; // bank 0, row 1
        m.push(MemReq {
            line: LineAddr::new(other_row),
            class: q(0),
            is_write: false,
            token: 4242,
        })
        .unwrap();
        let mut hit_line = 0u64;
        let mut completed_victim_at = None;
        for now in 0..10_000u64 {
            // Keep bank 0 row 0 hits flowing.
            while m.can_accept() {
                if m.push(MemReq {
                    line: LineAddr::new(hit_line % DramConfig::default().lines_per_row),
                    class: q(0),
                    is_write: false,
                    token: 0,
                })
                .is_err()
                {
                    break;
                }
                hit_line += 1;
            }
            if m.step_vec(now).iter().any(|c| c.token == 4242) {
                completed_victim_at = Some(now);
                break;
            }
        }
        assert!(completed_victim_at.is_some(), "row-miss starved by continuous row hits");
    }
}

#[cfg(test)]
mod fqm_tests {
    use super::*;

    fn q(i: u8) -> QosId {
        QosId::new(i)
    }

    /// Drives two equal-weight classes — class 0 all row hits on one bank,
    /// class 1 all row conflicts spread over the remaining banks (so the
    /// *bus* is the contended resource) — closed-loop; returns served
    /// counts.
    fn hit_vs_conflict(mode: ArbiterMode, cycles: u64) -> [u64; 2] {
        let shares = ShareTable::from_weights(&[1, 1]).unwrap();
        let mut m = MemController::new(DramConfig::default(), mode, &shares, 128);
        let cfg = DramConfig::default();
        let mut served = [0u64; 2];
        let mut to_issue = [12usize; 2];
        let mut hit_line = 0u64;
        let mut conflict_row = 0u64;
        for now in 0..cycles {
            let first = (now % 2) as usize;
            for c in [first, 1 - first] {
                while to_issue[c] > 0 {
                    // Class 0: walk row 0 of bank 1 (hits). Class 1: a new
                    // row each time, rotating over banks 2.. (conflicts,
                    // but with plenty of bank parallelism).
                    let line = if c == 0 {
                        hit_line += 1;
                        cfg.lines_per_row + (hit_line % cfg.lines_per_row)
                    } else {
                        conflict_row += 1;
                        let bank = 2 + (conflict_row as usize % (cfg.banks - 2));
                        (conflict_row * cfg.banks as u64 + bank as u64) * cfg.lines_per_row
                    };
                    if m.push(MemReq {
                        line: LineAddr::new(line),
                        class: q(c as u8),
                        is_write: false,
                        token: c as u64,
                    })
                    .is_err()
                    {
                        break;
                    }
                    to_issue[c] -= 1;
                }
            }
            for done in m.step_vec(now) {
                served[done.class.index()] += 1;
                to_issue[done.class.index()] += 1;
            }
        }
        served
    }

    #[test]
    fn fqm_penalizes_expensive_accesses_more_than_flat_edf() {
        // Under FQM the conflict-heavy class is charged 3 units per access
        // and therefore receives fewer services relative to the row-hit
        // class than under PABST's flat charge.
        let edf = hit_vs_conflict(ArbiterMode::Edf, 150_000);
        let fqm = hit_vs_conflict(ArbiterMode::Fqm, 150_000);
        let edf_ratio = edf[1] as f64 / edf[0] as f64;
        let fqm_ratio = fqm[1] as f64 / fqm[0] as f64;
        assert!(
            fqm_ratio < edf_ratio,
            "FQM must shift service away from the conflict class: \
             edf {edf:?} ({edf_ratio:.2}), fqm {fqm:?} ({fqm_ratio:.2})"
        );
    }

    #[test]
    fn fqm_still_partitions_backlogged_classes() {
        // With equal access costs (both classes random), FQM and EDF both
        // approximate the 3:1 weights.
        let shares = ShareTable::from_weights(&[3, 1]).unwrap();
        let mut m = MemController::new(DramConfig::default(), ArbiterMode::Fqm, &shares, 128);
        let cfg = DramConfig::default();
        let row_stride = cfg.lines_per_row * cfg.banks as u64;
        let mut served = [0u64; 2];
        let mut to_issue = [12usize; 2];
        let mut next_row = [0u64, 1 << 20];
        for now in 0..200_000u64 {
            let first = (now % 2) as usize;
            for c in [first, 1 - first] {
                while to_issue[c] > 0 {
                    let req = MemReq {
                        line: LineAddr::new(next_row[c] * row_stride),
                        class: q(c as u8),
                        is_write: false,
                        token: c as u64,
                    };
                    if m.push(req).is_err() {
                        break;
                    }
                    next_row[c] += 1;
                    to_issue[c] -= 1;
                }
            }
            for done in m.step_vec(now) {
                served[done.class.index()] += 1;
                to_issue[done.class.index()] += 1;
            }
        }
        let ratio = served[0] as f64 / served[1] as f64;
        assert!((ratio - 3.0).abs() < 0.8, "FQM ratio {ratio}, served {served:?}");
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;

    #[test]
    fn read_latency_tracked_per_class() {
        let shares = ShareTable::from_weights(&[1]).unwrap();
        let mut m = MemController::new(DramConfig::default(), ArbiterMode::Fcfs, &shares, 128);
        m.push(MemReq { line: LineAddr::new(0), class: QosId::new(0), is_write: false, token: 1 })
            .unwrap();
        let mut now = 0;
        while m.pending() > 0 {
            m.step_vec(now);
            now += 1;
            assert!(now < 10_000);
        }
        let lat = m.stats().mean_read_latency(QosId::new(0)).expect("one read done");
        // One unloaded access: activation + CAS + burst, give or take the
        // front-end hops.
        assert!((60.0..200.0).contains(&lat), "unloaded latency {lat}");
        assert_eq!(m.stats().mean_read_latency(QosId::new(1)), None);
    }

    #[test]
    fn loaded_latency_exceeds_unloaded() {
        let shares = ShareTable::from_weights(&[1]).unwrap();
        let run = |offered_per_cycle: usize| -> f64 {
            let mut m = MemController::new(DramConfig::default(), ArbiterMode::Fcfs, &shares, 128);
            let mut line = 0u64;
            for now in 0..30_000u64 {
                for _ in 0..offered_per_cycle {
                    let _ = m.push(MemReq {
                        line: LineAddr::new(line * 97),
                        class: QosId::new(0),
                        is_write: false,
                        token: 0,
                    });
                    line += 1;
                }
                m.step_vec(now);
            }
            m.stats().mean_read_latency(QosId::new(0)).unwrap_or(0.0)
        };
        // A single outstanding request at a time (closed loop, light load).
        let light = {
            let mut m = MemController::new(DramConfig::default(), ArbiterMode::Fcfs, &shares, 128);
            let mut outstanding = false;
            let mut line = 0u64;
            for now in 0..30_000u64 {
                if !outstanding {
                    let _ = m.push(MemReq {
                        line: LineAddr::new(line * 97),
                        class: QosId::new(0),
                        is_write: false,
                        token: 0,
                    });
                    line += 1;
                    outstanding = true;
                }
                if !m.step_vec(now).is_empty() {
                    outstanding = false;
                }
            }
            m.stats().mean_read_latency(QosId::new(0)).unwrap()
        };
        let heavy = run(4);
        assert!(heavy > 2.0 * light, "queueing must raise latency: {heavy} vs {light}");
    }
}
