//! DDR DRAM and memory-controller model for the PABST reproduction.
//!
//! The controller follows the paper's baseline (§III-C): a **front-end**
//! accepts requests from the SoC network into separate read and write
//! queues; a **back-end** schedules accesses onto DRAM banks. Two PABST
//! additions hook in here:
//!
//! * a *saturation monitor* averaging front-end read-queue occupancy per
//!   epoch ([`pabst_core::satmon::SatMonitor`]), and
//! * a *priority arbiter* behind the object-safe [`arbiter::TargetArbiter`]
//!   seam, applying priority in both the front-end and the back-end bank
//!   queues. The paper's mechanism ([`arbiter::EdfArbiter`], built on
//!   [`pabst_core::arbiter::VirtualClocks`]) is the default; competing
//!   mechanisms — FQM cost charging, per-bank regulation, the DPQ
//!   bounded-latency queue — plug in via [`ArbiterMode`].
//!
//! The baseline scheduling policy is FR-FCFS (row hits first, then oldest);
//! with a deadline-carrying arbiter it becomes the paper's "fair variant of
//! First-Ready, First-Come-First-Serve": row hits first, then earliest
//! virtual deadline.
//!
//! Requests enter through a finite **ingress FIFO**. When the front-end
//! queues fill, the ingress blocks head-of-line — and everything upstream
//! (L3 MSHRs, L2 MSHRs, cores) backs up. This explicit backpressure chain
//! is what makes target-only regulation fail under flood (Fig. 1b).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod config;
pub mod controller;

pub use arbiter::{ArbiterMode, TargetArbiter};
pub use config::DramConfig;
pub use controller::{Completion, MemController, MemReq};
