//! DDR DRAM and memory-controller model for the PABST reproduction.
//!
//! The controller follows the paper's baseline (§III-C): a **front-end**
//! accepts requests from the SoC network into separate read and write
//! queues; a **back-end** schedules accesses onto DRAM banks. Two PABST
//! additions hook in here:
//!
//! * a *saturation monitor* averaging front-end read-queue occupancy per
//!   epoch ([`pabst_core::satmon::SatMonitor`]), and
//! * a *priority arbiter* applying earliest-virtual-deadline-first
//!   selection in both the front-end and the back-end bank queues
//!   ([`pabst_core::arbiter::VirtualClocks`]).
//!
//! The baseline scheduling policy is FR-FCFS (row hits first, then oldest);
//! with the arbiter enabled it becomes the paper's "fair variant of
//! First-Ready, First-Come-First-Serve": row hits first, then earliest
//! virtual deadline.
//!
//! Requests enter through a finite **ingress FIFO**. When the front-end
//! queues fill, the ingress blocks head-of-line — and everything upstream
//! (L3 MSHRs, L2 MSHRs, cores) backs up. This explicit backpressure chain
//! is what makes target-only regulation fail under flood (Fig. 1b).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod controller;

pub use config::DramConfig;
pub use controller::{ArbiterMode, Completion, MemController, MemReq};
