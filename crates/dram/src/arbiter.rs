//! The target-side arbiter seam: an object-safe trait over everything a
//! [`crate::MemController`] asks of its scheduling policy, plus the zoo
//! of implementations behind it.
//!
//! The controller owns queue structure, bank timing, and the data-bus
//! pipeline; the arbiter owns *priority*: it stamps every accepted
//! request with a [`VirtualDeadline`], declares whether those stamps
//! participate in priority keys ([`TargetArbiter::uses_deadlines`]), and
//! observes every bus grant so it can advance whatever internal credit
//! it keeps. `next_event` folds any arbiter-internal timed state into
//! the controller's horizon so the cycle-skipping contract
//! (`docs/PERFORMANCE.md`) holds for every implementation — an arbiter
//! whose priorities can change at a future cycle without a stamp or a
//! pick must report that cycle.
//!
//! Implementations:
//!
//! * [`EdfArbiter`] — the paper's earliest-virtual-deadline arbiter with
//!   a flat one-stride charge per access (§III-C2).
//! * [`FqmArbiter`] — Nesbit et al.'s fair queueing memory scheduler:
//!   deadlines approximate virtual time, charged by actual service cost.
//! * [`FcfsArbiter`] — priority-blind FR-FCFS baseline.
//! * [`PerBankArbiter`] — Sullivan et al. style bank-granularity
//!   regulation: one set of virtual clocks *per DRAM bank*.
//! * [`DpqArbiter`] — Shah et al.'s distance-based priority queue with a
//!   checkable worst-case service bound (debug-asserted).

use std::collections::BTreeMap;
use std::fmt;

use pabst_core::arbiter::{VirtualClocks, VirtualDeadline};
use pabst_core::qos::{QosId, ShareTable, MAX_CLASSES};
use pabst_simkit::Cycle;

/// The scheduling policy of a memory controller, behind an object-safe
/// seam so competing mechanisms can be swapped without touching the
/// controller's queue or timing model.
///
/// Contract highlights:
///
/// * `stamp` is called exactly once per accepted request, in acceptance
///   order (`seq` is strictly increasing across calls).
/// * `on_picked` is called once per *read* data-bus grant; writes drain
///   unprioritized and are never reported.
/// * `clock` must be monotonically nondecreasing per class (the epoch
///   sanitizer verifies this through
///   [`crate::MemController::virtual_clock`]).
/// * `next_event` follows the horizon contract: conservative answers are
///   fine, late ones are not. Arbiters whose priority state only changes
///   inside `stamp`/`on_picked` return `None`.
pub trait TargetArbiter: fmt::Debug {
    /// Stamps a newly accepted request with its priority deadline.
    ///
    /// `seq` is the controller's acceptance sequence number, `bank` the
    /// decoded target bank, and `backlog` the depth of the front-end
    /// queue the request joins (before insertion).
    fn stamp(
        &mut self,
        class: QosId,
        is_write: bool,
        seq: u64,
        bank: u32,
        backlog: usize,
    ) -> VirtualDeadline;

    /// True when the stamps carry class priority, i.e. the controller
    /// should order by `(deadline, seq)` rather than arrival order
    /// alone. Capability query replacing the old
    /// `ArbiterMode::prioritized()` boolean probing.
    fn uses_deadlines(&self) -> bool;

    /// Records that a read's data burst won the bus. `cost` is the
    /// access's service cost in row-op units (1 row hit, 2 closed row,
    /// 3 conflict) for cost-charging arbiters.
    fn on_picked(
        &mut self,
        class: QosId,
        deadline: VirtualDeadline,
        seq: u64,
        bank: u32,
        cost: u64,
    );

    /// Reprograms the per-class shares (software updating weights).
    fn set_shares(&mut self, shares: &ShareTable);

    /// Current virtual-clock value of `id` — whatever monotone per-class
    /// progress notion the mechanism keeps, surfaced in
    /// [`crate::McSnapshot::virtual_clocks`].
    fn clock(&self, id: QosId) -> u64;

    /// Number of QoS classes the arbiter was built for.
    fn classes(&self) -> usize;

    /// Earliest future cycle at which the arbiter's *own* state could
    /// change priorities absent a stamp or pick, or `None` when its
    /// state only moves inside those callbacks. Min-combined into
    /// [`crate::MemController::next_event`].
    fn next_event(&self, now: Cycle) -> Option<Cycle>;

    /// Stable mechanism label (provenance hashing, reports).
    fn name(&self) -> &'static str;

    /// Promotes the arbiter's debug-only bound assertions to counted
    /// release-mode checks (see [`DpqArbiter`]'s worst-case service
    /// bound). Arbiters without internal bound promises ignore it.
    fn set_bound_checks(&mut self, _on: bool) {}

    /// Cumulative internal bound violations observed (always 0 unless
    /// the arbiter keeps promises and checking was enabled). Growth is
    /// surfaced as a `dpq service bound` invariant violation by the
    /// epoch checker.
    fn bound_violations(&self) -> u64 {
        0
    }
}

/// The paper's arbiter: per-class virtual clocks, earliest deadline
/// first, flat one-stride charge per read (§III-C2).
#[derive(Debug, Clone)]
pub struct EdfArbiter {
    clocks: VirtualClocks,
}

impl EdfArbiter {
    /// Creates the arbiter with the given shares and slack bound.
    pub fn new(shares: &ShareTable, slack: u64) -> Self {
        Self { clocks: VirtualClocks::new(shares, slack) }
    }
}

impl TargetArbiter for EdfArbiter {
    fn stamp(
        &mut self,
        class: QosId,
        is_write: bool,
        seq: u64,
        _bank: u32,
        _backlog: usize,
    ) -> VirtualDeadline {
        // Reads are stamped with the class's virtual deadline on
        // acceptance; writes are not prioritized (§III-C2).
        if is_write {
            VirtualDeadline(seq)
        } else {
            self.clocks.stamp(class)
        }
    }

    fn uses_deadlines(&self) -> bool {
        true
    }

    fn on_picked(
        &mut self,
        class: QosId,
        deadline: VirtualDeadline,
        _seq: u64,
        _bank: u32,
        _cost: u64,
    ) {
        self.clocks.on_picked(class, deadline);
    }

    fn set_shares(&mut self, shares: &ShareTable) {
        for (id, s) in shares.iter() {
            self.clocks.set_stride(id, s);
        }
    }

    fn clock(&self, id: QosId) -> u64 {
        self.clocks.clock(id)
    }

    fn classes(&self) -> usize {
        self.clocks.classes()
    }

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        None
    }

    fn name(&self) -> &'static str {
        ArbiterMode::Edf.label()
    }
}

/// FQM-style variant (Nesbit et al.): deadlines approximate virtual
/// time (stamps do not advance the clock) and accesses are charged by
/// their actual service cost after the fact.
#[derive(Debug, Clone)]
pub struct FqmArbiter {
    clocks: VirtualClocks,
}

impl FqmArbiter {
    /// Creates the arbiter with the given shares and slack bound.
    pub fn new(shares: &ShareTable, slack: u64) -> Self {
        Self { clocks: VirtualClocks::new(shares, slack) }
    }
}

impl TargetArbiter for FqmArbiter {
    fn stamp(
        &mut self,
        class: QosId,
        is_write: bool,
        seq: u64,
        _bank: u32,
        _backlog: usize,
    ) -> VirtualDeadline {
        if is_write {
            VirtualDeadline(seq)
        } else {
            self.clocks.stamp_deferred(class)
        }
    }

    fn uses_deadlines(&self) -> bool {
        true
    }

    fn on_picked(
        &mut self,
        class: QosId,
        deadline: VirtualDeadline,
        _seq: u64,
        _bank: u32,
        cost: u64,
    ) {
        self.clocks.on_picked(class, deadline);
        // Charge by service cost: a row hit is one unit, a closed row
        // two, a conflict (precharge + activate) three.
        self.clocks.charge(class, cost);
    }

    fn set_shares(&mut self, shares: &ShareTable) {
        for (id, s) in shares.iter() {
            self.clocks.set_stride(id, s);
        }
    }

    fn clock(&self, id: QosId) -> u64 {
        self.clocks.clock(id)
    }

    fn classes(&self) -> usize {
        self.clocks.classes()
    }

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        None
    }

    fn name(&self) -> &'static str {
        ArbiterMode::Fqm.label()
    }
}

/// Priority-blind baseline: every stamp is the acceptance sequence
/// number and deadlines never enter priority keys, so the controller
/// degenerates to plain FR-FCFS.
#[derive(Debug, Clone)]
pub struct FcfsArbiter {
    classes: usize,
}

impl FcfsArbiter {
    /// Creates the arbiter (only the class count is retained, for
    /// snapshot shape).
    pub fn new(shares: &ShareTable) -> Self {
        Self { classes: shares.classes() }
    }
}

impl TargetArbiter for FcfsArbiter {
    fn stamp(
        &mut self,
        _class: QosId,
        _is_write: bool,
        seq: u64,
        _bank: u32,
        _backlog: usize,
    ) -> VirtualDeadline {
        VirtualDeadline(seq)
    }

    fn uses_deadlines(&self) -> bool {
        false
    }

    fn on_picked(
        &mut self,
        _class: QosId,
        _deadline: VirtualDeadline,
        _seq: u64,
        _bank: u32,
        _cost: u64,
    ) {
    }

    fn set_shares(&mut self, _shares: &ShareTable) {}

    fn clock(&self, _id: QosId) -> u64 {
        0
    }

    fn classes(&self) -> usize {
        self.classes
    }

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        None
    }

    fn name(&self) -> &'static str {
        ArbiterMode::Fcfs.label()
    }
}

/// Bank-granularity bandwidth regulation (Sullivan et al. style): one
/// independent set of virtual clocks per DRAM bank, so a class's credit
/// on a quiet bank is not consumed by its traffic on a hot one. Stamps
/// from different banks still compete in the controller's global
/// nomination, which is precisely the mechanism difference the zoo
/// compares: regulation error localizes per bank instead of averaging
/// across the channel.
#[derive(Debug, Clone)]
pub struct PerBankArbiter {
    banks: Vec<VirtualClocks>,
}

impl PerBankArbiter {
    /// Creates one clock set per bank, each with the full share table
    /// and the same slack bound.
    pub fn new(shares: &ShareTable, slack: u64, banks: usize) -> Self {
        Self { banks: (0..banks.max(1)).map(|_| VirtualClocks::new(shares, slack)).collect() }
    }
}

impl TargetArbiter for PerBankArbiter {
    fn stamp(
        &mut self,
        class: QosId,
        is_write: bool,
        seq: u64,
        bank: u32,
        _backlog: usize,
    ) -> VirtualDeadline {
        if is_write {
            VirtualDeadline(seq)
        } else {
            let b = bank as usize % self.banks.len();
            self.banks[b].stamp(class)
        }
    }

    fn uses_deadlines(&self) -> bool {
        true
    }

    fn on_picked(
        &mut self,
        class: QosId,
        deadline: VirtualDeadline,
        _seq: u64,
        bank: u32,
        _cost: u64,
    ) {
        let b = bank as usize % self.banks.len();
        self.banks[b].on_picked(class, deadline);
    }

    fn set_shares(&mut self, shares: &ShareTable) {
        for clocks in &mut self.banks {
            for (id, s) in shares.iter() {
                clocks.set_stride(id, s);
            }
        }
    }

    fn clock(&self, id: QosId) -> u64 {
        // The class's furthest per-bank progress: a max of monotone
        // clocks, so the sanitizer's monotonicity check holds.
        self.banks.iter().map(|c| c.clock(id)).max().unwrap_or(0)
    }

    fn classes(&self) -> usize {
        self.banks[0].classes()
    }

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        None
    }

    fn name(&self) -> &'static str {
        ArbiterMode::PerBank.label()
    }
}

/// Base relative-deadline window of the DPQ arbiter, in service slots:
/// the highest-weight class's requests are promised service within
/// roughly this many read grants of their arrival (plus backlog).
pub const DPQ_WINDOW: u64 = 16;

/// Multiplier covering the controller's bounded reordering around pure
/// priority order in the DPQ service-bound check: row-hit bypass
/// streaks (`max_hit_streak` per bank), reads served from other banks
/// while the target bank's timing holds (tRP+tRCD+tCL vs. one burst),
/// and the aged-entry starvation backstop. Conservative by design — the
/// bound must never trip on a legal schedule.
const DPQ_REORDER_FACTOR: u64 = 64;

/// Shah et al.'s distance-based priority queue (DPQ), modelled in
/// virtual positions: a request from class `c` is inserted `distance_c`
/// service slots ahead of the arrival frontier, where the distance is
/// inversely proportional to the class's bandwidth share. Concretely
/// the stamp is `seq + d_rel[c]` and the controller's EDF key serves
/// ascending stamps, which reproduces DPQ's headline property — a
/// *checkable worst-case service bound* per class — without modelling
/// the hardware queue itself.
///
/// In debug builds every read stamp records a service promise
/// (`backlog + relative-deadline gap`, inflated by
/// [`DPQ_REORDER_FACTOR`] for the controller's bounded non-priority
/// reordering) and every pick asserts the promise held.
#[derive(Debug, Clone)]
pub struct DpqArbiter {
    /// Per-class relative deadline (insertion distance) in service
    /// slots; smaller for higher-weight classes.
    d_rel: [u64; MAX_CLASSES],
    /// The smallest distance of any class (the overtaking bound).
    d_min: u64,
    classes: usize,
    /// Last stamp issued per class (monotone progress for `clock`).
    last_stamp: [u64; MAX_CLASSES],
    /// Total read grants observed.
    served: u64,
    /// Outstanding service promises: seq → served-counter bound.
    /// Debug-only accounting unless promoted by `set_bound_checks`, but
    /// kept unconditionally so skip/noskip replicas and both build
    /// profiles share identical struct shape.
    promises: BTreeMap<u64, u64>,
    /// Release-mode promotion of the bound assertion: when set, promises
    /// are kept (and checked) even without `debug_assertions`.
    check: bool,
    /// Promises missed — reads served later than their worst-case bound.
    violations: u64,
}

impl DpqArbiter {
    /// Creates the arbiter, deriving per-class distances from `shares`.
    pub fn new(shares: &ShareTable) -> Self {
        let mut a = Self {
            d_rel: [DPQ_WINDOW; MAX_CLASSES],
            d_min: DPQ_WINDOW,
            classes: shares.classes(),
            last_stamp: [0; MAX_CLASSES],
            served: 0,
            promises: BTreeMap::new(),
            check: false,
            violations: 0,
        };
        a.program(shares);
        a
    }

    fn program(&mut self, shares: &ShareTable) {
        self.classes = shares.classes();
        for (id, _) in shares.iter() {
            // scaled_stride(id, W) = round(W * max_weight / weight): the
            // highest-weight class gets distance ~W, lower weights
            // proportionally farther.
            self.d_rel[id.index()] = shares.scaled_stride(id, DPQ_WINDOW).get();
        }
        self.d_min = (0..self.classes).map(|i| self.d_rel[i]).min().unwrap_or(DPQ_WINDOW).max(1);
    }

    /// The worst-case number of read grants a read stamped against
    /// `backlog` queued reads can wait before service, for class `id`.
    /// Earlier-deadline work is bounded by the backlog plus the
    /// overtaking window `d_rel − d_min`; the factor covers the
    /// controller's bounded non-priority reordering.
    pub fn service_bound(&self, id: QosId, backlog: usize) -> u64 {
        let gap = self.d_rel[id.index()].saturating_sub(self.d_min);
        (backlog as u64 + gap + 1).saturating_mul(DPQ_REORDER_FACTOR)
    }
}

impl TargetArbiter for DpqArbiter {
    fn stamp(
        &mut self,
        class: QosId,
        is_write: bool,
        seq: u64,
        _bank: u32,
        backlog: usize,
    ) -> VirtualDeadline {
        if is_write {
            return VirtualDeadline(seq);
        }
        let d = seq.saturating_add(self.d_rel[class.index()]);
        self.last_stamp[class.index()] = d;
        if cfg!(debug_assertions) || self.check {
            let bound = self.service_bound(class, backlog);
            self.promises.insert(seq, self.served.saturating_add(bound));
        }
        VirtualDeadline(d)
    }

    fn uses_deadlines(&self) -> bool {
        true
    }

    fn on_picked(
        &mut self,
        _class: QosId,
        _deadline: VirtualDeadline,
        seq: u64,
        _bank: u32,
        _cost: u64,
    ) {
        if let Some(promise) = self.promises.remove(&seq) {
            // Promoted from a debug_assert: a missed promise is counted
            // and reported through the epoch invariant checker, so
            // release-mode chaos campaigns classify it instead of the
            // sweep dying (or, worse, the miss passing silently).
            if self.served > promise {
                self.violations += 1;
            }
        }
        self.served += 1;
    }

    fn set_shares(&mut self, shares: &ShareTable) {
        self.program(shares);
    }

    fn clock(&self, id: QosId) -> u64 {
        self.last_stamp[id.index()]
    }

    fn classes(&self) -> usize {
        self.classes
    }

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        None
    }

    fn name(&self) -> &'static str {
        ArbiterMode::Dpq.label()
    }

    fn set_bound_checks(&mut self, on: bool) {
        self.check = on;
    }

    fn bound_violations(&self) -> u64 {
        self.violations
    }
}

/// Scheduling policy selector for a [`crate::MemController`]:
/// serializable configuration surface over the [`TargetArbiter`] zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArbiterMode {
    /// Baseline FR-FCFS: oldest first at the front-end; row hits then
    /// oldest at the back-end ([`FcfsArbiter`]).
    Fcfs,
    /// PABST priority arbiter: earliest virtual deadline, flat
    /// one-stride charge per access ([`EdfArbiter`], the paper's
    /// choice, §III-C2).
    #[default]
    Edf,
    /// FQM-style variant: charged by actual service cost
    /// ([`FqmArbiter`]). Included for the paper's design comparison.
    Fqm,
    /// Bank-granularity regulation, Sullivan et al. style
    /// ([`PerBankArbiter`]).
    PerBank,
    /// Shah et al.'s distance-based priority queue with a debug-checked
    /// worst-case service bound ([`DpqArbiter`]).
    Dpq,
}

impl ArbiterMode {
    /// Stable lowercase label (config parsing, provenance hashing,
    /// report tables).
    pub fn label(self) -> &'static str {
        match self {
            ArbiterMode::Fcfs => "fcfs",
            ArbiterMode::Edf => "edf",
            ArbiterMode::Fqm => "fqm",
            ArbiterMode::PerBank => "per-bank",
            ArbiterMode::Dpq => "dpq",
        }
    }

    /// All modes, in label order (experiment sweeps, config docs).
    pub const ALL: [ArbiterMode; 5] = [
        ArbiterMode::Fcfs,
        ArbiterMode::Edf,
        ArbiterMode::Fqm,
        ArbiterMode::PerBank,
        ArbiterMode::Dpq,
    ];

    /// Builds the arbiter this mode names. `banks` sizes
    /// [`PerBankArbiter`]; `slack` bounds the virtual-clock credit of
    /// the clock-based arbiters.
    pub fn build(self, shares: &ShareTable, slack: u64, banks: usize) -> Box<dyn TargetArbiter> {
        match self {
            ArbiterMode::Fcfs => Box::new(FcfsArbiter::new(shares)),
            ArbiterMode::Edf => Box::new(EdfArbiter::new(shares, slack)),
            ArbiterMode::Fqm => Box::new(FqmArbiter::new(shares, slack)),
            ArbiterMode::PerBank => Box::new(PerBankArbiter::new(shares, slack, banks)),
            ArbiterMode::Dpq => Box::new(DpqArbiter::new(shares)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shares(w: &[u32]) -> ShareTable {
        ShareTable::from_weights(w).unwrap()
    }

    #[test]
    fn edf_matches_raw_virtual_clocks() {
        let s = shares(&[3, 1]);
        let mut raw = VirtualClocks::new(&s, 128);
        let mut arb = EdfArbiter::new(&s, 128);
        for i in 0..200u64 {
            let id = QosId::new((i % 2) as u8);
            let d_raw = raw.stamp(id);
            let d_arb = arb.stamp(id, false, i, (i % 4) as u32, 3);
            assert_eq!(d_raw, d_arb, "stamp {i} diverged");
            raw.on_picked(id, d_raw);
            arb.on_picked(id, d_arb, i, (i % 4) as u32, 1);
            assert_eq!(raw.clock(id), arb.clock(id));
        }
    }

    #[test]
    fn writes_are_never_prioritized() {
        for mode in ArbiterMode::ALL {
            let mut arb = mode.build(&shares(&[3, 1]), 128, 4);
            let d = arb.stamp(QosId::new(0), true, 77, 0, 0);
            assert_eq!(d, VirtualDeadline(77), "{}: write stamp must be the seq", arb.name());
        }
    }

    #[test]
    fn capability_queries_partition_the_zoo() {
        let s = shares(&[1, 1]);
        for mode in ArbiterMode::ALL {
            let arb = mode.build(&s, 128, 4);
            assert_eq!(
                arb.uses_deadlines(),
                mode != ArbiterMode::Fcfs,
                "{}: only FCFS is priority-blind",
                arb.name()
            );
            assert_eq!(arb.classes(), 2);
            assert_eq!(arb.name(), mode.label());
            assert_eq!(arb.next_event(123), None, "no built-in arbiter keeps timed state");
        }
    }

    #[test]
    fn per_bank_keeps_banks_independent() {
        let mut arb = PerBankArbiter::new(&shares(&[1, 1]), u64::MAX, 2);
        let id = QosId::new(0);
        // Heavy traffic on bank 0 advances only bank 0's clock…
        for i in 0..32u64 {
            let d = arb.stamp(id, false, i, 0, 0);
            arb.on_picked(id, d, i, 0, 1);
        }
        let hot = arb.clock(id);
        assert!(hot > 0);
        // …so the first stamp on bank 1 is still early (fresh credit).
        let d = arb.stamp(id, false, 100, 1, 0);
        assert!(d.0 < hot, "bank 1 must not inherit bank 0's consumed credit");
    }

    #[test]
    fn dpq_distances_scale_inversely_with_weight() {
        let arb = DpqArbiter::new(&shares(&[4, 1]));
        let hi = arb.service_bound(QosId::new(0), 0);
        let lo = arb.service_bound(QosId::new(1), 0);
        assert!(lo > hi, "low-weight class must carry the larger bound: {lo} vs {hi}");
    }

    #[test]
    fn dpq_bound_holds_under_priority_order_service() {
        // Serve strictly in deadline order (the arbiter's ideal): the
        // promise must hold with the reorder factor to spare.
        let mut arb = DpqArbiter::new(&shares(&[3, 1]));
        let mut queue: Vec<(QosId, VirtualDeadline, u64)> = Vec::new();
        let mut seq = 0u64;
        for round in 0..400u64 {
            // Two arrivals per round, alternating classes.
            for c in 0..2u8 {
                seq += 1;
                let id = QosId::new(c);
                let d = arb.stamp(id, false, seq, 0, queue.len());
                queue.push((id, d, seq));
            }
            // One service per round: earliest deadline first.
            let i = queue
                .iter()
                .enumerate()
                .min_by_key(|(_, &(_, d, s))| (d, s))
                .map(|(i, _)| i)
                .unwrap();
            let (id, d, s) = queue.swap_remove(i);
            arb.on_picked(id, d, s, 0, 1);
            let _ = round;
        }
        // Drain: every remaining promise must also hold.
        while let Some(i) =
            queue.iter().enumerate().min_by_key(|(_, &(_, d, s))| (d, s)).map(|(i, _)| i)
        {
            let (id, d, s) = queue.swap_remove(i);
            arb.on_picked(id, d, s, 0, 1);
        }
        assert_eq!(arb.bound_violations(), 0, "ideal service never misses a promise");
    }

    #[test]
    fn dpq_bound_check_promotion_counts_misses_in_release_too() {
        // With checking promoted, promises are kept regardless of build
        // profile, and pathological service order (starving one read far
        // beyond the arbiter's bounded reordering) is *counted*, never
        // panicked on.
        let mut arb = DpqArbiter::new(&shares(&[1, 1]));
        arb.set_bound_checks(true);
        // Victim stamped against an empty queue: its promise is the
        // minimum bound (one backlog slot times the reorder factor).
        let vd = arb.stamp(QosId::new(0), false, 1, 0, 0);
        // Starve it behind 10 000 later arrivals served first.
        for seq in 2..=10_001u64 {
            let d = arb.stamp(QosId::new(1), false, seq, 0, 1);
            arb.on_picked(QosId::new(1), d, seq, 0, 1);
        }
        assert_eq!(arb.bound_violations(), 0, "the promise is open, not yet missed");
        arb.on_picked(QosId::new(0), vd, 1, 0, 1);
        assert_eq!(arb.bound_violations(), 1, "starved far past the worst-case bound");
        // Arbiters without promises report zero through the default.
        let mut edf = EdfArbiter::new(&shares(&[1, 1]), 16);
        edf.set_bound_checks(true);
        assert_eq!(edf.bound_violations(), 0);
    }

    #[test]
    fn dpq_clock_is_monotone() {
        let mut arb = DpqArbiter::new(&shares(&[2, 1]));
        let mut prev = 0;
        for i in 0..100u64 {
            let _ = arb.stamp(QosId::new(0), false, i, 0, 0);
            let c = arb.clock(QosId::new(0));
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn labels_are_stable_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for mode in ArbiterMode::ALL {
            assert!(seen.insert(mode.label()), "duplicate label {}", mode.label());
        }
        assert_eq!(ArbiterMode::default(), ArbiterMode::Edf);
    }
}
