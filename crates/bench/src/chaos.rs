//! Chaos campaign: seeded fault-plan sweeps over the mechanism zoo.
//!
//! The campaign expands a grid of cells from a single campaign seed.
//! Cell 0 is a committed **fixture**: a fault plan built to violate the
//! liveness invariant (a permanent full-probability controller stall
//! padded with two firing-but-harmless decoy specs), proving end to end
//! that the checker catches it, the classifier labels it, and the
//! shrinker strips the decoys. Every other cell is **derived**: its
//! mechanism pair and fault plan are pure functions of
//! `(CAMPAIGN_SEED, index)` via stateless splitmix64 draws, so any cell
//! reproduces from its index alone — no state threads between cells and
//! results are identical at any `--jobs` count.
//!
//! Each cell runs a 3:1 read-stream contest on the scaled 8-core
//! machine with release-mode invariant checking on
//! ([`pabst_simkit::invariant`]) and the panicking watchdog off — a
//! wedge is something to classify here, not a reason to kill the sweep.
//! The per-cell deadline is an **epoch budget**, not a wall clock: every
//! run executes exactly `warmup + epochs` epochs (the simulator always
//! advances cycles, so a "hang" cannot actually hang), and a cell is
//! classified `timeout` when the budget expires with work still queued
//! and a dead bandwidth tail.
//!
//! Outcome classes, in precedence order:
//!
//! | class                | meaning                                        |
//! |----------------------|------------------------------------------------|
//! | `panic`              | the run unwound (caught per cell)              |
//! | `invariant-violation`| the checker recorded at least one violation    |
//! | `timeout`            | budget exhausted wedged: pending work, dead tail|
//! | `degraded`           | fail-safe engaged or allocation error > envelope|
//! | `clean`              | none of the above                              |
//!
//! The renderer re-derives every non-clean cell's plan from its index,
//! re-runs it serially through [`crate::shrink::shrink_plan`], and
//! emits the minimal plan as JSONL plus a repro command.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::harness::{ExperimentResult, Params, RunCtx};
use crate::registry::MECHANISM_COMBOS;
use crate::scenarios::read_streamers;
use crate::shrink::shrink_plan;
use crate::table::Table;
use pabst_core::governor::GovernorKind;
use pabst_dram::ArbiterMode;
use pabst_simkit::fault::{FaultKind, FaultPlan, FaultSpec, PPM_SCALE};
use pabst_simkit::stats::allocation_error_pct;
use pabst_soc::config::{RegulationMode, SystemConfig};
use pabst_soc::system::{System, SystemBuilder};

/// Base seed every campaign draw mixes from. Changing it reshuffles
/// every derived cell (the fixture is pinned), so treat it as part of
/// the campaign's identity: repro commands are only valid for the seed
/// they were generated under.
pub const CAMPAIGN_SEED: u64 = 0xC4A0_5EED_0000_0009;

/// Grid index of the committed failure fixture.
pub const FIXTURE_INDEX: usize = 0;

/// Consecutive stalled epochs (with work pending) before the liveness
/// invariant fires. Derived plans cap mc-stall windows well below this
/// so only the fixture trips it by construction.
pub const LIVENESS_EPOCHS: u64 = 8;

/// Trailing epochs that must all deliver zero bytes for a cell to
/// count as wedged at budget exhaustion.
const TAIL_EPOCHS: usize = 4;

/// Allocation error above which a faulted run leaves the "degraded
/// within envelope" band even without the fail-safe engaging.
const ENVELOPE_ERROR_PCT: f64 = 10.0;

/// Failing cells minimized per campaign; the renderer logs how many
/// were left unshrunk when more fail.
const MAX_SHRINK_CELLS: usize = 4;

/// Oracle-run budget per shrink.
const SHRINK_ATTEMPTS: u64 = 48;

const QUICK_CELLS: usize = 64;
const FULL_CELLS: usize = 96;
const QUICK_EPOCHS: usize = 12;
const FULL_EPOCHS: usize = 20;

// ---------------------------------------------------------------------
// Outcome classification.
// ---------------------------------------------------------------------

/// How one chaos cell ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// No faults bit, or they left no observable dent.
    Clean,
    /// Faults bit but the machine stayed inside its envelope: the
    /// fail-safe engaged and/or allocation error exceeded the band,
    /// with no invariant violated.
    Degraded,
    /// The invariant checker recorded at least one violation.
    InvariantViolation,
    /// The run unwound; caught per cell, never aborts the sweep.
    Panic,
    /// Epoch budget exhausted with pending work and a dead bandwidth
    /// tail.
    Timeout,
}

impl Outcome {
    /// All classes, in code order.
    pub const ALL: [Outcome; 5] = [
        Outcome::Clean,
        Outcome::Degraded,
        Outcome::InvariantViolation,
        Outcome::Panic,
        Outcome::Timeout,
    ];

    /// Stable numeric code (stored as the `outcome` metric).
    pub fn code(self) -> u64 {
        match self {
            Outcome::Clean => 0,
            Outcome::Degraded => 1,
            Outcome::InvariantViolation => 2,
            Outcome::Panic => 3,
            Outcome::Timeout => 4,
        }
    }

    /// Decodes a metric value written by [`Outcome::code`].
    pub fn from_code(code: u64) -> Outcome {
        Outcome::ALL[(code as usize).min(Outcome::ALL.len() - 1)]
    }

    /// Kebab-case display label.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Clean => "clean",
            Outcome::Degraded => "degraded",
            Outcome::InvariantViolation => "invariant-violation",
            Outcome::Panic => "panic",
            Outcome::Timeout => "timeout",
        }
    }

    /// True for the classes worth minimizing and reporting as repros.
    pub fn is_failure(self) -> bool {
        matches!(self, Outcome::InvariantViolation | Outcome::Panic | Outcome::Timeout)
    }
}

/// Everything one cell run produced.
#[derive(Debug, Clone, Copy)]
pub struct CellOutcome {
    /// The classified outcome.
    pub outcome: Outcome,
    /// Max relative share error vs the 3:1 target, percent.
    pub error_pct: f64,
    /// Aggregate delivered bandwidth over the measured window, bytes/cycle.
    pub total_bpc: f64,
    /// Fault events injected over the run.
    pub faults: u64,
    /// Epochs the governor spent in the degraded fail-safe.
    pub degraded_epochs: u64,
    /// Invariant violations recorded.
    pub violations: u64,
    /// Invariant checks executed (proof the checker was live).
    pub checks: u64,
}

/// Pure precedence rule mapping run facts to an outcome class; panics
/// are classified upstream (there is no `System` left to read facts
/// from).
fn outcome_from_facts(
    violations: u64,
    wedged: bool,
    degraded_epochs: u64,
    faults: u64,
    error_pct: f64,
) -> Outcome {
    if violations > 0 {
        Outcome::InvariantViolation
    } else if wedged {
        Outcome::Timeout
    } else if degraded_epochs > 0 || (faults > 0 && error_pct > ENVELOPE_ERROR_PCT) {
        Outcome::Degraded
    } else {
        Outcome::Clean
    }
}

// ---------------------------------------------------------------------
// Cell derivation: pure functions of (CAMPAIGN_SEED, index).
// ---------------------------------------------------------------------

/// One cell of the campaign: a mechanism pair under a fault plan.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Governor mechanism under test.
    pub governor: GovernorKind,
    /// Target arbiter mechanism under test.
    pub arbiter: ArbiterMode,
    /// The fault plan injected into the run.
    pub plan: FaultPlan,
}

impl ChaosCell {
    /// `governor-arbiter` label for tables.
    pub fn mechanism(&self) -> String {
        format!("{}-{}", self.governor.label(), self.arbiter.label())
    }

    /// `kind+kind+...` plan summary for tables.
    pub fn plan_summary(&self) -> String {
        let kinds: Vec<&str> = self.plan.specs().iter().map(|s| s.kind.label()).collect();
        kinds.join("+")
    }
}

/// splitmix64 finalizer: the same stateless mixer `simkit::fault` uses
/// for per-event draws, applied here to (seed, index, slot) tuples so
/// every cell's plan is reproducible without any RNG state.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Draw `slot` for cell `index` — pure in (CAMPAIGN_SEED, index, slot).
fn draw(index: u64, slot: u64) -> u64 {
    mix(CAMPAIGN_SEED
        ^ mix(index.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ slot.wrapping_mul(0xD134_2543_DE82_EF95)))
}

/// The committed failure fixture: a permanent full-probability stall of
/// the only memory controller (guaranteed liveness violation once the
/// stall outlasts [`LIVENESS_EPOCHS`]) buried under two decoy specs
/// that fire without breaking anything. The decoys exist so the
/// shrinker has real work: the minimal repro is the one mc-stall spec.
fn fixture_cell() -> ChaosCell {
    let mut plan = FaultPlan::new();
    plan.push(FaultSpec {
        kind: FaultKind::SatCorrupt,
        target: 0,
        from_epoch: 0,
        until_epoch: u64::MAX,
        prob_ppm: 200_000,
        magnitude: 0,
        seed: 0xF1B0_0001,
    });
    plan.push(FaultSpec {
        kind: FaultKind::McStall,
        target: 0,
        from_epoch: 0,
        until_epoch: u64::MAX,
        prob_ppm: PPM_SCALE,
        magnitude: 0,
        seed: 0xF1B0_0002,
    });
    plan.push(FaultSpec {
        kind: FaultKind::CreditLeak,
        target: 3,
        from_epoch: 0,
        until_epoch: u64::MAX,
        prob_ppm: 100_000,
        magnitude: 2_000,
        seed: 0xF1B0_0003,
    });
    ChaosCell { governor: GovernorKind::Sat, arbiter: ArbiterMode::Edf, plan }
}

/// Expands grid index `index` into its cell descriptor. Index 0 is the
/// fixture; every other cell derives its mechanisms and 1–3 fault specs
/// from stateless draws. Derived mc-stall specs are capped at 200 000
/// ppm over windows of at most 4 epochs: [`LIVENESS_EPOCHS`] requires 9
/// consecutive stalls, so a derived stall can degrade a run but cannot
/// legitimately trip liveness — any violation outside the fixture is a
/// genuine bug, which is what lets CI demand zero of them.
pub fn cell_descriptor(index: usize) -> ChaosCell {
    if index == FIXTURE_INDEX {
        return fixture_cell();
    }
    let i = index as u64;
    let (governor, arbiter) = MECHANISM_COMBOS[(draw(i, 0) % 4) as usize];
    let nspecs = 1 + draw(i, 1) % 3;
    let mut plan = FaultPlan::new();
    for s in 0..nspecs {
        let d = |slot: u64| draw(i, 16 + s * 16 + slot);
        let kind = FaultKind::ALL[(d(0) % 6) as usize];
        let target = match kind {
            // SAT kinds hit the single global monitor; mc-stall the
            // single controller of the scaled 8-core machine.
            FaultKind::SatDrop
            | FaultKind::SatDelay
            | FaultKind::SatCorrupt
            | FaultKind::McStall => 0,
            // Tile-scoped kinds pick one of the 8 cores.
            FaultKind::EpochSkew | FaultKind::CreditLeak => d(1) % 8,
        };
        let prob_ppm = match kind {
            FaultKind::McStall => [10_000, 50_000, 200_000][(d(2) % 3) as usize],
            _ => [10_000, 50_000, 200_000, 500_000, PPM_SCALE][(d(2) % 5) as usize],
        };
        let (from_epoch, until_epoch) = match kind {
            FaultKind::McStall => {
                let from = d(3) % 12;
                (from, from + 1 + d(4) % 3)
            }
            _ => (d(3) % 8, u64::MAX),
        };
        let magnitude = match kind {
            FaultKind::SatDelay => 1 + d(5) % 6,
            FaultKind::CreditLeak => 500 + d(5) % 4_500,
            _ => 0,
        };
        plan.push(FaultSpec {
            kind,
            target,
            from_epoch,
            until_epoch,
            prob_ppm,
            magnitude,
            seed: d(6),
        });
    }
    ChaosCell { governor, arbiter, plan }
}

// ---------------------------------------------------------------------
// Cell execution.
// ---------------------------------------------------------------------

/// Runs one cell to completion and classifies it. Panics unwind no
/// further than this function: the run happens under `catch_unwind`, so
/// a panicking mechanism becomes an [`Outcome::Panic`] row in the
/// campaign table instead of a lost cell. Returns the finished system
/// (for report collection) unless the run panicked.
pub fn run_cell(cell: &ChaosCell, epochs: usize, seed: u64) -> (CellOutcome, Option<System>) {
    let plan = cell.plan.clone();
    let governor = cell.governor;
    let arbiter = cell.arbiter;
    let ran = catch_unwind(AssertUnwindSafe(move || {
        let mut cfg = SystemConfig::scaled_8core();
        cfg.governor = governor;
        cfg.arbiter = arbiter;
        // The checker classifies wedges; the watchdog's panic would
        // just turn every timeout into a noisier panic.
        cfg.watchdog_epochs = 0;
        cfg.invariants.enabled = true;
        cfg.invariants.bound_checks = true;
        cfg.invariants.liveness_epochs = LIVENESS_EPOCHS;
        let mut sys = SystemBuilder::new(cfg, RegulationMode::Pabst)
            .class(3, read_streamers(0, 2, seed))
            .class(1, read_streamers(1, 2, seed))
            .fault_plan(plan)
            .build()
            .expect("valid chaos configuration");
        let warm = epochs / 2;
        sys.run_epochs(warm + epochs);
        (sys, warm)
    }));
    match ran {
        Ok((sys, warm)) => {
            let report = classify(&sys, warm);
            (report, Some(sys))
        }
        Err(_) => (
            CellOutcome {
                outcome: Outcome::Panic,
                error_pct: 0.0,
                total_bpc: 0.0,
                faults: 0,
                degraded_epochs: 0,
                violations: 0,
                checks: 0,
            },
            None,
        ),
    }
}

/// Reads the run facts off a finished system and applies the
/// precedence rule.
fn classify(sys: &System, warm: usize) -> CellOutcome {
    let m = sys.metrics();
    let o0 = m.bw_series.mean_over(0, warm);
    let o1 = m.bw_series.mean_over(1, warm);
    let ec = m.bw_series.epoch_cycles() as f64;
    let error_pct = allocation_error_pct(&[3.0, 1.0], &[o0.max(1.0), o1.max(1.0)]);
    let total_bpc = (o0 + o1) / ec;
    let inv = sys.invariant_report();
    let epochs_run = m.bw_series.epochs();
    let tail_dead = epochs_run >= TAIL_EPOCHS
        && (epochs_run - TAIL_EPOCHS..epochs_run).all(|e| m.bw_series.epoch_total(e) < 0.5);
    let wedged = tail_dead && sys.has_pending_work();
    let faults = sys.faults_injected();
    let degraded_epochs = sys.degraded_epochs();
    CellOutcome {
        outcome: outcome_from_facts(
            inv.total_violations(),
            wedged,
            degraded_epochs,
            faults,
            error_pct,
        ),
        error_pct,
        total_bpc,
        faults,
        degraded_epochs,
        violations: inv.total_violations(),
        checks: inv.checks_run(),
    }
}

// ---------------------------------------------------------------------
// Experiment plumbing (grid / run / render).
// ---------------------------------------------------------------------

/// Expands the campaign grid: 64 cells under `--quick`, 96 full.
pub fn chaos_grid(quick: bool) -> Vec<Params> {
    let cells = if quick { QUICK_CELLS } else { FULL_CELLS };
    let epochs = if quick { QUICK_EPOCHS } else { FULL_EPOCHS };
    (0..cells)
        .map(|i| {
            let c = cell_descriptor(i);
            let mut cfg = SystemConfig::scaled_8core();
            cfg.governor = c.governor;
            cfg.arbiter = c.arbiter;
            Params::new(
                "chaos",
                format!("c{i:03}/{}/{}", c.mechanism(), c.plan_summary()),
                i,
                epochs,
            )
            .with_provenance(cfg.mechanism_hash(), c.plan.digest())
        })
        .collect()
}

/// Runs one campaign cell.
pub fn chaos_run(p: &Params, mut ctx: RunCtx) -> ExperimentResult {
    let cell = cell_descriptor(p.index);
    let (r, sys) = run_cell(&cell, p.epochs, p.seed);
    if let Some(sys) = sys.as_ref() {
        ctx.report(sys);
    }
    ctx.finish(
        p,
        vec![
            ("outcome", r.outcome.code() as f64),
            ("error_pct", r.error_pct),
            ("bpc", r.total_bpc),
            ("faults", r.faults as f64),
            ("degraded", r.degraded_epochs as f64),
            ("violations", r.violations as f64),
            ("checks", r.checks as f64),
        ],
        Vec::new(),
    )
}

fn outcome_of(r: &ExperimentResult) -> Outcome {
    Outcome::from_code(r.metric("outcome") as u64)
}

/// Renders the campaign report: outcome tallies (with the CI-grepped
/// `unexpected` lines — failures outside the fixture), the full cell
/// table, and a shrunk repro plan for every failing cell (capped at
/// [`MAX_SHRINK_CELLS`]). Shrinking happens here, serially, by
/// re-deriving each failing cell from its index and re-running it under
/// candidate plans — renderers run after the sweep on one thread, so
/// the minimized plans are identical at any `--jobs` count.
pub fn chaos_render(results: &[ExperimentResult]) -> String {
    let mut counts = [0usize; 5];
    for r in results {
        counts[outcome_of(r).code() as usize] += 1;
    }
    let unexpected = |class: Outcome| {
        results.iter().filter(|r| r.params.index != FIXTURE_INDEX && outcome_of(r) == class).count()
    };
    let mut out = format!(
        "Chaos — seeded fault-plan campaign across the mechanism zoo\n\
         (campaign seed {CAMPAIGN_SEED:#018x}, {} cells; every cell re-derives from\n \
         its index; per-cell deadline is an epoch budget, never a wall clock;\n \
         cell c000 is the committed failure fixture and must violate liveness)\n\n",
        results.len()
    );
    out.push_str("outcomes:");
    for (class, n) in Outcome::ALL.iter().zip(counts) {
        out.push_str(&format!(" {}={n}", class.label()));
    }
    out.push('\n');
    out.push_str(&format!(
        "unexpected invariant violations: {}\n\
         unexpected panics: {}\n\
         unexpected timeouts: {}\n",
        unexpected(Outcome::InvariantViolation),
        unexpected(Outcome::Panic),
        unexpected(Outcome::Timeout),
    ));
    if let Some(fixture) = results.iter().find(|r| r.params.index == FIXTURE_INDEX) {
        out.push_str(&format!(
            "fixture outcome: {} (expected invariant-violation)\n",
            outcome_of(fixture).label()
        ));
    }
    out.push('\n');
    let mut t = Table::new(vec![
        "cell",
        "mechanism",
        "fault plan",
        "outcome",
        "alloc error %",
        "bpc",
        "faults",
        "degraded",
        "violations",
    ]);
    for r in results {
        let c = cell_descriptor(r.params.index);
        t.row(vec![
            format!("c{:03}", r.params.index),
            c.mechanism(),
            c.plan_summary(),
            outcome_of(r).label().into(),
            format!("{:.1}", r.metric("error_pct")),
            format!("{:.3}", r.metric("bpc")),
            format!("{}", r.metric("faults")),
            format!("{}", r.metric("degraded")),
            format!("{}", r.metric("violations")),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&render_shrinks(results));
    out
}

fn render_shrinks(results: &[ExperimentResult]) -> String {
    let failing: Vec<&ExperimentResult> =
        results.iter().filter(|r| outcome_of(r).is_failure()).collect();
    if failing.is_empty() {
        return "\nshrunk repro plans: none (no failing cells)\n".to_string();
    }
    let mut out = "\nshrunk repro plans:\n".to_string();
    for (n, r) in failing.iter().enumerate() {
        if n >= MAX_SHRINK_CELLS {
            out.push_str(&format!(
                "  ({} more failing cells not shrunk this run)\n",
                failing.len() - MAX_SHRINK_CELLS
            ));
            break;
        }
        let cell = cell_descriptor(r.params.index);
        let want = outcome_of(r);
        let horizon = (r.params.epochs / 2 + r.params.epochs) as u64;
        let epochs = r.params.epochs;
        let seed = r.params.seed;
        let governor = cell.governor;
        let arbiter = cell.arbiter;
        let sr = shrink_plan(&cell.plan, horizon, SHRINK_ATTEMPTS, |candidate| {
            let probe = ChaosCell { governor, arbiter, plan: candidate.clone() };
            run_cell(&probe, epochs, seed).0.outcome == want
        });
        out.push_str(&format!(
            "  c{:03} [{}] {} spec(s) -> {} spec(s), {} oracle runs{}, plan digest {:#018x}:\n",
            r.params.index,
            want.label(),
            cell.plan.specs().len(),
            sr.plan.specs().len(),
            sr.attempts,
            if sr.hit_cap { " (budget capped)" } else { "" },
            sr.plan.digest(),
        ));
        for line in sr.plan.to_jsonl().lines() {
            out.push_str(&format!("    {line}\n"));
        }
        let quick = epochs <= QUICK_EPOCHS;
        out.push_str(&format!(
            "    repro: cargo run --release -p pabst-bench --bin chaos --{} --jobs 1\n",
            if quick { " --quick" } else { "" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_codes_round_trip_and_order_failures_correctly() {
        for class in Outcome::ALL {
            assert_eq!(Outcome::from_code(class.code()), class);
        }
        assert!(Outcome::InvariantViolation.is_failure());
        assert!(Outcome::Panic.is_failure());
        assert!(Outcome::Timeout.is_failure());
        assert!(!Outcome::Clean.is_failure());
        assert!(!Outcome::Degraded.is_failure());
    }

    #[test]
    fn classification_precedence_is_violation_timeout_degraded_clean() {
        // A violation wins even when the run also wedged and degraded.
        assert_eq!(outcome_from_facts(1, true, 5, 10, 50.0), Outcome::InvariantViolation);
        // A wedge wins over degradation.
        assert_eq!(outcome_from_facts(0, true, 5, 10, 50.0), Outcome::Timeout);
        // The fail-safe engaging is degraded even at low error.
        assert_eq!(outcome_from_facts(0, false, 5, 10, 1.0), Outcome::Degraded);
        // Faults with envelope-busting error degrade without the fail-safe.
        assert_eq!(outcome_from_facts(0, false, 0, 10, 50.0), Outcome::Degraded);
        // Faults absorbed inside the envelope stay clean.
        assert_eq!(outcome_from_facts(0, false, 0, 10, 1.0), Outcome::Clean);
        assert_eq!(outcome_from_facts(0, false, 0, 0, 0.0), Outcome::Clean);
    }

    #[test]
    fn cell_derivation_is_pure_and_the_grid_indexes_line_up() {
        for quick in [true, false] {
            let grid = chaos_grid(quick);
            assert_eq!(grid.len(), if quick { QUICK_CELLS } else { FULL_CELLS });
            for (i, p) in grid.iter().enumerate() {
                assert_eq!(p.index, i);
                assert_eq!(p.experiment, "chaos");
            }
        }
        for i in 0..FULL_CELLS {
            let a = cell_descriptor(i);
            let b = cell_descriptor(i);
            assert_eq!(a.plan.specs(), b.plan.specs(), "cell {i} must re-derive identically");
            assert_eq!(a.mechanism(), b.mechanism());
        }
    }

    #[test]
    fn derived_plans_always_fire_and_never_trip_liveness_by_construction() {
        for i in 1..FULL_CELLS {
            let cell = cell_descriptor(i);
            let specs = cell.plan.specs();
            assert!((1..=3).contains(&specs.len()), "cell {i}: {} specs", specs.len());
            for s in specs {
                assert!(s.prob_ppm >= 10_000, "cell {i}: inert spec {s:?}");
                assert!(s.prob_ppm <= PPM_SCALE);
                if s.kind == FaultKind::McStall {
                    assert!(s.prob_ppm <= 200_000, "cell {i}: stall too hot {s:?}");
                    assert!(s.until_epoch != u64::MAX, "cell {i}: open stall window {s:?}");
                    let len = s.until_epoch - s.from_epoch + 1;
                    assert!(len <= 4, "cell {i}: stall window {len} epochs {s:?}");
                }
            }
        }
    }

    #[test]
    fn fixture_cell_violates_liveness_and_shrinks_to_the_single_stall() {
        let cell = cell_descriptor(FIXTURE_INDEX);
        assert_eq!(cell.plan.specs().len(), 3, "fixture ships with two decoys");
        let (r, sys) = run_cell(&cell, 8, 0);
        assert_eq!(r.outcome, Outcome::InvariantViolation, "{r:?}");
        assert!(r.violations > 0 && r.checks > 0);
        let sys = sys.expect("fixture run completes without panicking");
        assert!(sys.has_pending_work(), "the stalled controller still holds work");
        // The shrinker strips both decoys: only the permanent stall
        // reproduces the liveness violation.
        let sr = shrink_plan(&cell.plan, 12, SHRINK_ATTEMPTS, |candidate| {
            let probe = ChaosCell {
                governor: cell.governor,
                arbiter: cell.arbiter,
                plan: candidate.clone(),
            };
            run_cell(&probe, 8, 0).0.outcome == Outcome::InvariantViolation
        });
        assert!(
            sr.plan.specs().len() <= 2,
            "minimal repro must drop the decoys: {:?}",
            sr.plan.specs()
        );
        assert!(
            sr.plan.specs().iter().any(|s| s.kind == FaultKind::McStall),
            "the stall is the failure and must survive shrinking"
        );
    }

    #[test]
    fn a_derived_cell_runs_clean_or_degraded_without_violations() {
        let cell = cell_descriptor(1);
        let (r, sys) = run_cell(&cell, 8, 0);
        assert!(sys.is_some(), "derived cells must not panic");
        assert_eq!(r.violations, 0, "{r:?}");
        assert!(r.checks > 0, "checker must have been live");
        assert!(
            matches!(r.outcome, Outcome::Clean | Outcome::Degraded),
            "derived cell 1 outcome: {:?}",
            r.outcome
        );
    }
}
